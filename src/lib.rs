//! # grass
//!
//! Facade crate for the GRASS (NSDI '14) reproduction: *GRASS: Trimming Stragglers in
//! Approximation Analytics* (Ananthanarayanan, Hung, Ren, Stoica, Wierman, Yu).
//!
//! GRASS is a speculation (straggler-mitigation) algorithm for **approximation jobs**
//! — jobs that either maximise accuracy within a deadline or minimise the time to
//! reach an error bound. It combines two simple policies: **GS** (greedy speculation)
//! and **RAS** (resource-aware speculation), starting a job under RAS and switching to
//! GS near the approximation bound, with the switching point learned online.
//!
//! This crate re-exports the whole workspace so applications can depend on a single
//! crate:
//!
//! * [`core`] (`grass-core`) — task/job model, GS, RAS, GRASS, estimators,
//! * [`sim`] (`grass-sim`) — the discrete-event cluster simulator substrate,
//! * [`workload`] (`grass-workload`) — Facebook/Bing-calibrated synthetic traces,
//! * [`policies`] (`grass-policies`) — LATE, Mantri, no-speculation and oracle
//!   baselines,
//! * [`model`] (`grass-model`) — the Appendix-A analytic model and Hill estimator,
//! * [`metrics`] (`grass-metrics`) — outcome aggregation and report tables,
//! * [`trace`] (`grass-trace`) — workload/execution trace capture, codec and replay,
//! * [`fleet`] (`grass-fleet`) — broker/worker sweep service with cell leases,
//!   heartbeats and a persistent digest cache,
//! * [`experiments`] (`grass-experiments`) — harnesses regenerating every table and
//!   figure of the paper,
//! * [`analysis`] (`grass-analysis`) — determinism & robustness lint engine behind
//!   `repro lint` (see `docs/lints.md`).
//!
//! ## Quickstart
//!
//! ```
//! use grass::prelude::*;
//!
//! // A small cluster and a deadline-bound job with heavy-tailed tasks.
//! let sim = SimConfig {
//!     cluster: ClusterConfig::small(4, 2),
//!     ..SimConfig::default()
//! };
//! let job = JobSpec::single_stage(1, 0.0, Bound::Deadline(30.0), vec![2.0; 40]);
//!
//! // Schedule it with GRASS and inspect the achieved accuracy.
//! let grass = GrassFactory::new(7);
//! let result = run_simulation(&sim, vec![job], &grass);
//! let outcome = &result.outcomes[0];
//! assert!(outcome.accuracy() > 0.0);
//! ```

pub use grass_analysis as analysis;
pub use grass_core as core;
pub use grass_experiments as experiments;
pub use grass_fleet as fleet;
pub use grass_metrics as metrics;
pub use grass_model as model;
pub use grass_policies as policies;
pub use grass_sim as sim;
pub use grass_trace as trace;
pub use grass_workload as workload;

/// Convenient single-import prelude for applications and examples.
///
/// The prelude is *complete* with respect to the sub-crates' root re-exports: every
/// name a workspace crate re-exports at its root appears here (the facade test
/// `tests/facade.rs` parses the crate roots and fails on any drift in either
/// direction). The sub-crates' own root definitions that are deliberately *not*
/// re-exported (`grass_core::{Error, Result}`, which would shadow the std prelude)
/// are accessible through the module re-exports above.
pub mod prelude {
    pub use grass_analysis::{
        is_known_lint, lex, lint_info, lint_source, parse_suppressions, path_covers, render_json,
        render_text, role_for, run_lints, sort_findings, summarize, AnalysisConfig, ClassSet,
        Comment, FileCtx, Finding, LexedFile, LintInfo, PathAllow, Role, Severity, SourceFile,
        Summary, Suppression, SuppressionError, Token, TokenKind, Workspace, CATALOG,
    };
    pub use grass_core::{
        degrade_estimate, AccuracyTracker, Action, ActionKind, Bound, BoxedPolicy, EstimatorConfig,
        FactorSet, GrassConfig, GrassFactory, GrassPolicy, GsFactory, GsPolicy, JobId, JobOutcome,
        JobSizeBin, JobSpec, JobView, PolicyFactory, QuantileSketch, RasFactory, RasPolicy,
        SampleStore, SizeBucket, SpeculationMode, SpeculationPolicy, StageId, StageSpec,
        StoreSnapshot, StrawmanConfig, SwitchScanCache, TaskId, TaskSpec, TaskView, Time,
    };
    pub use grass_experiments::{
        assemble_sweep_result, compare, compare_outcomes, experiment_ids, make_factory,
        merge_seed_sets, metric_for, metric_for_source, outcome_digest, parse_policy,
        run_experiment, run_fleet_command, run_lint_command, run_once, run_policy, run_sweep,
        run_sweep_cell, run_sweep_command, run_sweep_with_cache, run_trace_command,
        sample_task_durations, trace_identity, workload_jobs, Comparison, ExpConfig, FleetCellSpec,
        FleetPlan, PolicyKind, ResumeStats, SweepCell, SweepCellRunner, SweepConfig, SweepResult,
    };
    pub use grass_fleet::{
        fnv1a64, run_fleet, run_worker, serve_broker, BrokerHandle, CellRunner, CellStatus, Claim,
        Completion, DigestCache, FleetConfig, FleetError, FleetOutcome, FleetRunReport,
        FleetSnapshot, FleetStats, GridState, Lease, LeaseTable, Request, Response, WorkerReport,
        PROTOCOL_VERSION, SYNC_SEPARATOR,
    };
    pub use grass_metrics::{
        improvement_by_size_bin, improvement_percent, mean_metric, overall_improvement, Cell,
        Metric, OutcomeSet, Report, Series, Table,
    };
    pub use grass_model::{
        figure4_curves, hill_estimate, hill_plot, tail_index, Figure4Curve, HillPoint, Pareto,
        ProactiveModel, ReactiveModel,
    };
    pub use grass_policies::{
        LateConfig, LateFactory, LatePolicy, LjfFactory, LjfPolicy, MantriConfig, MantriFactory,
        MantriPolicy, NoSpecFactory, NoSpecPolicy, OracleFactory, OraclePolicy, SjfFactory,
        SjfPolicy,
    };
    pub use grass_sim::{
        run_simulation, run_simulation_traced, ClusterConfig, CompletionEffect, CopyId,
        CopyRuntime, Event, EventQueue, HeterogeneityModel, JobRuntime, Machine, NullSink,
        SimConfig, SimResult, SimStats, SimTraceEvent, SlotId, StragglerModel, TaskRuntime,
        TimeWeighted, TraceSink, VecSink,
    };
    pub use grass_trace::{
        codec_for, convert_stream, open_workload_source, open_workload_source_mmap,
        record_workload, replay, replay_config, sniff_bytes, sniff_format, BinaryCodec,
        BorrowedJob, BorrowedJobs, CompressedCodec, ExecutionEvents, ExecutionMeta, ExecutionTrace,
        ExecutionTraceSink, MappedWorkload, Record, StreamKind, TextCodec, TraceCodec, TraceError,
        TraceFormat, TraceItems, TraceReader, TraceStats, TraceWriter, WorkloadItems, WorkloadMeta,
        WorkloadTrace, WorkloadTraceSink, BINARY_FORMAT_VERSION, COMPRESSED_FORMAT_VERSION,
        FORMAT_VERSION,
    };
    pub use grass_workload::{
        generate, generate_job, ideal_duration, table1_rows, BoundSpec, Framework,
        GeneratedWorkload, InterArrival, JobGen, JobSource, RecordedWorkload, SizeMix,
        StreamedWorkload, TraceProfile, TraceSource, TraceSummary, WorkDistribution,
        WorkloadConfig,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable_together() {
        let profile = TraceProfile::facebook(Framework::Spark);
        let workload = WorkloadConfig::new(profile)
            .with_jobs(5)
            .with_bound(BoundSpec::paper_errors());
        let jobs = generate(&workload, 3);
        let sim = SimConfig {
            cluster: ClusterConfig::small(4, 2),
            ..SimConfig::default()
        };
        let result = run_simulation(&sim, jobs, &LateFactory::default());
        assert_eq!(result.outcomes.len(), 5);
    }
}
