//! # grass
//!
//! Facade crate for the GRASS (NSDI '14) reproduction: *GRASS: Trimming Stragglers in
//! Approximation Analytics* (Ananthanarayanan, Hung, Ren, Stoica, Wierman, Yu).
//!
//! GRASS is a speculation (straggler-mitigation) algorithm for **approximation jobs**
//! — jobs that either maximise accuracy within a deadline or minimise the time to
//! reach an error bound. It combines two simple policies: **GS** (greedy speculation)
//! and **RAS** (resource-aware speculation), starting a job under RAS and switching to
//! GS near the approximation bound, with the switching point learned online.
//!
//! This crate re-exports the whole workspace so applications can depend on a single
//! crate:
//!
//! * [`core`] (`grass-core`) — task/job model, GS, RAS, GRASS, estimators,
//! * [`sim`] (`grass-sim`) — the discrete-event cluster simulator substrate,
//! * [`workload`] (`grass-workload`) — Facebook/Bing-calibrated synthetic traces,
//! * [`policies`] (`grass-policies`) — LATE, Mantri, no-speculation and oracle
//!   baselines,
//! * [`model`] (`grass-model`) — the Appendix-A analytic model and Hill estimator,
//! * [`metrics`] (`grass-metrics`) — outcome aggregation and report tables,
//! * [`experiments`] (`grass-experiments`) — harnesses regenerating every table and
//!   figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use grass::prelude::*;
//!
//! // A small cluster and a deadline-bound job with heavy-tailed tasks.
//! let sim = SimConfig {
//!     cluster: ClusterConfig::small(4, 2),
//!     ..SimConfig::default()
//! };
//! let job = JobSpec::single_stage(1, 0.0, Bound::Deadline(30.0), vec![2.0; 40]);
//!
//! // Schedule it with GRASS and inspect the achieved accuracy.
//! let grass = GrassFactory::new(7);
//! let result = run_simulation(&sim, vec![job], &grass);
//! let outcome = &result.outcomes[0];
//! assert!(outcome.accuracy() > 0.0);
//! ```

pub use grass_core as core;
pub use grass_experiments as experiments;
pub use grass_metrics as metrics;
pub use grass_model as model;
pub use grass_policies as policies;
pub use grass_sim as sim;
pub use grass_workload as workload;

/// Convenient single-import prelude for applications and examples.
pub mod prelude {
    pub use grass_core::{
        Action, ActionKind, Bound, EstimatorConfig, FactorSet, GrassConfig, GrassFactory,
        GrassPolicy, GsFactory, GsPolicy, JobId, JobOutcome, JobSizeBin, JobSpec, JobView,
        PolicyFactory, RasFactory, RasPolicy, SampleStore, SpeculationMode, SpeculationPolicy,
        StageId, TaskId, TaskSpec, TaskView,
    };
    pub use grass_experiments::{run_experiment, ExpConfig, PolicyKind};
    pub use grass_metrics::{Metric, OutcomeSet, Report, Table};
    pub use grass_model::{Pareto, ProactiveModel, ReactiveModel};
    pub use grass_policies::{
        LateFactory, LatePolicy, MantriFactory, MantriPolicy, NoSpecFactory, OracleFactory,
    };
    pub use grass_sim::{
        run_simulation, ClusterConfig, HeterogeneityModel, SimConfig, SimResult, StragglerModel,
    };
    pub use grass_workload::{
        generate, BoundSpec, Framework, TraceProfile, TraceSource, WorkloadConfig,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable_together() {
        let profile = TraceProfile::facebook(Framework::Spark);
        let workload = WorkloadConfig::new(profile)
            .with_jobs(5)
            .with_bound(BoundSpec::paper_errors());
        let jobs = generate(&workload, 3);
        let sim = SimConfig {
            cluster: ClusterConfig::small(4, 2),
            ..SimConfig::default()
        };
        let result = run_simulation(&sim, jobs, &LateFactory::default());
        assert_eq!(result.outcomes.len(), 5);
    }
}
