//! Workload sources: where a simulation's jobs come from.
//!
//! Historically every experiment sampled a fresh synthetic workload
//! ([`generate`]); with the `grass-trace` subsystem a recorded
//! workload can be replayed instead. [`JobSource`] abstracts over the two so
//! harnesses can take either: a [`GeneratedWorkload`] re-rolls its jobs from a seed,
//! a [`RecordedWorkload`] returns a fixed job list (typically decoded from a
//! workload trace) and ignores the seed entirely — the replay path.

use grass_core::JobSpec;

use crate::generator::{generate, WorkloadConfig};

/// A provider of simulation jobs.
pub trait JobSource {
    /// Human-readable label of the source ("Facebook-Hadoop", a trace file name, …).
    fn label(&self) -> String;

    /// Produce the jobs to simulate. Generated sources sample from `seed`; recorded
    /// sources return their fixed job list and ignore it.
    fn jobs(&self, seed: u64) -> Vec<JobSpec>;
}

/// Job source that samples a fresh synthetic workload per seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratedWorkload {
    /// The generator configuration sampled from.
    pub config: WorkloadConfig,
}

impl GeneratedWorkload {
    /// Wrap a generator configuration.
    pub fn new(config: WorkloadConfig) -> Self {
        GeneratedWorkload { config }
    }
}

impl JobSource for GeneratedWorkload {
    fn label(&self) -> String {
        self.config.profile.label()
    }

    fn jobs(&self, seed: u64) -> Vec<JobSpec> {
        generate(&self.config, seed)
    }
}

/// Job source that replays a fixed, previously recorded job list.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedWorkload {
    label: String,
    jobs: Vec<JobSpec>,
}

impl RecordedWorkload {
    /// Wrap a fixed job list under a label.
    pub fn new(label: impl Into<String>, jobs: Vec<JobSpec>) -> Self {
        RecordedWorkload {
            label: label.into(),
            jobs,
        }
    }

    /// The recorded jobs, borrowed.
    pub fn jobs_ref(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Consume the source, yielding the recorded jobs without cloning.
    pub fn into_jobs(self) -> Vec<JobSpec> {
        self.jobs
    }
}

impl JobSource for RecordedWorkload {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn jobs(&self, _seed: u64) -> Vec<JobSpec> {
        self.jobs.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BoundSpec;
    use crate::profiles::{Framework, TraceProfile};

    fn config() -> WorkloadConfig {
        WorkloadConfig::new(TraceProfile::facebook(Framework::Spark))
            .with_jobs(6)
            .with_bound(BoundSpec::paper_errors())
    }

    #[test]
    fn generated_source_matches_direct_generation() {
        let source = GeneratedWorkload::new(config());
        assert_eq!(source.jobs(3), generate(&config(), 3));
        assert_ne!(source.jobs(3), source.jobs(4));
        assert_eq!(source.label(), "Facebook-Spark");
    }

    #[test]
    fn recorded_source_ignores_the_seed() {
        let jobs = generate(&config(), 5);
        let source = RecordedWorkload::new("fixture", jobs.clone());
        assert_eq!(source.jobs(0), jobs);
        assert_eq!(source.jobs(123), jobs);
        assert_eq!(source.label(), "fixture");
        assert_eq!(source.jobs_ref(), &jobs[..]);
        assert_eq!(source.into_jobs(), jobs);
    }
}
