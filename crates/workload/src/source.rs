//! Workload sources: where a simulation's jobs come from.
//!
//! Historically every experiment sampled a fresh synthetic workload
//! ([`generate`]); with the `grass-trace` subsystem a recorded
//! workload can be replayed instead. [`JobSource`] abstracts over the three so
//! harnesses can take any: a [`GeneratedWorkload`] re-rolls its jobs from a seed,
//! a [`RecordedWorkload`] returns a fixed in-memory job list (typically decoded
//! from a workload trace) and ignores the seed entirely — the replay path — and
//! a [`StreamedWorkload`] loads job prefixes on demand from an external store
//! (typically a trace file on disk, wired up by `grass-trace`), so a GB-scale
//! recording never has to be held in memory beyond what a call actually needs.

use std::sync::Arc;

use grass_core::JobSpec;

use crate::generator::{generate, WorkloadConfig};

/// A provider of simulation jobs.
pub trait JobSource {
    /// Human-readable label of the source ("Facebook-Hadoop", a trace file name, …).
    fn label(&self) -> String;

    /// Produce the jobs to simulate. Generated sources sample from `seed`; recorded
    /// sources return their fixed job list and ignore it.
    fn jobs(&self, seed: u64) -> Vec<JobSpec>;

    /// A `fraction` slice of the workload used to warm a learning policy's sample
    /// store with "executions of previous jobs" (GRASS §4.1). The default takes a
    /// prefix of [`JobSource::jobs`]; generated sources instead re-sample a smaller
    /// workload from the same configuration, which yields the identical prefix while
    /// also honouring the minimum of four warm-up jobs on tiny workloads.
    ///
    /// Caveat for fixed-job sources: a recording has no "other jobs of the same
    /// workload" to warm from, so the prefix of the evaluation jobs themselves
    /// stands in — a deliberate, mild train-on-test leak (the store holds only
    /// per-size-bucket duration samples, which the prefix shares with any draw from
    /// the same distribution). Generated sources warm on a *different* sample
    /// (`seed` is already offset by the caller) and have no such leak.
    fn warmup_jobs(&self, fraction: f64, seed: u64) -> Vec<JobSpec> {
        let mut jobs = self.jobs(seed);
        let count = ((jobs.len() as f64 * fraction).ceil() as usize)
            .max(4)
            .min(jobs.len());
        jobs.truncate(count);
        jobs
    }

    /// Whether this source's jobs are (predominantly) deadline-bound — the accuracy
    /// metric — rather than error-bound — the duration metric. Harnesses use this to
    /// pick the comparison metric without materialising the job list.
    fn deadline_bound(&self) -> bool;
}

/// Job source that samples a fresh synthetic workload per seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratedWorkload {
    /// The generator configuration sampled from.
    pub config: WorkloadConfig,
}

impl GeneratedWorkload {
    /// Wrap a generator configuration.
    pub fn new(config: WorkloadConfig) -> Self {
        GeneratedWorkload { config }
    }
}

impl JobSource for GeneratedWorkload {
    fn label(&self) -> String {
        self.config.profile.label()
    }

    fn jobs(&self, seed: u64) -> Vec<JobSpec> {
        generate(&self.config, seed)
    }

    fn warmup_jobs(&self, fraction: f64, seed: u64) -> Vec<JobSpec> {
        // Regenerate rather than truncate: byte-identical to the historical
        // behaviour of the experiment harness (generation is prefix-stable, so a
        // smaller `num_jobs` yields a prefix of the full workload), and `.max(4)`
        // can exceed the source's own job count on tiny workloads.
        let num_jobs = ((self.config.num_jobs as f64 * fraction).ceil() as usize).max(4);
        let warm_cfg = WorkloadConfig {
            num_jobs,
            ..self.config
        };
        generate(&warm_cfg, seed)
    }

    fn deadline_bound(&self) -> bool {
        self.config.bound.is_deadline()
    }
}

/// Job source that replays a fixed, previously recorded job list.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedWorkload {
    label: String,
    jobs: Vec<JobSpec>,
    deadline_bound: bool,
}

impl RecordedWorkload {
    /// Wrap a fixed job list under a label. The metric kind is inferred from the
    /// majority bound kind of the recorded jobs.
    pub fn new(label: impl Into<String>, jobs: Vec<JobSpec>) -> Self {
        let deadline_jobs = jobs.iter().filter(|j| j.bound.is_deadline()).count();
        RecordedWorkload {
            label: label.into(),
            deadline_bound: deadline_jobs * 2 > jobs.len(),
            jobs,
        }
    }

    /// The recorded jobs, borrowed.
    pub fn jobs_ref(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Consume the source, yielding the recorded jobs without cloning.
    pub fn into_jobs(self) -> Vec<JobSpec> {
        self.jobs
    }
}

impl JobSource for RecordedWorkload {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn jobs(&self, _seed: u64) -> Vec<JobSpec> {
        self.jobs.clone()
    }

    fn deadline_bound(&self) -> bool {
        self.deadline_bound
    }
}

/// Loader behind a [`StreamedWorkload`]: produce the first `count` jobs of the
/// backing store. Called once per [`JobSource::jobs`] / warm-up request, so the
/// implementation should stream (decode records up to `count` and stop) rather
/// than materialise everything and truncate.
pub type PrefixLoader = dyn Fn(usize) -> Result<Vec<JobSpec>, String> + Send + Sync;

/// Job source that loads job prefixes on demand from an external store —
/// typically a workload trace file opened by `grass-trace`'s
/// `open_workload_source`, which validates the store once at construction.
///
/// `warmup_jobs(fraction, _)` asks the loader for only the first
/// ⌈fraction·n⌉ jobs (same prefix semantics as [`RecordedWorkload`]), so
/// warming a policy's sample store from a GB-scale recording decodes a prefix
/// of the file instead of all of it.
///
/// Like every [`JobSource`], each [`JobSource::jobs`] call produces a fresh
/// job list — here a fresh decode pass, where [`GeneratedWorkload`] resamples
/// and [`RecordedWorkload`] deep-clones. That per-call decode is the
/// deliberate price of never holding the full recording in memory (caching the
/// decoded list would reintroduce exactly the O(trace) footprint this source
/// exists to avoid); it is amortised against the simulation each call feeds,
/// which dominates decode by an order of magnitude even at small scale.
///
/// The constructor's invariants (the store really holds `total_jobs` loadable
/// jobs) are the wiring layer's responsibility; if the store fails *after*
/// construction (file deleted or corrupted mid-run), the infallible
/// [`JobSource::jobs`] surface panics with the loader's error message.
#[derive(Clone)]
pub struct StreamedWorkload {
    label: String,
    total_jobs: usize,
    deadline_bound: bool,
    loader: Arc<PrefixLoader>,
}

impl StreamedWorkload {
    /// Wrap a prefix loader. `total_jobs` is the store's full job count (used to
    /// size warm-up prefixes and full loads); `deadline_bound` selects the
    /// comparison metric, as in [`RecordedWorkload::new`].
    pub fn new(
        label: impl Into<String>,
        total_jobs: usize,
        deadline_bound: bool,
        loader: impl Fn(usize) -> Result<Vec<JobSpec>, String> + Send + Sync + 'static,
    ) -> Self {
        StreamedWorkload {
            label: label.into(),
            total_jobs,
            deadline_bound,
            loader: Arc::new(loader),
        }
    }

    /// Number of jobs the backing store holds.
    pub fn total_jobs(&self) -> usize {
        self.total_jobs
    }

    /// Load the first `count` jobs, with the documented panic on loader failure.
    fn load_prefix(&self, count: usize) -> Vec<JobSpec> {
        (self.loader)(count).unwrap_or_else(|e| {
            // grass: allow(panicky-lib, "documented panic: the streamed-workload loader contract (see method doc)")
            panic!(
                "streamed workload '{}' failed to load its first {count} jobs: {e}",
                self.label
            )
        })
    }
}

impl std::fmt::Debug for StreamedWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamedWorkload")
            .field("label", &self.label)
            .field("total_jobs", &self.total_jobs)
            .field("deadline_bound", &self.deadline_bound)
            .finish_non_exhaustive()
    }
}

impl JobSource for StreamedWorkload {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn jobs(&self, _seed: u64) -> Vec<JobSpec> {
        self.load_prefix(self.total_jobs)
    }

    fn warmup_jobs(&self, fraction: f64, _seed: u64) -> Vec<JobSpec> {
        let count = ((self.total_jobs as f64 * fraction).ceil() as usize)
            .max(4)
            .min(self.total_jobs);
        self.load_prefix(count)
    }

    fn deadline_bound(&self) -> bool {
        self.deadline_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BoundSpec;
    use crate::profiles::{Framework, TraceProfile};

    fn config() -> WorkloadConfig {
        WorkloadConfig::new(TraceProfile::facebook(Framework::Spark))
            .with_jobs(6)
            .with_bound(BoundSpec::paper_errors())
    }

    #[test]
    fn generated_source_matches_direct_generation() {
        let source = GeneratedWorkload::new(config());
        assert_eq!(source.jobs(3), generate(&config(), 3));
        assert_ne!(source.jobs(3), source.jobs(4));
        assert_eq!(source.label(), "Facebook-Spark");
    }

    #[test]
    fn recorded_source_ignores_the_seed() {
        let jobs = generate(&config(), 5);
        let source = RecordedWorkload::new("fixture", jobs.clone());
        assert_eq!(source.jobs(0), jobs);
        assert_eq!(source.jobs(123), jobs);
        assert_eq!(source.label(), "fixture");
        assert_eq!(source.jobs_ref(), &jobs[..]);
        assert_eq!(source.into_jobs(), jobs);
    }

    #[test]
    fn generated_warmup_matches_a_smaller_regeneration() {
        let source = GeneratedWorkload::new(config().with_jobs(10));
        // ceil(10 * 0.5) = 5 warm jobs, a prefix of the full workload.
        let warm = source.warmup_jobs(0.5, 9);
        assert_eq!(warm.len(), 5);
        assert_eq!(warm, source.jobs(9)[..5].to_vec());
        // Tiny workloads still warm with at least four jobs.
        let tiny = GeneratedWorkload::new(config().with_jobs(2));
        assert_eq!(tiny.warmup_jobs(0.5, 9).len(), 4);
    }

    #[test]
    fn recorded_warmup_is_a_prefix_of_the_recording() {
        let jobs = generate(&config(), 5);
        let source = RecordedWorkload::new("fixture", jobs.clone());
        let warm = source.warmup_jobs(0.5, 0);
        assert_eq!(warm.len(), 4); // ceil(6 * 0.5) = 3, raised to the minimum of 4
        assert_eq!(warm, jobs[..4].to_vec());
        // The prefix can never exceed the recording itself.
        assert_eq!(source.warmup_jobs(5.0, 0), jobs);
    }

    #[test]
    fn streamed_source_loads_only_the_prefix_it_needs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let jobs = generate(&config().with_jobs(10), 5);
        let largest_request = Arc::new(AtomicUsize::new(0));
        let watcher = Arc::clone(&largest_request);
        let backing = jobs.clone();
        let source = StreamedWorkload::new("streamed", jobs.len(), false, move |count| {
            watcher.fetch_max(count, Ordering::SeqCst);
            Ok(backing[..count.min(backing.len())].to_vec())
        });

        assert_eq!(source.total_jobs(), 10);
        assert_eq!(source.label(), "streamed");
        assert!(!source.deadline_bound());
        // ceil(10 * 0.5) = 5 warm jobs: the loader is asked for exactly 5.
        let warm = source.warmup_jobs(0.5, 0);
        assert_eq!(warm, jobs[..5].to_vec());
        assert_eq!(largest_request.load(Ordering::SeqCst), 5);
        // Prefix semantics match RecordedWorkload: min 4, capped at the total.
        assert_eq!(source.warmup_jobs(0.01, 0).len(), 4);
        assert_eq!(source.warmup_jobs(9.0, 0).len(), 10);
        // A full load asks for everything, and the seed is ignored.
        assert_eq!(source.jobs(123), jobs);
        assert_eq!(largest_request.load(Ordering::SeqCst), 10);
        let debug = format!("{source:?}");
        assert!(
            debug.contains("streamed") && debug.contains("10"),
            "{debug}"
        );
    }

    #[test]
    #[should_panic(expected = "failed to load")]
    fn streamed_source_panics_with_the_loader_error() {
        let source = StreamedWorkload::new("broken", 3, false, |_| Err("disk vanished".into()));
        source.jobs(0);
    }

    #[test]
    fn metric_kind_follows_the_bounds() {
        use crate::generator::BoundSpec;
        assert!(!GeneratedWorkload::new(config()).deadline_bound());
        let deadline_cfg = config().with_bound(BoundSpec::paper_deadlines());
        assert!(GeneratedWorkload::new(deadline_cfg).deadline_bound());
        assert!(!RecordedWorkload::new("e", generate(&config(), 5)).deadline_bound());
        assert!(RecordedWorkload::new("d", generate(&deadline_cfg, 5)).deadline_bound());
    }
}
