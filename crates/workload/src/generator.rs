//! Synthetic trace generation.
//!
//! Following the paper's methodology (§6.1): job arrival times, input sizes and task
//! counts come from the trace profile; the original jobs were exact computations, so
//! deadline and error bounds are assigned synthetically — the error tolerance is drawn
//! uniformly from 5–30%, and deadlines are set to an "ideal duration" (every task
//! replaced by the job's median task duration) plus a 2–20% slack factor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use grass_core::{Bound, JobSpec, Time};

use crate::profiles::TraceProfile;

/// How approximation bounds are assigned to generated jobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BoundSpec {
    /// Deadline-bound jobs with a slack factor drawn uniformly from the given range
    /// (fractions over the ideal duration; the paper uses 2%–20%).
    DeadlineRange {
        /// Smallest slack factor.
        min_factor: f64,
        /// Largest slack factor.
        max_factor: f64,
    },
    /// Deadline-bound jobs with a fixed slack factor (used for the per-deadline-bin
    /// breakdown of Figure 6a).
    DeadlineFactor(f64),
    /// Error-bound jobs with tolerance drawn uniformly from the given range (the
    /// paper uses 5%–30%).
    ErrorRange {
        /// Smallest error tolerance.
        min: f64,
        /// Largest error tolerance.
        max: f64,
    },
    /// Error-bound jobs with a fixed tolerance (Figure 6b bins).
    ErrorFixed(f64),
    /// Exact jobs (error bound of zero), §6.2.2's "exact computations".
    Exact,
}

impl BoundSpec {
    /// The paper's default deadline assignment: 2%–20% slack over the ideal duration.
    pub fn paper_deadlines() -> Self {
        BoundSpec::DeadlineRange {
            min_factor: 0.02,
            max_factor: 0.20,
        }
    }

    /// The paper's default error assignment: 5%–30% tolerance.
    pub fn paper_errors() -> Self {
        BoundSpec::ErrorRange {
            min: 0.05,
            max: 0.30,
        }
    }

    /// Whether this produces deadline-bound jobs.
    pub fn is_deadline(&self) -> bool {
        matches!(
            self,
            BoundSpec::DeadlineRange { .. } | BoundSpec::DeadlineFactor(_)
        )
    }
}

/// Full workload-generation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Trace profile (Facebook/Bing × Hadoop/Spark).
    pub profile: TraceProfile,
    /// Number of jobs to generate.
    pub num_jobs: usize,
    /// Bound assignment.
    pub bound: BoundSpec,
    /// Number of DAG stages per job (1 = input stage only). Intermediate stages get
    /// progressively fewer tasks, mirroring map-heavy analytics DAGs.
    pub dag_length: usize,
    /// Number of slots a job is assumed to get when calibrating its ideal duration
    /// (the paper calibrates deadlines from task durations and the job's wave width).
    pub expected_share: usize,
    /// Multiplier converting work into expected duration (the cluster's mean slowdown,
    /// machine heterogeneity × mean straggle), so deadlines account for the cluster
    /// the job will actually run on.
    pub duration_calibration: f64,
}

impl WorkloadConfig {
    /// Reasonable defaults for a given profile: 100 jobs, paper deadline assignment,
    /// single-stage jobs, 40-slot expected share.
    pub fn new(profile: TraceProfile) -> Self {
        WorkloadConfig {
            profile,
            num_jobs: 100,
            bound: BoundSpec::paper_deadlines(),
            dag_length: 1,
            expected_share: 40,
            duration_calibration: 1.3,
        }
    }

    /// Builder-style override of the bound spec.
    pub fn with_bound(mut self, bound: BoundSpec) -> Self {
        self.bound = bound;
        self
    }

    /// Builder-style override of the job count.
    pub fn with_jobs(mut self, num_jobs: usize) -> Self {
        self.num_jobs = num_jobs;
        self
    }

    /// Builder-style override of the DAG length.
    pub fn with_dag_length(mut self, dag_length: usize) -> Self {
        self.dag_length = dag_length.max(1);
        self
    }
}

/// Generate a synthetic trace.
pub fn generate(config: &WorkloadConfig, seed: u64) -> Vec<JobSpec> {
    JobGen::new(*config, seed).collect()
}

/// Streaming job generator: yields the workload of `generate(&config, seed)`
/// one [`JobSpec`] at a time, in the identical rng sequence — `generate` *is*
/// this iterator, collected. Lets GB-scale synthetic traces be written straight
/// to a streaming sink without ever materialising the job list.
#[derive(Debug, Clone)]
pub struct JobGen {
    config: WorkloadConfig,
    rng: StdRng,
    arrival: Time,
    next_id: u64,
}

impl JobGen {
    /// Start the generation sequence `generate(&config, seed)` would produce.
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        JobGen {
            config,
            rng: StdRng::seed_from_u64(seed),
            arrival: 0.0,
            next_id: 0,
        }
    }

    /// Jobs this iterator will yield in total (the config's job count).
    pub fn total_jobs(&self) -> usize {
        self.config.num_jobs
    }
}

impl Iterator for JobGen {
    type Item = JobSpec;

    fn next(&mut self) -> Option<JobSpec> {
        if self.next_id >= self.config.num_jobs as u64 {
            return None;
        }
        self.arrival += self.config.profile.interarrival.sample(&mut self.rng);
        let job = generate_job(&self.config, self.next_id, self.arrival, &mut self.rng);
        self.next_id += 1;
        Some(job)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.config.num_jobs - self.next_id as usize;
        (left, Some(left))
    }
}

/// Generate a single job of the workload at a given arrival time.
pub fn generate_job<R: Rng + ?Sized>(
    config: &WorkloadConfig,
    id: u64,
    arrival: Time,
    rng: &mut R,
) -> JobSpec {
    let input_tasks = sample_job_size(config, rng);
    let mut stage_work: Vec<Vec<f64>> = Vec::with_capacity(config.dag_length.max(1));
    let input_work: Vec<f64> = (0..input_tasks)
        .map(|_| config.profile.task_work.sample(rng))
        .collect();
    stage_work.push(input_work);
    for s in 1..config.dag_length.max(1) {
        // Intermediate stages shrink geometrically: reduce/join stages aggregate.
        let count = (input_tasks / (4 * s)).max(1);
        stage_work.push(
            (0..count)
                .map(|_| config.profile.task_work.sample(rng))
                .collect(),
        );
    }

    let bound = assign_bound(config, &stage_work, rng);
    if config.dag_length.max(1) == 1 {
        // The stage loop above always pushes at least one stage.
        JobSpec::single_stage(id, arrival, bound, stage_work.pop().unwrap_or_default())
    } else {
        JobSpec::multi_stage(id, arrival, bound, stage_work)
    }
}

fn sample_job_size<R: Rng + ?Sized>(config: &WorkloadConfig, rng: &mut R) -> usize {
    let mix = &config.profile.size_mix;
    let u: f64 = rng.gen_range(0.0..1.0);
    let (lo, hi) = if u < mix.small_fraction {
        mix.small_range
    } else if u < mix.small_fraction + mix.medium_fraction {
        mix.medium_range
    } else {
        mix.large_range
    };
    rng.gen_range(lo..=hi.max(lo))
}

/// The paper's "ideal duration" calibration: replace every task duration by the job's
/// median task duration and account for the waves the job will need on its expected
/// share of slots.
pub fn ideal_duration(config: &WorkloadConfig, stage_work: &[Vec<f64>]) -> Time {
    let share = config.expected_share.max(1) as f64;
    stage_work
        .iter()
        .filter(|stage| !stage.is_empty())
        .map(|stage| {
            let mut sorted = stage.clone();
            sorted.sort_by(f64::total_cmp);
            let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
            let waves = (stage.len() as f64 / share).ceil();
            median * waves * config.duration_calibration
        })
        .sum()
}

fn assign_bound<R: Rng + ?Sized>(
    config: &WorkloadConfig,
    stage_work: &[Vec<f64>],
    rng: &mut R,
) -> Bound {
    match config.bound {
        BoundSpec::DeadlineRange {
            min_factor,
            max_factor,
        } => {
            let factor = rng.gen_range(min_factor..=max_factor.max(min_factor));
            Bound::Deadline(ideal_duration(config, stage_work) * (1.0 + factor))
        }
        BoundSpec::DeadlineFactor(factor) => {
            Bound::Deadline(ideal_duration(config, stage_work) * (1.0 + factor.max(0.0)))
        }
        BoundSpec::ErrorRange { min, max } => Bound::Error(rng.gen_range(min..=max.max(min))),
        BoundSpec::ErrorFixed(e) => Bound::Error(e.clamp(0.0, 0.999)),
        BoundSpec::Exact => Bound::EXACT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{Framework, TraceProfile};
    use grass_core::JobSizeBin;

    fn config() -> WorkloadConfig {
        WorkloadConfig::new(TraceProfile::facebook(Framework::Hadoop)).with_jobs(300)
    }

    #[test]
    fn generated_jobs_are_valid_and_ordered_by_arrival() {
        let jobs = generate(&config(), 1);
        assert_eq!(jobs.len(), 300);
        let mut last_arrival = 0.0;
        for job in &jobs {
            assert!(job.validate().is_ok());
            assert!(job.arrival >= last_arrival);
            last_arrival = job.arrival;
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&config(), 42);
        let b = generate(&config(), 42);
        assert_eq!(a, b);
        let c = generate(&config(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn streaming_generation_matches_eager_generation() {
        let gen = JobGen::new(config(), 42);
        assert_eq!(gen.total_jobs(), 300);
        assert_eq!(gen.size_hint(), (300, Some(300)));
        let streamed: Vec<JobSpec> = gen.collect();
        assert_eq!(streamed, generate(&config(), 42));
        // A prefix pull leaves the rest unconsumed but identical in sequence.
        let prefix: Vec<JobSpec> = JobGen::new(config(), 42).take(7).collect();
        assert_eq!(prefix, streamed[..7].to_vec());
    }

    #[test]
    fn size_mix_covers_all_three_bins() {
        let jobs = generate(&config(), 2);
        let mut counts = [0usize; 3];
        for job in &jobs {
            match JobSizeBin::of(job.input_tasks()) {
                JobSizeBin::Small => counts[0] += 1,
                JobSizeBin::Medium => counts[1] += 1,
                JobSizeBin::Large => counts[2] += 1,
            }
        }
        assert!(counts.iter().all(|&c| c > 0), "bins {counts:?}");
        // Small jobs dominate, as in the Facebook trace.
        assert!(counts[0] > counts[2]);
    }

    #[test]
    fn deadline_bounds_exceed_ideal_duration() {
        let cfg = config().with_bound(BoundSpec::paper_deadlines());
        let jobs = generate(&cfg, 3);
        for job in jobs {
            match job.bound {
                Bound::Deadline(d) => {
                    let work: Vec<Vec<f64>> = vec![job.tasks.iter().map(|t| t.work).collect()];
                    let ideal = ideal_duration(&cfg, &work);
                    assert!(d >= ideal * 1.02 - 1e-9);
                    assert!(d <= ideal * 1.20 + 1e-9);
                }
                _ => panic!("expected deadline bound"),
            }
        }
    }

    #[test]
    fn error_bounds_stay_in_configured_range() {
        let cfg = config().with_bound(BoundSpec::paper_errors());
        let jobs = generate(&cfg, 4);
        for job in jobs {
            match job.bound {
                Bound::Error(e) => assert!((0.05..=0.30).contains(&e)),
                _ => panic!("expected error bound"),
            }
        }
    }

    #[test]
    fn exact_bound_spec_produces_exact_jobs() {
        let cfg = config().with_bound(BoundSpec::Exact);
        let jobs = generate(&cfg, 5);
        assert!(jobs.iter().all(|j| j.bound.is_exact()));
    }

    #[test]
    fn fixed_bound_specs_are_honoured() {
        let cfg = config().with_bound(BoundSpec::ErrorFixed(0.1));
        assert!(generate(&cfg, 6)
            .iter()
            .all(|j| matches!(j.bound, Bound::Error(e) if (e - 0.1).abs() < 1e-12)));
        let cfg = config()
            .with_bound(BoundSpec::DeadlineFactor(0.1))
            .with_jobs(20);
        assert!(generate(&cfg, 7).iter().all(|j| j.bound.is_deadline()));
    }

    #[test]
    fn dag_jobs_have_shrinking_stages() {
        let cfg = config().with_dag_length(4).with_jobs(30);
        let jobs = generate(&cfg, 8);
        for job in jobs {
            assert_eq!(job.dag_length(), 4);
            for s in 1..job.stages.len() {
                assert!(job.stages[s].task_count <= job.stages[s - 1].task_count.max(1));
            }
            assert!(job.validate().is_ok());
        }
    }

    #[test]
    fn ideal_duration_scales_with_waves() {
        let cfg = WorkloadConfig {
            expected_share: 10,
            duration_calibration: 1.0,
            ..config()
        };
        let one_wave = ideal_duration(&cfg, &[vec![2.0; 10]]);
        let three_waves = ideal_duration(&cfg, &[vec![2.0; 30]]);
        assert!((one_wave - 2.0).abs() < 1e-12);
        assert!((three_waves - 6.0).abs() < 1e-12);
    }

    #[test]
    fn bound_spec_helpers() {
        assert!(BoundSpec::paper_deadlines().is_deadline());
        assert!(BoundSpec::DeadlineFactor(0.1).is_deadline());
        assert!(!BoundSpec::paper_errors().is_deadline());
        assert!(!BoundSpec::Exact.is_deadline());
    }
}
