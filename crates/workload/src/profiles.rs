//! Trace profiles calibrated to the workloads of the paper's evaluation (§6.1,
//! Table 1): Facebook's production Hadoop cluster (Hive scripts, October 2012) and
//! Microsoft Bing's production Dryad cluster (Scope scripts, May–December 2011).
//!
//! The original traces are proprietary, so the profiles below encode the published
//! statistics that matter for GRASS — heavy-tailed (β ≈ 1.259) task durations, the
//! small/medium/large job mix, shorter task durations for the in-memory (Spark-like)
//! prototype, and job inter-arrival pressure that keeps the cluster multi-waved — and
//! the generator synthesises traces from them.

use serde::{Deserialize, Serialize};

use crate::distributions::{InterArrival, WorkDistribution};

/// Which execution framework a profile models. Spark tasks are roughly an order of
/// magnitude shorter than Hadoop tasks because inputs are in memory (§5, §6.2.1),
/// which makes stragglers relatively more damaging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Framework {
    /// Disk-based batch framework (Hadoop prototype).
    Hadoop,
    /// In-memory interactive framework (Spark prototype).
    Spark,
}

impl Framework {
    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            Framework::Hadoop => "Hadoop",
            Framework::Spark => "Spark",
        }
    }
}

/// Which production trace a profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceSource {
    /// Facebook's Hadoop/Hive cluster.
    Facebook,
    /// Microsoft Bing's Dryad/Scope cluster.
    Bing,
}

impl TraceSource {
    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            TraceSource::Facebook => "Facebook",
            TraceSource::Bing => "Bing",
        }
    }
}

/// Job-size mixture: the probability of drawing a job from each of the paper's three
/// size bins and the task-count range within the bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeMix {
    /// Probability of a small job (< 50 tasks).
    pub small_fraction: f64,
    /// Probability of a medium job (51–500 tasks).
    pub medium_fraction: f64,
    /// Task-count range for small jobs.
    pub small_range: (usize, usize),
    /// Task-count range for medium jobs.
    pub medium_range: (usize, usize),
    /// Task-count range for large jobs (> 500 tasks).
    pub large_range: (usize, usize),
}

impl SizeMix {
    /// Probability of a large job.
    pub fn large_fraction(&self) -> f64 {
        (1.0 - self.small_fraction - self.medium_fraction).max(0.0)
    }
}

/// A synthetic-trace profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Which production trace this models.
    pub source: TraceSource,
    /// Which framework the jobs run on.
    pub framework: Framework,
    /// Distribution of per-task work (seconds of unit-speed slot time).
    pub task_work: WorkDistribution,
    /// Job size mixture.
    pub size_mix: SizeMix,
    /// Job inter-arrival process.
    pub interarrival: InterArrival,
}

impl TraceProfile {
    /// Facebook-like workload.
    ///
    /// The Facebook trace is dominated by small Hive jobs with a long tail of very
    /// large jobs; Hadoop map tasks run tens of seconds.
    pub fn facebook(framework: Framework) -> Self {
        TraceProfile {
            source: TraceSource::Facebook,
            framework,
            task_work: Self::task_work_for(framework),
            size_mix: SizeMix {
                small_fraction: 0.55,
                medium_fraction: 0.33,
                small_range: (5, 49),
                medium_range: (51, 500),
                large_range: (501, 1200),
            },
            interarrival: Self::interarrival_for(framework, TraceSource::Facebook),
        }
    }

    /// Bing-like workload: fewer, somewhat larger Scope jobs.
    pub fn bing(framework: Framework) -> Self {
        TraceProfile {
            source: TraceSource::Bing,
            framework,
            task_work: Self::task_work_for(framework),
            size_mix: SizeMix {
                small_fraction: 0.45,
                medium_fraction: 0.38,
                small_range: (5, 49),
                medium_range: (51, 500),
                large_range: (501, 1500),
            },
            interarrival: Self::interarrival_for(framework, TraceSource::Bing),
        }
    }

    fn task_work_for(framework: Framework) -> WorkDistribution {
        match framework {
            // Hadoop map tasks: median ≈ 17s with a β = 1.259 tail.
            Framework::Hadoop => WorkDistribution::paper_pareto(10.0),
            // Spark tasks are roughly an order of magnitude shorter (in-memory input).
            Framework::Spark => WorkDistribution::paper_pareto(1.0),
        }
    }

    fn interarrival_for(framework: Framework, source: TraceSource) -> InterArrival {
        // Chosen so a 200-slot cluster stays 60–85% utilised with moderate queueing:
        // the multi-waved, contended regime the paper targets.
        let base = match framework {
            Framework::Hadoop => 55.0,
            Framework::Spark => 6.0,
        };
        let factor = match source {
            TraceSource::Facebook => 1.0,
            TraceSource::Bing => 1.2,
        };
        InterArrival {
            mean: base * factor,
        }
    }

    /// Display name such as "Facebook-Hadoop".
    pub fn label(&self) -> String {
        format!("{}-{}", self.source.label(), self.framework.label())
    }
}

/// Row of the paper's Table 1: provenance details of each production trace, kept so
/// the reproduction can print the same table alongside the synthetic-generator
/// configuration that stands in for the real data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Trace name.
    pub name: &'static str,
    /// Collection dates.
    pub dates: &'static str,
    /// Execution framework.
    pub framework: &'static str,
    /// Scripting layer.
    pub script: &'static str,
    /// Number of jobs in the original trace.
    pub jobs: &'static str,
    /// Cluster size of the original deployment.
    pub cluster_size: &'static str,
    /// Straggler-mitigation baseline deployed in that cluster.
    pub straggler_mitigation: &'static str,
}

/// The two rows of Table 1.
pub fn table1_rows() -> Vec<TraceSummary> {
    vec![
        TraceSummary {
            name: "Facebook",
            dates: "Oct 2012",
            framework: "Hadoop",
            script: "Hive",
            jobs: "575K",
            cluster_size: "3,500",
            straggler_mitigation: "LATE",
        },
        TraceSummary {
            name: "Microsoft Bing",
            dates: "May-Dec 2011",
            framework: "Dryad",
            script: "Scope",
            jobs: "500K",
            cluster_size: "Thousands",
            straggler_mitigation: "Mantri",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_both_sources_and_frameworks() {
        for source in [TraceSource::Facebook, TraceSource::Bing] {
            for framework in [Framework::Hadoop, Framework::Spark] {
                let p = match source {
                    TraceSource::Facebook => TraceProfile::facebook(framework),
                    TraceSource::Bing => TraceProfile::bing(framework),
                };
                assert_eq!(p.source, source);
                assert_eq!(p.framework, framework);
                let frac_sum = p.size_mix.small_fraction
                    + p.size_mix.medium_fraction
                    + p.size_mix.large_fraction();
                assert!((frac_sum - 1.0).abs() < 1e-12);
                assert!(p.interarrival.mean > 0.0);
            }
        }
    }

    #[test]
    fn spark_tasks_are_shorter_than_hadoop_tasks() {
        let hadoop = TraceProfile::facebook(Framework::Hadoop);
        let spark = TraceProfile::facebook(Framework::Spark);
        assert!(hadoop.task_work.mean() > 5.0 * spark.task_work.mean());
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(
            TraceProfile::facebook(Framework::Hadoop).label(),
            "Facebook-Hadoop"
        );
        assert_eq!(TraceProfile::bing(Framework::Spark).label(), "Bing-Spark");
        assert_eq!(Framework::Hadoop.label(), "Hadoop");
        assert_eq!(TraceSource::Bing.label(), "Bing");
    }

    #[test]
    fn table1_matches_paper_values() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "Facebook");
        assert_eq!(rows[0].jobs, "575K");
        assert_eq!(rows[0].straggler_mitigation, "LATE");
        assert_eq!(rows[1].framework, "Dryad");
        assert_eq!(rows[1].straggler_mitigation, "Mantri");
    }
}
