//! # grass-workload
//!
//! Synthetic workload / trace generation for the GRASS (NSDI '14) reproduction.
//!
//! The paper's evaluation replays production traces from Facebook (Hadoop/Hive) and
//! Microsoft Bing (Dryad/Scope). Those traces are proprietary, so this crate generates
//! synthetic traces calibrated to the statistics the paper publishes: Pareto
//! (β ≈ 1.259) task-duration tails, the small/medium/large job-size mix, much shorter
//! tasks for the Spark prototype, and the §6.1 methodology for assigning deadline and
//! error bounds to jobs that were originally exact.
//!
//! ```
//! use grass_workload::{generate, BoundSpec, Framework, TraceProfile, WorkloadConfig};
//!
//! let profile = TraceProfile::facebook(Framework::Spark);
//! let config = WorkloadConfig::new(profile)
//!     .with_jobs(20)
//!     .with_bound(BoundSpec::paper_errors());
//! let jobs = generate(&config, 7);
//! assert_eq!(jobs.len(), 20);
//! ```

pub mod distributions;
pub mod generator;
pub mod profiles;
pub mod source;

pub use distributions::{InterArrival, WorkDistribution};
pub use generator::{generate, generate_job, ideal_duration, BoundSpec, JobGen, WorkloadConfig};
pub use profiles::{table1_rows, Framework, SizeMix, TraceProfile, TraceSource, TraceSummary};
pub use source::{GeneratedWorkload, JobSource, RecordedWorkload, StreamedWorkload};
