//! Random distributions used by the workload generator.
//!
//! The paper's traces show task durations with a Pareto (power-law) tail of shape
//! β ≈ 1.259 (Figure 3, a Hill plot), which is the single most important statistical
//! property behind GRASS's gains: with β < 2 the durations have infinite variance and
//! speculation pays off (Guideline 1). The generator therefore needs heavy-tailed
//! samplers with known closed-form moments so tests can verify calibration.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over positive task-work values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkDistribution {
    /// Every task has the same work.
    Constant(f64),
    /// Uniform between `min` and `max`.
    Uniform {
        /// Smallest work value.
        min: f64,
        /// Largest work value.
        max: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean work.
        mean: f64,
    },
    /// Pareto with scale `xm` (minimum value) and shape `beta`, truncated at
    /// `cap × xm` to keep individual tasks from dominating a whole simulation run.
    BoundedPareto {
        /// Scale (minimum value).
        xm: f64,
        /// Tail shape; the paper's traces show β ≈ 1.259.
        beta: f64,
        /// Truncation point expressed as a multiple of `xm`.
        cap: f64,
    },
}

impl WorkDistribution {
    /// Pareto-tailed distribution calibrated to the paper's Hill estimate
    /// (β = 1.259), with minimum `xm` and a 100× cap.
    pub fn paper_pareto(xm: f64) -> Self {
        WorkDistribution::BoundedPareto {
            xm,
            beta: 1.259,
            cap: 100.0,
        }
    }

    /// Draw one work value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            WorkDistribution::Constant(v) => v.max(1e-9),
            WorkDistribution::Uniform { min, max } => {
                let lo = min.max(1e-9);
                let hi = max.max(lo);
                rng.gen_range(lo..=hi)
            }
            WorkDistribution::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -mean.max(1e-9) * u.ln()
            }
            WorkDistribution::BoundedPareto { xm, beta, cap } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let raw = xm.max(1e-9) * u.powf(-1.0 / beta.max(0.05));
                raw.min(xm.max(1e-9) * cap.max(1.0))
            }
        }
    }

    /// Expected value of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            WorkDistribution::Constant(v) => v.max(1e-9),
            WorkDistribution::Uniform { min, max } => 0.5 * (min.max(1e-9) + max.max(min)),
            WorkDistribution::Exponential { mean } => mean.max(1e-9),
            WorkDistribution::BoundedPareto { xm, beta, cap } => {
                bounded_pareto_mean(xm.max(1e-9), beta.max(0.05), cap.max(1.0))
            }
        }
    }

    /// Median of the distribution.
    pub fn median(&self) -> f64 {
        match *self {
            WorkDistribution::Constant(v) => v.max(1e-9),
            WorkDistribution::Uniform { min, max } => 0.5 * (min.max(1e-9) + max.max(min)),
            WorkDistribution::Exponential { mean } => mean.max(1e-9) * std::f64::consts::LN_2,
            WorkDistribution::BoundedPareto { xm, beta, .. } => {
                // Median of an (uncapped) Pareto: xm * 2^(1/beta); the cap is far above
                // the median for every configuration we use.
                xm.max(1e-9) * 2f64.powf(1.0 / beta.max(0.05))
            }
        }
    }
}

/// Mean of a Pareto(`xm`, `beta`) truncated (censored) at `cap × xm`:
/// `E[min(X, c)] = xm·(beta − (xm/c)^(beta−1)) / (beta − 1)` for β ≠ 1,
/// `xm·(1 + ln(c/xm))` for β = 1.
fn bounded_pareto_mean(xm: f64, beta: f64, cap: f64) -> f64 {
    let c = xm * cap;
    if (beta - 1.0).abs() < 1e-9 {
        xm * (1.0 + (c / xm).ln())
    } else {
        xm * (beta - (xm / c).powf(beta - 1.0)) / (beta - 1.0)
    }
}

/// Exponential inter-arrival sampler (Poisson arrival process).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterArrival {
    /// Mean inter-arrival time in seconds. A value of 0 makes all jobs arrive at once.
    pub mean: f64,
}

impl InterArrival {
    /// Draw one inter-arrival gap.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -self.mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean(dist: &WorkDistribution, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_distribution() {
        let d = WorkDistribution::Constant(3.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng), 3.0);
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.median(), 3.0);
    }

    #[test]
    fn uniform_distribution_moments() {
        let d = WorkDistribution::Uniform { min: 2.0, max: 6.0 };
        assert_eq!(d.mean(), 4.0);
        assert!((empirical_mean(&d, 50_000, 2) - 4.0).abs() < 0.05);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((2.0..=6.0).contains(&v));
        }
    }

    #[test]
    fn exponential_distribution_moments() {
        let d = WorkDistribution::Exponential { mean: 5.0 };
        assert_eq!(d.mean(), 5.0);
        assert!((d.median() - 5.0 * std::f64::consts::LN_2).abs() < 1e-12);
        assert!((empirical_mean(&d, 200_000, 4) - 5.0).abs() < 0.1);
    }

    #[test]
    fn bounded_pareto_moments_match_closed_form() {
        let d = WorkDistribution::BoundedPareto {
            xm: 2.0,
            beta: 1.5,
            cap: 50.0,
        };
        let analytic = d.mean();
        let empirical = empirical_mean(&d, 400_000, 5);
        assert!(
            (empirical - analytic).abs() / analytic < 0.02,
            "empirical {empirical} vs analytic {analytic}"
        );
        // Samples respect the floor and cap.
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!(v >= 2.0 - 1e-12);
            assert!(v <= 100.0 + 1e-12);
        }
    }

    #[test]
    fn paper_pareto_is_heavy_tailed() {
        let d = WorkDistribution::paper_pareto(1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let p999 = samples[(samples.len() as f64 * 0.999) as usize];
        assert!(
            p999 / median > 20.0,
            "99.9th percentile should dwarf the median for a heavy tail (ratio {})",
            p999 / median
        );
        assert!((d.median() - 2f64.powf(1.0 / 1.259)).abs() < 1e-9);
    }

    #[test]
    fn pareto_mean_with_shape_one() {
        let d = WorkDistribution::BoundedPareto {
            xm: 1.0,
            beta: 1.0,
            cap: std::f64::consts::E,
        };
        assert!((d.mean() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn interarrival_mean_and_degenerate_case() {
        let ia = InterArrival { mean: 4.0 };
        let mut rng = StdRng::seed_from_u64(8);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| ia.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1);
        let zero = InterArrival { mean: 0.0 };
        assert_eq!(zero.sample(&mut rng), 0.0);
    }
}
