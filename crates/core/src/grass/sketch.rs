//! Mergeable log-spaced quantile sketch for task-completion rates.
//!
//! The sketched layer of [`crate::grass::SampleStore`] keeps, per partition, a
//! fixed-size histogram of observed rates on a base-2 logarithmic grid. The sketch
//! supports three operations — [`insert`](QuantileSketch::insert),
//! [`merge`](QuantileSketch::merge) and [`quantile`](QuantileSketch::quantile) — and
//! all of them are exactly deterministic: bucket indices come straight from the IEEE
//! exponent bits (no libm), counts are integers, and merge is element-wise `u64`
//! addition, which makes it exactly commutative *and* associative. That is what lets
//! fleet workers exchange sketches in any order and still agree bit-for-bit.
//!
//! Resolution: one bucket per power of two over `[2^-32, 2^31]`, i.e. any quantile
//! estimate is within a factor of 2 of a true order statistic. Rates outside the
//! range clamp to the edge buckets; non-positive rates land in bucket 0.

use serde::{Deserialize, Serialize};

/// Number of log-spaced buckets; covers rate exponents `-32..=31`.
pub const SKETCH_BUCKETS: usize = 64;

/// Exponent of the smallest bucket (`2^SKETCH_MIN_EXP` is the left edge of bucket 0).
const SKETCH_MIN_EXP: i32 = -32;

/// `floor(log2(x))` for finite positive `x`, read straight off the exponent bits so
/// the result is exact and identical on every platform (no libm rounding).
pub(crate) fn floor_log2(x: f64) -> i32 {
    debug_assert!(x > 0.0 && x.is_finite());
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32;
    if exp == 0 {
        // Subnormal: below 2^-1022, far under the sketch floor; clamp hard.
        -1075
    } else {
        exp - 1023
    }
}

/// Exact power of two `2^e` built from the exponent bits (for `e` in normal range).
pub(crate) fn pow2(e: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&e));
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// Fixed-size, mergeable histogram of rates on a base-2 log grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantileSketch {
    counts: [u64; SKETCH_BUCKETS],
    total: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch {
            counts: [0; SKETCH_BUCKETS],
            total: 0,
        }
    }
}

impl QuantileSketch {
    /// Empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a rate. Non-positive and non-finite-negative rates map to
    /// bucket 0; rates beyond the grid clamp to the edges.
    pub fn bucket_of(rate: f64) -> usize {
        if rate <= 0.0 || !rate.is_finite() {
            return 0;
        }
        (floor_log2(rate) - SKETCH_MIN_EXP).clamp(0, SKETCH_BUCKETS as i32 - 1) as usize
    }

    /// Representative rate for a bucket: the geometric midpoint `1.5 · 2^e` of its
    /// `[2^e, 2^(e+1))` span.
    pub fn bucket_value(bucket: usize) -> f64 {
        debug_assert!(bucket < SKETCH_BUCKETS);
        1.5 * pow2(bucket as i32 + SKETCH_MIN_EXP)
    }

    /// Record one rate observation.
    pub fn insert(&mut self, rate: f64) {
        // grass: allow(panicky-lib, "bucket_of clamps to 0..SKETCH_BUCKETS")
        self.counts[Self::bucket_of(rate)] += 1;
        self.total += 1;
    }

    /// Fold another sketch into this one (element-wise count addition — exactly
    /// commutative and associative).
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Total observations recorded (including merged-in ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Approximate `q`-quantile of the recorded rates (`q` clamped to `[0, 1]`), as
    /// the representative value of the bucket containing that order statistic.
    /// Returns `None` on an empty sketch.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the order statistic we want, in 1..=total.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(Self::bucket_value(bucket));
            }
        }
        // Unreachable while counts sum to total; be safe rather than panic.
        None
    }

    /// Non-empty buckets as `(bucket index, count)` pairs in ascending index order —
    /// the canonical wire form used by the store snapshot codec.
    pub fn entries(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Add `count` observations directly into `bucket` (snapshot decode path).
    pub fn add_bucket(&mut self, bucket: usize, count: u64) {
        if bucket < SKETCH_BUCKETS {
            // grass: allow(panicky-lib, "guarded by the bounds check one line up")
            self.counts[bucket] += count;
            self.total += count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_log2_matches_definition_on_powers_and_neighbours() {
        for e in -30..30 {
            let p = pow2(e);
            assert_eq!(floor_log2(p), e, "2^{e}");
            assert_eq!(floor_log2(p * 1.5), e, "1.5·2^{e}");
            assert_eq!(floor_log2(p * 1.999), e, "1.999·2^{e}");
        }
        assert_eq!(floor_log2(1.0), 0);
        assert_eq!(floor_log2(0.5), -1);
        assert_eq!(floor_log2(3.0), 1);
    }

    #[test]
    fn bucket_edges_and_clamping() {
        assert_eq!(QuantileSketch::bucket_of(0.0), 0);
        assert_eq!(QuantileSketch::bucket_of(-4.0), 0);
        assert_eq!(QuantileSketch::bucket_of(f64::NAN), 0);
        assert_eq!(QuantileSketch::bucket_of(f64::INFINITY), 0);
        assert_eq!(QuantileSketch::bucket_of(1.0), 32);
        assert_eq!(QuantileSketch::bucket_of(2.0), 33);
        assert_eq!(QuantileSketch::bucket_of(0.5), 31);
        // Far beyond both edges clamps instead of indexing out of range.
        assert_eq!(QuantileSketch::bucket_of(1e-200), 0);
        assert_eq!(QuantileSketch::bucket_of(1e200), SKETCH_BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_the_histogram() {
        let mut sketch = QuantileSketch::new();
        assert_eq!(sketch.quantile(0.5), None);
        for _ in 0..10 {
            sketch.insert(1.0); // bucket 32
        }
        for _ in 0..10 {
            sketch.insert(4.0); // bucket 34
        }
        assert_eq!(sketch.total(), 20);
        let median = sketch.quantile(0.5).unwrap();
        assert_eq!(median, QuantileSketch::bucket_value(32));
        let p95 = sketch.quantile(0.95).unwrap();
        assert_eq!(p95, QuantileSketch::bucket_value(34));
        // Bucket value is within 2x of the true rate it represents.
        assert!((1.0..2.0).contains(&median));
    }

    #[test]
    fn merge_is_commutative_and_associative_bitwise() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut c = QuantileSketch::new();
        for i in 0..50 {
            a.insert(0.25 * (1 + i % 7) as f64);
            b.insert(2.0 * (1 + i % 5) as f64);
            c.insert(0.01 * (1 + i % 3) as f64);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);

        // Identity.
        let mut with_empty = a.clone();
        with_empty.merge(&QuantileSketch::new());
        assert_eq!(with_empty, a);
    }

    #[test]
    fn entries_round_trip_through_add_bucket() {
        let mut sketch = QuantileSketch::new();
        for rate in [0.1, 0.1, 3.0, 700.0] {
            sketch.insert(rate);
        }
        let mut rebuilt = QuantileSketch::new();
        for (bucket, count) in sketch.entries() {
            rebuilt.add_bucket(bucket, count);
        }
        assert_eq!(rebuilt, sketch);
        assert_eq!(rebuilt.total(), 4);
    }
}
