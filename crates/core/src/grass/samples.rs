//! GRASS's shared sample store (§4.1–4.2 of the paper).
//!
//! GRASS learns *when to switch* from RAS to GS by comparing the performance of past
//! jobs that ran **pure GS** or **pure RAS** throughout (those samples are produced by
//! the ξ-perturbation in [`crate::grass::GrassFactory`]). Samples are bucketed by job
//! size and annotated with the three factors the paper identifies (§4.1):
//!
//! 1. the approximation bound (remaining deadline / tasks still needed),
//! 2. cluster utilisation,
//! 3. estimation accuracy of `trem` / `tnew`.
//!
//! A query asks: "for a job of roughly this size, under these cluster conditions, how
//! fast does GS (or RAS) complete tasks?" The answer is a *task completion rate*
//! (tasks per second), estimated as a similarity-weighted average over stored samples.
//! Which factors participate in the similarity weighting is controlled by a
//! [`FactorSet`], which is how the Best-1 / Best-2 ablations of §6.3.2 are expressed.
//!
//! # Two-layer layout
//!
//! Internally the store is **partitioned by `(BoundKind, SpeculationMode)`** — the
//! exact pair every prediction filters on — so `predict_rate` touches only the
//! relevant partition instead of scanning the whole history. Within a partition,
//! samples keep their global insertion order (each carries a global sequence number),
//! so the float summation order of the similarity-weighted mean is *identical* to the
//! historical whole-vector scan and predictions are bit-for-bit unchanged. Eviction
//! at the retention cap pops the globally oldest sample (smallest sequence number
//! across partition fronts), reproducing the historical FIFO exactly — but as an O(1)
//! `VecDeque::pop_front` instead of an O(cap) front drain.
//!
//! On top of the exact partitions the store always maintains a **sketched layer**:
//! per-partition binned aggregates keyed by size bucket × coarse bound / utilisation /
//! accuracy bins, each bin holding `(count, Σw, Σw·rate)`, plus a mergeable
//! [`QuantileSketch`] of observed rates. A store built with
//! [`SampleStore::sketched`] answers predictions *from the bins* — O(bins) per query
//! and O(1) memory per partition regardless of job count — while the default exact
//! store uses the sketch layer only for snapshots, merging and rate percentiles.
//! [`SampleStore::snapshot`] / [`SampleStore::merge`] exchange the sketched layer
//! between stores (e.g. fleet workers), never raw samples; see
//! `docs/sample-store.md` for the full contract.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::bins::SizeBucket;
use crate::grass::sketch::{floor_log2, pow2, QuantileSketch};
use crate::job::Bound;
use crate::outcome::JobOutcome;
use crate::speculation::SpeculationMode;

/// Which of the three learning factors participate in sample matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FactorSet {
    /// Match on the approximation bound (remaining deadline / tasks needed).
    pub bound: bool,
    /// Match on cluster utilisation.
    pub utilization: bool,
    /// Match on estimation accuracy.
    pub accuracy: bool,
}

impl FactorSet {
    /// All three factors — full GRASS.
    pub fn all() -> Self {
        FactorSet {
            bound: true,
            utilization: true,
            accuracy: true,
        }
    }

    /// Only the approximation bound (the paper's "Best-1" configuration: when a single
    /// factor is used, the bound gives the best results).
    pub fn best_one() -> Self {
        FactorSet {
            bound: true,
            utilization: false,
            accuracy: false,
        }
    }

    /// Bound + cluster utilisation (the paper's "Best-2" for the Hadoop prototype).
    pub fn best_two_utilization() -> Self {
        FactorSet {
            bound: true,
            utilization: true,
            accuracy: false,
        }
    }

    /// Bound + estimation accuracy (the paper's "Best-2" for the Spark prototype).
    pub fn best_two_accuracy() -> Self {
        FactorSet {
            bound: true,
            utilization: false,
            accuracy: true,
        }
    }

    /// Number of active factors.
    pub fn count(&self) -> usize {
        usize::from(self.bound) + usize::from(self.utilization) + usize::from(self.accuracy)
    }
}

impl Default for FactorSet {
    fn default() -> Self {
        FactorSet::all()
    }
}

/// Whether a sample (or query) concerns a deadline-bound or error-bound job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundKind {
    /// Deadline-bound: performance is "input tasks completed within the deadline".
    Deadline,
    /// Error-bound: performance is "seconds to complete the needed tasks".
    Error,
}

impl BoundKind {
    /// Classify a [`Bound`].
    pub fn of(bound: &Bound) -> Self {
        match bound {
            Bound::Deadline(_) => BoundKind::Deadline,
            Bound::Error(_) => BoundKind::Error,
        }
    }
}

/// One recorded sample: a job that ran pure GS or pure RAS throughout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Which algorithm the job ran.
    pub mode: SpeculationMode,
    /// Deadline- or error-bound.
    pub kind: BoundKind,
    /// Geometric size bucket of the job.
    pub size_bucket: SizeBucket,
    /// The bound value: deadline seconds (deadline jobs) or number of tasks that had
    /// to complete (error jobs).
    pub bound_value: f64,
    /// The measured performance: input tasks completed (deadline jobs) or job duration
    /// in seconds (error jobs).
    pub performance: f64,
    /// Average cluster utilisation observed while the job ran, in `[0, 1]`.
    pub utilization: f64,
    /// Average measured estimation accuracy while the job ran, in `[0, 1]`.
    pub accuracy: f64,
}

impl Sample {
    /// Task completion rate implied by this sample, in tasks per second.
    ///
    /// * Deadline jobs: `completed tasks / deadline`.
    /// * Error jobs: `tasks needed / duration`.
    pub fn rate(&self) -> f64 {
        match self.kind {
            BoundKind::Deadline => {
                if self.bound_value <= 0.0 {
                    0.0
                } else {
                    self.performance / self.bound_value
                }
            }
            BoundKind::Error => {
                if self.performance <= 0.0 {
                    0.0
                } else {
                    self.bound_value / self.performance
                }
            }
        }
    }

    /// Build a sample from a completed job outcome. Returns `None` for outcomes that
    /// carry no usable signal (zero tasks, zero duration).
    pub fn from_outcome(mode: SpeculationMode, outcome: &JobOutcome) -> Option<Sample> {
        let kind = BoundKind::of(&outcome.bound);
        let (bound_value, performance) = match outcome.bound {
            Bound::Deadline(d) => {
                if d <= 0.0 {
                    return None;
                }
                (d, outcome.completed_input_tasks as f64)
            }
            Bound::Error(e) => {
                let needed = Bound::Error(e).tasks_needed(outcome.input_tasks);
                let duration = outcome.duration();
                if needed == 0 || duration <= 0.0 {
                    return None;
                }
                (needed as f64, duration)
            }
        };
        Some(Sample {
            mode,
            kind,
            size_bucket: SizeBucket::of(outcome.input_tasks),
            bound_value,
            performance,
            utilization: outcome.avg_cluster_utilization,
            accuracy: outcome.avg_estimation_accuracy,
        })
    }
}

/// Query context for a rate prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryContext {
    /// Deadline- or error-bound job.
    pub kind: BoundKind,
    /// Size bucket of the querying job.
    pub size_bucket: SizeBucket,
    /// The bound value being considered (remaining deadline seconds / tasks still
    /// needed for the segment in question).
    pub bound_value: f64,
    /// Current cluster utilisation.
    pub utilization: f64,
    /// Current measured estimation accuracy.
    pub accuracy: f64,
}

/// O(1) snapshot of the store's per-(kind, mode) sample counts, tagged with the
/// store generation it was taken at. Taken under a single lock acquisition, so the
/// counts are mutually consistent and the generation identifies exactly which store
/// state they describe — a [`crate::grass::SwitchScanCache`] holds one of these and
/// reuses it for every switching evaluation until the generation moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreCounts {
    /// [`SampleStore::generation`] at snapshot time.
    pub generation: u64,
    /// `(GS, RAS)` sample counts for deadline-bound samples.
    pub deadline: (usize, usize),
    /// `(GS, RAS)` sample counts for error-bound samples.
    pub error: (usize, usize),
}

impl StoreCounts {
    /// `(GS, RAS)` counts for one bound kind.
    pub fn for_kind(&self, kind: BoundKind) -> (usize, usize) {
        match kind {
            BoundKind::Deadline => self.deadline,
            BoundKind::Error => self.error,
        }
    }
}

/// Number of `(BoundKind, SpeculationMode)` partitions.
const NUM_PARTITIONS: usize = 4;

fn kind_idx(kind: BoundKind) -> usize {
    match kind {
        BoundKind::Deadline => 0,
        BoundKind::Error => 1,
    }
}

fn mode_idx(mode: SpeculationMode) -> usize {
    match mode {
        SpeculationMode::Gs => 0,
        SpeculationMode::Ras => 1,
    }
}

/// Partition index for a `(mode, kind)` pair.
fn par_idx(mode: SpeculationMode, kind: BoundKind) -> usize {
    kind_idx(kind) * 2 + mode_idx(mode)
}

/// Inverse of [`par_idx`], used when walking every partition by index.
fn par_mode_kind(idx: usize) -> (SpeculationMode, BoundKind) {
    let kind = if idx / 2 == 0 {
        BoundKind::Deadline
    } else {
        BoundKind::Error
    };
    let mode = if idx.is_multiple_of(2) {
        SpeculationMode::Gs
    } else {
        SpeculationMode::Ras
    };
    (mode, kind)
}

/// Sentinel bound bin for non-positive / non-finite bound values, which the exact
/// kernel assigns infinite log-distance (zero weight) whenever the bound factor is
/// active.
const BOUND_BIN_NONE: u8 = 255;

/// Coarse bound bin: one bin per power of two over `[2^-31, 2^31]`, clamped at the
/// edges; [`BOUND_BIN_NONE`] for values without a usable logarithm.
fn bound_bin(value: f64) -> u8 {
    if value > 0.0 && value.is_finite() {
        (floor_log2(value) + 31).clamp(0, 62) as u8
    } else {
        BOUND_BIN_NONE
    }
}

/// Geometric centre `1.5 · 2^(bin-31)` of a (non-sentinel) bound bin.
fn bound_bin_center(bin: u8) -> f64 {
    1.5 * pow2(i32::from(bin) - 31)
}

/// Decile bin for utilisation / accuracy values nominally in `[0, 1]`; out-of-range
/// and NaN values clamp into the edge deciles.
fn decile_bin(value: f64) -> u8 {
    ((value * 10.0) as i32).clamp(0, 9) as u8
}

/// Centre of a decile bin.
fn decile_center(bin: u8) -> f64 {
    (f64::from(bin) + 0.5) / 10.0
}

/// Key of one sketched-layer bin: size bucket × coarse factor bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct BinKey {
    size: u8,
    bound: u8,
    util: u8,
    acc: u8,
}

impl BinKey {
    fn of(sample: &Sample) -> BinKey {
        BinKey {
            size: sample.size_bucket.0,
            bound: bound_bin(sample.bound_value),
            util: decile_bin(sample.utilization),
            acc: decile_bin(sample.accuracy),
        }
    }
}

/// Aggregates of one sketched-layer bin: `(count, Σw, Σw·rate)` over the samples
/// that landed in it, where `w` is each sample's kernel weight against its own bin's
/// centres (its "self weight").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct BinAgg {
    count: u64,
    w_sum: f64,
    wr_sum: f64,
}

/// Kernel weight of a sample against the centres of its own bin — strictly positive,
/// so every recorded rate contributes to the bin's weighted mean.
fn self_weight(sample: &Sample, key: BinKey) -> f64 {
    // Size-bucket distance to the sample's own bucket is zero, so that kernel is 1.
    let mut w = 1.0;
    if key.bound != BOUND_BIN_NONE {
        w *= 1.0 / (1.0 + log_ratio(sample.bound_value, bound_bin_center(key.bound)));
    }
    w *= 1.0 / (1.0 + 5.0 * (sample.utilization - decile_center(key.util)).abs());
    w *= 1.0 / (1.0 + 5.0 * (sample.accuracy - decile_center(key.acc)).abs());
    w
}

/// Kernel weight of a query against a bin's centres, honouring the active factors —
/// the sketched analogue of the exact per-sample kernel.
fn query_weight(key: &BinKey, ctx: &QueryContext, factors: FactorSet) -> f64 {
    let mut q = 1.0 / (1.0 + f64::from(SizeBucket(key.size).distance(&ctx.size_bucket)));
    if factors.bound {
        if key.bound == BOUND_BIN_NONE {
            // Exact kernel: log_ratio is infinite for non-positive bounds => weight 0.
            return 0.0;
        }
        q *= 1.0 / (1.0 + log_ratio(bound_bin_center(key.bound), ctx.bound_value));
    }
    if factors.utilization {
        q *= 1.0 / (1.0 + 5.0 * (decile_center(key.util) - ctx.utilization).abs());
    }
    if factors.accuracy {
        q *= 1.0 / (1.0 + 5.0 * (decile_center(key.acc) - ctx.accuracy).abs());
    }
    q
}

/// One `(BoundKind, SpeculationMode)` partition: the exact FIFO of retained samples
/// (empty in sketched stores) plus the sketched layer — binned aggregates, a rate
/// quantile sketch and a lifetime observation count (never decremented; sketches are
/// eviction-free).
#[derive(Debug, Clone, Default)]
struct Partition {
    fifo: VecDeque<(u64, Sample)>,
    bins: BTreeMap<BinKey, BinAgg>,
    rates: QuantileSketch,
    lifetime: u64,
}

impl Partition {
    fn absorb(&mut self, sample: &Sample) {
        let key = BinKey::of(sample);
        let rate = sample.rate();
        let w = self_weight(sample, key);
        let agg = self.bins.entry(key).or_default();
        agg.count += 1;
        agg.w_sum += w;
        agg.wr_sum += w * rate;
        self.rates.insert(rate);
        self.lifetime += 1;
    }
}

/// All four partitions plus the global sequence counter that preserves cross-partition
/// FIFO order for eviction.
#[derive(Debug, Default)]
struct Inner {
    parts: [Partition; NUM_PARTITIONS],
    retained: usize,
    next_seq: u64,
}

impl Inner {
    /// Evict the globally oldest retained sample: the smallest sequence number among
    /// the partition fronts. O(partitions) compare + O(1) pop, versus the historical
    /// O(cap) front drain of a flat `Vec`.
    fn evict_oldest(&mut self) {
        let mut oldest: Option<usize> = None;
        let mut oldest_seq = u64::MAX;
        for (i, part) in self.parts.iter().enumerate() {
            if let Some(&(seq, _)) = part.fifo.front() {
                if seq < oldest_seq {
                    oldest_seq = seq;
                    oldest = Some(i);
                }
            }
        }
        if let Some(i) = oldest {
            self.parts[i].fifo.pop_front();
            self.retained -= 1;
        }
    }
}

/// Whether a store answers predictions from the exact partitions or the sketched
/// bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoreLayer {
    Exact,
    Sketched,
}

/// Thread-safe store of GS / RAS performance samples shared by every GRASS job in a
/// simulation run.
///
/// Per-(kind, mode) sample counts are maintained incrementally alongside the sample
/// partitions, and a monotonically increasing *generation* is bumped on every
/// mutation. Together they let the switching evaluation's sparse-store pre-flight run
/// without scanning — and, via `StoreCounts` memoisation, usually without even taking
/// the lock.
#[derive(Debug)]
pub struct SampleStore {
    inner: RwLock<Inner>,
    max_samples: usize,
    layer: StoreLayer,
    generation: AtomicU64,
}

impl Default for SampleStore {
    fn default() -> Self {
        SampleStore::new()
    }
}

/// Default cap on retained samples; old samples are evicted FIFO beyond this, which
/// mirrors the paper's choice to keep adapting to changing cluster conditions rather
/// than damping learning over time (§4.2).
const DEFAULT_MAX_SAMPLES: usize = 50_000;

impl SampleStore {
    /// Empty exact store with the default retention cap.
    pub fn new() -> Self {
        SampleStore::with_layer(DEFAULT_MAX_SAMPLES, StoreLayer::Exact)
    }

    /// Empty exact store with an explicit retention cap (primarily for tests).
    pub fn with_capacity(max_samples: usize) -> Self {
        SampleStore::with_layer(max_samples.max(1), StoreLayer::Exact)
    }

    /// Empty *sketched* store: raw samples are not retained at all — predictions are
    /// answered from the O(1)-memory binned aggregates, and counts report lifetime
    /// observations (including merged-in ones) rather than retained samples.
    pub fn sketched() -> Self {
        SampleStore::with_layer(DEFAULT_MAX_SAMPLES, StoreLayer::Sketched)
    }

    fn with_layer(max_samples: usize, layer: StoreLayer) -> Self {
        SampleStore {
            inner: RwLock::new(Inner::default()),
            max_samples,
            layer,
            generation: AtomicU64::new(0),
        }
    }

    /// Whether this store answers predictions from the sketched layer.
    pub fn is_sketched(&self) -> bool {
        self.layer == StoreLayer::Sketched
    }

    /// Number of stored samples: retained samples for exact stores, lifetime
    /// observations for sketched stores.
    pub fn len(&self) -> usize {
        let guard = self.inner.read();
        match self.layer {
            StoreLayer::Exact => guard.retained,
            StoreLayer::Sketched => guard
                .parts
                .iter()
                .map(|p| usize::try_from(p.lifetime).unwrap_or(usize::MAX))
                .fold(0usize, usize::saturating_add),
        }
    }

    /// Whether the store holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutation counter: bumped once per [`record`](Self::record) /
    /// [`clear`](Self::clear) / [`merge`](Self::merge). Two equal generations mean
    /// the store content (and hence any `StoreCounts` snapshot) is unchanged between
    /// the two reads.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Record a raw sample.
    pub fn record(&self, sample: Sample) {
        let mut guard = self.inner.write();
        let idx = par_idx(sample.mode, sample.kind);
        guard.parts[idx].absorb(&sample);
        if self.layer == StoreLayer::Exact {
            while guard.retained >= self.max_samples {
                guard.evict_oldest();
            }
            let seq = guard.next_seq;
            guard.next_seq += 1;
            guard.parts[idx].fifo.push_back((seq, sample));
            guard.retained += 1;
        }
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Record a completed job that ran pure `mode` throughout.
    pub fn record_outcome(&self, mode: SpeculationMode, outcome: &JobOutcome) {
        if let Some(sample) = Sample::from_outcome(mode, outcome) {
            self.record(sample);
        }
    }

    fn partition_count(&self, inner: &Inner, mode: SpeculationMode, kind: BoundKind) -> usize {
        let part = &inner.parts[par_idx(mode, kind)];
        match self.layer {
            StoreLayer::Exact => part.fifo.len(),
            StoreLayer::Sketched => usize::try_from(part.lifetime).unwrap_or(usize::MAX),
        }
    }

    /// Count samples available for a given mode and bound kind, O(1).
    pub fn count_for(&self, mode: SpeculationMode, kind: BoundKind) -> usize {
        let guard = self.inner.read();
        self.partition_count(&guard, mode, kind)
    }

    /// Count samples available for both modes of one bound kind under a single lock
    /// acquisition: `(GS count, RAS count)`, O(1). Used by the switching evaluation
    /// to bail out before running a candidate-point sweep that cannot produce a
    /// prediction.
    pub fn counts_for_kind(&self, kind: BoundKind) -> (usize, usize) {
        let guard = self.inner.read();
        (
            self.partition_count(&guard, SpeculationMode::Gs, kind),
            self.partition_count(&guard, SpeculationMode::Ras, kind),
        )
    }

    /// Generation-tagged snapshot of every per-(kind, mode) count, one lock
    /// acquisition. The generation is read while the lock is held, so it matches
    /// the counts exactly.
    pub fn counts_snapshot(&self) -> StoreCounts {
        let guard = self.inner.read();
        StoreCounts {
            generation: self.generation.load(Ordering::Acquire),
            deadline: (
                self.partition_count(&guard, SpeculationMode::Gs, BoundKind::Deadline),
                self.partition_count(&guard, SpeculationMode::Ras, BoundKind::Deadline),
            ),
            error: (
                self.partition_count(&guard, SpeculationMode::Gs, BoundKind::Error),
                self.partition_count(&guard, SpeculationMode::Ras, BoundKind::Error),
            ),
        }
    }

    /// Predict the task-completion rate (tasks/second) of running pure `mode` under
    /// the query context, as a similarity-weighted mean over stored samples. Returns
    /// `None` when fewer than `min_samples` relevant samples exist.
    ///
    /// Exact stores scan the one relevant partition in insertion order — the same
    /// samples, kernel and float summation order as the historical whole-store scan,
    /// so results are bit-identical. Sketched stores answer from the binned
    /// aggregates in O(bins): the result is a convex combination of the recorded
    /// rates with bin-centre kernel weights.
    pub fn predict_rate(
        &self,
        mode: SpeculationMode,
        ctx: &QueryContext,
        factors: FactorSet,
        min_samples: usize,
    ) -> Option<f64> {
        let guard = self.inner.read();
        let part = &guard.parts[par_idx(mode, ctx.kind)];
        match self.layer {
            StoreLayer::Exact => {
                let mut weight_sum = 0.0;
                let mut weighted_rate = 0.0;
                let mut count = 0usize;
                for (_, s) in part.fifo.iter() {
                    let mut w = 1.0 / (1.0 + f64::from(s.size_bucket.distance(&ctx.size_bucket)));
                    if factors.bound {
                        let ratio = log_ratio(s.bound_value, ctx.bound_value);
                        w *= 1.0 / (1.0 + ratio);
                    }
                    if factors.utilization {
                        w *= 1.0 / (1.0 + 5.0 * (s.utilization - ctx.utilization).abs());
                    }
                    if factors.accuracy {
                        w *= 1.0 / (1.0 + 5.0 * (s.accuracy - ctx.accuracy).abs());
                    }
                    weight_sum += w;
                    weighted_rate += w * s.rate();
                    count += 1;
                }
                if count < min_samples || weight_sum <= 0.0 {
                    return None;
                }
                Some(weighted_rate / weight_sum)
            }
            StoreLayer::Sketched => {
                if usize::try_from(part.lifetime).unwrap_or(usize::MAX) < min_samples {
                    return None;
                }
                let mut weight_sum = 0.0;
                let mut weighted_rate = 0.0;
                for (key, agg) in &part.bins {
                    let q = query_weight(key, ctx, factors);
                    weight_sum += q * agg.w_sum;
                    weighted_rate += q * agg.wr_sum;
                }
                if weight_sum <= 0.0 {
                    return None;
                }
                Some(weighted_rate / weight_sum)
            }
        }
    }

    /// Predict how many input tasks a job of this context would complete if it ran
    /// pure `mode` for `seconds` seconds.
    pub fn predict_deadline_completion(
        &self,
        mode: SpeculationMode,
        seconds: f64,
        ctx: &QueryContext,
        factors: FactorSet,
        min_samples: usize,
    ) -> Option<f64> {
        if seconds <= 0.0 {
            return Some(0.0);
        }
        let ctx = QueryContext {
            bound_value: seconds,
            ..*ctx
        };
        self.predict_rate(mode, &ctx, factors, min_samples)
            .map(|rate| rate * seconds)
    }

    /// Predict how long pure `mode` would take to complete `tasks` more tasks.
    pub fn predict_error_duration(
        &self,
        mode: SpeculationMode,
        tasks: f64,
        ctx: &QueryContext,
        factors: FactorSet,
        min_samples: usize,
    ) -> Option<f64> {
        if tasks <= 0.0 {
            return Some(0.0);
        }
        let ctx = QueryContext {
            bound_value: tasks,
            ..*ctx
        };
        let rate = self.predict_rate(mode, &ctx, factors, min_samples)?;
        if rate <= 0.0 {
            return None;
        }
        Some(tasks / rate)
    }

    /// Drop every stored sample (both layers).
    pub fn clear(&self) {
        let mut guard = self.inner.write();
        *guard = Inner::default();
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Retained samples matching `(mode, kind)` in insertion order — a test /
    /// diagnostics accessor (always empty for sketched stores, which retain none).
    pub fn samples_for(&self, mode: SpeculationMode, kind: BoundKind) -> Vec<Sample> {
        self.inner.read().parts[par_idx(mode, kind)]
            .fifo
            .iter()
            .map(|(_, s)| s.clone())
            .collect()
    }

    /// Total number of occupied sketched-layer bins across all partitions — the
    /// quantity that stays bounded while job count grows without limit.
    pub fn sketch_bins(&self) -> usize {
        self.inner.read().parts.iter().map(|p| p.bins.len()).sum()
    }

    /// Approximate `q`-quantile of the task-completion rates ever observed for
    /// `(mode, kind)` (within a factor of 2; see [`QuantileSketch`]). Available on
    /// both layers; `None` if the partition has no observations.
    pub fn rate_quantile(&self, mode: SpeculationMode, kind: BoundKind, q: f64) -> Option<f64> {
        self.inner.read().parts[par_idx(mode, kind)]
            .rates
            .quantile(q)
    }

    /// Snapshot of the sketched layer (binned aggregates + rate sketches + lifetime
    /// counts) for exchange with other stores. Never contains raw samples; its
    /// encoded form is canonical (deterministic bin order, bit-exact floats).
    pub fn snapshot(&self) -> StoreSnapshot {
        let guard = self.inner.read();
        let mut snap = StoreSnapshot::default();
        for (idx, part) in guard.parts.iter().enumerate() {
            snap.parts[idx] = PartSnapshot {
                lifetime: part.lifetime,
                rates: part.rates.clone(),
                bins: part.bins.clone(),
            };
        }
        snap
    }

    /// Fold a peer's snapshot into this store's *sketched layer*. Exact stores keep
    /// their retained samples (and therefore their exact predictions and pinned
    /// digests) untouched — the merged state shows up in snapshots, rate quantiles
    /// and, on sketched stores, in counts and predictions.
    pub fn merge(&self, snapshot: &StoreSnapshot) {
        let mut guard = self.inner.write();
        for (idx, peer) in snapshot.parts.iter().enumerate() {
            let part = &mut guard.parts[idx];
            part.lifetime += peer.lifetime;
            part.rates.merge(&peer.rates);
            for (key, agg) in &peer.bins {
                let mine = part.bins.entry(*key).or_default();
                mine.count += agg.count;
                mine.w_sum += agg.w_sum;
                mine.wr_sum += agg.wr_sum;
            }
        }
        self.generation.fetch_add(1, Ordering::Release);
    }
}

/// `|log2(a / b)|`, guarded against non-positive inputs.
fn log_ratio(a: f64, b: f64) -> f64 {
    if a <= 0.0 || b <= 0.0 {
        return f64::INFINITY;
    }
    (a / b).log2().abs()
}

/// Sketched layer of one partition, as carried by a [`StoreSnapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
struct PartSnapshot {
    lifetime: u64,
    rates: QuantileSketch,
    bins: BTreeMap<BinKey, BinAgg>,
}

/// Portable, mergeable snapshot of a store's sketched layer.
///
/// The wire form (see [`encode`](Self::encode) / [`decode`](Self::decode)) is
/// line-oriented text with floats carried as hexadecimal IEEE-754 bit patterns, so a
/// round trip is bit-exact and two equal snapshots always encode to identical bytes.
/// Merging is exactly commutative; counts and sketches merge exactly associatively,
/// while the `Σw` / `Σw·rate` float sums are associative only up to rounding (IEEE
/// addition is commutative but not associative).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreSnapshot {
    parts: [PartSnapshot; NUM_PARTITIONS],
}

impl StoreSnapshot {
    /// Total lifetime observations across every partition.
    pub fn total_samples(&self) -> u64 {
        self.parts.iter().map(|p| p.lifetime).sum()
    }

    /// Whether the snapshot carries no observations.
    pub fn is_empty(&self) -> bool {
        self.total_samples() == 0
    }

    /// Fold another snapshot into this one (same semantics as
    /// [`SampleStore::merge`]).
    pub fn merge(&mut self, other: &StoreSnapshot) {
        for (mine, theirs) in self.parts.iter_mut().zip(other.parts.iter()) {
            mine.lifetime += theirs.lifetime;
            mine.rates.merge(&theirs.rates);
            for (key, agg) in &theirs.bins {
                let slot = mine.bins.entry(*key).or_default();
                slot.count += agg.count;
                slot.w_sum += agg.w_sum;
                slot.wr_sum += agg.wr_sum;
            }
        }
    }

    /// Canonical text encoding. Partitions appear in index order, bins in `BinKey`
    /// order, sketch buckets ascending; empty partitions are omitted.
    pub fn encode(&self) -> String {
        let mut out = String::from("storesnap v1\n");
        for (idx, part) in self.parts.iter().enumerate() {
            if part.lifetime == 0 && part.bins.is_empty() && part.rates.is_empty() {
                continue;
            }
            let (mode, kind) = par_mode_kind(idx);
            let _ = write!(
                out,
                "part idx={idx} kind={} mode={} lifetime={}",
                match kind {
                    BoundKind::Deadline => "deadline",
                    BoundKind::Error => "error",
                },
                match mode {
                    SpeculationMode::Gs => "gs",
                    SpeculationMode::Ras => "ras",
                },
                part.lifetime
            );
            let buckets: Vec<String> = part
                .rates
                .entries()
                .map(|(b, c)| format!("{b}:{c}"))
                .collect();
            if !buckets.is_empty() {
                let _ = write!(out, " sketch={}", buckets.join(","));
            }
            out.push('\n');
            for (key, agg) in &part.bins {
                let _ = writeln!(
                    out,
                    "bin part={idx} size={} bound={} util={} acc={} count={} w={:016x} wr={:016x}",
                    key.size,
                    key.bound,
                    key.util,
                    key.acc,
                    agg.count,
                    agg.w_sum.to_bits(),
                    agg.wr_sum.to_bits(),
                );
            }
        }
        out
    }

    /// Strict inverse of [`encode`](Self::encode).
    pub fn decode(text: &str) -> Result<StoreSnapshot, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("storesnap v1") => {}
            other => return Err(format!("bad snapshot header: {other:?}")),
        }
        let mut snap = StoreSnapshot::default();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            match fields.next() {
                Some("part") => {
                    let mut idx: Option<usize> = None;
                    let mut lifetime: Option<u64> = None;
                    let mut sketch: Option<&str> = None;
                    for field in fields {
                        let (k, v) = field
                            .split_once('=')
                            .ok_or_else(|| format!("bad part field '{field}'"))?;
                        match k {
                            "idx" => idx = Some(parse_num(v, "part idx")?),
                            "lifetime" => lifetime = Some(parse_num(v, "part lifetime")?),
                            "sketch" => sketch = Some(v),
                            "kind" | "mode" => {} // informational; idx is authoritative
                            other => return Err(format!("unknown part field '{other}'")),
                        }
                    }
                    let idx = idx.ok_or("part line missing idx")?;
                    if idx >= NUM_PARTITIONS {
                        return Err(format!("part idx {idx} out of range"));
                    }
                    let part = &mut snap.parts[idx];
                    part.lifetime = lifetime.ok_or("part line missing lifetime")?;
                    if let Some(spec) = sketch {
                        for entry in spec.split(',') {
                            let (b, c) = entry
                                .split_once(':')
                                .ok_or_else(|| format!("bad sketch entry '{entry}'"))?;
                            let bucket: usize = parse_num(b, "sketch bucket")?;
                            let count: u64 = parse_num(c, "sketch count")?;
                            part.rates.add_bucket(bucket, count);
                        }
                    }
                }
                Some("bin") => {
                    let mut idx: Option<usize> = None;
                    let mut key = BinKey {
                        size: 0,
                        bound: 0,
                        util: 0,
                        acc: 0,
                    };
                    let mut agg = BinAgg::default();
                    for field in fields {
                        let (k, v) = field
                            .split_once('=')
                            .ok_or_else(|| format!("bad bin field '{field}'"))?;
                        match k {
                            "part" => idx = Some(parse_num(v, "bin part")?),
                            "size" => key.size = parse_num(v, "bin size")?,
                            "bound" => key.bound = parse_num(v, "bin bound")?,
                            "util" => key.util = parse_num(v, "bin util")?,
                            "acc" => key.acc = parse_num(v, "bin acc")?,
                            "count" => agg.count = parse_num(v, "bin count")?,
                            "w" => agg.w_sum = parse_hex_f64(v, "bin w")?,
                            "wr" => agg.wr_sum = parse_hex_f64(v, "bin wr")?,
                            other => return Err(format!("unknown bin field '{other}'")),
                        }
                    }
                    let idx = idx.ok_or("bin line missing part")?;
                    if idx >= NUM_PARTITIONS {
                        return Err(format!("bin part {idx} out of range"));
                    }
                    snap.parts[idx].bins.insert(key, agg);
                }
                Some(other) => return Err(format!("unknown snapshot line '{other}'")),
                None => {}
            }
        }
        Ok(snap)
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("bad {what} value '{value}'"))
}

fn parse_hex_f64(value: &str, what: &str) -> Result<f64, String> {
    u64::from_str_radix(value, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad {what} value '{value}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grass::reference::ReferenceSampleStore;
    use crate::task::JobId;

    fn sample(mode: SpeculationMode, kind: BoundKind, bound: f64, perf: f64) -> Sample {
        Sample {
            mode,
            kind,
            size_bucket: SizeBucket(5),
            bound_value: bound,
            performance: perf,
            utilization: 0.5,
            accuracy: 0.75,
        }
    }

    fn ctx(kind: BoundKind, bound: f64) -> QueryContext {
        QueryContext {
            kind,
            size_bucket: SizeBucket(5),
            bound_value: bound,
            utilization: 0.5,
            accuracy: 0.75,
        }
    }

    #[test]
    fn factor_sets() {
        assert_eq!(FactorSet::all().count(), 3);
        assert_eq!(FactorSet::best_one().count(), 1);
        assert_eq!(FactorSet::best_two_utilization().count(), 2);
        assert_eq!(FactorSet::best_two_accuracy().count(), 2);
        assert_eq!(FactorSet::default(), FactorSet::all());
    }

    #[test]
    fn sample_rates() {
        // Deadline: 20 tasks in a 10s deadline => 2 tasks/s.
        assert_eq!(
            sample(SpeculationMode::Gs, BoundKind::Deadline, 10.0, 20.0).rate(),
            2.0
        );
        // Error: 30 tasks needed, 15s duration => 2 tasks/s.
        assert_eq!(
            sample(SpeculationMode::Gs, BoundKind::Error, 30.0, 15.0).rate(),
            2.0
        );
        assert_eq!(
            sample(SpeculationMode::Gs, BoundKind::Deadline, 0.0, 20.0).rate(),
            0.0
        );
        assert_eq!(
            sample(SpeculationMode::Gs, BoundKind::Error, 30.0, 0.0).rate(),
            0.0
        );
    }

    #[test]
    fn store_records_and_counts() {
        let store = SampleStore::new();
        assert!(store.is_empty());
        store.record(sample(SpeculationMode::Gs, BoundKind::Deadline, 10.0, 20.0));
        store.record(sample(
            SpeculationMode::Ras,
            BoundKind::Deadline,
            10.0,
            25.0,
        ));
        store.record(sample(SpeculationMode::Gs, BoundKind::Error, 30.0, 15.0));
        assert_eq!(store.len(), 3);
        assert_eq!(store.count_for(SpeculationMode::Gs, BoundKind::Deadline), 1);
        assert_eq!(
            store.count_for(SpeculationMode::Ras, BoundKind::Deadline),
            1
        );
        assert_eq!(store.count_for(SpeculationMode::Ras, BoundKind::Error), 0);
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn incremental_counts_stay_exact_across_eviction_and_clear() {
        let store = SampleStore::with_capacity(4);
        let mix = [
            (SpeculationMode::Gs, BoundKind::Deadline),
            (SpeculationMode::Ras, BoundKind::Deadline),
            (SpeculationMode::Gs, BoundKind::Error),
            (SpeculationMode::Ras, BoundKind::Error),
        ];
        // 10 records into a 4-slot store: every record past the 4th evicts the
        // oldest, exercising the decrement path with mixed kinds and modes.
        for i in 0..10 {
            let (mode, kind) = mix[i % mix.len()];
            store.record(sample(mode, kind, 10.0, 20.0));
            // Ground truth by definition: count_for must always equal a full scan —
            // here recomputed from the deterministic record/evict pattern.
            for (m, k) in mix {
                let expected = (0..=i)
                    .skip(i.saturating_sub(3))
                    .filter(|j| mix[j % mix.len()] == (m, k))
                    .count();
                assert_eq!(store.count_for(m, k), expected, "after record {i}");
            }
        }
        let snapshot = store.counts_snapshot();
        assert_eq!(snapshot.for_kind(BoundKind::Deadline), (1, 1));
        assert_eq!(snapshot.for_kind(BoundKind::Error), (1, 1));
        assert_eq!(store.counts_for_kind(BoundKind::Deadline), (1, 1));
        store.clear();
        assert_eq!(store.counts_for_kind(BoundKind::Deadline), (0, 0));
        assert_eq!(store.counts_for_kind(BoundKind::Error), (0, 0));
    }

    #[test]
    fn generation_moves_on_every_mutation_and_tags_snapshots() {
        let store = SampleStore::new();
        let g0 = store.generation();
        store.record(sample(SpeculationMode::Gs, BoundKind::Deadline, 10.0, 20.0));
        let g1 = store.generation();
        assert!(g1 > g0);
        let snap = store.counts_snapshot();
        assert_eq!(snap.generation, g1);
        assert_eq!(snap.deadline, (1, 0));
        // No mutation => generation (and any memo keyed on it) stays valid.
        assert_eq!(store.generation(), g1);
        store.clear();
        assert!(store.generation() > g1);
    }

    #[test]
    fn store_evicts_oldest_beyond_capacity() {
        let store = SampleStore::with_capacity(3);
        for i in 0..5 {
            store.record(sample(
                SpeculationMode::Gs,
                BoundKind::Deadline,
                10.0,
                i as f64,
            ));
        }
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn eviction_order_and_counts_match_the_frozen_reference() {
        // Satellite pin: the ring-buffer eviction must walk the same global FIFO as
        // the historical front-drain, across partitions. Drive both stores through
        // an irregular mixed-partition overflow sequence and compare retained
        // samples per partition, in order.
        let store = SampleStore::with_capacity(5);
        let oracle = ReferenceSampleStore::with_capacity(5);
        let mix = [
            (SpeculationMode::Gs, BoundKind::Deadline),
            (SpeculationMode::Gs, BoundKind::Deadline),
            (SpeculationMode::Ras, BoundKind::Error),
            (SpeculationMode::Gs, BoundKind::Error),
            (SpeculationMode::Ras, BoundKind::Deadline),
            (SpeculationMode::Gs, BoundKind::Deadline),
            (SpeculationMode::Ras, BoundKind::Error),
        ];
        for i in 0..23 {
            let (mode, kind) = mix[(i * i) % mix.len()];
            let s = sample(mode, kind, 10.0 + i as f64, 20.0 + i as f64);
            store.record(s.clone());
            oracle.record(s);
            for (m, k) in [
                (SpeculationMode::Gs, BoundKind::Deadline),
                (SpeculationMode::Ras, BoundKind::Deadline),
                (SpeculationMode::Gs, BoundKind::Error),
                (SpeculationMode::Ras, BoundKind::Error),
            ] {
                assert_eq!(
                    store.samples_for(m, k),
                    oracle.samples_for(m, k),
                    "partition ({m:?}, {k:?}) diverged after record {i}"
                );
                assert_eq!(store.count_for(m, k), oracle.count_for(m, k));
            }
            assert_eq!(store.len(), oracle.len());
        }
    }

    #[test]
    fn prediction_requires_min_samples() {
        let store = SampleStore::new();
        store.record(sample(SpeculationMode::Gs, BoundKind::Deadline, 10.0, 20.0));
        let c = ctx(BoundKind::Deadline, 10.0);
        assert!(store
            .predict_rate(SpeculationMode::Gs, &c, FactorSet::all(), 2)
            .is_none());
        assert!(store
            .predict_rate(SpeculationMode::Gs, &c, FactorSet::all(), 1)
            .is_some());
        assert!(store
            .predict_rate(SpeculationMode::Ras, &c, FactorSet::all(), 1)
            .is_none());
    }

    #[test]
    fn prediction_is_weighted_mean_of_rates() {
        let store = SampleStore::new();
        for _ in 0..5 {
            store.record(sample(SpeculationMode::Gs, BoundKind::Deadline, 10.0, 20.0));
        }
        let c = ctx(BoundKind::Deadline, 10.0);
        let rate = store
            .predict_rate(SpeculationMode::Gs, &c, FactorSet::all(), 1)
            .unwrap();
        assert!((rate - 2.0).abs() < 1e-9);
        let completed = store
            .predict_deadline_completion(SpeculationMode::Gs, 5.0, &c, FactorSet::all(), 1)
            .unwrap();
        assert!((completed - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bound_factor_prefers_similar_bounds() {
        let store = SampleStore::new();
        // Short-deadline samples show GS completing fast, long-deadline samples slow.
        store.record(sample(SpeculationMode::Gs, BoundKind::Deadline, 2.0, 10.0)); // 5 tasks/s
        store.record(sample(
            SpeculationMode::Gs,
            BoundKind::Deadline,
            100.0,
            100.0,
        )); // 1 task/s
        let short = ctx(BoundKind::Deadline, 2.0);
        let long = ctx(BoundKind::Deadline, 100.0);
        let with_bound = FactorSet::best_one();
        let r_short = store
            .predict_rate(SpeculationMode::Gs, &short, with_bound, 1)
            .unwrap();
        let r_long = store
            .predict_rate(SpeculationMode::Gs, &long, with_bound, 1)
            .unwrap();
        assert!(r_short > r_long, "{r_short} should exceed {r_long}");
        // Without the bound factor both queries see the same mixture.
        let without = FactorSet {
            bound: false,
            utilization: false,
            accuracy: false,
        };
        let r1 = store
            .predict_rate(SpeculationMode::Gs, &short, without, 1)
            .unwrap();
        let r2 = store
            .predict_rate(SpeculationMode::Gs, &long, without, 1)
            .unwrap();
        assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn error_duration_prediction_scales_with_tasks() {
        let store = SampleStore::new();
        store.record(sample(SpeculationMode::Ras, BoundKind::Error, 30.0, 15.0)); // 2 tasks/s
        let c = ctx(BoundKind::Error, 10.0);
        let d = store
            .predict_error_duration(SpeculationMode::Ras, 10.0, &c, FactorSet::all(), 1)
            .unwrap();
        assert!((d - 5.0).abs() < 1e-9);
        assert_eq!(
            store.predict_error_duration(SpeculationMode::Ras, 0.0, &c, FactorSet::all(), 1),
            Some(0.0)
        );
    }

    #[test]
    fn sample_from_outcome_round_trips() {
        let outcome = JobOutcome {
            job: JobId(9),
            policy: "GS".to_string(),
            bound: Bound::Deadline(40.0),
            input_tasks: 100,
            total_tasks: 100,
            dag_length: 1,
            arrival: 0.0,
            finish: 40.0,
            completed_input_tasks: 60,
            completed_tasks: 60,
            speculative_copies: 5,
            killed_copies: 2,
            slot_seconds: 500.0,
            avg_wave_width: 10.0,
            avg_cluster_utilization: 0.8,
            avg_estimation_accuracy: 0.7,
        };
        let s = Sample::from_outcome(SpeculationMode::Gs, &outcome).unwrap();
        assert_eq!(s.kind, BoundKind::Deadline);
        assert_eq!(s.bound_value, 40.0);
        assert_eq!(s.performance, 60.0);
        assert_eq!(s.size_bucket, SizeBucket::of(100));

        let error_outcome = JobOutcome {
            bound: Bound::Error(0.2),
            finish: 25.0,
            ..outcome.clone()
        };
        let s = Sample::from_outcome(SpeculationMode::Ras, &error_outcome).unwrap();
        assert_eq!(s.kind, BoundKind::Error);
        assert_eq!(s.bound_value, 80.0);
        assert_eq!(s.performance, 25.0);

        // Degenerate outcomes produce no sample.
        let zero_duration = JobOutcome {
            bound: Bound::Error(0.2),
            finish: 0.0,
            ..outcome
        };
        assert!(Sample::from_outcome(SpeculationMode::Ras, &zero_duration).is_none());
    }

    #[test]
    fn sketched_store_predicts_within_recorded_rate_range() {
        let store = SampleStore::sketched();
        assert!(store.is_sketched());
        // Rates 1.0 and 4.0 tasks/s in the same partition, different bound bins.
        store.record(sample(SpeculationMode::Gs, BoundKind::Deadline, 10.0, 10.0));
        store.record(sample(
            SpeculationMode::Gs,
            BoundKind::Deadline,
            50.0,
            200.0,
        ));
        let c = ctx(BoundKind::Deadline, 10.0);
        let rate = store
            .predict_rate(SpeculationMode::Gs, &c, FactorSet::all(), 1)
            .unwrap();
        // Convex combination of recorded rates.
        assert!(
            (1.0..=4.0).contains(&rate),
            "{rate} outside recorded rate range"
        );
        // min_samples gate uses lifetime counts.
        assert!(store
            .predict_rate(SpeculationMode::Gs, &c, FactorSet::all(), 3)
            .is_none());
        assert!(store
            .predict_rate(SpeculationMode::Ras, &c, FactorSet::all(), 1)
            .is_none());
        // No raw samples are retained; counts report lifetime observations.
        assert!(store
            .samples_for(SpeculationMode::Gs, BoundKind::Deadline)
            .is_empty());
        assert_eq!(store.count_for(SpeculationMode::Gs, BoundKind::Deadline), 2);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn sketched_identical_samples_reproduce_the_exact_prediction() {
        // All mass in one bin => the weighted mean collapses to the common rate.
        let exact = SampleStore::new();
        let sketched = SampleStore::sketched();
        for _ in 0..7 {
            let s = sample(SpeculationMode::Gs, BoundKind::Deadline, 10.0, 20.0);
            exact.record(s.clone());
            sketched.record(s);
        }
        let c = ctx(BoundKind::Deadline, 10.0);
        let re = exact
            .predict_rate(SpeculationMode::Gs, &c, FactorSet::all(), 1)
            .unwrap();
        let rs = sketched
            .predict_rate(SpeculationMode::Gs, &c, FactorSet::all(), 1)
            .unwrap();
        assert!((re - rs).abs() < 1e-12, "exact {re} vs sketched {rs}");
        assert_eq!(sketched.sketch_bins(), 1);
    }

    #[test]
    fn sketched_memory_is_bounded_by_bins_not_samples() {
        let store = SampleStore::sketched();
        for i in 0..10_000u64 {
            store.record(sample(
                SpeculationMode::Gs,
                BoundKind::Deadline,
                10.0 + (i % 16) as f64,
                20.0 + (i % 64) as f64,
            ));
        }
        assert_eq!(store.len(), 10_000);
        // Bins are keyed by coarse factor bins: this workload spans only a handful.
        assert!(
            store.sketch_bins() <= 64,
            "bins should stay coarse, got {}",
            store.sketch_bins()
        );
        assert!(store
            .rate_quantile(SpeculationMode::Gs, BoundKind::Deadline, 0.5)
            .is_some());
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let store = SampleStore::new();
        for i in 0..25 {
            let (mode, kind) = if i % 3 == 0 {
                (SpeculationMode::Ras, BoundKind::Error)
            } else {
                (SpeculationMode::Gs, BoundKind::Deadline)
            };
            store.record(sample(mode, kind, 3.0 + i as f64, 11.0 + i as f64));
        }
        let snap = store.snapshot();
        let encoded = snap.encode();
        let decoded = StoreSnapshot::decode(&encoded).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.encode(), encoded);
        assert_eq!(snap.total_samples(), 25);

        // Empty snapshot is a bare header.
        let empty = SampleStore::new().snapshot();
        assert!(empty.is_empty());
        assert_eq!(empty.encode(), "storesnap v1\n");
        assert_eq!(StoreSnapshot::decode("storesnap v1\n").unwrap(), empty);
        assert!(StoreSnapshot::decode("nonsense").is_err());
    }

    #[test]
    fn merge_folds_peer_state_into_the_sketched_layer() {
        let a = SampleStore::sketched();
        let b = SampleStore::sketched();
        for _ in 0..3 {
            a.record(sample(SpeculationMode::Gs, BoundKind::Deadline, 10.0, 20.0));
            b.record(sample(SpeculationMode::Gs, BoundKind::Deadline, 10.0, 30.0));
        }
        let g_before = a.generation();
        a.merge(&b.snapshot());
        assert!(a.generation() > g_before);
        assert_eq!(a.count_for(SpeculationMode::Gs, BoundKind::Deadline), 6);
        let c = ctx(BoundKind::Deadline, 10.0);
        let rate = a
            .predict_rate(SpeculationMode::Gs, &c, FactorSet::all(), 1)
            .unwrap();
        // 3 samples at 2 tasks/s + 3 at 3 tasks/s => strictly between.
        assert!(rate > 2.0 && rate < 3.0, "merged rate {rate}");

        // Merging into an exact store leaves exact predictions untouched.
        let exact = SampleStore::new();
        exact.record(sample(SpeculationMode::Gs, BoundKind::Deadline, 10.0, 20.0));
        let before = exact
            .predict_rate(SpeculationMode::Gs, &c, FactorSet::all(), 1)
            .unwrap();
        exact.merge(&b.snapshot());
        let after = exact
            .predict_rate(SpeculationMode::Gs, &c, FactorSet::all(), 1)
            .unwrap();
        assert_eq!(before.to_bits(), after.to_bits());
        assert_eq!(exact.count_for(SpeculationMode::Gs, BoundKind::Deadline), 1);
        // ...but the merged observations are visible in the snapshot it re-exports.
        assert_eq!(exact.snapshot().total_samples(), 4);
    }
}
