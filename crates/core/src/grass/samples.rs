//! GRASS's shared sample store (§4.1–4.2 of the paper).
//!
//! GRASS learns *when to switch* from RAS to GS by comparing the performance of past
//! jobs that ran **pure GS** or **pure RAS** throughout (those samples are produced by
//! the ξ-perturbation in [`crate::grass::GrassFactory`]). Samples are bucketed by job
//! size and annotated with the three factors the paper identifies (§4.1):
//!
//! 1. the approximation bound (remaining deadline / tasks still needed),
//! 2. cluster utilisation,
//! 3. estimation accuracy of `trem` / `tnew`.
//!
//! A query asks: "for a job of roughly this size, under these cluster conditions, how
//! fast does GS (or RAS) complete tasks?" The answer is a *task completion rate*
//! (tasks per second), estimated as a similarity-weighted average over stored samples.
//! Which factors participate in the similarity weighting is controlled by a
//! [`FactorSet`], which is how the Best-1 / Best-2 ablations of §6.3.2 are expressed.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::bins::SizeBucket;
use crate::job::Bound;
use crate::outcome::JobOutcome;
use crate::speculation::SpeculationMode;

/// Which of the three learning factors participate in sample matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FactorSet {
    /// Match on the approximation bound (remaining deadline / tasks needed).
    pub bound: bool,
    /// Match on cluster utilisation.
    pub utilization: bool,
    /// Match on estimation accuracy.
    pub accuracy: bool,
}

impl FactorSet {
    /// All three factors — full GRASS.
    pub fn all() -> Self {
        FactorSet {
            bound: true,
            utilization: true,
            accuracy: true,
        }
    }

    /// Only the approximation bound (the paper's "Best-1" configuration: when a single
    /// factor is used, the bound gives the best results).
    pub fn best_one() -> Self {
        FactorSet {
            bound: true,
            utilization: false,
            accuracy: false,
        }
    }

    /// Bound + cluster utilisation (the paper's "Best-2" for the Hadoop prototype).
    pub fn best_two_utilization() -> Self {
        FactorSet {
            bound: true,
            utilization: true,
            accuracy: false,
        }
    }

    /// Bound + estimation accuracy (the paper's "Best-2" for the Spark prototype).
    pub fn best_two_accuracy() -> Self {
        FactorSet {
            bound: true,
            utilization: false,
            accuracy: true,
        }
    }

    /// Number of active factors.
    pub fn count(&self) -> usize {
        usize::from(self.bound) + usize::from(self.utilization) + usize::from(self.accuracy)
    }
}

impl Default for FactorSet {
    fn default() -> Self {
        FactorSet::all()
    }
}

/// Whether a sample (or query) concerns a deadline-bound or error-bound job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundKind {
    /// Deadline-bound: performance is "input tasks completed within the deadline".
    Deadline,
    /// Error-bound: performance is "seconds to complete the needed tasks".
    Error,
}

impl BoundKind {
    /// Classify a [`Bound`].
    pub fn of(bound: &Bound) -> Self {
        match bound {
            Bound::Deadline(_) => BoundKind::Deadline,
            Bound::Error(_) => BoundKind::Error,
        }
    }
}

/// One recorded sample: a job that ran pure GS or pure RAS throughout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Which algorithm the job ran.
    pub mode: SpeculationMode,
    /// Deadline- or error-bound.
    pub kind: BoundKind,
    /// Geometric size bucket of the job.
    pub size_bucket: SizeBucket,
    /// The bound value: deadline seconds (deadline jobs) or number of tasks that had
    /// to complete (error jobs).
    pub bound_value: f64,
    /// The measured performance: input tasks completed (deadline jobs) or job duration
    /// in seconds (error jobs).
    pub performance: f64,
    /// Average cluster utilisation observed while the job ran, in `[0, 1]`.
    pub utilization: f64,
    /// Average measured estimation accuracy while the job ran, in `[0, 1]`.
    pub accuracy: f64,
}

impl Sample {
    /// Task completion rate implied by this sample, in tasks per second.
    ///
    /// * Deadline jobs: `completed tasks / deadline`.
    /// * Error jobs: `tasks needed / duration`.
    pub fn rate(&self) -> f64 {
        match self.kind {
            BoundKind::Deadline => {
                if self.bound_value <= 0.0 {
                    0.0
                } else {
                    self.performance / self.bound_value
                }
            }
            BoundKind::Error => {
                if self.performance <= 0.0 {
                    0.0
                } else {
                    self.bound_value / self.performance
                }
            }
        }
    }

    /// Build a sample from a completed job outcome. Returns `None` for outcomes that
    /// carry no usable signal (zero tasks, zero duration).
    pub fn from_outcome(mode: SpeculationMode, outcome: &JobOutcome) -> Option<Sample> {
        let kind = BoundKind::of(&outcome.bound);
        let (bound_value, performance) = match outcome.bound {
            Bound::Deadline(d) => {
                if d <= 0.0 {
                    return None;
                }
                (d, outcome.completed_input_tasks as f64)
            }
            Bound::Error(e) => {
                let needed = Bound::Error(e).tasks_needed(outcome.input_tasks);
                let duration = outcome.duration();
                if needed == 0 || duration <= 0.0 {
                    return None;
                }
                (needed as f64, duration)
            }
        };
        Some(Sample {
            mode,
            kind,
            size_bucket: SizeBucket::of(outcome.input_tasks),
            bound_value,
            performance,
            utilization: outcome.avg_cluster_utilization,
            accuracy: outcome.avg_estimation_accuracy,
        })
    }
}

/// Query context for a rate prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryContext {
    /// Deadline- or error-bound job.
    pub kind: BoundKind,
    /// Size bucket of the querying job.
    pub size_bucket: SizeBucket,
    /// The bound value being considered (remaining deadline seconds / tasks still
    /// needed for the segment in question).
    pub bound_value: f64,
    /// Current cluster utilisation.
    pub utilization: f64,
    /// Current measured estimation accuracy.
    pub accuracy: f64,
}

/// O(1) snapshot of the store's per-(kind, mode) sample counts, tagged with the
/// store generation it was taken at. Taken under a single lock acquisition, so the
/// counts are mutually consistent and the generation identifies exactly which store
/// state they describe — a [`crate::grass::SwitchScanCache`] holds one of these and
/// reuses it for every switching evaluation until the generation moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreCounts {
    /// [`SampleStore::generation`] at snapshot time.
    pub generation: u64,
    /// `(GS, RAS)` sample counts for deadline-bound samples.
    pub deadline: (usize, usize),
    /// `(GS, RAS)` sample counts for error-bound samples.
    pub error: (usize, usize),
}

impl StoreCounts {
    /// `(GS, RAS)` counts for one bound kind.
    pub fn for_kind(&self, kind: BoundKind) -> (usize, usize) {
        match kind {
            BoundKind::Deadline => self.deadline,
            BoundKind::Error => self.error,
        }
    }
}

/// Samples plus the incrementally maintained `counts[kind][mode]` table, kept under
/// one lock so they can never disagree.
#[derive(Debug, Default)]
struct Inner {
    samples: Vec<Sample>,
    counts: [[usize; 2]; 2],
}

fn kind_idx(kind: BoundKind) -> usize {
    match kind {
        BoundKind::Deadline => 0,
        BoundKind::Error => 1,
    }
}

fn mode_idx(mode: SpeculationMode) -> usize {
    match mode {
        SpeculationMode::Gs => 0,
        SpeculationMode::Ras => 1,
    }
}

impl Inner {
    fn bump(&mut self, sample: &Sample, delta: isize) {
        let slot = &mut self.counts[kind_idx(sample.kind)][mode_idx(sample.mode)];
        *slot = slot.checked_add_signed(delta).expect("count underflow");
    }

    #[cfg(debug_assertions)]
    fn check_counts(&self) {
        let mut scanned = [[0usize; 2]; 2];
        for s in &self.samples {
            scanned[kind_idx(s.kind)][mode_idx(s.mode)] += 1;
        }
        debug_assert_eq!(scanned, self.counts, "incremental counts drifted");
    }

    #[cfg(not(debug_assertions))]
    fn check_counts(&self) {}
}

/// Thread-safe store of GS / RAS performance samples shared by every GRASS job in a
/// simulation run.
///
/// Per-(kind, mode) sample counts are maintained incrementally alongside the sample
/// vector, and a monotonically increasing *generation* is bumped on every mutation.
/// Together they let the switching evaluation's sparse-store pre-flight run without
/// scanning — and, via `StoreCounts` memoisation, usually without even taking the
/// lock.
#[derive(Debug, Default)]
pub struct SampleStore {
    inner: RwLock<Inner>,
    max_samples: usize,
    generation: AtomicU64,
}

/// Default cap on retained samples; old samples are evicted FIFO beyond this, which
/// mirrors the paper's choice to keep adapting to changing cluster conditions rather
/// than damping learning over time (§4.2).
const DEFAULT_MAX_SAMPLES: usize = 50_000;

impl SampleStore {
    /// Empty store with the default retention cap.
    pub fn new() -> Self {
        SampleStore {
            inner: RwLock::new(Inner::default()),
            max_samples: DEFAULT_MAX_SAMPLES,
            generation: AtomicU64::new(0),
        }
    }

    /// Empty store with an explicit retention cap (primarily for tests).
    pub fn with_capacity(max_samples: usize) -> Self {
        SampleStore {
            inner: RwLock::new(Inner::default()),
            max_samples: max_samples.max(1),
            generation: AtomicU64::new(0),
        }
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.inner.read().samples.len()
    }

    /// Whether the store holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutation counter: bumped once per [`record`](Self::record) /
    /// [`clear`](Self::clear). Two equal generations mean the store content (and
    /// hence any `StoreCounts` snapshot) is unchanged between the two reads.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Record a raw sample.
    pub fn record(&self, sample: Sample) {
        let mut guard = self.inner.write();
        if guard.samples.len() >= self.max_samples {
            let excess = guard.samples.len() + 1 - self.max_samples;
            for i in 0..excess {
                let (k, m) = (
                    kind_idx(guard.samples[i].kind),
                    mode_idx(guard.samples[i].mode),
                );
                guard.counts[k][m] -= 1;
            }
            guard.samples.drain(0..excess);
        }
        guard.bump(&sample, 1);
        guard.samples.push(sample);
        guard.check_counts();
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Record a completed job that ran pure `mode` throughout.
    pub fn record_outcome(&self, mode: SpeculationMode, outcome: &JobOutcome) {
        if let Some(sample) = Sample::from_outcome(mode, outcome) {
            self.record(sample);
        }
    }

    /// Count samples available for a given mode and bound kind, O(1).
    pub fn count_for(&self, mode: SpeculationMode, kind: BoundKind) -> usize {
        self.inner.read().counts[kind_idx(kind)][mode_idx(mode)]
    }

    /// Count samples available for both modes of one bound kind under a single lock
    /// acquisition: `(GS count, RAS count)`, O(1). Used by the switching evaluation
    /// to bail out before running a candidate-point sweep that cannot produce a
    /// prediction.
    pub fn counts_for_kind(&self, kind: BoundKind) -> (usize, usize) {
        let guard = self.inner.read();
        (
            guard.counts[kind_idx(kind)][mode_idx(SpeculationMode::Gs)],
            guard.counts[kind_idx(kind)][mode_idx(SpeculationMode::Ras)],
        )
    }

    /// Generation-tagged snapshot of every per-(kind, mode) count, one lock
    /// acquisition. The generation is read while the lock is held, so it matches
    /// the counts exactly.
    pub fn counts_snapshot(&self) -> StoreCounts {
        let guard = self.inner.read();
        StoreCounts {
            generation: self.generation.load(Ordering::Acquire),
            deadline: (
                guard.counts[kind_idx(BoundKind::Deadline)][mode_idx(SpeculationMode::Gs)],
                guard.counts[kind_idx(BoundKind::Deadline)][mode_idx(SpeculationMode::Ras)],
            ),
            error: (
                guard.counts[kind_idx(BoundKind::Error)][mode_idx(SpeculationMode::Gs)],
                guard.counts[kind_idx(BoundKind::Error)][mode_idx(SpeculationMode::Ras)],
            ),
        }
    }

    /// Predict the task-completion rate (tasks/second) of running pure `mode` under
    /// the query context, as a similarity-weighted mean over stored samples. Returns
    /// `None` when fewer than `min_samples` relevant samples exist.
    pub fn predict_rate(
        &self,
        mode: SpeculationMode,
        ctx: &QueryContext,
        factors: FactorSet,
        min_samples: usize,
    ) -> Option<f64> {
        let guard = self.inner.read();
        let mut weight_sum = 0.0;
        let mut weighted_rate = 0.0;
        let mut count = 0usize;
        for s in guard
            .samples
            .iter()
            .filter(|s| s.mode == mode && s.kind == ctx.kind)
        {
            let mut w = 1.0 / (1.0 + f64::from(s.size_bucket.distance(&ctx.size_bucket)));
            if factors.bound {
                let ratio = log_ratio(s.bound_value, ctx.bound_value);
                w *= 1.0 / (1.0 + ratio);
            }
            if factors.utilization {
                w *= 1.0 / (1.0 + 5.0 * (s.utilization - ctx.utilization).abs());
            }
            if factors.accuracy {
                w *= 1.0 / (1.0 + 5.0 * (s.accuracy - ctx.accuracy).abs());
            }
            weight_sum += w;
            weighted_rate += w * s.rate();
            count += 1;
        }
        if count < min_samples || weight_sum <= 0.0 {
            return None;
        }
        Some(weighted_rate / weight_sum)
    }

    /// Predict how many input tasks a job of this context would complete if it ran
    /// pure `mode` for `seconds` seconds.
    pub fn predict_deadline_completion(
        &self,
        mode: SpeculationMode,
        seconds: f64,
        ctx: &QueryContext,
        factors: FactorSet,
        min_samples: usize,
    ) -> Option<f64> {
        if seconds <= 0.0 {
            return Some(0.0);
        }
        let ctx = QueryContext {
            bound_value: seconds,
            ..*ctx
        };
        self.predict_rate(mode, &ctx, factors, min_samples)
            .map(|rate| rate * seconds)
    }

    /// Predict how long pure `mode` would take to complete `tasks` more tasks.
    pub fn predict_error_duration(
        &self,
        mode: SpeculationMode,
        tasks: f64,
        ctx: &QueryContext,
        factors: FactorSet,
        min_samples: usize,
    ) -> Option<f64> {
        if tasks <= 0.0 {
            return Some(0.0);
        }
        let ctx = QueryContext {
            bound_value: tasks,
            ..*ctx
        };
        let rate = self.predict_rate(mode, &ctx, factors, min_samples)?;
        if rate <= 0.0 {
            return None;
        }
        Some(tasks / rate)
    }

    /// Drop every stored sample.
    pub fn clear(&self) {
        let mut guard = self.inner.write();
        guard.samples.clear();
        guard.counts = [[0; 2]; 2];
        self.generation.fetch_add(1, Ordering::Release);
    }
}

/// `|log2(a / b)|`, guarded against non-positive inputs.
fn log_ratio(a: f64, b: f64) -> f64 {
    if a <= 0.0 || b <= 0.0 {
        return f64::INFINITY;
    }
    (a / b).log2().abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::JobId;

    fn sample(mode: SpeculationMode, kind: BoundKind, bound: f64, perf: f64) -> Sample {
        Sample {
            mode,
            kind,
            size_bucket: SizeBucket(5),
            bound_value: bound,
            performance: perf,
            utilization: 0.5,
            accuracy: 0.75,
        }
    }

    fn ctx(kind: BoundKind, bound: f64) -> QueryContext {
        QueryContext {
            kind,
            size_bucket: SizeBucket(5),
            bound_value: bound,
            utilization: 0.5,
            accuracy: 0.75,
        }
    }

    #[test]
    fn factor_sets() {
        assert_eq!(FactorSet::all().count(), 3);
        assert_eq!(FactorSet::best_one().count(), 1);
        assert_eq!(FactorSet::best_two_utilization().count(), 2);
        assert_eq!(FactorSet::best_two_accuracy().count(), 2);
        assert_eq!(FactorSet::default(), FactorSet::all());
    }

    #[test]
    fn sample_rates() {
        // Deadline: 20 tasks in a 10s deadline => 2 tasks/s.
        assert_eq!(
            sample(SpeculationMode::Gs, BoundKind::Deadline, 10.0, 20.0).rate(),
            2.0
        );
        // Error: 30 tasks needed, 15s duration => 2 tasks/s.
        assert_eq!(
            sample(SpeculationMode::Gs, BoundKind::Error, 30.0, 15.0).rate(),
            2.0
        );
        assert_eq!(
            sample(SpeculationMode::Gs, BoundKind::Deadline, 0.0, 20.0).rate(),
            0.0
        );
        assert_eq!(
            sample(SpeculationMode::Gs, BoundKind::Error, 30.0, 0.0).rate(),
            0.0
        );
    }

    #[test]
    fn store_records_and_counts() {
        let store = SampleStore::new();
        assert!(store.is_empty());
        store.record(sample(SpeculationMode::Gs, BoundKind::Deadline, 10.0, 20.0));
        store.record(sample(
            SpeculationMode::Ras,
            BoundKind::Deadline,
            10.0,
            25.0,
        ));
        store.record(sample(SpeculationMode::Gs, BoundKind::Error, 30.0, 15.0));
        assert_eq!(store.len(), 3);
        assert_eq!(store.count_for(SpeculationMode::Gs, BoundKind::Deadline), 1);
        assert_eq!(
            store.count_for(SpeculationMode::Ras, BoundKind::Deadline),
            1
        );
        assert_eq!(store.count_for(SpeculationMode::Ras, BoundKind::Error), 0);
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn incremental_counts_stay_exact_across_eviction_and_clear() {
        let store = SampleStore::with_capacity(4);
        let mix = [
            (SpeculationMode::Gs, BoundKind::Deadline),
            (SpeculationMode::Ras, BoundKind::Deadline),
            (SpeculationMode::Gs, BoundKind::Error),
            (SpeculationMode::Ras, BoundKind::Error),
        ];
        // 10 records into a 4-slot store: every record past the 4th evicts the
        // oldest, exercising the decrement path with mixed kinds and modes.
        for i in 0..10 {
            let (mode, kind) = mix[i % mix.len()];
            store.record(sample(mode, kind, 10.0, 20.0));
            // Ground truth by definition: count_for must always equal a full scan —
            // here recomputed from the deterministic record/evict pattern.
            for (m, k) in mix {
                let expected = (0..=i)
                    .skip(i.saturating_sub(3))
                    .filter(|j| mix[j % mix.len()] == (m, k))
                    .count();
                assert_eq!(store.count_for(m, k), expected, "after record {i}");
            }
        }
        let snapshot = store.counts_snapshot();
        assert_eq!(snapshot.for_kind(BoundKind::Deadline), (1, 1));
        assert_eq!(snapshot.for_kind(BoundKind::Error), (1, 1));
        assert_eq!(store.counts_for_kind(BoundKind::Deadline), (1, 1));
        store.clear();
        assert_eq!(store.counts_for_kind(BoundKind::Deadline), (0, 0));
        assert_eq!(store.counts_for_kind(BoundKind::Error), (0, 0));
    }

    #[test]
    fn generation_moves_on_every_mutation_and_tags_snapshots() {
        let store = SampleStore::new();
        let g0 = store.generation();
        store.record(sample(SpeculationMode::Gs, BoundKind::Deadline, 10.0, 20.0));
        let g1 = store.generation();
        assert!(g1 > g0);
        let snap = store.counts_snapshot();
        assert_eq!(snap.generation, g1);
        assert_eq!(snap.deadline, (1, 0));
        // No mutation => generation (and any memo keyed on it) stays valid.
        assert_eq!(store.generation(), g1);
        store.clear();
        assert!(store.generation() > g1);
    }

    #[test]
    fn store_evicts_oldest_beyond_capacity() {
        let store = SampleStore::with_capacity(3);
        for i in 0..5 {
            store.record(sample(
                SpeculationMode::Gs,
                BoundKind::Deadline,
                10.0,
                i as f64,
            ));
        }
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn prediction_requires_min_samples() {
        let store = SampleStore::new();
        store.record(sample(SpeculationMode::Gs, BoundKind::Deadline, 10.0, 20.0));
        let c = ctx(BoundKind::Deadline, 10.0);
        assert!(store
            .predict_rate(SpeculationMode::Gs, &c, FactorSet::all(), 2)
            .is_none());
        assert!(store
            .predict_rate(SpeculationMode::Gs, &c, FactorSet::all(), 1)
            .is_some());
        assert!(store
            .predict_rate(SpeculationMode::Ras, &c, FactorSet::all(), 1)
            .is_none());
    }

    #[test]
    fn prediction_is_weighted_mean_of_rates() {
        let store = SampleStore::new();
        for _ in 0..5 {
            store.record(sample(SpeculationMode::Gs, BoundKind::Deadline, 10.0, 20.0));
        }
        let c = ctx(BoundKind::Deadline, 10.0);
        let rate = store
            .predict_rate(SpeculationMode::Gs, &c, FactorSet::all(), 1)
            .unwrap();
        assert!((rate - 2.0).abs() < 1e-9);
        let completed = store
            .predict_deadline_completion(SpeculationMode::Gs, 5.0, &c, FactorSet::all(), 1)
            .unwrap();
        assert!((completed - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bound_factor_prefers_similar_bounds() {
        let store = SampleStore::new();
        // Short-deadline samples show GS completing fast, long-deadline samples slow.
        store.record(sample(SpeculationMode::Gs, BoundKind::Deadline, 2.0, 10.0)); // 5 tasks/s
        store.record(sample(
            SpeculationMode::Gs,
            BoundKind::Deadline,
            100.0,
            100.0,
        )); // 1 task/s
        let short = ctx(BoundKind::Deadline, 2.0);
        let long = ctx(BoundKind::Deadline, 100.0);
        let with_bound = FactorSet::best_one();
        let r_short = store
            .predict_rate(SpeculationMode::Gs, &short, with_bound, 1)
            .unwrap();
        let r_long = store
            .predict_rate(SpeculationMode::Gs, &long, with_bound, 1)
            .unwrap();
        assert!(r_short > r_long, "{r_short} should exceed {r_long}");
        // Without the bound factor both queries see the same mixture.
        let without = FactorSet {
            bound: false,
            utilization: false,
            accuracy: false,
        };
        let r1 = store
            .predict_rate(SpeculationMode::Gs, &short, without, 1)
            .unwrap();
        let r2 = store
            .predict_rate(SpeculationMode::Gs, &long, without, 1)
            .unwrap();
        assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn error_duration_prediction_scales_with_tasks() {
        let store = SampleStore::new();
        store.record(sample(SpeculationMode::Ras, BoundKind::Error, 30.0, 15.0)); // 2 tasks/s
        let c = ctx(BoundKind::Error, 10.0);
        let d = store
            .predict_error_duration(SpeculationMode::Ras, 10.0, &c, FactorSet::all(), 1)
            .unwrap();
        assert!((d - 5.0).abs() < 1e-9);
        assert_eq!(
            store.predict_error_duration(SpeculationMode::Ras, 0.0, &c, FactorSet::all(), 1),
            Some(0.0)
        );
    }

    #[test]
    fn sample_from_outcome_round_trips() {
        let outcome = JobOutcome {
            job: JobId(9),
            policy: "GS".to_string(),
            bound: Bound::Deadline(40.0),
            input_tasks: 100,
            total_tasks: 100,
            dag_length: 1,
            arrival: 0.0,
            finish: 40.0,
            completed_input_tasks: 60,
            completed_tasks: 60,
            speculative_copies: 5,
            killed_copies: 2,
            slot_seconds: 500.0,
            avg_wave_width: 10.0,
            avg_cluster_utilization: 0.8,
            avg_estimation_accuracy: 0.7,
        };
        let s = Sample::from_outcome(SpeculationMode::Gs, &outcome).unwrap();
        assert_eq!(s.kind, BoundKind::Deadline);
        assert_eq!(s.bound_value, 40.0);
        assert_eq!(s.performance, 60.0);
        assert_eq!(s.size_bucket, SizeBucket::of(100));

        let error_outcome = JobOutcome {
            bound: Bound::Error(0.2),
            finish: 25.0,
            ..outcome.clone()
        };
        let s = Sample::from_outcome(SpeculationMode::Ras, &error_outcome).unwrap();
        assert_eq!(s.kind, BoundKind::Error);
        assert_eq!(s.bound_value, 80.0);
        assert_eq!(s.performance, 25.0);

        // Degenerate outcomes produce no sample.
        let zero_duration = JobOutcome {
            bound: Bound::Error(0.2),
            finish: 0.0,
            ..outcome
        };
        assert!(Sample::from_outcome(SpeculationMode::Ras, &zero_duration).is_none());
    }
}
