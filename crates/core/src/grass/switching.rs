//! Switching-point evaluation: when should a GRASS job stop running RAS and switch to
//! GS?
//!
//! Two strategies are implemented:
//!
//! * [`SwitchStrategy::Learned`] — the full GRASS approach of §4.1: step through every
//!   candidate switch point in the job's remaining work, predict the composite
//!   performance of a RAS prefix followed by a GS suffix using the shared
//!   [`SampleStore`], and switch when "now" is the best point.
//! * [`SwitchStrategy::Strawman`] — the static rule derived directly from Guideline 3
//!   and used as a comparison point in §6.3.2: switch when roughly two waves of work
//!   remain.

use serde::{Deserialize, Serialize};

use crate::grass::samples::{BoundKind, FactorSet, QueryContext, SampleStore, StoreCounts};
use crate::job::{Bound, JobView};
use crate::speculation::SpeculationMode;

/// Configuration of the strawman (static two-wave) switcher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrawmanConfig {
    /// How many waves of remaining work trigger the switch. The paper's strawman uses
    /// two (Guideline 3).
    pub waves: f64,
}

impl Default for StrawmanConfig {
    fn default() -> Self {
        StrawmanConfig { waves: 2.0 }
    }
}

/// Which switching rule a GRASS instance uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum SwitchStrategy {
    /// Learned switching over the sample store (the real GRASS).
    #[default]
    Learned,
    /// Static two-wave strawman (§6.3.2).
    Strawman(StrawmanConfig),
    /// Never switch (pure RAS, useful for tests and ablations).
    Never,
}

/// Parameters of the learned evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearnedParams {
    /// Which factors participate in sample matching.
    pub factors: FactorSet,
    /// Minimum number of relevant samples (per mode) before predictions are trusted.
    pub min_samples: usize,
    /// Number of candidate switch points evaluated across the remaining work.
    pub candidate_points: usize,
}

impl Default for LearnedParams {
    fn default() -> Self {
        LearnedParams {
            factors: FactorSet::all(),
            min_samples: 3,
            candidate_points: 10,
        }
    }
}

/// Decision returned by the evaluators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchDecision {
    /// Switch to GS now.
    SwitchNow,
    /// Stay on RAS for the moment.
    Stay,
}

/// Per-job scratch and memo state for the switching scan.
///
/// The deadline-bound rules need the median `tnew` of the job's eligible tasks,
/// which naively means collecting and ordering the whole task list on every
/// `choose()` call (the ~3× decision-latency overhead GRASS showed over GS/RAS in
/// `microbench/policy_choose_500_tasks`). Task `tnew` estimates and stage
/// eligibility only change when a task completes, so the median is memoised keyed on
/// the job's identity and completion progress, and the collection buffer is reused
/// across calls. The job id in the key makes a cache accidentally shared across
/// jobs correct (it just stops memoising effectively); the intended use is still
/// one cache per job, which is what `GrassPolicy` does.
///
/// The cache also memoises the learned evaluation's sparse-store pre-flight: a
/// `StoreCounts` snapshot keyed on the [`SampleStore`] generation. GRASS stores
/// mutate only when a pure-GS/pure-RAS job *finishes*, but `choose()` consults the
/// pre-flight on every scheduling decision, so the generation check turns the
/// per-decision count query (a lock acquisition, and before the counts became
/// incremental a full store scan) into a single atomic load on the hot path. The
/// memo is shared safely across jobs because the generation identifies the store
/// state, not the querying job.
#[derive(Debug, Clone, Default)]
pub struct SwitchScanCache {
    scratch: Vec<f64>,
    /// `(job, completed_tasks, unfinished view length) -> median tnew` memo.
    memo: Option<((crate::task::JobId, usize, usize), f64)>,
    /// Generation-tagged per-(kind, mode) count snapshot of the sample store.
    preflight: Option<StoreCounts>,
}

impl SwitchScanCache {
    /// Empty cache.
    pub fn new() -> Self {
        SwitchScanCache::default()
    }

    /// Drop the memoised scan and pre-flight snapshot (the next call recomputes
    /// from the view and store).
    pub fn invalidate(&mut self) {
        self.memo = None;
        self.preflight = None;
    }

    /// `(GS, RAS)` sample counts for `kind`, re-snapshotting only when the store
    /// generation moved since the last evaluation.
    fn preflight_counts(&mut self, store: &SampleStore, kind: BoundKind) -> (usize, usize) {
        if let Some(cached) = self.preflight {
            if cached.generation == store.generation() {
                return cached.for_kind(kind);
            }
        }
        let snapshot = store.counts_snapshot();
        self.preflight = Some(snapshot);
        snapshot.for_kind(kind)
    }

    /// Median `tnew` across the view's eligible tasks, memoised on the job's
    /// completion progress. Returns 0.0 when no task has a usable estimate.
    fn median_tnew(&mut self, view: &JobView) -> f64 {
        let key = (view.job, view.completed_tasks, view.tasks.len());
        if let Some((cached_key, median)) = self.memo {
            if cached_key == key {
                return median;
            }
        }
        self.scratch.clear();
        self.scratch.extend(
            view.tasks
                .iter()
                .filter(|t| t.eligible)
                .map(|t| t.tnew)
                .filter(|v| v.is_finite() && *v > 0.0),
        );
        let median = if self.scratch.is_empty() {
            0.0
        } else {
            // O(n) selection instead of a full sort: only the median is needed.
            let mid = self.scratch.len() / 2;
            *self
                .scratch
                .select_nth_unstable_by(mid, |a, b| a.total_cmp(b))
                .1
        };
        self.memo = Some((key, median));
        median
    }
}

/// Evaluate the strawman rule: switch once at most `cfg.waves` waves of work remain.
///
/// Stateless convenience wrapper over [`strawman_decision_cached`]; policies that
/// evaluate repeatedly should hold a [`SwitchScanCache`] and use the cached variant.
pub fn strawman_decision(view: &JobView, cfg: &StrawmanConfig) -> SwitchDecision {
    strawman_decision_cached(view, cfg, &mut SwitchScanCache::new())
}

/// Evaluate the strawman rule using a per-job [`SwitchScanCache`].
pub fn strawman_decision_cached(
    view: &JobView,
    cfg: &StrawmanConfig,
    cache: &mut SwitchScanCache,
) -> SwitchDecision {
    match view.bound {
        Bound::Deadline(_) => {
            // "The point when the time to the deadline is sufficient for at most two
            // waves of tasks": compare remaining deadline against `waves` × the median
            // duration of a task (approximated by the median tnew of unfinished tasks).
            let remaining = view.remaining_deadline().unwrap_or(f64::INFINITY);
            let median = cache.median_tnew(view);
            if median <= 0.0 {
                return SwitchDecision::Stay;
            }
            if remaining <= cfg.waves * median {
                SwitchDecision::SwitchNow
            } else {
                SwitchDecision::Stay
            }
        }
        Bound::Error(_) => {
            // "When the number of (unique) scheduled tasks needed to satisfy the
            // error-bound make up two waves."
            let needed = view.input_tasks_still_needed().unwrap_or(0);
            let wave = view.wave_width.max(1);
            if needed <= (cfg.waves * wave as f64).ceil() as usize {
                SwitchDecision::SwitchNow
            } else {
                SwitchDecision::Stay
            }
        }
    }
}

/// Evaluate the learned rule against the sample store. Falls back to the strawman rule
/// when the store does not yet hold enough samples for a prediction (a freshly started
/// cluster has nothing to learn from).
///
/// Stateless convenience wrapper over [`learned_decision_cached`].
pub fn learned_decision(
    view: &JobView,
    store: &SampleStore,
    params: &LearnedParams,
) -> SwitchDecision {
    learned_decision_cached(view, store, params, &mut SwitchScanCache::new())
}

/// Evaluate the learned rule using a per-job [`SwitchScanCache`] for the strawman
/// fallback's task-list scan.
pub fn learned_decision_cached(
    view: &JobView,
    store: &SampleStore,
    params: &LearnedParams,
    cache: &mut SwitchScanCache,
) -> SwitchDecision {
    match view.bound {
        Bound::Deadline(_) => learned_deadline(view, store, params, cache),
        Bound::Error(_) => learned_error(view, store, params, cache),
    }
    .unwrap_or_else(|| strawman_decision_cached(view, &StrawmanConfig::default(), cache))
}

/// Deadline-bound learned evaluation (§4.1's worked example: with 6s to the deadline,
/// compare switching now against switching after 1s, 2s, … using samples of jobs with
/// matching deadlines run pure-RAS / pure-GS).
fn learned_deadline(
    view: &JobView,
    store: &SampleStore,
    params: &LearnedParams,
    cache: &mut SwitchScanCache,
) -> Option<SwitchDecision> {
    let remaining = view.remaining_deadline()?;
    if remaining <= 0.0 {
        return Some(SwitchDecision::SwitchNow);
    }
    if let Some(shortcut) = sparse_store_shortcut(store, BoundKind::Deadline, params, cache) {
        return shortcut;
    }
    let ctx = query_context(view, BoundKind::Deadline, remaining);
    let points = params.candidate_points.max(1);
    let step = remaining / points as f64;

    let mut best_value = f64::NEG_INFINITY;
    let mut best_switch_delay = 0.0;
    let mut any_prediction = false;
    for i in 0..=points {
        let delay = step * i as f64; // run RAS for `delay`, then GS for the rest
        let ras_part = store.predict_deadline_completion(
            SpeculationMode::Ras,
            delay,
            &ctx,
            params.factors,
            params.min_samples,
        );
        let gs_part = store.predict_deadline_completion(
            SpeculationMode::Gs,
            remaining - delay,
            &ctx,
            params.factors,
            params.min_samples,
        );
        let (Some(r), Some(g)) = (ras_part, gs_part) else {
            continue;
        };
        any_prediction = true;
        let value = r + g;
        if value > best_value + 1e-9 {
            best_value = value;
            best_switch_delay = delay;
        }
    }
    if !any_prediction {
        return None;
    }
    Some(if best_switch_delay <= step * 0.5 {
        SwitchDecision::SwitchNow
    } else {
        SwitchDecision::Stay
    })
}

/// Error-bound learned evaluation: split the remaining needed tasks into a RAS-handled
/// prefix and a GS-handled suffix and pick the split with the smallest predicted total
/// duration.
fn learned_error(
    view: &JobView,
    store: &SampleStore,
    params: &LearnedParams,
    cache: &mut SwitchScanCache,
) -> Option<SwitchDecision> {
    let needed = view.input_tasks_still_needed()? as f64;
    if needed <= 0.0 {
        return Some(SwitchDecision::SwitchNow);
    }
    if let Some(shortcut) = sparse_store_shortcut(store, BoundKind::Error, params, cache) {
        return shortcut;
    }
    let ctx = query_context(view, BoundKind::Error, needed);
    let points = params.candidate_points.max(1);
    let step = needed / points as f64;

    let mut best_value = f64::INFINITY;
    let mut best_ras_tasks = 0.0;
    let mut any_prediction = false;
    for i in 0..=points {
        let ras_tasks = step * i as f64;
        let ras_part = store.predict_error_duration(
            SpeculationMode::Ras,
            ras_tasks,
            &ctx,
            params.factors,
            params.min_samples,
        );
        let gs_part = store.predict_error_duration(
            SpeculationMode::Gs,
            needed - ras_tasks,
            &ctx,
            params.factors,
            params.min_samples,
        );
        let (Some(r), Some(g)) = (ras_part, gs_part) else {
            continue;
        };
        any_prediction = true;
        let value = r + g;
        if value < best_value - 1e-9 {
            best_value = value;
            best_ras_tasks = ras_tasks;
        }
    }
    if !any_prediction {
        return None;
    }
    Some(if best_ras_tasks <= step * 0.5 {
        SwitchDecision::SwitchNow
    } else {
        SwitchDecision::Stay
    })
}

/// Cheap pre-flight over the sample store: when *neither* mode holds
/// `min_samples` relevant samples — the cold-start case every GRASS job hits
/// before the ξ-perturbation has produced learning data — the candidate-point
/// sweep cannot yield a prediction at any split point (a positive-length segment
/// of either mode returns `None`, and every split has at least one such segment),
/// so a memoised count lookup replaces up to `2 × (candidate_points + 1)` store
/// scans that would each come back empty. The counts come from the cache's
/// generation-keyed `StoreCounts` snapshot: one atomic load per decision while
/// the store is unmutated, one O(1) locked snapshot when it has changed.
///
/// Deliberately conservative: with samples for only one mode, zero-length
/// segments (`Some(0.0)`) can still combine with the sampled mode into a
/// prediction whose outcome depends on the predicted *values*, so the full sweep
/// runs for those cases rather than approximating it here.
///
/// Returns `Some(None)` for "no prediction possible, fall back to the strawman
/// rule" and `None` when the sweep must run.
#[allow(clippy::option_option)]
fn sparse_store_shortcut(
    store: &SampleStore,
    kind: BoundKind,
    params: &LearnedParams,
    cache: &mut SwitchScanCache,
) -> Option<Option<SwitchDecision>> {
    let (gs, ras) = cache.preflight_counts(store, kind);
    let min = params.min_samples;
    if gs < min && ras < min {
        Some(None)
    } else {
        None
    }
}

fn query_context(view: &JobView, kind: BoundKind, bound_value: f64) -> QueryContext {
    QueryContext {
        kind,
        size_bucket: crate::bins::SizeBucket::of(view.total_input_tasks),
        bound_value,
        utilization: view.cluster_utilization,
        accuracy: view.estimation_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::SizeBucket;
    use crate::grass::samples::Sample;
    use crate::task::{JobId, StageId, TaskId, TaskView};

    fn unscheduled(id: u32, tnew: f64) -> TaskView {
        TaskView {
            id: TaskId(id),
            stage: StageId::INPUT,
            eligible: true,
            running_copies: 0,
            elapsed: 0.0,
            progress: 0.0,
            progress_rate: 0.0,
            trem: f64::INFINITY,
            tnew,
            true_remaining: tnew,
            true_new_hint: tnew,
            work: tnew,
        }
    }

    fn view<'a>(
        tasks: &'a [TaskView],
        bound: Bound,
        now: f64,
        wave_width: usize,
        completed: usize,
        total: usize,
    ) -> JobView<'a> {
        JobView {
            job: JobId(1),
            now,
            arrival: 0.0,
            bound,
            input_deadline: None,
            total_input_tasks: total,
            completed_input_tasks: completed,
            total_tasks: total,
            completed_tasks: completed,
            tasks,
            wave_width,
            cluster_utilization: 0.5,
            estimation_accuracy: 0.75,
        }
    }

    fn store_with_rates(gs_rate: f64, ras_rate: f64, kind: BoundKind) -> SampleStore {
        let store = SampleStore::new();
        for _ in 0..5 {
            let (bound, perf_gs, perf_ras) = match kind {
                BoundKind::Deadline => (10.0, gs_rate * 10.0, ras_rate * 10.0),
                BoundKind::Error => (10.0, 10.0 / gs_rate, 10.0 / ras_rate),
            };
            store.record(Sample {
                mode: SpeculationMode::Gs,
                kind,
                size_bucket: SizeBucket::of(20),
                bound_value: bound,
                performance: perf_gs,
                utilization: 0.5,
                accuracy: 0.75,
            });
            store.record(Sample {
                mode: SpeculationMode::Ras,
                kind,
                size_bucket: SizeBucket::of(20),
                bound_value: bound,
                performance: perf_ras,
                utilization: 0.5,
                accuracy: 0.75,
            });
        }
        store
    }

    #[test]
    fn strawman_deadline_switches_inside_two_waves() {
        let tasks: Vec<TaskView> = (0..6).map(|i| unscheduled(i, 4.0)).collect();
        // Remaining deadline 20s, median task 4s, two waves = 8s => stay.
        let v = view(&tasks, Bound::Deadline(20.0), 0.0, 2, 0, 20);
        assert_eq!(
            strawman_decision(&v, &StrawmanConfig::default()),
            SwitchDecision::Stay
        );
        // Remaining 6s <= 8s => switch.
        let v = view(&tasks, Bound::Deadline(20.0), 14.0, 2, 0, 20);
        assert_eq!(
            strawman_decision(&v, &StrawmanConfig::default()),
            SwitchDecision::SwitchNow
        );
    }

    #[test]
    fn strawman_error_switches_when_needed_tasks_fit_in_two_waves() {
        let tasks: Vec<TaskView> = (0..30).map(|i| unscheduled(i, 4.0)).collect();
        // 100 input tasks, ε = 0.2 => 80 needed; 50 done => 30 still needed.
        let v = view(&tasks, Bound::Error(0.2), 10.0, 5, 50, 100);
        // Two waves of 5 slots = 10 < 30 => stay.
        assert_eq!(
            strawman_decision(&v, &StrawmanConfig::default()),
            SwitchDecision::Stay
        );
        // 72 done => 8 still needed <= 10 => switch.
        let v = view(&tasks, Bound::Error(0.2), 10.0, 5, 72, 100);
        assert_eq!(
            strawman_decision(&v, &StrawmanConfig::default()),
            SwitchDecision::SwitchNow
        );
    }

    #[test]
    fn strawman_stays_when_no_duration_information() {
        let tasks: Vec<TaskView> = vec![];
        let v = view(&tasks, Bound::Deadline(20.0), 0.0, 2, 0, 20);
        assert_eq!(
            strawman_decision(&v, &StrawmanConfig::default()),
            SwitchDecision::Stay
        );
    }

    #[test]
    fn learned_deadline_switches_when_gs_rate_dominates() {
        let tasks: Vec<TaskView> = (0..20).map(|i| unscheduled(i, 4.0)).collect();
        let v = view(&tasks, Bound::Deadline(40.0), 0.0, 2, 0, 20);
        // GS completes 3 tasks/s, RAS 1 task/s everywhere => best to switch now.
        let store = store_with_rates(3.0, 1.0, BoundKind::Deadline);
        let d = learned_decision(&v, &store, &LearnedParams::default());
        assert_eq!(d, SwitchDecision::SwitchNow);
        // RAS dominates => stay.
        let store = store_with_rates(1.0, 3.0, BoundKind::Deadline);
        let d = learned_decision(&v, &store, &LearnedParams::default());
        assert_eq!(d, SwitchDecision::Stay);
    }

    #[test]
    fn learned_error_switches_when_gs_is_faster() {
        let tasks: Vec<TaskView> = (0..40).map(|i| unscheduled(i, 4.0)).collect();
        let v = view(&tasks, Bound::Error(0.1), 0.0, 4, 10, 100);
        let store = store_with_rates(3.0, 1.0, BoundKind::Error);
        assert_eq!(
            learned_decision(&v, &store, &LearnedParams::default()),
            SwitchDecision::SwitchNow
        );
        let store = store_with_rates(1.0, 3.0, BoundKind::Error);
        assert_eq!(
            learned_decision(&v, &store, &LearnedParams::default()),
            SwitchDecision::Stay
        );
    }

    #[test]
    fn cached_scan_matches_uncached_and_memoises() {
        let tasks: Vec<TaskView> = (0..101)
            .map(|i| unscheduled(i, (i % 9) as f64 + 1.0))
            .collect();
        let v = view(&tasks, Bound::Deadline(30.0), 0.0, 2, 0, 120);
        let mut cache = SwitchScanCache::new();
        let cached = strawman_decision_cached(&v, &StrawmanConfig::default(), &mut cache);
        let uncached = strawman_decision(&v, &StrawmanConfig::default());
        assert_eq!(cached, uncached);
        // Second evaluation with unchanged progress hits the memo.
        assert!(cache.memo.is_some());
        let memo_before = cache.memo;
        let again = strawman_decision_cached(&v, &StrawmanConfig::default(), &mut cache);
        assert_eq!(again, cached);
        assert_eq!(cache.memo, memo_before);
        // Progress changes (a task completed) invalidate the key.
        let shorter = &tasks[..90];
        let v2 = view(shorter, Bound::Deadline(30.0), 0.0, 2, 11, 120);
        strawman_decision_cached(&v2, &StrawmanConfig::default(), &mut cache);
        assert_ne!(cache.memo, memo_before);
        // Manual invalidation drops the memo.
        cache.invalidate();
        assert!(cache.memo.is_none());
    }

    #[test]
    fn memo_is_keyed_by_job_identity() {
        let tasks: Vec<TaskView> = (0..10).map(|i| unscheduled(i, 4.0)).collect();
        let mut v = view(&tasks, Bound::Deadline(30.0), 0.0, 2, 0, 20);
        let mut cache = SwitchScanCache::new();
        strawman_decision_cached(&v, &StrawmanConfig::default(), &mut cache);
        let memo = cache.memo;
        // Same progress numbers but a different job: the memo must not be reused.
        v.job = JobId(2);
        strawman_decision_cached(&v, &StrawmanConfig::default(), &mut cache);
        assert_ne!(cache.memo, memo);
    }

    #[test]
    fn cached_median_is_the_sorted_median() {
        // Even- and odd-length eligible sets: the O(n) selection must agree with the
        // upper median of a full sort.
        for n in [7u32, 8, 101, 500] {
            let tasks: Vec<TaskView> = (0..n)
                .map(|i| unscheduled(i, ((i * 37) % 23) as f64 + 0.5))
                .collect();
            let v = view(&tasks, Bound::Deadline(1000.0), 0.0, 2, 0, n as usize);
            let mut cache = SwitchScanCache::new();
            let selected = cache.median_tnew(&v);
            let mut sorted: Vec<f64> = tasks.iter().map(|t| t.tnew).collect();
            sorted.sort_by(f64::total_cmp);
            assert_eq!(selected, sorted[sorted.len() / 2], "n = {n}");
        }
    }

    #[test]
    fn preflight_memo_preserves_decisions_across_store_mutations() {
        // Decision-equivalence regression for the generation-keyed pre-flight memo:
        // walk the store through every state the shortcut distinguishes (empty,
        // one mode below `min_samples`, one mode at the threshold, both at it,
        // cleared) and require a long-lived cache to agree with a fresh evaluation
        // at every step — i.e. the memo must never serve counts from a previous
        // store state that could change the sweep-vs-shortcut choice.
        let params = LearnedParams::default();
        let tasks: Vec<TaskView> = (0..20).map(|i| unscheduled(i, 4.0)).collect();
        let dl_view = view(&tasks, Bound::Deadline(40.0), 0.0, 2, 0, 20);
        let err_view = view(&tasks, Bound::Error(0.1), 0.0, 4, 10, 100);
        let store = SampleStore::new();
        let mut cache = SwitchScanCache::new();

        let check = |store: &SampleStore, cache: &mut SwitchScanCache| {
            for v in [&dl_view, &err_view] {
                let with_memo = learned_decision_cached(v, store, &params, cache);
                let fresh = learned_decision(v, store, &params);
                assert_eq!(with_memo, fresh, "memoised decision diverged");
            }
            assert_eq!(
                cache.preflight.expect("pre-flight snapshot taken"),
                store.counts_snapshot(),
                "memoised snapshot is stale"
            );
        };

        check(&store, &mut cache);
        for kind in [BoundKind::Deadline, BoundKind::Error] {
            for i in 0..params.min_samples {
                store.record(Sample {
                    mode: SpeculationMode::Ras,
                    kind,
                    size_bucket: SizeBucket::of(20),
                    bound_value: 10.0,
                    performance: 10.0 + i as f64,
                    utilization: 0.5,
                    accuracy: 0.75,
                });
                check(&store, &mut cache);
            }
        }
        // RAS now satisfies min_samples alone: the sweep must run (and find no
        // full prediction), not the shortcut.
        for kind in [BoundKind::Deadline, BoundKind::Error] {
            for _ in 0..params.min_samples {
                store.record(Sample {
                    mode: SpeculationMode::Gs,
                    kind,
                    size_bucket: SizeBucket::of(20),
                    bound_value: 10.0,
                    performance: 30.0,
                    utilization: 0.5,
                    accuracy: 0.75,
                });
                check(&store, &mut cache);
            }
        }
        store.clear();
        check(&store, &mut cache);
    }

    #[test]
    fn preflight_memo_is_reused_while_the_store_is_unmutated() {
        let store = store_with_rates(3.0, 1.0, BoundKind::Deadline);
        let tasks: Vec<TaskView> = (0..20).map(|i| unscheduled(i, 4.0)).collect();
        let v = view(&tasks, Bound::Deadline(40.0), 0.0, 2, 0, 20);
        let mut cache = SwitchScanCache::new();
        learned_decision_cached(&v, &store, &LearnedParams::default(), &mut cache);
        let snapshot = cache.preflight.expect("snapshot taken");
        assert_eq!(snapshot.generation, store.generation());
        learned_decision_cached(&v, &store, &LearnedParams::default(), &mut cache);
        assert_eq!(
            cache.preflight,
            Some(snapshot),
            "unchanged store re-snapshotted"
        );
        // A mutation moves the generation; the next evaluation refreshes.
        store.record(Sample {
            mode: SpeculationMode::Gs,
            kind: BoundKind::Error,
            size_bucket: SizeBucket::of(20),
            bound_value: 10.0,
            performance: 10.0,
            utilization: 0.5,
            accuracy: 0.75,
        });
        assert_ne!(snapshot.generation, store.generation());
        learned_decision_cached(&v, &store, &LearnedParams::default(), &mut cache);
        assert_eq!(cache.preflight, Some(store.counts_snapshot()));
        // Manual invalidation drops the snapshot alongside the median memo.
        cache.invalidate();
        assert!(cache.preflight.is_none());
    }

    #[test]
    fn learned_falls_back_to_strawman_without_samples() {
        let store = SampleStore::new();
        let tasks: Vec<TaskView> = (0..6).map(|i| unscheduled(i, 4.0)).collect();
        // Far from the deadline: strawman says stay.
        let v = view(&tasks, Bound::Deadline(100.0), 0.0, 2, 0, 20);
        assert_eq!(
            learned_decision(&v, &store, &LearnedParams::default()),
            SwitchDecision::Stay
        );
        // Close to the deadline: strawman says switch.
        let v = view(&tasks, Bound::Deadline(100.0), 95.0, 2, 0, 20);
        assert_eq!(
            learned_decision(&v, &store, &LearnedParams::default()),
            SwitchDecision::SwitchNow
        );
    }
}
