//! Frozen pre-partitioning [`SampleStore`](crate::grass::SampleStore) — differential
//! oracle only.
//!
//! This is a verbatim copy of the sample store as it stood before the partitioned /
//! sketched rebuild: one flat `Vec<Sample>` behind a lock, `predict_rate` scanning the
//! whole vector with a `(mode, kind)` filter, and `record` draining evicted samples
//! from the front. It exists so the equivalence proptests
//! (`tests/store_equivalence.rs`) can compare the optimised store **bit-for-bit**
//! against the exact behaviour the repository's pinned digests were produced with.
//!
//! **Do not optimise, fix or otherwise improve this module.** Any divergence from the
//! historical behaviour silently weakens the differential tests. The same convention
//! as `grass_sim::reference` applies: not re-exported from the crate root or the
//! facade prelude, reachable as `grass_core::grass::reference` for tests and
//! diagnostics.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::grass::samples::{BoundKind, FactorSet, QueryContext, Sample, StoreCounts};
use crate::outcome::JobOutcome;
use crate::speculation::SpeculationMode;

/// Samples plus the incrementally maintained `counts[kind][mode]` table, kept under
/// one lock so they can never disagree.
#[derive(Debug, Default)]
struct Inner {
    samples: Vec<Sample>,
    counts: [[usize; 2]; 2],
}

fn kind_idx(kind: BoundKind) -> usize {
    match kind {
        BoundKind::Deadline => 0,
        BoundKind::Error => 1,
    }
}

fn mode_idx(mode: SpeculationMode) -> usize {
    match mode {
        SpeculationMode::Gs => 0,
        SpeculationMode::Ras => 1,
    }
}

impl Inner {
    fn bump(&mut self, sample: &Sample, delta: isize) {
        let slot = &mut self.counts[kind_idx(sample.kind)][mode_idx(sample.mode)];
        *slot = slot.checked_add_signed(delta).expect("count underflow");
    }

    #[cfg(debug_assertions)]
    fn check_counts(&self) {
        let mut scanned = [[0usize; 2]; 2];
        for s in &self.samples {
            scanned[kind_idx(s.kind)][mode_idx(s.mode)] += 1;
        }
        debug_assert_eq!(scanned, self.counts, "incremental counts drifted");
    }

    #[cfg(not(debug_assertions))]
    fn check_counts(&self) {}
}

/// The pre-rebuild flat-`Vec` sample store, frozen for differential testing.
#[derive(Debug, Default)]
pub struct ReferenceSampleStore {
    inner: RwLock<Inner>,
    max_samples: usize,
    generation: AtomicU64,
}

/// Default cap on retained samples (identical to the live store's).
const DEFAULT_MAX_SAMPLES: usize = 50_000;

impl ReferenceSampleStore {
    /// Empty store with the default retention cap.
    pub fn new() -> Self {
        ReferenceSampleStore {
            inner: RwLock::new(Inner::default()),
            max_samples: DEFAULT_MAX_SAMPLES,
            generation: AtomicU64::new(0),
        }
    }

    /// Empty store with an explicit retention cap (primarily for tests).
    pub fn with_capacity(max_samples: usize) -> Self {
        ReferenceSampleStore {
            inner: RwLock::new(Inner::default()),
            max_samples: max_samples.max(1),
            generation: AtomicU64::new(0),
        }
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.inner.read().samples.len()
    }

    /// Whether the store holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutation counter: bumped once per `record` / `clear`.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Record a raw sample (historical front-drain eviction, O(len) at capacity).
    pub fn record(&self, sample: Sample) {
        let mut guard = self.inner.write();
        if guard.samples.len() >= self.max_samples {
            let excess = guard.samples.len() + 1 - self.max_samples;
            for i in 0..excess {
                let (k, m) = (
                    kind_idx(guard.samples[i].kind),
                    mode_idx(guard.samples[i].mode),
                );
                guard.counts[k][m] -= 1;
            }
            guard.samples.drain(0..excess);
        }
        guard.bump(&sample, 1);
        guard.samples.push(sample);
        guard.check_counts();
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Record a completed job that ran pure `mode` throughout.
    pub fn record_outcome(&self, mode: SpeculationMode, outcome: &JobOutcome) {
        if let Some(sample) = Sample::from_outcome(mode, outcome) {
            self.record(sample);
        }
    }

    /// Count samples available for a given mode and bound kind, O(1).
    pub fn count_for(&self, mode: SpeculationMode, kind: BoundKind) -> usize {
        self.inner.read().counts[kind_idx(kind)][mode_idx(mode)]
    }

    /// `(GS count, RAS count)` for one bound kind under a single lock acquisition.
    pub fn counts_for_kind(&self, kind: BoundKind) -> (usize, usize) {
        let guard = self.inner.read();
        (
            guard.counts[kind_idx(kind)][mode_idx(SpeculationMode::Gs)],
            guard.counts[kind_idx(kind)][mode_idx(SpeculationMode::Ras)],
        )
    }

    /// Generation-tagged snapshot of every per-(kind, mode) count.
    pub fn counts_snapshot(&self) -> StoreCounts {
        let guard = self.inner.read();
        StoreCounts {
            generation: self.generation.load(Ordering::Acquire),
            deadline: (
                guard.counts[kind_idx(BoundKind::Deadline)][mode_idx(SpeculationMode::Gs)],
                guard.counts[kind_idx(BoundKind::Deadline)][mode_idx(SpeculationMode::Ras)],
            ),
            error: (
                guard.counts[kind_idx(BoundKind::Error)][mode_idx(SpeculationMode::Gs)],
                guard.counts[kind_idx(BoundKind::Error)][mode_idx(SpeculationMode::Ras)],
            ),
        }
    }

    /// Historical whole-vector filtered scan: the float summation order here is the
    /// ground truth the partitioned store must reproduce bit-for-bit.
    pub fn predict_rate(
        &self,
        mode: SpeculationMode,
        ctx: &QueryContext,
        factors: FactorSet,
        min_samples: usize,
    ) -> Option<f64> {
        let guard = self.inner.read();
        let mut weight_sum = 0.0;
        let mut weighted_rate = 0.0;
        let mut count = 0usize;
        for s in guard
            .samples
            .iter()
            .filter(|s| s.mode == mode && s.kind == ctx.kind)
        {
            let mut w = 1.0 / (1.0 + f64::from(s.size_bucket.distance(&ctx.size_bucket)));
            if factors.bound {
                let ratio = log_ratio(s.bound_value, ctx.bound_value);
                w *= 1.0 / (1.0 + ratio);
            }
            if factors.utilization {
                w *= 1.0 / (1.0 + 5.0 * (s.utilization - ctx.utilization).abs());
            }
            if factors.accuracy {
                w *= 1.0 / (1.0 + 5.0 * (s.accuracy - ctx.accuracy).abs());
            }
            weight_sum += w;
            weighted_rate += w * s.rate();
            count += 1;
        }
        if count < min_samples || weight_sum <= 0.0 {
            return None;
        }
        Some(weighted_rate / weight_sum)
    }

    /// Predict how many input tasks a job of this context would complete if it ran
    /// pure `mode` for `seconds` seconds.
    pub fn predict_deadline_completion(
        &self,
        mode: SpeculationMode,
        seconds: f64,
        ctx: &QueryContext,
        factors: FactorSet,
        min_samples: usize,
    ) -> Option<f64> {
        if seconds <= 0.0 {
            return Some(0.0);
        }
        let ctx = QueryContext {
            bound_value: seconds,
            ..*ctx
        };
        self.predict_rate(mode, &ctx, factors, min_samples)
            .map(|rate| rate * seconds)
    }

    /// Predict how long pure `mode` would take to complete `tasks` more tasks.
    pub fn predict_error_duration(
        &self,
        mode: SpeculationMode,
        tasks: f64,
        ctx: &QueryContext,
        factors: FactorSet,
        min_samples: usize,
    ) -> Option<f64> {
        if tasks <= 0.0 {
            return Some(0.0);
        }
        let ctx = QueryContext {
            bound_value: tasks,
            ..*ctx
        };
        let rate = self.predict_rate(mode, &ctx, factors, min_samples)?;
        if rate <= 0.0 {
            return None;
        }
        Some(tasks / rate)
    }

    /// Drop every stored sample.
    pub fn clear(&self) {
        let mut guard = self.inner.write();
        guard.samples.clear();
        guard.counts = [[0; 2]; 2];
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Retained samples matching `(mode, kind)` in insertion order — the comparison
    /// hook the eviction-order pin tests use.
    pub fn samples_for(&self, mode: SpeculationMode, kind: BoundKind) -> Vec<Sample> {
        self.inner
            .read()
            .samples
            .iter()
            .filter(|s| s.mode == mode && s.kind == kind)
            .cloned()
            .collect()
    }
}

/// `|log2(a / b)|`, guarded against non-positive inputs.
fn log_ratio(a: f64, b: f64) -> f64 {
    if a <= 0.0 || b <= 0.0 {
        return f64::INFINITY;
    }
    (a / b).log2().abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::SizeBucket;

    fn sample(mode: SpeculationMode, kind: BoundKind, bound: f64, perf: f64) -> Sample {
        Sample {
            mode,
            kind,
            size_bucket: SizeBucket(5),
            bound_value: bound,
            performance: perf,
            utilization: 0.5,
            accuracy: 0.75,
        }
    }

    #[test]
    fn reference_store_behaves_like_the_historical_one() {
        let store = ReferenceSampleStore::with_capacity(3);
        for i in 0..5 {
            store.record(sample(
                SpeculationMode::Gs,
                BoundKind::Deadline,
                10.0,
                i as f64,
            ));
        }
        assert_eq!(store.len(), 3);
        assert_eq!(store.count_for(SpeculationMode::Gs, BoundKind::Deadline), 3);
        let kept = store.samples_for(SpeculationMode::Gs, BoundKind::Deadline);
        let perfs: Vec<f64> = kept.iter().map(|s| s.performance).collect();
        assert_eq!(perfs, vec![2.0, 3.0, 4.0]);
        store.clear();
        assert!(store.is_empty());
    }
}
