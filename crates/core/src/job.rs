//! Job specifications, approximation bounds and the per-job view handed to policies.

use serde::{Deserialize, Serialize};

use crate::task::{JobId, StageId, TaskId, TaskSpec, TaskView, Time};
use crate::{Error, Result};

/// The approximation bound of a job (§2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Bound {
    /// Deadline-bound job: maximise accuracy (fraction of input tasks completed)
    /// within `deadline` seconds of the job's arrival.
    Deadline(Time),
    /// Error-bound job: minimise the time to complete a `1 − ε` fraction of the input
    /// tasks. `Error(0.0)` is an exact job that needs every task.
    Error(f64),
}

impl Bound {
    /// An exact job (error bound of zero), which the paper treats as a special case of
    /// an error-bound job.
    pub const EXACT: Bound = Bound::Error(0.0);

    /// Validate the bound value.
    pub fn validate(&self) -> Result<()> {
        match *self {
            Bound::Deadline(d) if d.is_finite() && d > 0.0 => Ok(()),
            Bound::Deadline(d) => Err(Error::InvalidBound(format!(
                "deadline must be positive and finite, got {d}"
            ))),
            Bound::Error(e) if (0.0..1.0).contains(&e) => Ok(()),
            Bound::Error(e) => Err(Error::InvalidBound(format!(
                "error fraction must be in [0, 1), got {e}"
            ))),
        }
    }

    /// Whether this is a deadline bound.
    pub fn is_deadline(&self) -> bool {
        matches!(self, Bound::Deadline(_))
    }

    /// Whether this is an error bound (including exact jobs).
    pub fn is_error(&self) -> bool {
        matches!(self, Bound::Error(_))
    }

    /// Whether this is an exact computation (error bound of zero).
    pub fn is_exact(&self) -> bool {
        matches!(self, Bound::Error(e) if *e == 0.0)
    }

    /// Number of input tasks that must complete to satisfy the bound, out of `total`.
    /// For deadline bounds every completed task improves accuracy, so this returns
    /// `total`.
    pub fn tasks_needed(&self, total: usize) -> usize {
        match *self {
            Bound::Deadline(_) => total,
            Bound::Error(e) => {
                let needed = ((1.0 - e) * total as f64).ceil() as usize;
                needed.clamp(usize::from(total > 0), total)
            }
        }
    }
}

/// Static description of one DAG stage of a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Human-readable name ("map", "reduce-1", …). Informational only.
    pub name: String,
    /// Number of tasks in this stage.
    pub task_count: usize,
}

/// Static description of a job: arrival time, approximation bound, DAG stages and the
/// per-task work amounts.
///
/// Tasks are stored stage-by-stage: all tasks of stage 0 first, then stage 1, and so
/// on. [`TaskId`]s index into this flat vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job identifier, unique within a trace.
    pub id: JobId,
    /// Arrival (submission) time in seconds from the start of the trace.
    pub arrival: Time,
    /// Approximation bound.
    pub bound: Bound,
    /// DAG stages, input stage first. Always at least one stage.
    pub stages: Vec<StageSpec>,
    /// Flat task list, grouped by stage in stage order.
    pub tasks: Vec<TaskSpec>,
}

impl JobSpec {
    /// Build a single-stage (input-only) job from raw per-task work values.
    pub fn single_stage(id: u64, arrival: Time, bound: Bound, work: Vec<f64>) -> Self {
        let tasks: Vec<TaskSpec> = work.into_iter().map(TaskSpec::input).collect();
        JobSpec {
            id: JobId(id),
            arrival,
            bound,
            stages: vec![StageSpec {
                name: "input".to_string(),
                task_count: tasks.len(),
            }],
            tasks,
        }
    }

    /// Build a multi-stage job. `stage_work[s]` holds the work values of stage `s`.
    pub fn multi_stage(id: u64, arrival: Time, bound: Bound, stage_work: Vec<Vec<f64>>) -> Self {
        let mut stages = Vec::with_capacity(stage_work.len());
        let mut tasks = Vec::new();
        for (s, work) in stage_work.into_iter().enumerate() {
            stages.push(StageSpec {
                name: if s == 0 {
                    "input".to_string()
                } else {
                    format!("stage-{s}")
                },
                task_count: work.len(),
            });
            tasks.extend(work.into_iter().map(|w| TaskSpec::in_stage(w, s as u8)));
        }
        JobSpec {
            id: JobId(id),
            arrival,
            bound,
            stages,
            tasks,
        }
    }

    /// Validate internal consistency: bound domain, per-stage task counts,
    /// non-emptiness, and numeric sanity (arrival and task work must be finite and
    /// non-negative — a NaN or infinity here would silently poison every duration
    /// comparison downstream, so it is rejected at the decode/validation boundary).
    pub fn validate(&self) -> Result<()> {
        if self.tasks.is_empty() || self.stages.is_empty() {
            return Err(Error::EmptyJob(self.id));
        }
        self.bound.validate()?;
        if !(self.arrival.is_finite() && self.arrival >= 0.0) {
            return Err(Error::DegenerateValue {
                job: self.id,
                message: format!(
                    "arrival time {} must be finite and non-negative",
                    self.arrival
                ),
            });
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if !(t.work.is_finite() && t.work >= 0.0) {
                return Err(Error::DegenerateValue {
                    job: self.id,
                    message: format!("task {i} work {} must be finite and non-negative", t.work),
                });
            }
        }
        let declared: usize = self.stages.iter().map(|s| s.task_count).sum();
        if declared != self.tasks.len() {
            return Err(Error::InvalidBound(format!(
                "job {:?}: stage task counts sum to {declared} but {} tasks are declared",
                self.id,
                self.tasks.len()
            )));
        }
        for t in &self.tasks {
            if t.stage.value() as usize >= self.stages.len() {
                return Err(Error::UnknownStage {
                    job: self.id,
                    stage: t.stage,
                });
            }
        }
        Ok(())
    }

    /// Total number of tasks across all stages.
    pub fn total_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of tasks in the input stage (stage 0) — the stage that determines result
    /// accuracy.
    pub fn input_tasks(&self) -> usize {
        self.stages.first().map_or(0, |s| s.task_count)
    }

    /// Number of DAG stages.
    pub fn dag_length(&self) -> usize {
        self.stages.len()
    }

    /// Number of input-stage tasks that must complete to satisfy the bound.
    pub fn input_tasks_needed(&self) -> usize {
        self.bound.tasks_needed(self.input_tasks())
    }

    /// Total work (seconds of unit-speed slot time) summed over every task.
    pub fn total_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.work).sum()
    }

    /// Median work of the input-stage tasks. Used for the paper's "ideal duration"
    /// deadline calibration (§6.1) and by the strawman switcher.
    pub fn median_input_work(&self) -> f64 {
        let mut w: Vec<f64> = self
            .tasks
            .iter()
            .filter(|t| t.stage.is_input())
            .map(|t| t.work)
            .collect();
        if w.is_empty() {
            return 0.0;
        }
        w.sort_by(f64::total_cmp);
        w.get(w.len() / 2).copied().unwrap_or(0.0)
    }

    /// Task ids belonging to the given stage.
    pub fn tasks_of_stage(&self, stage: StageId) -> Vec<TaskId> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.stage == stage)
            .map(|(i, _)| TaskId(i as u32))
            .collect()
    }
}

/// Snapshot of a job's state handed to its [`crate::SpeculationPolicy`] whenever a slot
/// allocated to the job becomes free.
#[derive(Debug, Clone)]
pub struct JobView<'a> {
    /// Which job this is.
    pub job: JobId,
    /// Current simulation time.
    pub now: Time,
    /// The job's arrival time.
    pub arrival: Time,
    /// The job's approximation bound.
    pub bound: Bound,
    /// Effective deadline for the *input stage*, relative to arrival. For single-stage
    /// deadline jobs this equals the bound; for DAG jobs the simulator subtracts its
    /// estimate of the intermediate stages' duration (§5.2 of the paper). `None` for
    /// error-bound jobs.
    pub input_deadline: Option<Time>,
    /// Total number of input-stage tasks.
    pub total_input_tasks: usize,
    /// Input-stage tasks completed so far.
    pub completed_input_tasks: usize,
    /// Total tasks (all stages).
    pub total_tasks: usize,
    /// Completed tasks (all stages).
    pub completed_tasks: usize,
    /// Views of every *unfinished* task of the job (running or not, eligible or not).
    pub tasks: &'a [TaskView],
    /// Number of slots currently allocated to this job (its current wave width).
    pub wave_width: usize,
    /// Fraction of the cluster's slots that are currently busy, in `[0, 1]`.
    pub cluster_utilization: f64,
    /// Measured estimation accuracy of `trem`/`tnew` (1.0 = perfect), as tracked by
    /// the scheduler from completed tasks.
    pub estimation_accuracy: f64,
}

impl<'a> JobView<'a> {
    /// Seconds left until the (input-stage) deadline, or `None` for error-bound jobs.
    /// Saturates at zero.
    pub fn remaining_deadline(&self) -> Option<Time> {
        let deadline = self.input_deadline.or(match self.bound {
            Bound::Deadline(d) => Some(d),
            Bound::Error(_) => None,
        })?;
        Some((self.arrival + deadline - self.now).max(0.0))
    }

    /// How many more *input-stage* tasks must complete to satisfy an error bound.
    /// Returns `None` for deadline-bound jobs.
    pub fn input_tasks_still_needed(&self) -> Option<usize> {
        match self.bound {
            Bound::Deadline(_) => None,
            Bound::Error(_) => {
                let needed = self.bound.tasks_needed(self.total_input_tasks);
                Some(needed.saturating_sub(self.completed_input_tasks))
            }
        }
    }

    /// Current accuracy of the result: fraction of input tasks completed.
    pub fn current_accuracy(&self) -> f64 {
        if self.total_input_tasks == 0 {
            return 0.0;
        }
        self.completed_input_tasks as f64 / self.total_input_tasks as f64
    }

    /// Unfinished tasks that are eligible to run (their stage is unlocked).
    pub fn eligible_tasks(&self) -> impl Iterator<Item = &TaskView> {
        self.tasks.iter().filter(|t| t.eligible)
    }

    /// Number of unfinished, eligible tasks that have no running copy yet.
    pub fn unscheduled_eligible(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.eligible && !t.is_running())
            .count()
    }

    /// Rough estimate of the number of waves of work remaining: unfinished eligible
    /// tasks divided by the current wave width.
    pub fn remaining_waves(&self) -> f64 {
        let unfinished = self.tasks.iter().filter(|t| t.eligible).count();
        if self.wave_width == 0 {
            return f64::INFINITY;
        }
        unfinished as f64 / self.wave_width as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_with(bound: Bound, tasks: &[TaskView]) -> JobView<'_> {
        JobView {
            job: JobId(1),
            now: 10.0,
            arrival: 0.0,
            bound,
            input_deadline: None,
            total_input_tasks: 10,
            completed_input_tasks: 4,
            total_tasks: 10,
            completed_tasks: 4,
            tasks,
            wave_width: 2,
            cluster_utilization: 0.5,
            estimation_accuracy: 0.75,
        }
    }

    #[test]
    fn bound_validation() {
        assert!(Bound::Deadline(10.0).validate().is_ok());
        assert!(Bound::Deadline(0.0).validate().is_err());
        assert!(Bound::Deadline(f64::NAN).validate().is_err());
        assert!(Bound::Error(0.0).validate().is_ok());
        assert!(Bound::Error(0.3).validate().is_ok());
        assert!(Bound::Error(1.0).validate().is_err());
        assert!(Bound::Error(-0.1).validate().is_err());
    }

    #[test]
    fn tasks_needed_rounds_up() {
        assert_eq!(Bound::Error(0.0).tasks_needed(10), 10);
        assert_eq!(Bound::Error(0.25).tasks_needed(10), 8);
        assert_eq!(Bound::Error(0.21).tasks_needed(10), 8);
        assert_eq!(Bound::Error(0.5).tasks_needed(3), 2);
        assert_eq!(Bound::Deadline(5.0).tasks_needed(10), 10);
        // Never zero for a non-empty job.
        assert_eq!(Bound::Error(0.99).tasks_needed(10), 1);
    }

    #[test]
    fn exact_detection() {
        assert!(Bound::EXACT.is_exact());
        assert!(!Bound::Error(0.1).is_exact());
        assert!(!Bound::Deadline(5.0).is_exact());
    }

    #[test]
    fn degenerate_numeric_fields_fail_validation() {
        // NaN / infinite / negative task work would poison every duration
        // comparison downstream; validation rejects it at the boundary.
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let job = JobSpec::single_stage(1, 0.0, Bound::EXACT, vec![1.0, bad]);
            let err = job.validate().unwrap_err();
            assert!(
                matches!(err, Error::DegenerateValue { .. }),
                "work {bad}: {err}"
            );
        }
        for bad in [f64::NAN, f64::NEG_INFINITY, -0.5] {
            let job = JobSpec::single_stage(1, bad, Bound::EXACT, vec![1.0]);
            assert!(job.validate().is_err(), "arrival {bad} must be rejected");
        }
        // Zero work and zero arrival stay legal.
        assert!(JobSpec::single_stage(1, 0.0, Bound::EXACT, vec![0.0])
            .validate()
            .is_ok());
    }

    #[test]
    fn single_stage_job_shape() {
        let job = JobSpec::single_stage(3, 1.0, Bound::Deadline(20.0), vec![1.0, 2.0, 3.0]);
        assert!(job.validate().is_ok());
        assert_eq!(job.total_tasks(), 3);
        assert_eq!(job.input_tasks(), 3);
        assert_eq!(job.dag_length(), 1);
        assert_eq!(job.total_work(), 6.0);
        assert_eq!(job.median_input_work(), 2.0);
    }

    #[test]
    fn multi_stage_job_shape() {
        let job = JobSpec::multi_stage(
            4,
            0.0,
            Bound::Error(0.2),
            vec![vec![1.0; 10], vec![2.0; 4], vec![3.0; 1]],
        );
        assert!(job.validate().is_ok());
        assert_eq!(job.total_tasks(), 15);
        assert_eq!(job.input_tasks(), 10);
        assert_eq!(job.dag_length(), 3);
        assert_eq!(job.input_tasks_needed(), 8);
        assert_eq!(job.tasks_of_stage(StageId(1)).len(), 4);
        assert_eq!(job.tasks_of_stage(StageId(2)), vec![TaskId(14)]);
    }

    #[test]
    fn validation_catches_empty_and_mismatched_jobs() {
        let empty = JobSpec::single_stage(1, 0.0, Bound::Deadline(5.0), vec![]);
        assert!(matches!(empty.validate(), Err(Error::EmptyJob(_))));

        let mut bad = JobSpec::single_stage(1, 0.0, Bound::Deadline(5.0), vec![1.0]);
        bad.stages[0].task_count = 2;
        assert!(bad.validate().is_err());

        let mut bad_stage = JobSpec::single_stage(1, 0.0, Bound::Deadline(5.0), vec![1.0]);
        bad_stage.tasks[0].stage = StageId(3);
        assert!(matches!(
            bad_stage.validate(),
            Err(Error::UnknownStage { .. })
        ));
    }

    #[test]
    fn remaining_deadline_saturates_at_zero() {
        let tasks: Vec<TaskView> = vec![];
        let mut v = view_with(Bound::Deadline(8.0), &tasks);
        assert_eq!(v.remaining_deadline(), Some(0.0));
        v.now = 3.0;
        assert_eq!(v.remaining_deadline(), Some(5.0));
        let v = view_with(Bound::Error(0.1), &tasks);
        assert_eq!(v.remaining_deadline(), None);
    }

    #[test]
    fn input_deadline_overrides_bound_for_dag_jobs() {
        let tasks: Vec<TaskView> = vec![];
        let mut v = view_with(Bound::Deadline(8.0), &tasks);
        v.now = 2.0;
        v.input_deadline = Some(6.0);
        assert_eq!(v.remaining_deadline(), Some(4.0));
    }

    #[test]
    fn error_bound_tasks_still_needed() {
        let tasks: Vec<TaskView> = vec![];
        let v = view_with(Bound::Error(0.3), &tasks);
        // needed = ceil(0.7 * 10) = 7, completed 4 => 3 more.
        assert_eq!(v.input_tasks_still_needed(), Some(3));
        let v = view_with(Bound::Deadline(5.0), &tasks);
        assert_eq!(v.input_tasks_still_needed(), None);
    }

    #[test]
    fn current_accuracy_is_completed_fraction() {
        let tasks: Vec<TaskView> = vec![];
        let v = view_with(Bound::Deadline(5.0), &tasks);
        assert!((v.current_accuracy() - 0.4).abs() < 1e-12);
    }
}
