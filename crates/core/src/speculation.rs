//! GS (Greedy Speculative) and RAS (Resource Aware Speculative) scheduling,
//! implemented after Pseudocode 1 (deadline-bound jobs) and Pseudocode 2 (error-bound
//! jobs) of the paper.
//!
//! Both algorithms run in two stages:
//!
//! 1. **Pruning** — drop tasks that cannot help: tasks whose fresh copy would miss the
//!    deadline (deadline-bound), tasks outside the earliest `(1 − ε)` set (error-bound),
//!    running tasks whose speculative copy would not beat the running copy (GS) or
//!    would not save resources (RAS).
//! 2. **Selection** — GS picks the candidate that improves the approximation goal
//!    soonest (lowest `tnew` for deadlines — SJF; largest remaining work for error
//!    bounds — LJF). RAS picks the speculation with the largest resource saving
//!    `c·trem − (c+1)·tnew`, and otherwise falls back to the same default ordering of
//!    unscheduled tasks ("at default, both algorithms schedule the task with the
//!    lowest `tnew` / highest `trem`").

use serde::{Deserialize, Serialize};

use crate::job::{Bound, JobSpec, JobView};
use crate::policy::{Action, BoxedPolicy, PolicyFactory, SpeculationPolicy};
use crate::task::TaskView;

/// Which of the two building-block algorithms to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpeculationMode {
    /// Greedy Speculative scheduling (`OC = 0` in the pseudocode).
    Gs,
    /// Resource Aware Speculative scheduling (`OC = 1`).
    Ras,
}

impl SpeculationMode {
    /// Policy name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SpeculationMode::Gs => "GS",
            SpeculationMode::Ras => "RAS",
        }
    }
}

/// Upper limit on concurrently running copies of a single task. Guideline 1 of the
/// paper shows ≤ 2 copies is optimal during early waves; we allow one more in the
/// final wave where aggressive speculation is called for, and cap there to avoid
/// pathological duplication when estimates are badly wrong.
pub const MAX_COPIES_PER_TASK: u32 = 3;

/// Choose the next action for a job under GS or RAS. Shared by the plain [`GsPolicy`]
/// / [`RasPolicy`] wrappers, by GRASS (which alternates between the two modes), and by
/// the oracle baseline (which feeds ground-truth estimates through the same logic).
pub fn choose(view: &JobView, mode: SpeculationMode) -> Option<Action> {
    match view.bound {
        Bound::Deadline(_) => choose_deadline(view, mode),
        Bound::Error(_) => choose_error(view, mode),
    }
}

/// Pseudocode 1: deadline-bound jobs.
fn choose_deadline(view: &JobView, mode: SpeculationMode) -> Option<Action> {
    let remaining = view.remaining_deadline().unwrap_or(f64::INFINITY);
    if remaining <= 0.0 {
        return None;
    }

    // Pruning stage.
    let mut fresh: Vec<&TaskView> = Vec::new();
    let mut speculative: Vec<&TaskView> = Vec::new();
    for t in view.eligible_tasks() {
        // A copy launched now must be expected to finish before the deadline.
        if t.tnew > remaining {
            continue;
        }
        if t.is_running() {
            if t.running_copies >= MAX_COPIES_PER_TASK {
                continue;
            }
            match mode {
                SpeculationMode::Gs => {
                    if t.new_copy_beats_running() {
                        speculative.push(t);
                    }
                }
                SpeculationMode::Ras => {
                    if t.speculation_saving().is_some_and(|s| s > 0.0) {
                        speculative.push(t);
                    }
                }
            }
        } else {
            fresh.push(t);
        }
    }

    // Selection stage.
    match mode {
        SpeculationMode::Gs => {
            // SJF over the union of fresh tasks and admissible speculative copies:
            // schedule whatever finishes soonest.
            let best_fresh = fresh.into_iter().min_by(|a, b| a.tnew.total_cmp(&b.tnew));
            let best_spec = speculative
                .into_iter()
                .min_by(|a, b| a.tnew.total_cmp(&b.tnew));
            match (best_fresh, best_spec) {
                (Some(f), Some(s)) => {
                    if s.tnew < f.tnew {
                        Some(Action::speculate(s.id))
                    } else {
                        Some(Action::launch(f.id))
                    }
                }
                (Some(f), None) => Some(Action::launch(f.id)),
                (None, Some(s)) => Some(Action::speculate(s.id)),
                (None, None) => None,
            }
        }
        SpeculationMode::Ras => {
            // Speculating only happens when it frees resources; in that case it is a
            // strict win and takes priority (Figure 1, right). Otherwise launch the
            // shortest fresh task that fits the deadline.
            if let Some(s) = speculative.into_iter().max_by(|a, b| {
                // Candidates were filtered on `speculation_saving().is_some_and(..)`
                // above; NEG_INFINITY keeps the comparator total if that ever changes.
                a.speculation_saving()
                    .unwrap_or(f64::NEG_INFINITY)
                    .total_cmp(&b.speculation_saving().unwrap_or(f64::NEG_INFINITY))
            }) {
                return Some(Action::speculate(s.id));
            }
            fresh
                .into_iter()
                .min_by(|a, b| a.tnew.total_cmp(&b.tnew))
                .map(|f| Action::launch(f.id))
        }
    }
}

/// Pseudocode 2: error-bound jobs.
fn choose_error(view: &JobView, mode: SpeculationMode) -> Option<Action> {
    // Rank unfinished *input* tasks by effective duration and keep only the earliest
    // ones that will make up the (1 − ε) result, plus every eligible non-input task
    // (intermediate stages must run in full for the completed fraction).
    let mut input_tasks: Vec<&TaskView> = view
        .eligible_tasks()
        .filter(|t| t.stage.is_input())
        .collect();
    input_tasks.sort_by(|a, b| a.effective_duration().total_cmp(&b.effective_duration()));
    let still_needed = view
        .input_tasks_still_needed()
        .unwrap_or(input_tasks.len())
        .min(input_tasks.len());
    let candidates = input_tasks
        .into_iter()
        .take(still_needed)
        .chain(view.eligible_tasks().filter(|t| !t.stage.is_input()));

    // Pruning stage.
    let mut fresh: Vec<&TaskView> = Vec::new();
    let mut speculative: Vec<&TaskView> = Vec::new();
    for t in candidates {
        if t.is_running() {
            if t.running_copies >= MAX_COPIES_PER_TASK {
                continue;
            }
            match mode {
                SpeculationMode::Gs => {
                    if t.new_copy_beats_running() {
                        speculative.push(t);
                    }
                }
                SpeculationMode::Ras => {
                    if t.speculation_saving().is_some_and(|s| s > 0.0) {
                        speculative.push(t);
                    }
                }
            }
        } else {
            fresh.push(t);
        }
    }

    // Selection stage. The goal is to minimise the makespan of the needed tasks, so
    // the default ordering is LJF: longest work first.
    match mode {
        SpeculationMode::Gs => {
            // GS picks the candidate with the largest remaining time: the task that
            // most threatens the makespan, whether by launching it (fresh) or by
            // racing a copy against its straggling original.
            let best_fresh = fresh.into_iter().max_by(|a, b| a.tnew.total_cmp(&b.tnew));
            let best_spec = speculative
                .into_iter()
                .max_by(|a, b| a.trem.total_cmp(&b.trem));
            match (best_fresh, best_spec) {
                (Some(f), Some(s)) => {
                    if s.trem > f.tnew {
                        Some(Action::speculate(s.id))
                    } else {
                        Some(Action::launch(f.id))
                    }
                }
                (Some(f), None) => Some(Action::launch(f.id)),
                (None, Some(s)) => Some(Action::speculate(s.id)),
                (None, None) => None,
            }
        }
        SpeculationMode::Ras => {
            if let Some(s) = speculative.into_iter().max_by(|a, b| {
                // Candidates were filtered on `speculation_saving().is_some_and(..)`
                // above; NEG_INFINITY keeps the comparator total if that ever changes.
                a.speculation_saving()
                    .unwrap_or(f64::NEG_INFINITY)
                    .total_cmp(&b.speculation_saving().unwrap_or(f64::NEG_INFINITY))
            }) {
                return Some(Action::speculate(s.id));
            }
            fresh
                .into_iter()
                .max_by(|a, b| a.tnew.total_cmp(&b.tnew))
                .map(|f| Action::launch(f.id))
        }
    }
}

/// Greedy Speculative scheduling as a standalone per-job policy ("GS-only" in §6.3.1).
#[derive(Debug, Default, Clone)]
pub struct GsPolicy;

impl SpeculationPolicy for GsPolicy {
    fn name(&self) -> &str {
        "GS"
    }

    fn choose(&mut self, view: &JobView) -> Option<Action> {
        choose(view, SpeculationMode::Gs)
    }
}

/// Resource Aware Speculative scheduling as a standalone per-job policy ("RAS-only").
#[derive(Debug, Default, Clone)]
pub struct RasPolicy;

impl SpeculationPolicy for RasPolicy {
    fn name(&self) -> &str {
        "RAS"
    }

    fn choose(&mut self, view: &JobView) -> Option<Action> {
        choose(view, SpeculationMode::Ras)
    }
}

/// Factory producing [`GsPolicy`] instances.
#[derive(Debug, Default, Clone)]
pub struct GsFactory;

impl PolicyFactory for GsFactory {
    fn name(&self) -> &str {
        "GS"
    }

    fn create(&self, _job: &JobSpec) -> BoxedPolicy {
        Box::new(GsPolicy)
    }
}

/// Factory producing [`RasPolicy`] instances.
#[derive(Debug, Default, Clone)]
pub struct RasFactory;

impl PolicyFactory for RasFactory {
    fn name(&self) -> &str {
        "RAS"
    }

    fn create(&self, _job: &JobSpec) -> BoxedPolicy {
        Box::new(RasPolicy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ActionKind;
    use crate::task::{JobId, StageId, TaskId};

    fn task(id: u32, running: bool, trem: f64, tnew: f64, copies: u32) -> TaskView {
        TaskView {
            id: TaskId(id),
            stage: StageId::INPUT,
            eligible: true,
            running_copies: if running { copies } else { 0 },
            elapsed: if running { 1.0 } else { 0.0 },
            progress: if running { 0.5 } else { 0.0 },
            progress_rate: 0.1,
            trem: if running { trem } else { f64::INFINITY },
            tnew,
            true_remaining: trem,
            true_new_hint: tnew,
            work: tnew,
        }
    }

    fn deadline_view<'a>(tasks: &'a [TaskView], now: f64, deadline: f64) -> JobView<'a> {
        JobView {
            job: JobId(1),
            now,
            arrival: 0.0,
            bound: Bound::Deadline(deadline),
            input_deadline: None,
            total_input_tasks: tasks.len() + 2,
            completed_input_tasks: 2,
            total_tasks: tasks.len() + 2,
            completed_tasks: 2,
            tasks,
            wave_width: 2,
            cluster_utilization: 0.8,
            estimation_accuracy: 0.75,
        }
    }

    fn error_view<'a>(
        tasks: &'a [TaskView],
        epsilon: f64,
        total: usize,
        done: usize,
    ) -> JobView<'a> {
        JobView {
            job: JobId(1),
            now: 5.0,
            arrival: 0.0,
            bound: Bound::Error(epsilon),
            input_deadline: None,
            total_input_tasks: total,
            completed_input_tasks: done,
            total_tasks: total,
            completed_tasks: done,
            tasks,
            wave_width: 3,
            cluster_utilization: 0.8,
            estimation_accuracy: 0.75,
        }
    }

    /// Figure 1 of the paper: nine tasks, two slots, T2 just finished at t = 2.
    /// T1 is running with trem = 5, tnew = 2; T3..T9 are unscheduled with
    /// tnew = 2, 3, 3, 4, 4, 5, 5.
    fn figure1_tasks() -> Vec<TaskView> {
        let mut tasks = vec![task(1, true, 5.0, 2.0, 1)];
        for (i, &w) in [2.0, 3.0, 3.0, 4.0, 4.0, 5.0, 5.0].iter().enumerate() {
            tasks.push(task(3 + i as u32, false, 0.0, w, 0));
        }
        tasks
    }

    #[test]
    fn figure1_gs_launches_shortest_fresh_task() {
        let tasks = figure1_tasks();
        let view = deadline_view(&tasks, 2.0, 6.0);
        let a = choose(&view, SpeculationMode::Gs).unwrap();
        // GS schedules T3 (lowest tnew among all candidates; ties broken by order).
        assert_eq!(a.task, TaskId(3));
        assert_eq!(a.kind, ActionKind::Launch);
    }

    #[test]
    fn figure1_ras_speculates_t1() {
        let tasks = figure1_tasks();
        let view = deadline_view(&tasks, 2.0, 6.0);
        let a = choose(&view, SpeculationMode::Ras).unwrap();
        // RAS speculates T1: saving = 1*5 − 2*2 = 1 > 0.
        assert_eq!(a.task, TaskId(1));
        assert_eq!(a.kind, ActionKind::Speculate);
    }

    #[test]
    fn deadline_pruning_drops_tasks_that_cannot_finish() {
        // Remaining deadline of 1s: only a task with tnew <= 1 survives.
        let tasks = vec![task(1, false, 0.0, 3.0, 0), task(2, false, 0.0, 0.8, 0)];
        let view = deadline_view(&tasks, 5.0, 6.0);
        let a = choose(&view, SpeculationMode::Gs).unwrap();
        assert_eq!(a.task, TaskId(2));
        // With nothing fitting, no action at all.
        let tasks = vec![task(1, false, 0.0, 3.0, 0)];
        let view = deadline_view(&tasks, 5.0, 6.0);
        assert!(choose(&view, SpeculationMode::Gs).is_none());
        assert!(choose(&view, SpeculationMode::Ras).is_none());
    }

    #[test]
    fn past_deadline_yields_no_action() {
        let tasks = vec![task(1, false, 0.0, 0.5, 0)];
        let view = deadline_view(&tasks, 10.0, 6.0);
        assert!(choose(&view, SpeculationMode::Gs).is_none());
    }

    #[test]
    fn gs_requires_new_copy_to_beat_running_copy() {
        // Running task with trem = 2, tnew = 3: a new copy is slower, GS must not copy.
        let tasks = vec![task(1, true, 2.0, 3.0, 1)];
        let view = deadline_view(&tasks, 0.0, 10.0);
        assert!(choose(&view, SpeculationMode::Gs).is_none());
        // trem = 4, tnew = 3: now GS speculates.
        let tasks = vec![task(1, true, 4.0, 3.0, 1)];
        let view = deadline_view(&tasks, 0.0, 10.0);
        let a = choose(&view, SpeculationMode::Gs).unwrap();
        assert_eq!(a.kind, ActionKind::Speculate);
    }

    #[test]
    fn ras_requires_positive_resource_saving() {
        // trem = 4, tnew = 3: GS would speculate but saving = 4 − 6 = −2 < 0.
        let tasks = vec![task(1, true, 4.0, 3.0, 1)];
        let view = deadline_view(&tasks, 0.0, 10.0);
        assert!(choose(&view, SpeculationMode::Ras).is_none());
        // trem = 7, tnew = 3: saving = 1 > 0.
        let tasks = vec![task(1, true, 7.0, 3.0, 1)];
        let view = deadline_view(&tasks, 0.0, 10.0);
        let a = choose(&view, SpeculationMode::Ras).unwrap();
        assert_eq!(a.kind, ActionKind::Speculate);
    }

    #[test]
    fn copy_cap_is_enforced() {
        let tasks = vec![task(1, true, 100.0, 1.0, MAX_COPIES_PER_TASK)];
        let view = deadline_view(&tasks, 0.0, 1000.0);
        assert!(choose(&view, SpeculationMode::Gs).is_none());
        assert!(choose(&view, SpeculationMode::Ras).is_none());
    }

    /// Figure 2 of the paper: six tasks, three slots, at t = 5 T1/T2/T4 are done,
    /// T3 is running with trem = 6, tnew = 3; T5, T6 are unscheduled with tnew 2 and 3.
    fn figure2_tasks() -> Vec<TaskView> {
        vec![
            task(3, true, 6.0, 3.0, 1),
            task(5, false, 0.0, 2.0, 0),
            task(6, false, 0.0, 3.0, 0),
        ]
    }

    #[test]
    fn figure2_gs_speculates_longest_straggler() {
        let tasks = figure2_tasks();
        // Error limit 20% of 6 tasks => 5 tasks needed, 3 done => 2 more needed.
        let view = error_view(&tasks, 0.2, 6, 3);
        let a = choose(&view, SpeculationMode::Gs).unwrap();
        // T3 has the highest trem among the earliest-needed tasks.
        // needed = 2, earliest by effective duration: T5 (2), T6 (3) — wait, T3's
        // effective duration is min(6, 3) = 3, tie with T6; the two earliest are
        // T5 and either T3/T6. GS picks the largest remaining among candidates.
        assert!(a.task == TaskId(3) || a.task == TaskId(6));
    }

    #[test]
    fn figure2_ras_declines_speculation() {
        let tasks = figure2_tasks();
        let view = error_view(&tasks, 0.2, 6, 3);
        let a = choose(&view, SpeculationMode::Ras).unwrap();
        // saving for T3 = 6 − 2*3 = 0, not > 0, so RAS launches a fresh task from the
        // needed set instead of duplicating T3.
        assert_eq!(a.kind, ActionKind::Launch);
        assert_eq!(a.task, TaskId(5));
    }

    #[test]
    fn error_bound_ignores_tasks_beyond_needed_set() {
        // 10 input tasks, ε = 0.5 => 5 needed, 4 done => only the single earliest
        // unfinished task is a candidate.
        let tasks = vec![
            task(1, false, 0.0, 9.0, 0),
            task(2, false, 0.0, 1.0, 0),
            task(3, false, 0.0, 5.0, 0),
        ];
        let view = error_view(&tasks, 0.5, 10, 4);
        let a = choose(&view, SpeculationMode::Gs).unwrap();
        // Only the earliest (T2, effective duration 1.0) is in the needed set, so it
        // is scheduled even though LJF would otherwise prefer T1.
        assert_eq!(a.task, TaskId(2));
    }

    #[test]
    fn exact_jobs_schedule_longest_first() {
        let tasks = vec![
            task(1, false, 0.0, 2.0, 0),
            task(2, false, 0.0, 8.0, 0),
            task(3, false, 0.0, 5.0, 0),
        ];
        let view = error_view(&tasks, 0.0, 10, 7);
        let a = choose(&view, SpeculationMode::Gs).unwrap();
        assert_eq!(a.task, TaskId(2));
        let a = choose(&view, SpeculationMode::Ras).unwrap();
        assert_eq!(a.task, TaskId(2));
    }

    #[test]
    fn policies_expose_names() {
        assert_eq!(GsPolicy.name(), "GS");
        assert_eq!(RasPolicy.name(), "RAS");
        assert_eq!(GsFactory.name(), "GS");
        assert_eq!(RasFactory.name(), "RAS");
        assert_eq!(SpeculationMode::Gs.name(), "GS");
        assert_eq!(SpeculationMode::Ras.name(), "RAS");
    }

    #[test]
    fn factories_create_working_policies() {
        let job = JobSpec::single_stage(1, 0.0, Bound::Deadline(10.0), vec![1.0, 2.0]);
        let tasks = vec![task(0, false, 0.0, 1.0, 0), task(1, false, 0.0, 2.0, 0)];
        let view = deadline_view(&tasks, 0.0, 10.0);
        let mut gs = GsFactory.create(&job);
        assert_eq!(gs.choose(&view).unwrap().task, TaskId(0));
        let mut ras = RasFactory.create(&job);
        assert_eq!(ras.choose(&view).unwrap().task, TaskId(0));
    }
}
