//! Job-size binning.
//!
//! The paper bins jobs by their number of tasks both for reporting (§6.1: "small"
//! < 50 tasks, "medium" 51–500, "large" > 500) and for GRASS's sample matching
//! (§4.2: "we bucket jobs by their number of tasks and compare only within jobs of the
//! same bucket"). The reporting bins are coarse; the sample-matching buckets are a
//! finer geometric partition so that GRASS compares a 60-task job with other ~64-task
//! jobs rather than with 500-task jobs.

use serde::{Deserialize, Serialize};

/// The three reporting bins used throughout the paper's evaluation figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum JobSizeBin {
    /// Fewer than 50 tasks.
    Small,
    /// 51–500 tasks (we fold the boundary case of exactly 50 into this bin's lower
    /// neighbour per the paper's "< 50" wording).
    Medium,
    /// More than 500 tasks.
    Large,
}

impl JobSizeBin {
    /// Bin a job by its number of (input) tasks.
    pub fn of(tasks: usize) -> Self {
        if tasks < 50 {
            JobSizeBin::Small
        } else if tasks <= 500 {
            JobSizeBin::Medium
        } else {
            JobSizeBin::Large
        }
    }

    /// All bins in display order.
    pub fn all() -> [JobSizeBin; 3] {
        [JobSizeBin::Small, JobSizeBin::Medium, JobSizeBin::Large]
    }

    /// Label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            JobSizeBin::Small => "<50",
            JobSizeBin::Medium => "51-500",
            JobSizeBin::Large => ">500",
        }
    }
}

/// Finer, geometric size bucket used by GRASS's sample store (§4.2). Bucket `k`
/// contains jobs with `2^k <= tasks < 2^(k+1)` (bucket 0 holds 1-task jobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SizeBucket(pub u8);

impl SizeBucket {
    /// Bucket for a job with `tasks` tasks.
    pub fn of(tasks: usize) -> Self {
        let t = tasks.max(1);
        SizeBucket((usize::BITS - 1 - t.leading_zeros()) as u8)
    }

    /// Smallest task count in this bucket.
    pub fn lower_bound(&self) -> usize {
        1usize << self.0
    }

    /// Largest task count in this bucket.
    pub fn upper_bound(&self) -> usize {
        (1usize << (self.0 + 1)) - 1
    }

    /// Distance between buckets (used to borrow samples from neighbouring buckets when
    /// a bucket has too few samples of its own).
    pub fn distance(&self, other: &SizeBucket) -> u8 {
        self.0.abs_diff(other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reporting_bins_match_paper_boundaries() {
        assert_eq!(JobSizeBin::of(1), JobSizeBin::Small);
        assert_eq!(JobSizeBin::of(49), JobSizeBin::Small);
        assert_eq!(JobSizeBin::of(50), JobSizeBin::Medium);
        assert_eq!(JobSizeBin::of(500), JobSizeBin::Medium);
        assert_eq!(JobSizeBin::of(501), JobSizeBin::Large);
        assert_eq!(JobSizeBin::of(10_000), JobSizeBin::Large);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(JobSizeBin::Small.label(), "<50");
        assert_eq!(JobSizeBin::Medium.label(), "51-500");
        assert_eq!(JobSizeBin::Large.label(), ">500");
        assert_eq!(JobSizeBin::all().len(), 3);
    }

    #[test]
    fn size_buckets_are_geometric() {
        assert_eq!(SizeBucket::of(1), SizeBucket(0));
        assert_eq!(SizeBucket::of(2), SizeBucket(1));
        assert_eq!(SizeBucket::of(3), SizeBucket(1));
        assert_eq!(SizeBucket::of(4), SizeBucket(2));
        assert_eq!(SizeBucket::of(1000), SizeBucket(9));
        assert_eq!(SizeBucket::of(0), SizeBucket(0));
    }

    #[test]
    fn bucket_bounds_and_distance() {
        let b = SizeBucket::of(100);
        assert!(b.lower_bound() <= 100 && 100 <= b.upper_bound());
        assert_eq!(SizeBucket(3).distance(&SizeBucket(5)), 2);
        assert_eq!(SizeBucket(5).distance(&SizeBucket(3)), 2);
    }
}
