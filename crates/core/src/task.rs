//! Task-level identifiers and the per-task view a speculation policy sees.

use serde::{Deserialize, Serialize};

/// Simulation time in seconds. The simulator is a continuous-time discrete-event model,
/// so plain `f64` seconds are the natural representation.
pub type Time = f64;

/// Identifier of a job within a trace / simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// Identifier of a task *within its job* (dense index, `0..job.total_tasks()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

/// Identifier of a DAG stage within a job. Stage 0 is always the input stage
/// (map / extract); later stages are intermediate (reduce / join) stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StageId(pub u8);

impl JobId {
    /// Raw numeric value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl TaskId {
    /// Raw numeric value, usable as an index into per-job task arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl StageId {
    /// The input stage (stage 0) drives result accuracy.
    pub const INPUT: StageId = StageId(0);

    /// Raw numeric value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Whether this is the input stage.
    pub fn is_input(self) -> bool {
        self.0 == 0
    }
}

/// Static description of a task: how much *work* it represents and which DAG stage it
/// belongs to.
///
/// `work` is expressed in seconds on an unloaded, unit-speed slot with no straggling.
/// The simulator turns work into an actual copy duration by multiplying with the
/// machine speed factor and a per-copy straggler multiplier, which is what makes
/// speculative copies worthwhile: a second copy of the same work can be much faster
/// than an original that drew a bad multiplier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Normalised work in seconds (input-size-normalised duration, as in the paper's
    /// footnote 2: task durations are normalised by input size to resist data skew).
    pub work: f64,
    /// DAG stage this task belongs to.
    pub stage: StageId,
}

impl TaskSpec {
    /// A task in the input stage.
    pub fn input(work: f64) -> Self {
        TaskSpec {
            work,
            stage: StageId::INPUT,
        }
    }

    /// A task in an arbitrary stage.
    pub fn in_stage(work: f64, stage: u8) -> Self {
        TaskSpec {
            work,
            stage: StageId(stage),
        }
    }
}

/// Snapshot of one unfinished task handed to a [`crate::SpeculationPolicy`] when it has
/// to pick what to run on a freed slot.
///
/// `trem` / `tnew` are the *estimates* the scheduler would have in a real deployment
/// (progress-report extrapolation and completed-task sampling, degraded to the
/// configured estimation accuracy). `true_remaining` / `true_new_hint` carry the
/// simulator's ground truth so that oracle baselines can be expressed; honest policies
/// must not read them.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskView {
    /// Task identifier within the job.
    pub id: TaskId,
    /// DAG stage of the task.
    pub stage: StageId,
    /// Whether the task's stage has been unlocked (its upstream stage met its
    /// completion requirement). Only eligible tasks may be scheduled.
    pub eligible: bool,
    /// Number of copies of this task currently running (`c` in the paper's notation).
    pub running_copies: u32,
    /// Time the *oldest running copy* has been executing, in seconds. Zero if the task
    /// is not running.
    pub elapsed: Time,
    /// Progress fraction in `[0, 1]` of the most advanced running copy. Zero if the
    /// task is not running.
    pub progress: f64,
    /// Progress per second of the most advanced running copy (used by LATE-style
    /// baselines). Zero if the task is not running.
    pub progress_rate: f64,
    /// Estimated remaining duration of the best (soonest-finishing) running copy.
    /// `f64::INFINITY` if the task is not running.
    pub trem: Time,
    /// Estimated duration of a freshly launched copy.
    pub tnew: Time,
    /// Ground-truth remaining duration of the best running copy (oracle only).
    pub true_remaining: Time,
    /// Ground-truth duration a new copy would take on a typical slot (oracle only).
    pub true_new_hint: Time,
    /// Normalised work of the task (from [`TaskSpec::work`]).
    pub work: f64,
}

impl TaskView {
    /// Whether at least one copy of the task is currently running.
    pub fn is_running(&self) -> bool {
        self.running_copies > 0
    }

    /// Effective duration of the task as defined in Pseudocode 2 of the paper:
    /// `min(trem, tnew)` — the soonest this task could possibly contribute to the
    /// result, over both its running copies and a hypothetical new copy.
    pub fn effective_duration(&self) -> Time {
        self.trem.min(self.tnew)
    }

    /// Resource saving of launching one more speculative copy, as defined for RAS:
    /// `c * trem − (c + 1) * tnew`. Positive iff speculating saves both time and
    /// resources. Returns `None` for tasks that are not running (launching the first
    /// copy is not speculation).
    pub fn speculation_saving(&self) -> Option<f64> {
        if !self.is_running() {
            return None;
        }
        let c = f64::from(self.running_copies);
        Some(c * self.trem - (c + 1.0) * self.tnew)
    }

    /// Whether a new copy is expected to beat the best running copy (`tnew < trem`),
    /// the GS speculation criterion.
    pub fn new_copy_beats_running(&self) -> bool {
        self.is_running() && self.tnew < self.trem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn running_task(trem: f64, tnew: f64, copies: u32) -> TaskView {
        TaskView {
            id: TaskId(0),
            stage: StageId::INPUT,
            eligible: true,
            running_copies: copies,
            elapsed: 1.0,
            progress: 0.5,
            progress_rate: 0.1,
            trem,
            tnew,
            true_remaining: trem,
            true_new_hint: tnew,
            work: tnew,
        }
    }

    #[test]
    fn ids_expose_raw_values() {
        assert_eq!(JobId(7).value(), 7);
        assert_eq!(TaskId(3).index(), 3);
        assert_eq!(StageId(2).value(), 2);
        assert!(StageId::INPUT.is_input());
        assert!(!StageId(1).is_input());
    }

    #[test]
    fn task_spec_constructors_set_stage() {
        assert_eq!(TaskSpec::input(4.0).stage, StageId::INPUT);
        assert_eq!(TaskSpec::in_stage(4.0, 3).stage, StageId(3));
    }

    #[test]
    fn effective_duration_is_min_of_trem_and_tnew() {
        let t = running_task(5.0, 4.0, 1);
        assert_eq!(t.effective_duration(), 4.0);
        let t = running_task(3.0, 4.0, 1);
        assert_eq!(t.effective_duration(), 3.0);
    }

    #[test]
    fn speculation_saving_matches_paper_formula() {
        // Figure 1 (right): T1 has trem = 5, tnew = 2 with one running copy.
        // saving = 1*5 - 2*2 = 1 > 0, so RAS speculates.
        let t = running_task(5.0, 2.0, 1);
        assert_eq!(t.speculation_saving(), Some(1.0));
        // Two copies already running: saving = 2*5 - 3*2 = 4.
        let t = running_task(5.0, 2.0, 2);
        assert_eq!(t.speculation_saving(), Some(4.0));
        // Not running => no speculation saving defined.
        let mut t = running_task(5.0, 2.0, 0);
        t.running_copies = 0;
        assert_eq!(t.speculation_saving(), None);
    }

    #[test]
    fn saving_negative_when_new_copy_too_slow() {
        // trem = 3, tnew = 2: a new copy helps time-wise (GS would copy) but
        // saving = 3 - 4 = -1 < 0, so RAS refuses.
        let t = running_task(3.0, 2.0, 1);
        assert!(t.new_copy_beats_running());
        assert!(t.speculation_saving().unwrap() < 0.0);
    }

    #[test]
    fn gs_criterion_requires_running_copy() {
        let t = running_task(3.0, 2.0, 0);
        assert!(!t.new_copy_beats_running());
    }
}
