//! Task-duration estimation utilities (§5.1 of the paper).
//!
//! The GRASS prototypes estimate two quantities per task:
//!
//! * `trem` — remaining duration of a running copy, extrapolated from progress reports,
//! * `tnew` — duration of a fresh copy, sampled from completed-task durations
//!   (normalised to input size).
//!
//! Both estimates are imperfect; the paper measures average accuracies of ~72% and
//! ~76% in production and shows (§4.1, §6.3.2) that this accuracy is one of the three
//! factors GRASS learns its switching point from. The simulator therefore degrades the
//! ground-truth values to a configurable *target accuracy* and tracks the *measured*
//! accuracy the way a real scheduler would — by comparing past predictions against the
//! durations that actually materialised.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the estimator noise model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// Target accuracy of `trem` estimates in `(0, 1]`. 1.0 means oracle-exact.
    pub trem_accuracy: f64,
    /// Target accuracy of `tnew` estimates in `(0, 1]`.
    pub tnew_accuracy: f64,
    /// If true the estimator reports ground truth regardless of the accuracies above
    /// (used by the oracle baseline).
    pub oracle: bool,
}

impl EstimatorConfig {
    /// Accuracies measured in the paper's prototypes (§5.1): 72% for `trem`, 76% for
    /// `tnew`.
    pub fn paper_default() -> Self {
        EstimatorConfig {
            trem_accuracy: 0.72,
            tnew_accuracy: 0.76,
            oracle: false,
        }
    }

    /// Perfect estimates.
    pub fn oracle() -> Self {
        EstimatorConfig {
            trem_accuracy: 1.0,
            tnew_accuracy: 1.0,
            oracle: true,
        }
    }

    /// Uniform accuracy for both estimates.
    pub fn with_accuracy(accuracy: f64) -> Self {
        EstimatorConfig {
            trem_accuracy: accuracy,
            tnew_accuracy: accuracy,
            oracle: false,
        }
    }

    /// Average of the two accuracies — what a scheduler would report as "estimation
    /// accuracy" before having measured anything.
    pub fn nominal_accuracy(&self) -> f64 {
        if self.oracle {
            1.0
        } else {
            0.5 * (self.trem_accuracy + self.tnew_accuracy)
        }
    }
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig::paper_default()
    }
}

/// Degrade a ground-truth duration to an estimate with the given target accuracy.
///
/// Accuracy `a` is defined as `1 − E[|est − true| / true]` (mean relative error of
/// `1 − a`). The noise is multiplicative, zero-mean-relative Gaussian with the standard
/// deviation chosen so the expected absolute relative error equals `1 − a`
/// (`E|N(0, σ)| = σ·√(2/π)` ⇒ `σ = (1 − a)·√(π/2)`), truncated so estimates stay
/// positive.
pub fn degrade_estimate<R: Rng + ?Sized>(true_value: f64, accuracy: f64, rng: &mut R) -> f64 {
    if !(0.0..1.0).contains(&accuracy) {
        // Accuracy of exactly 1.0 (or any out-of-range value) means "don't degrade".
        return true_value;
    }
    if true_value <= 0.0 {
        return 0.0;
    }
    let sigma = (1.0 - accuracy) * (std::f64::consts::PI / 2.0).sqrt();
    // Box–Muller using the provided RNG: keeps us independent of rand_distr here.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let factor = (1.0 + sigma * z).clamp(0.05, 4.0);
    true_value * factor
}

/// Running measurement of how accurate past estimates turned out to be.
///
/// Each time a task completes, the scheduler compares the estimate it had for that
/// task against the actual duration and folds `1 − |est − actual| / actual` into an
/// exponentially weighted moving average. This measured accuracy is the third factor
/// of GRASS's switching decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyTracker {
    ewma: f64,
    samples: usize,
    alpha: f64,
}

impl AccuracyTracker {
    /// New tracker seeded with a prior accuracy (typically
    /// [`EstimatorConfig::nominal_accuracy`]).
    pub fn new(prior: f64) -> Self {
        AccuracyTracker {
            ewma: prior.clamp(0.0, 1.0),
            samples: 0,
            alpha: 0.1,
        }
    }

    /// Record one (estimate, actual) pair.
    pub fn record(&mut self, estimate: f64, actual: f64) {
        if actual <= 0.0 || !estimate.is_finite() {
            return;
        }
        let accuracy = (1.0 - (estimate - actual).abs() / actual).max(0.0);
        self.ewma = self.alpha * accuracy + (1.0 - self.alpha) * self.ewma;
        self.samples += 1;
    }

    /// Current measured accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        self.ewma
    }

    /// Number of (estimate, actual) pairs observed.
    pub fn samples(&self) -> usize {
        self.samples
    }
}

impl Default for AccuracyTracker {
    fn default() -> Self {
        AccuracyTracker::new(EstimatorConfig::paper_default().nominal_accuracy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_accuracy_returns_truth() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(degrade_estimate(10.0, 1.0, &mut rng), 10.0);
        assert_eq!(degrade_estimate(10.0, 1.5, &mut rng), 10.0);
    }

    #[test]
    fn degraded_estimates_hit_target_mean_relative_error() {
        let mut rng = StdRng::seed_from_u64(42);
        for &target in &[0.6_f64, 0.76, 0.9] {
            let n = 20_000;
            let mut err_sum = 0.0;
            for _ in 0..n {
                let est = degrade_estimate(100.0, target, &mut rng);
                err_sum += (est - 100.0).abs() / 100.0;
            }
            let mean_err = err_sum / n as f64;
            let expected = 1.0 - target;
            assert!(
                (mean_err - expected).abs() < 0.03,
                "target accuracy {target}: mean relative error {mean_err}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn degraded_estimates_stay_positive() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let est = degrade_estimate(5.0, 0.3, &mut rng);
            assert!(est > 0.0);
        }
        assert_eq!(degrade_estimate(0.0, 0.5, &mut rng), 0.0);
        assert_eq!(degrade_estimate(-1.0, 0.5, &mut rng), 0.0);
    }

    #[test]
    fn accuracy_tracker_converges_to_observed_accuracy() {
        let mut tracker = AccuracyTracker::new(0.5);
        // Perfect predictions should drive the EWMA towards 1.
        for _ in 0..200 {
            tracker.record(10.0, 10.0);
        }
        assert!(tracker.accuracy() > 0.95);
        assert_eq!(tracker.samples(), 200);
        // 50% relative error drives it towards 0.5.
        let mut tracker = AccuracyTracker::new(1.0);
        for _ in 0..200 {
            tracker.record(15.0, 10.0);
        }
        assert!((tracker.accuracy() - 0.5).abs() < 0.05);
    }

    #[test]
    fn accuracy_tracker_ignores_degenerate_samples() {
        let mut tracker = AccuracyTracker::new(0.7);
        tracker.record(10.0, 0.0);
        tracker.record(f64::INFINITY, 10.0);
        assert_eq!(tracker.samples(), 0);
        assert!((tracker.accuracy() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn config_constructors() {
        let c = EstimatorConfig::paper_default();
        assert!((c.nominal_accuracy() - 0.74).abs() < 1e-12);
        assert!(EstimatorConfig::oracle().oracle);
        assert_eq!(EstimatorConfig::oracle().nominal_accuracy(), 1.0);
        let c = EstimatorConfig::with_accuracy(0.9);
        assert_eq!(c.trem_accuracy, 0.9);
        assert_eq!(c.tnew_accuracy, 0.9);
    }
}
