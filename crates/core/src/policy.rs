//! The policy interface: what the cluster scheduler asks a per-job speculation policy.

use crate::job::{JobSpec, JobView};
use crate::outcome::JobOutcome;
use crate::task::TaskId;

/// What kind of copy an action launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// First copy of a task that is not currently running.
    Launch,
    /// Additional (speculative) copy of a task that already has at least one running
    /// copy.
    Speculate,
}

/// A scheduling decision returned by a policy: run one more copy of `task` on the free
/// slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Action {
    /// Which task to run a copy of.
    pub task: TaskId,
    /// Whether this is the task's first copy or a speculative duplicate.
    pub kind: ActionKind,
}

impl Action {
    /// Launch the first copy of an unscheduled task.
    pub fn launch(task: TaskId) -> Self {
        Action {
            task,
            kind: ActionKind::Launch,
        }
    }

    /// Launch a speculative copy of a running task.
    pub fn speculate(task: TaskId) -> Self {
        Action {
            task,
            kind: ActionKind::Speculate,
        }
    }

    /// Whether this action is a speculative duplicate.
    pub fn is_speculative(&self) -> bool {
        self.kind == ActionKind::Speculate
    }
}

/// Per-job speculation policy: given a view of the job's unfinished tasks, decide what
/// to run next on a freed slot.
///
/// This is the interface GS, RAS, GRASS, LATE, Mantri and the oracle all implement.
/// One policy instance is created per job (via a [`PolicyFactory`]), so policies are
/// free to keep per-job state (GRASS keeps its current mode and switch bookkeeping).
pub trait SpeculationPolicy: Send {
    /// Short, stable policy name used in reports ("GRASS", "GS", "RAS", "LATE", …).
    fn name(&self) -> &str;

    /// Called once when the job becomes active (its arrival is processed).
    fn on_job_start(&mut self, _view: &JobView) {}

    /// Called whenever a slot allocated to this job is free. Return `Some(action)` to
    /// run one more copy, or `None` if the job has nothing useful to run right now
    /// (the slot is then offered to other jobs).
    fn choose(&mut self, view: &JobView) -> Option<Action>;

    /// Called when one of the job's tasks completes (its first copy finishes).
    fn on_task_complete(&mut self, _view: &JobView, _task: TaskId) {}

    /// Called when the job finishes (deadline reached or error bound satisfied).
    /// GRASS uses this to feed its shared sample store.
    fn on_job_complete(&mut self, _outcome: &JobOutcome) {}
}

/// Boxed policy, the form in which the simulator stores per-job policies.
pub type BoxedPolicy = Box<dyn SpeculationPolicy>;

/// Factory that creates one [`SpeculationPolicy`] instance per job.
///
/// Factories are shared across the whole simulation run, so cross-job state (GRASS's
/// sample store, LATE's cluster-wide speculation cap) lives here.
pub trait PolicyFactory: Send + Sync {
    /// Name of the policy family this factory creates.
    fn name(&self) -> &str;

    /// Create the policy instance for `job`.
    fn create(&self, job: &JobSpec) -> BoxedPolicy;
}

/// Blanket helper: a closure `(job) -> BoxedPolicy` plus a name is a factory.
pub struct FnFactory<F> {
    name: String,
    f: F,
}

impl<F> FnFactory<F>
where
    F: Fn(&JobSpec) -> BoxedPolicy + Send + Sync,
{
    /// Wrap a closure as a [`PolicyFactory`].
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnFactory {
            name: name.into(),
            f,
        }
    }
}

impl<F> PolicyFactory for FnFactory<F>
where
    F: Fn(&JobSpec) -> BoxedPolicy + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn create(&self, job: &JobSpec) -> BoxedPolicy {
        (self.f)(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Bound;

    struct Noop;
    impl SpeculationPolicy for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn choose(&mut self, _view: &JobView) -> Option<Action> {
            None
        }
    }

    #[test]
    fn action_constructors() {
        let a = Action::launch(TaskId(1));
        assert_eq!(a.kind, ActionKind::Launch);
        assert!(!a.is_speculative());
        let s = Action::speculate(TaskId(2));
        assert!(s.is_speculative());
    }

    #[test]
    fn fn_factory_creates_policies() {
        let factory = FnFactory::new("noop", |_job: &JobSpec| Box::new(Noop) as BoxedPolicy);
        assert_eq!(factory.name(), "noop");
        let job = JobSpec::single_stage(1, 0.0, Bound::Deadline(5.0), vec![1.0]);
        let p = factory.create(&job);
        assert_eq!(p.name(), "noop");
    }
}
