//! # grass-core
//!
//! Core library of the GRASS reproduction (NSDI '14, "GRASS: Trimming Stragglers in
//! Approximation Analytics").
//!
//! This crate contains everything that is *policy*, independent of how a cluster is
//! simulated or where workloads come from:
//!
//! * the shared task / job model ([`TaskSpec`], [`JobSpec`], [`Bound`], [`JobView`],
//!   [`TaskView`], [`JobOutcome`]),
//! * the [`SpeculationPolicy`] / [`PolicyFactory`] traits through which a cluster
//!   scheduler asks a per-job policy what to run next on a freed slot,
//! * the paper's two building-block policies, **GS** (Greedy Speculative) and **RAS**
//!   (Resource Aware Speculative), implemented exactly after Pseudocode 1 (deadline
//!   bound) and Pseudocode 2 (error bound),
//! * **GRASS** itself: RAS early, GS near the approximation bound, with the switching
//!   point learned online from ξ-perturbed sample jobs (§4 of the paper), plus the
//!   static *strawman* switcher and the Best-1/Best-2 factor ablations used in §6.3,
//! * estimator utilities for `trem` / `tnew` with a configurable target accuracy
//!   (§5.1 of the paper reports ~72% / ~76% accuracy in production).
//!
//! The discrete-event cluster simulator that drives these policies lives in
//! `grass-sim`; baselines (LATE, Mantri, the oracle scheduler) live in
//! `grass-policies`; workload generation lives in `grass-workload`.
//!
//! ## Quick example
//!
//! ```
//! use grass_core::{Bound, JobSpec, TaskSpec, GsPolicy, SpeculationPolicy, JobView, TaskView};
//!
//! // A tiny deadline-bound job: three tasks, 10s deadline.
//! let job = JobSpec::single_stage(1, 0.0, Bound::Deadline(10.0), vec![1.0, 2.0, 3.0]);
//! assert_eq!(job.total_tasks(), 3);
//! ```

pub mod bins;
pub mod estimate;
pub mod grass;
pub mod job;
pub mod outcome;
pub mod policy;
pub mod speculation;
pub mod task;

pub use bins::{JobSizeBin, SizeBucket};
pub use estimate::{degrade_estimate, AccuracyTracker, EstimatorConfig};
pub use grass::{
    FactorSet, GrassConfig, GrassFactory, GrassPolicy, QuantileSketch, SampleStore, StoreSnapshot,
    StrawmanConfig, SwitchScanCache,
};
pub use job::{Bound, JobSpec, JobView, StageSpec};
pub use outcome::JobOutcome;
pub use policy::{Action, ActionKind, BoxedPolicy, PolicyFactory, SpeculationPolicy};
pub use speculation::{GsFactory, GsPolicy, RasFactory, RasPolicy, SpeculationMode};
pub use task::{JobId, StageId, TaskId, TaskSpec, TaskView, Time};

/// Crate-wide result alias (the crate has no fallible public API today, but the alias
/// keeps signatures stable if validation errors are added).
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while validating job specifications.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A job was declared with no tasks at all.
    EmptyJob(JobId),
    /// A bound value was outside its legal domain (negative deadline, error fraction
    /// outside `[0, 1)`).
    InvalidBound(String),
    /// A task referenced a stage index that the job does not declare.
    UnknownStage { job: JobId, stage: StageId },
    /// A numeric field (arrival time, task work) was NaN, infinite or negative —
    /// such values would otherwise poison every downstream comparison and mean.
    DegenerateValue { job: JobId, message: String },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::EmptyJob(id) => write!(f, "job {id:?} has no tasks"),
            Error::InvalidBound(msg) => write!(f, "invalid approximation bound: {msg}"),
            Error::UnknownStage { job, stage } => {
                write!(f, "job {job:?} references undeclared stage {stage:?}")
            }
            Error::DegenerateValue { job, message } => {
                write!(f, "job {job:?} has a degenerate value: {message}")
            }
        }
    }
}

impl std::error::Error for Error {}
