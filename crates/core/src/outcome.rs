//! Per-job outcomes reported by the simulator and consumed by metrics and GRASS's
//! learning machinery.

use serde::{Deserialize, Serialize};

use crate::job::Bound;
use crate::task::{JobId, Time};

/// Everything we record about a finished job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Which job this outcome belongs to.
    pub job: JobId,
    /// Name of the policy that scheduled the job (as reported by the policy itself;
    /// for ξ-perturbed GRASS jobs this is "GS" or "RAS").
    pub policy: String,
    /// The job's approximation bound.
    pub bound: Bound,
    /// Number of input-stage tasks.
    pub input_tasks: usize,
    /// Total number of tasks across all stages.
    pub total_tasks: usize,
    /// Number of DAG stages.
    pub dag_length: usize,
    /// Arrival time.
    pub arrival: Time,
    /// Time at which the job finished: bound satisfied (error-bound) or the deadline
    /// fired (deadline-bound).
    pub finish: Time,
    /// Input-stage tasks completed by `finish`.
    pub completed_input_tasks: usize,
    /// Tasks completed across all stages by `finish`.
    pub completed_tasks: usize,
    /// Number of speculative copies launched for this job.
    pub speculative_copies: usize,
    /// Number of copies killed because a sibling copy finished first.
    pub killed_copies: usize,
    /// Total slot-seconds consumed by the job (all copies, including killed ones).
    pub slot_seconds: f64,
    /// Time-averaged number of slots allocated to the job while it was active.
    pub avg_wave_width: f64,
    /// Time-averaged cluster utilisation observed while the job was active.
    pub avg_cluster_utilization: f64,
    /// Time-averaged measured estimation accuracy while the job was active.
    pub avg_estimation_accuracy: f64,
}

impl JobOutcome {
    /// Wall-clock duration of the job.
    pub fn duration(&self) -> Time {
        (self.finish - self.arrival).max(0.0)
    }

    /// Result accuracy: fraction of input tasks completed. For error-bound jobs that
    /// ran to their bound this is `>= 1 − ε` by construction.
    pub fn accuracy(&self) -> f64 {
        if self.input_tasks == 0 {
            return 0.0;
        }
        self.completed_input_tasks as f64 / self.input_tasks as f64
    }

    /// Whether an error-bound job actually met its bound (always true for jobs the
    /// simulator ran to completion; false only if the run was truncated).
    pub fn met_error_bound(&self) -> bool {
        match self.bound {
            Bound::Deadline(_) => true,
            Bound::Error(_) => {
                self.completed_input_tasks >= self.bound.tasks_needed(self.input_tasks)
            }
        }
    }

    /// Estimated number of waves the job ran in (input tasks over average wave width).
    pub fn waves(&self) -> f64 {
        if self.avg_wave_width <= 0.0 {
            return f64::INFINITY;
        }
        self.input_tasks as f64 / self.avg_wave_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(bound: Bound, input: usize, done: usize) -> JobOutcome {
        JobOutcome {
            job: JobId(1),
            policy: "GS".to_string(),
            bound,
            input_tasks: input,
            total_tasks: input,
            dag_length: 1,
            arrival: 5.0,
            finish: 25.0,
            completed_input_tasks: done,
            completed_tasks: done,
            speculative_copies: 2,
            killed_copies: 1,
            slot_seconds: 100.0,
            avg_wave_width: 4.0,
            avg_cluster_utilization: 0.8,
            avg_estimation_accuracy: 0.75,
        }
    }

    #[test]
    fn duration_and_accuracy() {
        let o = outcome(Bound::Deadline(20.0), 10, 7);
        assert_eq!(o.duration(), 20.0);
        assert!((o.accuracy() - 0.7).abs() < 1e-12);
        assert_eq!(o.waves(), 2.5);
    }

    #[test]
    fn error_bound_met_detection() {
        let o = outcome(Bound::Error(0.3), 10, 7);
        assert!(o.met_error_bound());
        let o = outcome(Bound::Error(0.1), 10, 7);
        assert!(!o.met_error_bound());
        let o = outcome(Bound::Deadline(20.0), 10, 1);
        assert!(o.met_error_bound());
    }

    #[test]
    fn empty_job_accuracy_is_zero() {
        let o = outcome(Bound::Deadline(20.0), 0, 0);
        assert_eq!(o.accuracy(), 0.0);
    }
}
