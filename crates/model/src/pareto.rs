//! Pareto distribution math used by the Appendix-A speculation model.
//!
//! Task durations in the Facebook and Bing traces are well approximated by a Pareto
//! (power-law) tail with shape β ≈ 1.259 (Figure 3). All closed forms needed by the
//! proactive/reactive models live here: survival function, plain and conditional
//! means, the mean of the minimum of `k` i.i.d. copies, and the expected win of racing
//! a fresh copy against one that has already run for `ω` seconds.

use serde::{Deserialize, Serialize};

/// A Pareto distribution with scale `xm` (minimum value) and shape `beta`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    /// Scale: the smallest possible value.
    pub xm: f64,
    /// Shape: smaller values mean heavier tails. β < 2 ⇒ infinite variance,
    /// β ≤ 1 ⇒ infinite mean.
    pub beta: f64,
}

impl Pareto {
    /// The paper's calibration: β = 1.259 (Figure 3), unit scale.
    pub fn paper() -> Self {
        Pareto {
            xm: 1.0,
            beta: 1.259,
        }
    }

    /// Construct with validation of the parameter domain.
    pub fn new(xm: f64, beta: f64) -> Self {
        assert!(xm > 0.0, "Pareto scale must be positive");
        assert!(beta > 0.0, "Pareto shape must be positive");
        Pareto { xm, beta }
    }

    /// Survival function `P(τ > x)`.
    pub fn survival(&self, x: f64) -> f64 {
        if x <= self.xm {
            1.0
        } else {
            (self.xm / x).powf(self.beta)
        }
    }

    /// CDF `P(τ ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        1.0 - self.survival(x)
    }

    /// Mean `E[τ]`. Infinite for β ≤ 1.
    pub fn mean(&self) -> f64 {
        if self.beta <= 1.0 {
            f64::INFINITY
        } else {
            self.beta * self.xm / (self.beta - 1.0)
        }
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.xm * 2f64.powf(1.0 / self.beta)
    }

    /// Whether the distribution has infinite variance (β < 2), the regime in which
    /// Guideline 1 says early-wave speculation pays off.
    pub fn infinite_variance(&self) -> bool {
        self.beta < 2.0
    }

    /// `E[min(τ₁, …, τ_k)]` for `k` i.i.d. copies: the minimum of `k` Pareto(xm, β)
    /// variables is Pareto(xm, kβ).
    pub fn mean_min_of(&self, k: u32) -> f64 {
        assert!(k >= 1, "need at least one copy");
        let kb = self.beta * f64::from(k);
        if kb <= 1.0 {
            f64::INFINITY
        } else {
            kb * self.xm / (kb - 1.0)
        }
    }

    /// Conditional mean `E[τ − ω | τ > ω]`: the expected *remaining* duration of a copy
    /// that has already run `ω` seconds. For ω ≥ xm the conditional distribution is
    /// Pareto(ω, β), so the remainder has mean `ω / (β − 1)` — it *grows* with ω, which
    /// is exactly why stragglers are worth racing against.
    pub fn mean_excess(&self, omega: f64) -> f64 {
        if self.beta <= 1.0 {
            return f64::INFINITY;
        }
        if omega <= self.xm {
            return self.mean() - omega.max(0.0);
        }
        omega / (self.beta - 1.0)
    }

    /// Conditional mean `E[τ | τ ≤ ω]` (zero if ω ≤ xm, where the condition has
    /// probability zero).
    pub fn mean_truncated(&self, omega: f64) -> f64 {
        if omega <= self.xm {
            return 0.0;
        }
        let p = self.cdf(omega);
        if p <= 0.0 {
            return 0.0;
        }
        let b = self.beta;
        let integral = if (b - 1.0).abs() < 1e-9 {
            // ∫ x·β·xmᵝ·x^(−β−1) dx = xm·ln(ω/xm) for β = 1.
            self.xm * (omega / self.xm).ln()
        } else {
            b * self.xm.powf(b) * (omega.powf(1.0 - b) - self.xm.powf(1.0 - b)) / (1.0 - b)
        };
        integral / p
    }

    /// `E[min(τ₁ − ω, τ₂) | τ₁ > ω]`: the expected additional time to finish a task
    /// whose first copy has already run `ω` seconds once a second fresh copy is
    /// launched (the `E[Z − ω | τ₁ ≥ ω]` term of Eq. 3). Computed by numerically
    /// integrating the product of the two survival functions.
    pub fn mean_race_remainder(&self, omega: f64) -> f64 {
        // Survival of A = τ₁ − ω given τ₁ > ω.
        let surv_a = |x: f64| -> f64 {
            if x <= 0.0 {
                1.0
            } else if omega <= self.xm {
                // ω below the scale: the condition τ₁ > ω always holds, so A = τ₁ − ω
                // with the unconditioned distribution shifted by ω.
                self.survival(omega + x)
            } else {
                (omega / (omega + x)).powf(self.beta)
            }
        };
        let surv_b = |x: f64| self.survival(x);
        // E[min(A,B)] = ∫₀^∞ P(A > x)·P(B > x) dx. The integrand decays like
        // x^(−2β); integrate far enough out for the tail to be negligible. The grid is
        // dense near zero and geometric in the tail, so 20k points keep the error well
        // under 1%.
        let upper = (self.xm.max(omega) * 2000.0).max(1000.0);
        integrate(|x| surv_a(x) * surv_b(x), 0.0, upper, 20_000)
    }
}

/// Simple composite-trapezoid integration on a log-spaced-ish grid: dense near zero,
/// coarser in the tail. Accurate to well under 1% for the smooth, monotone integrands
/// used here.
pub(crate) fn integrate(f: impl Fn(f64) -> f64, lo: f64, hi: f64, steps: usize) -> f64 {
    assert!(hi > lo);
    let n = steps.max(10);
    // Split the domain: linear grid on [lo, lo+1), geometric afterwards.
    let mut total = 0.0;
    let linear_hi = (lo + 1.0).min(hi);
    let linear_steps = n / 2;
    let dx = (linear_hi - lo) / linear_steps as f64;
    let mut prev = f(lo);
    for i in 1..=linear_steps {
        let x = lo + dx * i as f64;
        let fx = f(x);
        total += 0.5 * (prev + fx) * dx;
        prev = fx;
    }
    if linear_hi >= hi {
        return total;
    }
    let geo_steps = n - linear_steps;
    let ratio = (hi / linear_hi).powf(1.0 / geo_steps as f64);
    let mut x_prev = linear_hi;
    let mut f_prev = f(linear_hi);
    for _ in 0..geo_steps {
        let x = x_prev * ratio;
        let fx = f(x);
        total += 0.5 * (f_prev + fx) * (x - x_prev);
        x_prev = x;
        f_prev = fx;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_and_cdf() {
        let p = Pareto::new(2.0, 1.5);
        assert_eq!(p.survival(1.0), 1.0);
        assert_eq!(p.survival(2.0), 1.0);
        assert!((p.survival(4.0) - 0.5f64.powf(1.5)).abs() < 1e-12);
        assert!((p.cdf(4.0) + p.survival(4.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_median() {
        let p = Pareto::new(1.0, 2.0);
        assert!((p.mean() - 2.0).abs() < 1e-12);
        assert!((p.median() - 2f64.sqrt()).abs() < 1e-12);
        assert!(Pareto::new(1.0, 0.9).mean().is_infinite());
        assert!(Pareto::paper().infinite_variance());
        assert!(!Pareto::new(1.0, 2.5).infinite_variance());
    }

    #[test]
    fn min_of_k_copies() {
        let p = Pareto::new(1.0, 1.5);
        // min of 2 copies ~ Pareto(1, 3): mean 1.5.
        assert!((p.mean_min_of(2) - 1.5).abs() < 1e-12);
        // One copy is just the original mean.
        assert!((p.mean_min_of(1) - p.mean()).abs() < 1e-12);
        // Speculation strictly reduces the expected minimum.
        assert!(p.mean_min_of(3) < p.mean_min_of(2));
    }

    #[test]
    fn mean_excess_grows_with_elapsed_time() {
        let p = Pareto::paper();
        // Below the scale, remaining work just shrinks linearly.
        assert!((p.mean_excess(0.0) - p.mean()).abs() < 1e-12);
        // Beyond the scale, the expected remainder grows: the defining property of
        // heavy tails and the reason stragglers persist.
        assert!(p.mean_excess(4.0) > p.mean_excess(2.0));
        assert!((p.mean_excess(2.0) - 2.0 / 0.259).abs() < 1e-9);
    }

    #[test]
    fn truncated_mean_lies_below_omega_and_above_scale() {
        let p = Pareto::new(1.0, 1.5);
        let m = p.mean_truncated(5.0);
        assert!(m > 1.0 && m < 5.0);
        assert_eq!(p.mean_truncated(1.0), 0.0);
        // Consistency: E[τ] = E[τ|τ≤ω]·P(τ≤ω) + E[τ|τ>ω]·P(τ>ω).
        let omega = 5.0;
        let total = p.mean_truncated(omega) * p.cdf(omega)
            + (p.mean_excess(omega) + omega) * p.survival(omega);
        assert!(
            (total - p.mean()).abs() / p.mean() < 1e-3,
            "decomposition {total}"
        );
    }

    #[test]
    fn truncated_mean_shape_one() {
        let p = Pareto::new(1.0, 1.0);
        let m = p.mean_truncated(std::f64::consts::E);
        assert!(m > 1.0 && m < std::f64::consts::E);
    }

    #[test]
    fn race_remainder_beats_waiting() {
        let p = Pareto::paper();
        for omega in [1.0, 2.0, 5.0] {
            let race = p.mean_race_remainder(omega);
            let wait = p.mean_excess(omega);
            assert!(
                race < wait,
                "racing a fresh copy (={race}) should beat waiting (={wait}) at ω={omega}"
            );
            assert!(race > 0.0);
        }
    }

    #[test]
    fn race_remainder_monte_carlo_agreement() {
        use rand::{Rng, SeedableRng};
        let p = Pareto::new(1.0, 1.5);
        let omega = 3.0;
        let analytic = p.mean_race_remainder(omega);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let draw = |rng: &mut rand::rngs::StdRng| -> f64 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            1.0 * u.powf(-1.0 / 1.5)
        };
        let n = 300_000;
        let mut sum = 0.0;
        let mut count = 0usize;
        while count < n {
            let t1 = draw(&mut rng);
            if t1 <= omega {
                continue;
            }
            let t2 = draw(&mut rng);
            sum += (t1 - omega).min(t2);
            count += 1;
        }
        let empirical = sum / n as f64;
        assert!(
            (empirical - analytic).abs() / analytic < 0.03,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn integrate_handles_simple_functions() {
        let v = integrate(|x| x, 0.0, 2.0, 10_000);
        assert!((v - 2.0).abs() < 1e-3);
        let v = integrate(|x| (-x).exp(), 0.0, 50.0, 50_000);
        assert!((v - 1.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn invalid_scale_panics() {
        Pareto::new(0.0, 1.5);
    }
}
