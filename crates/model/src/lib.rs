//! # grass-model
//!
//! The analytic speculation model from Appendix A of the GRASS paper, plus the Hill
//! tail-index estimator used in Figure 3.
//!
//! The model underpins the paper's three design guidelines:
//!
//! 1. during early waves, speculate (with ≤ 2 copies) only when task durations are
//!    heavy-tailed enough to have infinite variance (β < 2);
//! 2. during the final wave, speculate aggressively to fill the allotted capacity;
//! 3. RAS is near-optimal for jobs with ≥ 2 remaining waves, GS for fewer.
//!
//! ```
//! use grass_model::{Pareto, ReactiveModel};
//!
//! let dist = Pareto::paper(); // β = 1.259, the Facebook/Bing calibration
//! let job = ReactiveModel::new(250.0, 50.0, dist); // 5 waves
//! assert!(job.response_time(job.ras_omega()) <= job.response_time(job.gs_omega()) * 1.001);
//! ```

pub mod hill;
pub mod pareto;
pub mod speculation_model;

pub use hill::{hill_estimate, hill_plot, tail_index, HillPoint};
pub use pareto::Pareto;
pub use speculation_model::{figure4_curves, Figure4Curve, ProactiveModel, ReactiveModel};
