//! The Appendix-A speculation model: proactive replication (Theorem 1, Guidelines 1–2)
//! and reactive wait-ω replication (Eq. 3, Guideline 3 / Figure 4).
//!
//! The model tracks one job of `T` tasks on `S` slots (capacity normalised to 1) and
//! studies the rate `μ` at which *work* completes, where work is measured in units of
//! expected task durations. Speculation changes `μ` through two opposing effects:
//! duplicated copies waste capacity, but for heavy-tailed durations the winner of a
//! race finishes so much earlier that total work per task *drops* (the "blow-up
//! factor" is > 1). Job response time is obtained by integrating `dx/dt = −μ(x)`.

use serde::{Deserialize, Serialize};

use crate::pareto::Pareto;

/// Number of integration steps used when converting service rates into response times.
const INTEGRATION_STEPS: usize = 4_000;

/// Proactive speculation model: `k(x)` copies of every task are launched as a function
/// of remaining work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProactiveModel {
    /// Number of tasks in the job.
    pub tasks: f64,
    /// Number of slots allotted to the job.
    pub slots: f64,
    /// Task-duration distribution.
    pub dist: Pareto,
}

impl ProactiveModel {
    /// Build a model for a job of `tasks` tasks on `slots` slots.
    pub fn new(tasks: f64, slots: f64, dist: Pareto) -> Self {
        assert!(tasks >= 1.0 && slots >= 1.0);
        ProactiveModel { tasks, slots, dist }
    }

    /// Number of waves `W = T / S`.
    pub fn waves(&self) -> f64 {
        self.tasks / self.slots
    }

    /// The early-wave replication level σ = max(2/β, 1) of Theorem 1. Only exceeds one
    /// copy when β < 2, i.e. when task durations have infinite variance (Guideline 1).
    pub fn sigma(&self) -> f64 {
        (2.0 / self.dist.beta).max(1.0)
    }

    /// The optimal proactive replication level `k(x)` of Theorem 1, as a function of
    /// the number of tasks still unfinished.
    pub fn optimal_k(&self, remaining_tasks: f64) -> f64 {
        let sigma = self.sigma();
        if remaining_tasks * sigma >= self.slots {
            sigma
        } else if remaining_tasks >= 1.0 {
            self.slots / remaining_tasks
        } else {
            self.slots
        }
    }

    /// The blow-up factor of running `k` copies per task: expected work per task
    /// without duplication over expected total work with duplication,
    /// `E[τ] / (k · E[min(τ₁…τ_k)])`. Greater than one exactly when duplication saves
    /// work in expectation.
    pub fn blowup_factor(&self, k: f64) -> f64 {
        let k = k.max(1.0);
        let kb = k * self.dist.beta;
        let mean_min = if kb <= 1.0 {
            f64::INFINITY
        } else {
            kb * self.dist.xm / (kb - 1.0)
        };
        self.dist.mean() / (k * mean_min)
    }

    /// Service rate `μ` (Eq. 1) with `k` copies per task and `remaining_tasks`
    /// unfinished tasks: the usable fraction of capacity times the blow-up factor.
    pub fn service_rate(&self, remaining_tasks: f64, k: f64) -> f64 {
        let k = k.max(1.0);
        let runnable = remaining_tasks * k;
        let capacity = (runnable / self.slots).min(1.0);
        capacity * self.blowup_factor(k)
    }

    /// Job response time under the optimal proactive policy of Theorem 1.
    pub fn response_time_optimal(&self) -> f64 {
        self.response_time_with(|r| self.optimal_k(r))
    }

    /// Job response time with no speculation at all (`k = 1` throughout).
    pub fn response_time_no_speculation(&self) -> f64 {
        self.response_time_with(|_| 1.0)
    }

    /// Job response time for an arbitrary replication schedule `k(remaining_tasks)`.
    pub fn response_time_with(&self, k_of: impl Fn(f64) -> f64) -> f64 {
        // Work is measured in expected task durations: x₀ = T·E[τ].
        let mean = self.dist.mean();
        let x0 = self.tasks * mean;
        let dx = x0 / INTEGRATION_STEPS as f64;
        let mut t = 0.0;
        // Midpoint rule over remaining work.
        for i in 0..INTEGRATION_STEPS {
            let x = x0 - dx * (i as f64 + 0.5);
            let remaining_tasks = (x / mean).max(1e-9);
            let k = k_of(remaining_tasks);
            let mu = self.service_rate(remaining_tasks, k).max(1e-9);
            t += dx / mu;
        }
        t
    }
}

/// Reactive speculation model: a second copy of a task is launched only once the first
/// copy has run for `ω` seconds (Eq. 3). GS and RAS correspond to particular choices
/// of ω (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReactiveModel {
    /// Number of tasks in the job.
    pub tasks: f64,
    /// Number of slots allotted to the job.
    pub slots: f64,
    /// Task-duration distribution.
    pub dist: Pareto,
}

impl ReactiveModel {
    /// Build a model for a job of `tasks` tasks on `slots` slots.
    pub fn new(tasks: f64, slots: f64, dist: Pareto) -> Self {
        assert!(tasks >= 1.0 && slots >= 1.0);
        ReactiveModel { tasks, slots, dist }
    }

    /// The ω implied by GS: speculate as soon as a new copy looks no slower than the
    /// running one, i.e. when `E[τ] = E[τ − ω | τ > ω]`, giving `ω = β·xm`.
    pub fn gs_omega(&self) -> f64 {
        self.dist.beta * self.dist.xm
    }

    /// The ω implied by RAS: speculate only when it also saves resources, i.e. when
    /// `2·E[τ] = E[τ − ω | τ > ω]`, giving `ω = 2·β·xm`.
    pub fn ras_omega(&self) -> f64 {
        2.0 * self.dist.beta * self.dist.xm
    }

    /// Expected slot-time consumed per task when copies are duplicated after ω
    /// (the denominator of Eq. 3's first line).
    pub fn work_per_task(&self, omega: f64) -> f64 {
        let d = &self.dist;
        let p_lt = d.cdf(omega);
        let p_ge = d.survival(omega);
        let short = d.mean_truncated(omega) * p_lt;
        let long = (2.0 * d.mean_race_remainder(omega) + omega) * p_ge;
        short + long
    }

    /// Service rate `μ` (Eq. 3) with threshold ω and `remaining_tasks` unfinished.
    pub fn service_rate(&self, remaining_tasks: f64, omega: f64) -> f64 {
        let d = &self.dist;
        let p_ge = d.survival(omega);
        let demand = remaining_tasks * (1.0 + p_ge);
        if demand >= self.slots {
            // Early waves: all slots busy; throughput set by the blow-up of waiting ω
            // before duplicating.
            d.mean() / self.work_per_task(omega)
        } else {
            // Final wave: spare capacity exists, so speculate proactively at the
            // optimal level (Guideline 2: fill the allotted capacity).
            let proactive = ProactiveModel::new(self.tasks, self.slots, *d);
            proactive.service_rate(remaining_tasks, proactive.optimal_k(remaining_tasks))
        }
    }

    /// Job response time for a given ω.
    pub fn response_time(&self, omega: f64) -> f64 {
        let mean = self.dist.mean();
        let x0 = self.tasks * mean;
        let dx = x0 / INTEGRATION_STEPS as f64;
        // `work_per_task` involves a numeric integral; hoist it out of the inner loop
        // since it does not depend on the remaining work.
        let p_ge = self.dist.survival(omega);
        let early_rate = self.dist.mean() / self.work_per_task(omega);
        let proactive = ProactiveModel::new(self.tasks, self.slots, self.dist);
        let mut t = 0.0;
        for i in 0..INTEGRATION_STEPS {
            let x = x0 - dx * (i as f64 + 0.5);
            let remaining_tasks = (x / mean).max(1e-9);
            let demand = remaining_tasks * (1.0 + p_ge);
            let mu = if demand >= self.slots {
                early_rate
            } else {
                proactive.service_rate(remaining_tasks, proactive.optimal_k(remaining_tasks))
            }
            .max(1e-9);
            t += dx / mu;
        }
        t
    }

    /// Sweep ω over a range and return `(ω, response time)` pairs.
    pub fn sweep(&self, omegas: &[f64]) -> Vec<(f64, f64)> {
        omegas
            .iter()
            .map(|&omega| (omega, self.response_time(omega)))
            .collect()
    }
}

/// One curve of Figure 4: response time of the wait-ω policy normalised by the best
/// achievable response time for a job with the given number of waves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure4Curve {
    /// Number of waves (T / S) for this curve.
    pub waves: f64,
    /// ω of GS for this distribution.
    pub gs_omega: f64,
    /// ω of RAS for this distribution.
    pub ras_omega: f64,
    /// `(ω, response / optimal)` points.
    pub points: Vec<(f64, f64)>,
    /// Ratio at the GS ω.
    pub gs_ratio: f64,
    /// Ratio at the RAS ω.
    pub ras_ratio: f64,
}

/// Compute the Figure 4 family of curves for the given numbers of waves.
pub fn figure4_curves(
    dist: Pareto,
    slots: f64,
    waves: &[f64],
    omegas: &[f64],
) -> Vec<Figure4Curve> {
    waves
        .iter()
        .map(|&w| {
            let model = ReactiveModel::new((w * slots).max(1.0), slots, dist);
            let sweep = model.sweep(omegas);
            let best = sweep
                .iter()
                .map(|(_, r)| *r)
                .fold(f64::INFINITY, f64::min)
                .min(model.response_time(model.gs_omega()))
                .min(model.response_time(model.ras_omega()));
            let points = sweep.iter().map(|(o, r)| (*o, r / best)).collect();
            Figure4Curve {
                waves: w,
                gs_omega: model.gs_omega(),
                ras_omega: model.ras_omega(),
                points,
                gs_ratio: model.response_time(model.gs_omega()) / best,
                ras_ratio: model.response_time(model.ras_omega()) / best,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> Pareto {
        Pareto::paper()
    }

    #[test]
    fn sigma_depends_on_tail_shape() {
        let heavy = ProactiveModel::new(100.0, 50.0, Pareto::new(1.0, 1.259));
        assert!((heavy.sigma() - 2.0 / 1.259).abs() < 1e-12);
        let light = ProactiveModel::new(100.0, 50.0, Pareto::new(1.0, 2.5));
        // Guideline 1: no early-wave speculation when variance is finite.
        assert_eq!(light.sigma(), 1.0);
    }

    #[test]
    fn theorem1_regimes() {
        let m = ProactiveModel::new(100.0, 50.0, dist());
        let sigma = m.sigma();
        // Early waves: many tasks remain, replicate at sigma.
        assert_eq!(m.optimal_k(90.0), sigma);
        // Last wave: spread the slots over the remaining tasks.
        assert!((m.optimal_k(10.0) - 5.0).abs() < 1e-12);
        // Fewer than one task: all slots on it (Guideline 2: use everything).
        assert_eq!(m.optimal_k(0.5), 50.0);
    }

    #[test]
    fn blowup_exceeds_one_for_heavy_tails_only() {
        let heavy = ProactiveModel::new(100.0, 50.0, Pareto::new(1.0, 1.259));
        assert!(heavy.blowup_factor(2.0) > 1.0);
        let light = ProactiveModel::new(100.0, 50.0, Pareto::new(1.0, 3.0));
        assert!(light.blowup_factor(2.0) < 1.0);
        // k = 1 is always neutral.
        assert!((heavy.blowup_factor(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_proactive_beats_no_speculation_for_heavy_tails() {
        let m = ProactiveModel::new(200.0, 50.0, dist());
        assert!(m.response_time_optimal() < m.response_time_no_speculation());
        assert!((m.waves() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gs_and_ras_omegas_follow_the_definitions() {
        let m = ReactiveModel::new(100.0, 50.0, dist());
        assert!((m.gs_omega() - 1.259).abs() < 1e-9);
        assert!((m.ras_omega() - 2.518).abs() < 1e-9);
        // Cross-check against the defining equations.
        let d = dist();
        assert!((d.mean_excess(m.gs_omega()) - d.mean()).abs() < 1e-6);
        assert!((d.mean_excess(m.ras_omega()) - 2.0 * d.mean()).abs() < 1e-6);
    }

    #[test]
    fn work_per_task_interpolates_between_full_race_and_no_speculation() {
        let m = ReactiveModel::new(100.0, 50.0, dist());
        let d = dist();
        // ω → 0: every task is raced from the start: 2·E[min(τ₁, τ₂)].
        let at_zero = m.work_per_task(1e-9);
        assert!((at_zero - 2.0 * d.mean_min_of(2)).abs() / at_zero < 0.02);
        // ω very large: nobody is ever raced: E[τ].
        let at_inf = m.work_per_task(1e6);
        assert!((at_inf - d.mean()).abs() / d.mean() < 0.05);
    }

    #[test]
    fn guideline3_ras_wins_for_many_waves_gs_wins_for_few() {
        let d = dist();
        // Five-wave job: RAS's conservative ω should beat GS's eager ω.
        let many = ReactiveModel::new(250.0, 50.0, d);
        let ras = many.response_time(many.ras_omega());
        let gs = many.response_time(many.gs_omega());
        assert!(
            ras <= gs * 1.001,
            "five waves: RAS ({ras}) should not lose to GS ({gs})"
        );
        // Single-wave job: GS should be at least as good as RAS.
        let single = ReactiveModel::new(50.0, 50.0, d);
        let ras1 = single.response_time(single.ras_omega());
        let gs1 = single.response_time(single.gs_omega());
        assert!(
            gs1 <= ras1 * 1.001,
            "one wave: GS ({gs1}) should not lose to RAS ({ras1})"
        );
    }

    #[test]
    fn figure4_curves_are_normalised_and_near_optimal_at_gs_ras() {
        let omegas: Vec<f64> = (1..=50).map(|i| i as f64 * 0.1).collect();
        let curves = figure4_curves(dist(), 50.0, &[1.0, 2.0, 3.0, 4.0, 5.0], &omegas);
        assert_eq!(curves.len(), 5);
        for c in &curves {
            assert_eq!(c.points.len(), omegas.len());
            for (_, ratio) in &c.points {
                assert!(*ratio >= 1.0 - 1e-9, "normalised ratio below 1: {ratio}");
                assert!(*ratio < 3.0, "ratio suspiciously large: {ratio}");
            }
        }
        // The paper's headline: each of GS / RAS is near-optimal in its regime. Our
        // model variant keeps the ordering but with a somewhat wider margin for RAS
        // (the sweep's best ω for many-wave jobs sits above RAS's operating point).
        let one_wave = &curves[0];
        let five_waves = &curves[4];
        assert!(
            one_wave.gs_ratio < 1.15,
            "GS ratio at 1 wave: {}",
            one_wave.gs_ratio
        );
        assert!(
            five_waves.ras_ratio < 1.25,
            "RAS ratio at 5 waves: {}",
            five_waves.ras_ratio
        );
        // And each is no better than the other in the opposite regime.
        assert!(five_waves.ras_ratio <= five_waves.gs_ratio + 1e-9);
        assert!(one_wave.gs_ratio <= one_wave.ras_ratio + 1e-9);
    }
}
