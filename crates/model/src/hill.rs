//! Hill estimation of a Pareto tail index (Figure 3 of the paper).
//!
//! A Hill plot shows, for every number of upper order statistics `k`, the Hill
//! estimate of the tail shape β computed from the `k` largest samples. A flat region
//! of the plot indicates a genuine power-law tail and reads off its β; the paper's
//! plot over the Facebook task durations is flat around β = 1.259.

use serde::{Deserialize, Serialize};

/// One point of a Hill plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HillPoint {
    /// Number of upper order statistics used.
    pub order_statistics: usize,
    /// Hill estimate of the tail shape β at this `k`.
    pub beta: f64,
}

/// The Hill estimate of β using the `k` largest samples of `sorted_desc`
/// (which must be sorted in descending order): `1 / ((1/k)·Σᵢ ln(Xᵢ / X_{k+1}))`.
pub fn hill_estimate(sorted_desc: &[f64], k: usize) -> Option<f64> {
    if k == 0 || k + 1 > sorted_desc.len() {
        return None;
    }
    let &threshold = sorted_desc.get(k)?;
    if threshold <= 0.0 {
        return None;
    }
    let mean_log: f64 = sorted_desc
        .get(..k)?
        .iter()
        .map(|&x| (x / threshold).ln())
        .sum::<f64>()
        / k as f64;
    if mean_log <= 0.0 {
        return None;
    }
    Some(1.0 / mean_log)
}

/// Compute a full Hill plot over `samples` (any order), evaluating `points` values of
/// `k` spread geometrically between `k_min` and half the sample count.
pub fn hill_plot(samples: &[f64], points: usize) -> Vec<HillPoint> {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| *v > 0.0).collect();
    if sorted.len() < 10 {
        return Vec::new();
    }
    sorted.sort_by(|a, b| b.total_cmp(a));
    // Very small k gives extremely noisy estimates; start where the estimator has a
    // reasonable variance while still being well inside the tail.
    let k_min = 50.min(sorted.len() / 4).max(2);
    let k_max = (sorted.len() / 2).max(k_min + 1);
    let points = points.max(2);
    let ratio = (k_max as f64 / k_min as f64).powf(1.0 / (points - 1) as f64);
    let mut result = Vec::with_capacity(points);
    let mut last_k = 0usize;
    for i in 0..points {
        let k = ((k_min as f64) * ratio.powi(i as i32)).round() as usize;
        let k = k.clamp(k_min, k_max);
        if k == last_k {
            continue;
        }
        last_k = k;
        if let Some(beta) = hill_estimate(&sorted, k) {
            result.push(HillPoint {
                order_statistics: k,
                beta,
            });
        }
    }
    result
}

/// Summary of a Hill plot: the median β over the central half of the plot, which is
/// the robust "flat region" readout the paper uses.
pub fn tail_index(samples: &[f64]) -> Option<f64> {
    let plot = hill_plot(samples, 60);
    if plot.is_empty() {
        return None;
    }
    let lo = plot.len() / 4;
    let hi = (3 * plot.len() / 4).max(lo + 1);
    let mut betas: Vec<f64> = plot.get(lo..hi)?.iter().map(|p| p.beta).collect();
    betas.sort_by(f64::total_cmp);
    betas.get(betas.len() / 2).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pareto_samples(xm: f64, beta: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                xm * u.powf(-1.0 / beta)
            })
            .collect()
    }

    #[test]
    fn hill_recovers_pareto_shape() {
        for &beta in &[1.259_f64, 1.8, 2.5] {
            let samples = pareto_samples(1.0, beta, 60_000, 42);
            let est = tail_index(&samples).unwrap();
            assert!(
                (est - beta).abs() / beta < 0.08,
                "beta {beta}: estimated {est}"
            );
        }
    }

    #[test]
    fn hill_plot_is_flat_for_pure_pareto() {
        let samples = pareto_samples(1.0, 1.5, 60_000, 7);
        let plot = hill_plot(&samples, 40);
        assert!(plot.len() > 20);
        let betas: Vec<f64> = plot.iter().map(|p| p.beta).collect();
        let mean = betas.iter().sum::<f64>() / betas.len() as f64;
        let spread = betas
            .iter()
            .map(|b| (b - mean).abs())
            .fold(0.0f64, f64::max);
        assert!(
            spread / mean < 0.3,
            "plot not flat: spread {spread}, mean {mean}"
        );
        // Order statistics increase along the plot.
        for w in plot.windows(2) {
            assert!(w[1].order_statistics > w[0].order_statistics);
        }
    }

    #[test]
    fn light_tailed_data_yields_large_beta() {
        // Exponential data has all moments: the Hill estimate keeps climbing, so the
        // flat-region readout should be clearly larger than a heavy-tail value.
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<f64> = (0..40_000)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                1.0 - u.ln()
            })
            .collect();
        let est = tail_index(&samples).unwrap();
        assert!(est > 2.0, "exponential data estimated β = {est}");
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(hill_plot(&[1.0; 5], 10).is_empty());
        assert!(tail_index(&[]).is_none());
        assert_eq!(hill_estimate(&[3.0, 2.0, 1.0], 0), None);
        assert_eq!(hill_estimate(&[3.0, 2.0, 1.0], 3), None);
        // Constant data has zero log-spacings.
        assert_eq!(hill_estimate(&[2.0, 2.0, 2.0], 2), None);
    }
}
