//! Time-weighted statistics helpers.

use grass_core::Time;

/// Tracks the time-weighted average of a piecewise-constant signal (cluster
/// utilisation, a job's allocated slots, measured estimation accuracy, …).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    start: Time,
    last_time: Time,
    last_value: f64,
    integral: f64,
}

impl TimeWeighted {
    /// Start tracking at `time` with an initial value.
    pub fn new(time: Time, initial: f64) -> Self {
        TimeWeighted {
            start: time,
            last_time: time,
            last_value: initial,
            integral: 0.0,
        }
    }

    /// Record that the signal changed to `value` at `time` (the previous value held
    /// from the last update until now).
    pub fn update(&mut self, time: Time, value: f64) {
        if time > self.last_time {
            self.integral += self.last_value * (time - self.last_time);
            self.last_time = time;
        }
        self.last_value = value;
    }

    /// Time-weighted average over `[start, time]`. If no time has elapsed, returns the
    /// current value.
    pub fn average(&self, time: Time) -> f64 {
        let horizon = time.max(self.last_time);
        let total = horizon - self.start;
        if total <= 0.0 {
            return self.last_value;
        }
        let integral = self.integral + self.last_value * (horizon - self.last_time);
        integral / total
    }

    /// The most recently recorded value.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_averages_to_itself() {
        let mut tw = TimeWeighted::new(0.0, 3.0);
        tw.update(5.0, 3.0);
        assert!((tw.average(10.0) - 3.0).abs() < 1e-12);
        assert_eq!(tw.current(), 3.0);
    }

    #[test]
    fn piecewise_average_is_weighted_by_duration() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.update(4.0, 10.0); // 0 for [0,4)
        tw.update(8.0, 0.0); // 10 for [4,8); average over [0,8] = (0*4 + 10*4) / 8 = 5
        assert!((tw.average(8.0) - 5.0).abs() < 1e-12);
        // Extending to t=16 with value 0: (40) / 16 = 2.5.
        assert!((tw.average(16.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_elapsed_returns_current_value() {
        let tw = TimeWeighted::new(2.0, 7.0);
        assert_eq!(tw.average(2.0), 7.0);
        assert_eq!(tw.average(1.0), 7.0);
    }

    #[test]
    fn out_of_order_updates_are_ignored_for_time() {
        let mut tw = TimeWeighted::new(0.0, 1.0);
        tw.update(5.0, 2.0);
        // An update that claims an earlier time must not rewind the clock.
        tw.update(3.0, 4.0);
        assert!((tw.average(5.0) - 1.0).abs() < 1e-12);
    }
}
