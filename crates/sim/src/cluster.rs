//! Cluster configuration and construction.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::machine::{HeterogeneityModel, Machine, SlotId};
use crate::straggler::StragglerModel;

/// Static configuration of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of machines.
    pub machines: usize,
    /// Compute slots per machine.
    pub slots_per_machine: usize,
    /// Machine speed heterogeneity.
    pub heterogeneity: HeterogeneityModel,
    /// Per-copy straggler model.
    pub straggler: StragglerModel,
}

impl ClusterConfig {
    /// A laptop-scale stand-in for the paper's 200-node EC2 deployment: 50 machines
    /// with 4 slots each (200 slots total), mild machine heterogeneity and the
    /// calibrated straggler model.
    pub fn ec2_scaled() -> Self {
        ClusterConfig {
            machines: 50,
            slots_per_machine: 4,
            heterogeneity: HeterogeneityModel::default(),
            straggler: StragglerModel::paper_default(),
        }
    }

    /// A small cluster for quick tests.
    pub fn small(machines: usize, slots_per_machine: usize) -> Self {
        ClusterConfig {
            machines,
            slots_per_machine,
            heterogeneity: HeterogeneityModel::Homogeneous,
            straggler: StragglerModel::paper_default(),
        }
    }

    /// Total number of compute slots.
    pub fn total_slots(&self) -> usize {
        self.machines * self.slots_per_machine
    }

    /// Expected runtime multiplier of a random copy on a random machine. Used as the
    /// ground-truth hint for `tnew`.
    pub fn mean_slowdown(&self) -> f64 {
        self.heterogeneity.mean() * self.straggler.mean()
    }

    /// Materialise the machines, drawing per-machine speed factors from the
    /// heterogeneity model with a dedicated RNG stream so cluster layout does not
    /// perturb workload randomness.
    pub fn build_machines(&self, seed: u64) -> Vec<Machine> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC1A5_7E55);
        (0..self.machines)
            .map(|id| Machine {
                id,
                slots: self.slots_per_machine,
                slowdown: self.heterogeneity.sample(&mut rng),
            })
            .collect()
    }

    /// All slot ids of the cluster.
    pub fn all_slots(&self) -> Vec<SlotId> {
        (0..self.machines)
            .flat_map(|m| {
                (0..self.slots_per_machine).map(move |s| SlotId {
                    machine: m,
                    slot: s,
                })
            })
            .collect()
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::ec2_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_accounting() {
        let c = ClusterConfig::small(3, 4);
        assert_eq!(c.total_slots(), 12);
        assert_eq!(c.all_slots().len(), 12);
        let machines = c.build_machines(1);
        assert_eq!(machines.len(), 3);
        assert!(machines.iter().all(|m| m.slots == 4));
        assert!(machines.iter().all(|m| m.slowdown == 1.0));
    }

    #[test]
    fn ec2_scaled_has_200_slots() {
        let c = ClusterConfig::ec2_scaled();
        assert_eq!(c.total_slots(), 200);
        assert!(c.mean_slowdown() > 1.0);
    }

    #[test]
    fn machine_layout_is_deterministic_per_seed() {
        let c = ClusterConfig::ec2_scaled();
        let a = c.build_machines(42);
        let b = c.build_machines(42);
        assert_eq!(a, b);
    }
}
