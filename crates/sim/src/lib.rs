//! # grass-sim
//!
//! Discrete-event cluster simulator substrate for the GRASS (NSDI '14) reproduction.
//!
//! The paper evaluates GRASS on a 200-node EC2 cluster running Hadoop and Spark
//! prototypes, plus a trace-driven simulator. Neither is available here, so this crate
//! provides the equivalent substrate: a deterministic, seedable discrete-event
//! simulator of a slot-based analytics cluster. It reproduces the scheduling-level
//! phenomena GRASS exploits — heavy-tailed task durations, runtime straggling that a
//! second copy would dodge, multi-waved execution under fair sharing, and speculative
//! copy races — without any of the JVM machinery.
//!
//! The main entry point is [`run_simulation`]; see `grass-experiments` for harnesses
//! that reproduce every figure of the paper on top of it.
//!
//! ```
//! use grass_core::{Bound, GsFactory, JobSpec};
//! use grass_sim::{run_simulation, ClusterConfig, SimConfig};
//!
//! let config = SimConfig {
//!     cluster: ClusterConfig::small(2, 2),
//!     ..SimConfig::default()
//! };
//! let job = JobSpec::single_stage(1, 0.0, Bound::EXACT, vec![1.0; 8]);
//! let result = run_simulation(&config, vec![job], &GsFactory);
//! assert_eq!(result.outcomes[0].completed_input_tasks, 8);
//! ```

pub mod cluster;
pub mod event;
pub mod machine;
pub mod reference;
pub mod runtime;
pub mod simulator;
pub mod stats;
pub mod straggler;
pub mod trace;

pub use cluster::ClusterConfig;
pub use event::{CopyId, Event, EventQueue};
pub use machine::{HeterogeneityModel, Machine, SlotId};
pub use runtime::{CompletionEffect, CopyRuntime, JobRuntime, TaskRuntime};
pub use simulator::{run_simulation, run_simulation_traced, SimConfig, SimResult, SimStats};
pub use stats::TimeWeighted;
pub use straggler::StragglerModel;
pub use trace::{NullSink, SimTraceEvent, TraceSink, VecSink};
