//! Per-copy straggler injection.
//!
//! The paper reports that even after proactive mitigation the average job's slowest
//! task runs ~8× slower than its median task (§2.2), and that task durations have a
//! Pareto tail with shape β ≈ 1.259 (Figure 3). Part of that variation is *intrinsic*
//! to the task (data size, captured by the workload generator's work distribution);
//! the rest is *runtime* misbehaviour — contention, bad disks, slow nodes — that a
//! second copy of the same task would not suffer. Speculation only helps because of
//! this runtime component, so the simulator models it explicitly: every launched copy
//! independently draws a runtime multiplier.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of per-copy runtime multipliers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerModel {
    /// Probability that a copy straggles at all.
    pub probability: f64,
    /// Pareto shape of the straggle multiplier, conditional on straggling. Smaller
    /// values mean heavier tails; the paper's traces suggest β ≈ 1.259.
    pub shape: f64,
    /// Cap on the straggle multiplier (no copy runs more than this factor slower).
    pub max_multiplier: f64,
    /// Relative jitter applied to every copy, straggling or not (models ordinary
    /// runtime variation). A value of 0.1 means ±10% uniform noise.
    pub jitter: f64,
}

impl StragglerModel {
    /// Calibrated default: ~25% of copies straggle with a β = 1.259 Pareto multiplier
    /// capped at 10×, everything gets ±10% jitter. This reproduces the paper's
    /// "slowest task ≈ 8× median" observation for typical job sizes.
    pub fn paper_default() -> Self {
        StragglerModel {
            probability: 0.25,
            shape: 1.259,
            max_multiplier: 10.0,
            jitter: 0.1,
        }
    }

    /// No straggling at all (useful for tests and ablations).
    pub fn none() -> Self {
        StragglerModel {
            probability: 0.0,
            shape: 2.0,
            max_multiplier: 1.0,
            jitter: 0.0,
        }
    }

    /// Draw a runtime multiplier for one copy. Always `>= (1 - jitter)` and
    /// `<= max_multiplier * (1 + jitter)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let jitter = if self.jitter > 0.0 {
            rng.gen_range(-self.jitter..=self.jitter)
        } else {
            0.0
        };
        let base = if self.probability > 0.0 && rng.gen_bool(self.probability.clamp(0.0, 1.0)) {
            // Pareto(1, shape) via inverse transform, capped.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let pareto = u.powf(-1.0 / self.shape.max(0.1));
            pareto.min(self.max_multiplier.max(1.0))
        } else {
            1.0
        };
        (base * (1.0 + jitter)).max(0.05)
    }

    /// Expected runtime multiplier (used for `tnew` ground-truth hints).
    ///
    /// For a capped Pareto(1, β) the conditional mean is computed in closed form; the
    /// jitter is symmetric and does not move the mean.
    pub fn mean(&self) -> f64 {
        let p = self.probability.clamp(0.0, 1.0);
        if p == 0.0 {
            return 1.0;
        }
        let beta = self.shape.max(0.1);
        let cap = self.max_multiplier.max(1.0);
        // E[min(X, cap)] for X ~ Pareto(1, beta):
        //   if beta != 1: (beta - cap^(1-beta)) / (beta - 1)
        //   if beta == 1: 1 + ln(cap)
        let mean_capped = if (beta - 1.0).abs() < 1e-9 {
            1.0 + cap.ln()
        } else {
            (beta - cap.powf(1.0 - beta)) / (beta - 1.0)
        };
        1.0 - p + p * mean_capped
    }
}

impl Default for StragglerModel {
    fn default() -> Self {
        StragglerModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_straggling_gives_unit_multipliers() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = StragglerModel::none();
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), 1.0);
        }
        assert_eq!(m.mean(), 1.0);
    }

    #[test]
    fn samples_respect_cap_and_floor() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = StragglerModel::paper_default();
        for _ in 0..50_000 {
            let s = m.sample(&mut rng);
            assert!(s >= 0.05);
            assert!(s <= m.max_multiplier * (1.0 + m.jitter) + 1e-9);
        }
    }

    #[test]
    fn empirical_mean_matches_closed_form() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = StragglerModel::paper_default();
        let n = 400_000;
        let sum: f64 = (0..n).map(|_| m.sample(&mut rng)).sum();
        let empirical = sum / n as f64;
        assert!(
            (empirical - m.mean()).abs() < 0.02,
            "empirical {empirical} vs analytic {}",
            m.mean()
        );
    }

    #[test]
    fn heavy_tail_produces_eightfold_stragglers() {
        // Within a batch of ~200 copies, the slowest should typically be several times
        // the median — the paper's "slowest task is 8x the median" observation.
        let mut rng = StdRng::seed_from_u64(4);
        let m = StragglerModel::paper_default();
        let mut ratios = Vec::new();
        for _ in 0..200 {
            let mut batch: Vec<f64> = (0..200).map(|_| m.sample(&mut rng)).collect();
            batch.sort_by(f64::total_cmp);
            let median = batch[batch.len() / 2];
            let max = batch[batch.len() - 1];
            ratios.push(max / median);
        }
        let avg_ratio: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            avg_ratio > 4.0 && avg_ratio < 12.0,
            "average slowest/median ratio {avg_ratio} should be in the vicinity of 8"
        );
    }

    #[test]
    fn mean_with_shape_one_uses_log_form() {
        let m = StragglerModel {
            probability: 1.0,
            shape: 1.0,
            max_multiplier: std::f64::consts::E,
            jitter: 0.0,
        };
        assert!((m.mean() - 2.0).abs() < 1e-9);
    }
}
