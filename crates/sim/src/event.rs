//! Discrete-event queue.
//!
//! The simulator is a classic continuous-time discrete-event model: every state change
//! happens at an event, and events are processed in non-decreasing time order. Ties are
//! broken by insertion order so runs are fully deterministic for a given seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use grass_core::{JobId, TaskId, Time};

/// Unique identifier of a launched copy, used to detect stale completion events for
/// copies that were killed when a sibling finished first.
pub type CopyId = u64;

/// The kinds of events the simulator processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A job arrives and becomes active.
    JobArrival(JobId),
    /// A running copy finishes its work.
    CopyFinish {
        /// Job the copy belongs to.
        job: JobId,
        /// Task the copy belongs to.
        task: TaskId,
        /// Unique copy identifier.
        copy: CopyId,
    },
    /// A deadline-bound job reaches its (input) deadline and is finalised.
    JobDeadline(JobId),
}

/// An event tagged with its firing time and a sequence number for deterministic
/// tie-breaking.
#[derive(Debug, Clone, Copy)]
struct ScheduledEvent {
    time: Time,
    seq: u64,
    event: Event,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        // Must agree with `Ord::cmp` below (total order), so compare times with
        // `total_cmp` rather than `==` (under which NaN != NaN).
        self.time.total_cmp(&other.time) == Ordering::Equal && self.seq == other.seq
    }
}

impl Eq for ScheduledEvent {}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        // `total_cmp` is a total order, so a NaN that slips past the push-side
        // debug_assert cannot break heap transitivity (it sorts last instead of
        // comparing Equal to everything, which silently scrambled pop order).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `time`.
    pub fn push(&mut self, time: Time, event: Event) {
        debug_assert!(time.is_finite(), "event scheduled at non-finite time");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, event });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, Event::JobArrival(JobId(1)));
        q.push(1.0, Event::JobArrival(JobId(2)));
        q.push(3.0, Event::JobDeadline(JobId(3)));
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(1.0));
        let order: Vec<Time> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(2.0, Event::JobArrival(JobId(1)));
        q.push(2.0, Event::JobArrival(JobId(2)));
        q.push(2.0, Event::JobArrival(JobId(3)));
        let ids: Vec<u64> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::JobArrival(j) => j.0,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn copy_finish_round_trip() {
        let mut q = EventQueue::new();
        q.push(
            1.5,
            Event::CopyFinish {
                job: JobId(4),
                task: TaskId(2),
                copy: 7,
            },
        );
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, 1.5);
        assert_eq!(
            e,
            Event::CopyFinish {
                job: JobId(4),
                task: TaskId(2),
                copy: 7
            }
        );
    }
}
