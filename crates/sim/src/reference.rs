//! The frozen pre-event-core simulator, kept as the differential-testing oracle.
//!
//! This is a verbatim copy of the simulator as it stood before the indexed
//! event-core refactor: `dispatch` rebuilds the fair-share ordering from a full
//! scan of every live [`JobRuntime`] per launched copy, and every event settles
//! by walking all active jobs to update their time-weighted statistics. That
//! O(live jobs)-per-event behaviour is exactly what the event core replaces —
//! and exactly why this copy exists: `tests/sim_differential.rs` replays
//! arbitrary generated workloads through both engines and requires bit-identical
//! outcomes and byte-identical captured traces.
//!
//! **Do not optimise or otherwise modify this module.** Its value is that it
//! never changes. It shares `JobRuntime`, `EventQueue` and the trace hooks with
//! the live engine, so any behavioural drift in those shared pieces is caught by
//! the differential harness rather than hidden by a second copy.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use grass_core::{ActionKind, Bound, JobId, JobOutcome, JobSpec, JobView, PolicyFactory, Time};

use crate::event::{Event, EventQueue};
use crate::machine::{Machine, SlotId};
use crate::runtime::JobRuntime;
use crate::simulator::{SimConfig, SimResult};
use crate::stats::TimeWeighted;
use crate::trace::{NullSink, SimTraceEvent, TraceSink};

/// Run a full simulation through the frozen reference engine.
pub fn run_reference(
    config: &SimConfig,
    jobs: Vec<JobSpec>,
    factory: &dyn PolicyFactory,
) -> SimResult {
    let mut sink = NullSink;
    ReferenceSimulator::new(*config, jobs, factory, &mut sink).run()
}

/// Run the frozen reference engine while streaming every scheduling-level event
/// into `sink`, exactly as [`crate::run_simulation_traced`] does for the live
/// engine.
pub fn run_reference_traced(
    config: &SimConfig,
    jobs: Vec<JobSpec>,
    factory: &dyn PolicyFactory,
    sink: &mut dyn TraceSink,
) -> SimResult {
    ReferenceSimulator::new(*config, jobs, factory, sink).run()
}

struct ReferenceSimulator<'a> {
    config: SimConfig,
    factory: &'a dyn PolicyFactory,
    sink: &'a mut dyn TraceSink,
    view_scratch: Vec<grass_core::TaskView>,
    machines: Vec<Machine>,
    free_slots: Vec<SlotId>,
    total_slots: usize,
    pending: HashMap<JobId, JobSpec>,
    running: HashMap<JobId, JobRuntime>,
    active_order: Vec<JobId>,
    events: EventQueue,
    rng: StdRng,
    next_copy_id: u64,
    now: Time,
    util_stat: TimeWeighted,
    outcomes: Vec<JobOutcome>,
    total_copies: usize,
    mean_slowdown: f64,
}

impl<'a> ReferenceSimulator<'a> {
    fn new(
        config: SimConfig,
        jobs: Vec<JobSpec>,
        factory: &'a dyn PolicyFactory,
        sink: &'a mut dyn TraceSink,
    ) -> Self {
        let machines = config.cluster.build_machines(config.seed);
        let free_slots: Vec<SlotId> = machines.iter().flat_map(|m| m.slot_ids()).collect();
        let total_slots = free_slots.len();
        let mut events = EventQueue::new();
        let mut pending = HashMap::with_capacity(jobs.len());
        for job in jobs {
            debug_assert!(job.validate().is_ok(), "invalid job spec {:?}", job.id);
            events.push(job.arrival, Event::JobArrival(job.id));
            pending.insert(job.id, job);
        }
        let mean_slowdown = config.cluster.mean_slowdown();
        ReferenceSimulator {
            config,
            factory,
            sink,
            view_scratch: Vec::new(),
            machines,
            free_slots,
            total_slots,
            pending,
            running: HashMap::new(),
            active_order: Vec::new(),
            events,
            rng: StdRng::seed_from_u64(0),
            next_copy_id: 0,
            now: 0.0,
            util_stat: TimeWeighted::new(0.0, 0.0),
            outcomes: Vec::new(),
            total_copies: 0,
            mean_slowdown,
        }
    }

    fn run(mut self) -> SimResult {
        self.rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(0x5EED));
        while let Some((time, event)) = self.events.pop() {
            if let Some(max) = self.config.max_time {
                if time > max {
                    self.now = max;
                    break;
                }
            }
            self.now = time;
            match event {
                Event::JobArrival(id) => self.handle_arrival(id),
                Event::CopyFinish { job, task, copy } => self.handle_copy_finish(job, task, copy),
                Event::JobDeadline(id) => self.handle_deadline(id),
            }
        }
        // Finalise anything still running (hit max_time or starved of slots).
        let leftover: Vec<JobId> = self
            .active_order
            .iter()
            .copied()
            .filter(|id| self.running.get(id).is_some_and(|j| !j.done))
            .collect();
        for id in leftover {
            self.finalize_job(id);
        }
        SimResult {
            outcomes: self.outcomes,
            makespan: self.now,
            total_copies: self.total_copies,
            avg_utilization: self.util_stat.average(self.now),
            stats: Default::default(),
        }
    }

    fn utilization(&self) -> f64 {
        if self.total_slots == 0 {
            return 0.0;
        }
        (self.total_slots - self.free_slots.len()) as f64 / self.total_slots as f64
    }

    fn active_job_count(&self) -> usize {
        self.active_order
            .iter()
            .filter(|id| self.running.get(id).is_some_and(|j| !j.done))
            .count()
    }

    fn fair_share(&self) -> usize {
        let active = self.active_job_count().max(1);
        (self.total_slots / active).max(1)
    }

    fn handle_arrival(&mut self, id: JobId) {
        let Some(spec) = self.pending.remove(&id) else {
            return;
        };
        self.sink.record(&SimTraceEvent::JobArrival {
            time: self.now,
            job: id,
        });
        let policy = self.factory.create(&spec);
        let mut runtime = JobRuntime::new(
            spec,
            policy,
            &self.config.estimator,
            self.now,
            &mut self.rng,
        );

        // Deadline-bound DAG jobs: derive the effective input-stage deadline by
        // subtracting an estimate of the intermediate stages' duration (§5.2).
        if let Bound::Deadline(deadline) = runtime.spec.bound {
            let input_deadline = if runtime.spec.dag_length() > 1 {
                let intermediate = self.estimate_intermediate_time(&runtime.spec);
                (deadline - intermediate).max(0.2 * deadline)
            } else {
                deadline
            };
            runtime.input_deadline = Some(input_deadline);
            self.events.push(
                runtime.spec.arrival + input_deadline,
                Event::JobDeadline(id),
            );
        }

        // Let the policy observe the job's initial state.
        {
            let mut views = std::mem::take(&mut self.view_scratch);
            runtime.build_task_views_into(
                self.now,
                &self.config.estimator,
                self.mean_slowdown,
                &mut views,
            );
            let view = Self::job_view(
                &runtime,
                &views,
                self.now,
                self.fair_share(),
                self.utilization(),
            );
            runtime.policy.on_job_start(&view);
            self.view_scratch = views;
        }

        self.running.insert(id, runtime);
        self.active_order.push(id);
        self.dispatch();
    }

    /// Rough estimate of how long the non-input stages of a DAG job will take,
    /// assuming the job keeps its fair share of slots and tasks take their mean work
    /// times the cluster's mean slowdown.
    fn estimate_intermediate_time(&self, spec: &JobSpec) -> Time {
        let share = self.fair_share().max(1) as f64;
        let mut total = 0.0;
        for (s, stage) in spec.stages.iter().enumerate().skip(1) {
            if stage.task_count == 0 {
                continue;
            }
            let work: f64 = spec
                .tasks
                .iter()
                .filter(|t| t.stage.value() as usize == s)
                .map(|t| t.work)
                .sum();
            let mean_work = work / stage.task_count as f64;
            let waves = (stage.task_count as f64 / share).ceil();
            total += waves * mean_work * self.mean_slowdown;
        }
        total
    }

    fn handle_copy_finish(&mut self, job_id: JobId, task: grass_core::TaskId, copy: u64) {
        let util = self.utilization();
        let fair = self.fair_share();
        let Some(job) = self.running.get_mut(&job_id) else {
            return;
        };
        if job.done {
            return;
        }
        let effect = job.complete_copy(task, copy, self.now);
        if effect.stale {
            return;
        }
        self.sink.record(&SimTraceEvent::CopyFinish {
            time: self.now,
            job: job_id,
            task,
            copy,
            task_completed: effect.task_completed,
        });
        for &(killed_copy, slot) in &effect.killed_copies {
            self.sink.record(&SimTraceEvent::CopyKill {
                time: self.now,
                job: job_id,
                task,
                copy: killed_copy,
                slot,
            });
        }
        self.free_slots.extend(effect.freed_slots.iter().copied());
        self.util_stat.update(self.now, util);
        job.update_stats(self.now, util);

        if effect.task_completed {
            let mut views = std::mem::take(&mut self.view_scratch);
            job.build_task_views_into(
                self.now,
                &self.config.estimator,
                self.mean_slowdown,
                &mut views,
            );
            let view = Self::job_view(job, &views, self.now, fair, util);
            job.policy.on_task_complete(&view, task);
            self.view_scratch = views;
        }

        // Error-bound jobs finish the moment their bound is satisfied.
        let satisfied = job.spec.bound.is_error() && job.bound_satisfied();
        if satisfied {
            self.finalize_job(job_id);
        }
        self.dispatch();
    }

    fn handle_deadline(&mut self, id: JobId) {
        let done = self.running.get(&id).map(|j| j.done).unwrap_or(true);
        if !done {
            self.finalize_job(id);
        }
        self.dispatch();
    }

    fn finalize_job(&mut self, id: JobId) {
        let util = self.utilization();
        let Some(job) = self.running.get_mut(&id) else {
            return;
        };
        if job.done {
            return;
        }
        let freed = job.kill_all_copies(self.now);
        for &(task, copy, slot) in &freed {
            self.sink.record(&SimTraceEvent::CopyKill {
                time: self.now,
                job: id,
                task,
                copy,
                slot,
            });
        }
        self.free_slots
            .extend(freed.iter().map(|&(_, _, slot)| slot));
        job.update_stats(self.now, util);
        job.done = true;
        let outcome = job.outcome(self.now);
        self.sink.record(&SimTraceEvent::JobFinish {
            time: self.now,
            job: id,
            completed_input: outcome.completed_input_tasks,
            completed_total: outcome.completed_tasks,
        });
        job.policy.on_job_complete(&outcome);
        self.outcomes.push(outcome);
        self.util_stat.update(self.now, self.utilization());
    }

    fn job_view<'v>(
        job: &JobRuntime,
        views: &'v [grass_core::TaskView],
        now: Time,
        fair_share: usize,
        utilization: f64,
    ) -> JobView<'v> {
        JobView {
            job: job.spec.id,
            now,
            arrival: job.spec.arrival,
            bound: job.spec.bound,
            input_deadline: job.input_deadline,
            total_input_tasks: job.spec.input_tasks(),
            completed_input_tasks: job.completed_input(),
            total_tasks: job.spec.total_tasks(),
            completed_tasks: job.completed_total(),
            tasks: views,
            wave_width: job
                .allocated_slots
                .max(fair_share.min(job.spec.total_tasks())),
            cluster_utilization: utilization,
            estimation_accuracy: job.accuracy.accuracy(),
        }
    }

    /// Hand out free slots: repeatedly offer the next free slot to the active job with
    /// the fewest allocated slots (max–min fair sharing without preemption) until no
    /// job wants a slot or no slots remain.
    fn dispatch(&mut self) {
        loop {
            if self.free_slots.is_empty() {
                break;
            }
            let util = self.utilization();
            let fair = self.fair_share();
            // Fair ordering: fewest allocated slots first, job id as tie-breaker.
            let mut order: Vec<(usize, JobId)> = self
                .active_order
                .iter()
                .filter_map(|id| {
                    let job = self.running.get(id)?;
                    if job.done || !job.has_unfinished_work() {
                        return None;
                    }
                    Some((job.allocated_slots, *id))
                })
                .collect();
            order.sort_by_key(|(alloc, id)| (*alloc, id.0));

            let mut launched = false;
            for (_, id) in order {
                if self.try_launch_for(id, fair, util) {
                    launched = true;
                    break;
                }
            }
            if !launched {
                break;
            }
        }
        // Refresh per-job statistics after the allocation settled.
        let util = self.utilization();
        self.util_stat.update(self.now, util);
        for id in &self.active_order {
            if let Some(job) = self.running.get_mut(id) {
                if !job.done {
                    job.update_stats(self.now, util);
                }
            }
        }
    }

    /// Offer one free slot to `job_id`. Returns true if a copy was launched.
    fn try_launch_for(&mut self, job_id: JobId, fair_share: usize, utilization: f64) -> bool {
        let mut views = std::mem::take(&mut self.view_scratch);
        let launched = self.try_launch_with_views(job_id, fair_share, utilization, &mut views);
        self.view_scratch = views;
        launched
    }

    fn try_launch_with_views(
        &mut self,
        job_id: JobId,
        fair_share: usize,
        utilization: f64,
        views: &mut Vec<grass_core::TaskView>,
    ) -> bool {
        let mean_slowdown = self.mean_slowdown;
        let estimator = self.config.estimator;
        let Some(job) = self.running.get_mut(&job_id) else {
            return false;
        };
        job.build_task_views_into(self.now, &estimator, mean_slowdown, views);
        if views.is_empty() {
            return false;
        }
        let view = Self::job_view(job, views, self.now, fair_share, utilization);
        let Some(action) = job.policy.choose(&view) else {
            return false;
        };

        // Validate the action against ground truth; a policy bug must not wedge or
        // corrupt the simulation.
        let idx = action.task.index();
        if idx >= job.tasks.len() || job.tasks[idx].finished {
            return false;
        }
        let task_running = !job.tasks[idx].copies.is_empty();
        if action.kind == ActionKind::Launch && task_running {
            return false;
        }
        if !job.stage_eligible(job.tasks[idx].spec.stage.value() as usize) {
            return false;
        }

        let Some(slot) = self.free_slots.pop() else {
            return false;
        };
        self.sink.record(&SimTraceEvent::Decision {
            time: self.now,
            job: job_id,
            task: action.task,
            kind: action.kind,
        });
        let machine_slowdown = self.machines[slot.machine].slowdown;
        let straggle = self.config.cluster.straggler.sample(&mut self.rng);
        let duration = (job.tasks[idx].spec.work * machine_slowdown * straggle).max(1e-6);
        let copy_id = self.next_copy_id;
        self.next_copy_id += 1;
        let speculative = !job.tasks[idx].copies.is_empty();
        job.launch_copy(
            action.task,
            copy_id,
            slot,
            self.now,
            duration,
            &estimator,
            &mut self.rng,
        );
        self.sink.record(&SimTraceEvent::CopyLaunch {
            time: self.now,
            job: job_id,
            task: action.task,
            copy: copy_id,
            slot,
            duration,
            speculative,
        });
        self.total_copies += 1;
        self.events.push(
            self.now + duration,
            Event::CopyFinish {
                job: job_id,
                task: action.task,
                copy: copy_id,
            },
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::run_simulation;
    use grass_core::GsFactory;

    /// The reference engine is a frozen copy: on a quick workload it must agree
    /// with the live engine exactly (the full-breadth check lives in
    /// `tests/sim_differential.rs`).
    #[test]
    fn reference_matches_live_engine_on_a_small_run() {
        let config = SimConfig {
            cluster: crate::cluster::ClusterConfig::small(3, 2),
            ..SimConfig::default()
        };
        let jobs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec::single_stage(i, i as f64, Bound::EXACT, vec![2.0; 6]))
            .collect();
        let live = run_simulation(&config, jobs.clone(), &GsFactory);
        let frozen = run_reference(&config, jobs, &GsFactory);
        assert_eq!(live.outcomes, frozen.outcomes);
        assert_eq!(live.total_copies, frozen.total_copies);
        assert!((live.makespan - frozen.makespan).abs() < 1e-15);
        assert_eq!(
            live.avg_utilization.to_bits(),
            frozen.avg_utilization.to_bits()
        );
    }
}
