//! The discrete-event cluster simulator.
//!
//! This is the substrate that stands in for the paper's 200-node EC2 deployment and
//! its trace-driven simulator. It models:
//!
//! * a cluster of machines × slots with machine heterogeneity and per-copy straggler
//!   multipliers,
//! * fair sharing of slots across concurrently active jobs (each job's *wave width*),
//! * per-job speculation policies consulted whenever a slot frees up,
//! * speculative copy races (first copy to finish wins, siblings are killed),
//! * deadline-bound job finalisation and error-bound completion detection,
//! * DAG stage unlocking and estimation of intermediate-stage time for deadline jobs
//!   (§5.2 of the paper),
//! * progress-style `trem` / `tnew` estimation with configurable accuracy.

// grass: allow(unordered-iter-on-digest-path, "keyed lookup only; results are never taken from map iteration order")
use std::collections::{BTreeSet, HashMap};
use std::ops::Bound as RangeBound;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use grass_core::{
    ActionKind, Bound, EstimatorConfig, JobId, JobOutcome, JobSpec, JobView, PolicyFactory, Time,
};

use crate::cluster::ClusterConfig;
use crate::event::{Event, EventQueue};
use crate::machine::{Machine, SlotPool};
use crate::runtime::{CompletionEffect, JobRuntime};
use crate::stats::TimeWeighted;
use crate::trace::{NullSink, SimTraceEvent, TraceSink};

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cluster layout and straggler behaviour.
    pub cluster: ClusterConfig,
    /// Estimator accuracy model.
    pub estimator: EstimatorConfig,
    /// RNG seed; every random draw in the run derives from it.
    pub seed: u64,
    /// Optional hard stop: jobs still running at this time are finalised as-is.
    pub max_time: Option<Time>,
}

impl SimConfig {
    /// Default configuration: the scaled EC2 cluster, paper-default estimator
    /// accuracy, seed 0.
    pub fn new() -> Self {
        SimConfig {
            cluster: ClusterConfig::ec2_scaled(),
            estimator: EstimatorConfig::paper_default(),
            seed: 0,
            max_time: None,
        }
    }

    /// Same configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::new()
    }
}

/// Work counters exported by the event core, used by the scale tests to verify
/// the O(affected-state) property empirically rather than by inspection.
///
/// The counters describe *simulator* work, not simulated outcomes: two engines
/// producing bit-identical [`SimResult`]s may (and should) report very different
/// counts here. They are excluded from result digests for that reason.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Events popped from the event queue (arrivals, copy finishes, deadlines).
    pub events_processed: u64,
    /// Per-job dispatcher and bookkeeping touches: candidate probes during
    /// dispatch, copy-finish handling, finalisations. A full-scan engine visits
    /// every live job per event, growing this as O(events × live jobs); the
    /// event core's indexes keep it near O(events + copies). The deferred
    /// statistics replay is deliberately *not* counted here: its total update
    /// count is fixed by the bit-exact float contract and identical across
    /// engines — the refactor changes *when* updates run, not how many.
    pub job_touches: u64,
    /// Policy `choose()` consultations (successful or declined).
    pub policy_consultations: u64,
}

/// Aggregate result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// One outcome per job, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Time of the last processed event.
    pub makespan: Time,
    /// Total copies launched across all jobs (originals + speculative).
    pub total_copies: usize,
    /// Time-averaged cluster utilisation over the run.
    pub avg_utilization: f64,
    /// Engine work counters (see [`SimStats`]); not part of any outcome digest.
    pub stats: SimStats,
}

impl SimResult {
    /// Outcomes of jobs scheduled by a given policy name.
    pub fn outcomes_for<'s>(
        &'s self,
        policy: &'s str,
    ) -> impl Iterator<Item = &'s JobOutcome> + 's {
        self.outcomes.iter().filter(move |o| o.policy == policy)
    }
}

/// Run a full simulation: feed `jobs` (in any order; arrivals are honoured) through a
/// cluster scheduled by policies from `factory`.
pub fn run_simulation(
    config: &SimConfig,
    jobs: Vec<JobSpec>,
    factory: &dyn PolicyFactory,
) -> SimResult {
    let mut sink = NullSink;
    Simulator::new(*config, jobs, factory, &mut sink).run()
}

/// Run a full simulation while streaming every scheduling-level event into `sink`.
///
/// The sink is strictly passive, so a traced run produces a [`SimResult`] identical
/// to what [`run_simulation`] would return for the same inputs.
pub fn run_simulation_traced(
    config: &SimConfig,
    jobs: Vec<JobSpec>,
    factory: &dyn PolicyFactory,
    sink: &mut dyn TraceSink,
) -> SimResult {
    Simulator::new(*config, jobs, factory, sink).run()
}

/// The indexed discrete-event engine.
///
/// Three indexes keep per-event work proportional to the *affected* state
/// rather than to every live job (the pre-refactor engine, preserved verbatim
/// in [`crate::reference`], rescanned all of them per event):
///
/// * `free_slots` — a [`SlotPool`]: the same LIFO allocation order as before
///   (slot identity feeds the trace and copy durations) plus per-machine free
///   counts, so `utilization()` and machine-load queries are O(1).
/// * `candidates` — an ordered `(allocated_slots, job id)` index over jobs that
///   are live and still have unfinished work. One dispatch probe is an O(log n)
///   range step instead of an O(n log n) collect-and-sort of every live job.
/// * `timeline` + per-job `stats_cursor` — the lazy statistics ledger. The old
///   engine settled every event by calling `update_stats` on *every* live job.
///   Those per-job time-weighted integrals feed GRASS's learned switching
///   (`Sample::from_outcome` consumes `avg_cluster_utilization` /
///   `avg_estimation_accuracy`), so their floating-point update sequence must
///   be replayed *exactly* — FP addition is not associative and any
///   re-bracketing changes scheduling decisions downstream. Instead of walking
///   all jobs per event, each settle appends one `(time, utilization)` entry to
///   a global timeline, and a job folds the pending entries in only when it is
///   next touched (launch, completion, finalisation). Between touches a job's
///   `allocated_slots` and measured accuracy cannot change (both are only
///   mutated by job-local operations, which all catch up first), so the
///   deferred replay applies bit-identical `update_stats(t, u)` calls in the
///   original order — same floats, batched into cache-friendly runs, with no
///   hash lookups or full-population walks per event.
struct Simulator<'a> {
    config: SimConfig,
    factory: &'a dyn PolicyFactory,
    sink: &'a mut dyn TraceSink,
    /// Scratch buffer reused for every `TaskView` snapshot (hot path: one snapshot
    /// per slot-free event; rebuilding the `Vec` from scratch each time showed up in
    /// `microbench/simulator`).
    view_scratch: Vec<grass_core::TaskView>,
    /// Scratch completion effect reused across copy-finish events (retires the
    /// two per-event `Vec` allocations of the slot-free path).
    effect_scratch: CompletionEffect,
    machines: Vec<Machine>,
    free_slots: SlotPool,
    total_slots: usize,
    // grass: allow(unordered-iter-on-digest-path, "keyed lookup only; dispatch order comes from the BTreeSet index below")
    pending: HashMap<JobId, JobSpec>,
    // grass: allow(unordered-iter-on-digest-path, "keyed lookup only; dispatch order comes from the BTreeSet index below")
    running: HashMap<JobId, JobRuntime>,
    active_order: Vec<JobId>,
    /// Dispatch index: `(allocated_slots, job id)` for every job that is not
    /// done and still has unfinished work. Kept in lockstep with every
    /// launch / completion / finalisation.
    candidates: BTreeSet<(usize, u64)>,
    /// Jobs arrived and not yet finalised — the fair-share denominator, O(1).
    active_count: usize,
    /// Global settle ledger: one `(time, utilization)` entry per dispatch
    /// settle, consumed lazily per job via `stats_cursor` (see type docs).
    timeline: Vec<(Time, f64)>,
    /// Absolute index of `timeline[0]` (the prefix every live job has already
    /// consumed is compacted away).
    timeline_base: usize,
    /// Next absolute timeline length at which to attempt compaction.
    next_compact_check: usize,
    events: EventQueue,
    rng: StdRng,
    next_copy_id: u64,
    now: Time,
    util_stat: TimeWeighted,
    outcomes: Vec<JobOutcome>,
    total_copies: usize,
    mean_slowdown: f64,
    stats: SimStats,
}

impl<'a> Simulator<'a> {
    fn new(
        config: SimConfig,
        jobs: Vec<JobSpec>,
        factory: &'a dyn PolicyFactory,
        sink: &'a mut dyn TraceSink,
    ) -> Self {
        let machines = config.cluster.build_machines(config.seed);
        let free_slots = SlotPool::new(&machines);
        let total_slots = free_slots.total();
        let mut events = EventQueue::new();
        // grass: allow(unordered-iter-on-digest-path, "keyed lookup only; jobs are drained by arrival events, not map order")
        let mut pending = HashMap::with_capacity(jobs.len());
        for job in jobs {
            debug_assert!(job.validate().is_ok(), "invalid job spec {:?}", job.id);
            events.push(job.arrival, Event::JobArrival(job.id));
            pending.insert(job.id, job);
        }
        let mean_slowdown = config.cluster.mean_slowdown();
        Simulator {
            config,
            factory,
            sink,
            view_scratch: Vec::new(),
            effect_scratch: CompletionEffect::default(),
            machines,
            free_slots,
            total_slots,
            pending,
            // grass: allow(unordered-iter-on-digest-path, "keyed lookup only; active_order keeps the deterministic walk order")
            running: HashMap::new(),
            active_order: Vec::new(),
            candidates: BTreeSet::new(),
            active_count: 0,
            timeline: Vec::new(),
            timeline_base: 0,
            next_compact_check: 4096,
            events,
            rng: StdRng::seed_from_u64(0),
            next_copy_id: 0,
            now: 0.0,
            util_stat: TimeWeighted::new(0.0, 0.0),
            outcomes: Vec::new(),
            total_copies: 0,
            mean_slowdown,
            stats: SimStats::default(),
        }
    }

    /// Fold every not-yet-consumed timeline entry into `job`'s time-weighted
    /// statistics. Bit-identical to the eager per-event settle: the entries are
    /// the exact `(time, utilization)` arguments the old engine passed, in the
    /// same order, and the job's local state cannot have changed since they
    /// were appended (every local mutation catches up first).
    fn catch_up_job(timeline: &[(Time, f64)], timeline_base: usize, job: &mut JobRuntime) {
        debug_assert!(job.stats_cursor >= timeline_base, "cursor compacted away");
        // grass: allow(panicky-lib, "cursor is debug-asserted >= base and never advances past the ledger end")
        for &(time, util) in &timeline[job.stats_cursor - timeline_base..] {
            job.update_stats(time, util);
        }
        job.stats_cursor = timeline_base + timeline.len();
    }

    /// Drop the timeline prefix every live job has already consumed. Checked
    /// only when the ledger doubles, so the O(jobs) minimum scan is amortised
    /// to nothing while memory stays proportional to the *unconsumed* suffix.
    fn maybe_compact_timeline(&mut self) {
        let end = self.timeline_base + self.timeline.len();
        if end < self.next_compact_check {
            return;
        }
        let min_cursor = self
            .active_order
            .iter()
            .filter_map(|id| self.running.get(id))
            .filter(|j| !j.done)
            .map(|j| j.stats_cursor)
            .min()
            .unwrap_or(end);
        let drop = min_cursor - self.timeline_base;
        if drop > 0 {
            self.timeline.drain(..drop);
            self.timeline_base = min_cursor;
        }
        self.next_compact_check = self.timeline_base + self.timeline.len().max(2048) * 2;
    }

    fn run(mut self) -> SimResult {
        self.rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(0x5EED));
        while let Some((time, event)) = self.events.pop() {
            if let Some(max) = self.config.max_time {
                if time > max {
                    self.now = max;
                    break;
                }
            }
            self.stats.events_processed += 1;
            self.now = time;
            match event {
                Event::JobArrival(id) => self.handle_arrival(id),
                Event::CopyFinish { job, task, copy } => self.handle_copy_finish(job, task, copy),
                Event::JobDeadline(id) => self.handle_deadline(id),
            }
        }
        // Finalise anything still running (hit max_time or starved of slots).
        let leftover: Vec<JobId> = self
            .active_order
            .iter()
            .copied()
            .filter(|id| self.running.get(id).is_some_and(|j| !j.done))
            .collect();
        for id in leftover {
            self.finalize_job(id);
        }
        SimResult {
            outcomes: self.outcomes,
            makespan: self.now,
            total_copies: self.total_copies,
            avg_utilization: self.util_stat.average(self.now),
            stats: self.stats,
        }
    }

    fn utilization(&self) -> f64 {
        if self.total_slots == 0 {
            return 0.0;
        }
        (self.total_slots - self.free_slots.free_len()) as f64 / self.total_slots as f64
    }

    fn fair_share(&self) -> usize {
        let active = self.active_count.max(1);
        (self.total_slots / active).max(1)
    }

    fn handle_arrival(&mut self, id: JobId) {
        let Some(spec) = self.pending.remove(&id) else {
            return;
        };
        self.sink.record(&SimTraceEvent::JobArrival {
            time: self.now,
            job: id,
        });
        let policy = self.factory.create(&spec);
        let mut runtime = JobRuntime::new(
            spec,
            policy,
            &self.config.estimator,
            self.now,
            &mut self.rng,
        );

        // Deadline-bound DAG jobs: derive the effective input-stage deadline by
        // subtracting an estimate of the intermediate stages' duration (§5.2).
        if let Bound::Deadline(deadline) = runtime.spec.bound {
            let input_deadline = if runtime.spec.dag_length() > 1 {
                let intermediate = self.estimate_intermediate_time(&runtime.spec);
                (deadline - intermediate).max(0.2 * deadline)
            } else {
                deadline
            };
            runtime.input_deadline = Some(input_deadline);
            self.events.push(
                runtime.spec.arrival + input_deadline,
                Event::JobDeadline(id),
            );
        }

        // Let the policy observe the job's initial state.
        {
            let mut views = std::mem::take(&mut self.view_scratch);
            runtime.build_task_views_into(
                self.now,
                &self.config.estimator,
                self.mean_slowdown,
                &mut views,
            );
            let view = Self::job_view(
                &runtime,
                &views,
                self.now,
                self.fair_share(),
                self.utilization(),
            );
            runtime.policy.on_job_start(&view);
            self.view_scratch = views;
        }

        // The job consumes settle entries only from its arrival onwards (the
        // eager engine never updated jobs that had not arrived yet).
        runtime.stats_cursor = self.timeline_base + self.timeline.len();
        if runtime.has_unfinished_work() {
            self.candidates.insert((runtime.allocated_slots, id.0));
        }
        self.running.insert(id, runtime);
        self.active_order.push(id);
        self.active_count += 1;
        self.dispatch();
    }

    /// Rough estimate of how long the non-input stages of a DAG job will take,
    /// assuming the job keeps its fair share of slots and tasks take their mean work
    /// times the cluster's mean slowdown.
    fn estimate_intermediate_time(&self, spec: &JobSpec) -> Time {
        let share = self.fair_share().max(1) as f64;
        let mut total = 0.0;
        for (s, stage) in spec.stages.iter().enumerate().skip(1) {
            if stage.task_count == 0 {
                continue;
            }
            let work: f64 = spec
                .tasks
                .iter()
                .filter(|t| t.stage.value() as usize == s)
                .map(|t| t.work)
                .sum();
            let mean_work = work / stage.task_count as f64;
            let waves = (stage.task_count as f64 / share).ceil();
            total += waves * mean_work * self.mean_slowdown;
        }
        total
    }

    fn handle_copy_finish(&mut self, job_id: JobId, task: grass_core::TaskId, copy: u64) {
        let util = self.utilization();
        let fair = self.fair_share();
        let Some(job) = self.running.get_mut(&job_id) else {
            return;
        };
        if job.done {
            return;
        }
        self.stats.job_touches += 1;
        // Fold pending settle entries in before mutating the job's local state
        // (the entries must see the pre-completion allocation and accuracy).
        Self::catch_up_job(&self.timeline, self.timeline_base, job);
        let alloc_before = job.allocated_slots;
        let mut effect = std::mem::take(&mut self.effect_scratch);
        job.complete_copy_into(task, copy, self.now, &mut effect);
        if effect.stale {
            self.effect_scratch = effect;
            return;
        }
        self.sink.record(&SimTraceEvent::CopyFinish {
            time: self.now,
            job: job_id,
            task,
            copy,
            task_completed: effect.task_completed,
        });
        for &(killed_copy, slot) in &effect.killed_copies {
            self.sink.record(&SimTraceEvent::CopyKill {
                time: self.now,
                job: job_id,
                task,
                copy: killed_copy,
                slot,
            });
        }
        self.free_slots.extend(effect.freed_slots.iter().copied());
        // Re-key the dispatch index: the allocation shrank, and the job may
        // have run out of unfinished work.
        self.candidates.remove(&(alloc_before, job_id.0));
        if job.unfinished > 0 {
            self.candidates.insert((job.allocated_slots, job_id.0));
        }
        self.util_stat.update(self.now, util);
        job.update_stats(self.now, util);

        if effect.task_completed {
            let mut views = std::mem::take(&mut self.view_scratch);
            job.build_task_views_into(
                self.now,
                &self.config.estimator,
                self.mean_slowdown,
                &mut views,
            );
            let view = Self::job_view(job, &views, self.now, fair, util);
            job.policy.on_task_complete(&view, task);
            self.view_scratch = views;
        }

        // Error-bound jobs finish the moment their bound is satisfied.
        let satisfied = job.spec.bound.is_error() && job.bound_satisfied();
        self.effect_scratch = effect;
        if satisfied {
            self.finalize_job(job_id);
        }
        self.dispatch();
    }

    fn handle_deadline(&mut self, id: JobId) {
        let done = self.running.get(&id).map(|j| j.done).unwrap_or(true);
        if !done {
            self.finalize_job(id);
        }
        self.dispatch();
    }

    fn finalize_job(&mut self, id: JobId) {
        let util = self.utilization();
        let Some(job) = self.running.get_mut(&id) else {
            return;
        };
        if job.done {
            return;
        }
        self.stats.job_touches += 1;
        Self::catch_up_job(&self.timeline, self.timeline_base, job);
        self.candidates.remove(&(job.allocated_slots, id.0));
        let freed = job.kill_all_copies(self.now);
        for &(task, copy, slot) in &freed {
            self.sink.record(&SimTraceEvent::CopyKill {
                time: self.now,
                job: id,
                task,
                copy,
                slot,
            });
        }
        self.free_slots
            .extend(freed.iter().map(|&(_, _, slot)| slot));
        job.update_stats(self.now, util);
        job.done = true;
        self.active_count -= 1;
        let outcome = job.outcome(self.now);
        self.sink.record(&SimTraceEvent::JobFinish {
            time: self.now,
            job: id,
            completed_input: outcome.completed_input_tasks,
            completed_total: outcome.completed_tasks,
        });
        job.policy.on_job_complete(&outcome);
        self.outcomes.push(outcome);
        self.util_stat.update(self.now, self.utilization());
    }

    fn job_view<'v>(
        job: &JobRuntime,
        views: &'v [grass_core::TaskView],
        now: Time,
        fair_share: usize,
        utilization: f64,
    ) -> JobView<'v> {
        JobView {
            job: job.spec.id,
            now,
            arrival: job.spec.arrival,
            bound: job.spec.bound,
            input_deadline: job.input_deadline,
            total_input_tasks: job.spec.input_tasks(),
            completed_input_tasks: job.completed_input(),
            total_tasks: job.spec.total_tasks(),
            completed_tasks: job.completed_total(),
            tasks: views,
            wave_width: job
                .allocated_slots
                .max(fair_share.min(job.spec.total_tasks())),
            cluster_utilization: utilization,
            estimation_accuracy: job.accuracy.accuracy(),
        }
    }

    /// Hand out free slots: repeatedly offer the next free slot to the active job with
    /// the fewest allocated slots (max–min fair sharing without preemption) until no
    /// job wants a slot or no slots remain.
    ///
    /// Probe order walks the `candidates` index, which is ordered by
    /// `(allocated_slots, job id)` — exactly the collect-and-sort ordering of
    /// the pre-refactor engine. Declined offers mutate nothing, so stepping the
    /// index with a range cursor visits the same sequence the sorted snapshot
    /// would have; a successful launch re-keys the job and restarts the pass
    /// (as the old loop did, to recompute utilisation and fair share).
    fn dispatch(&mut self) {
        loop {
            if self.free_slots.is_empty() {
                break;
            }
            let util = self.utilization();
            let fair = self.fair_share();
            let mut launched = false;
            let mut cursor: Option<(usize, u64)> = None;
            loop {
                let next = match cursor {
                    None => self.candidates.iter().next().copied(),
                    Some(key) => self
                        .candidates
                        .range((RangeBound::Excluded(key), RangeBound::Unbounded))
                        .next()
                        .copied(),
                };
                let Some(key) = next else {
                    break;
                };
                cursor = Some(key);
                self.stats.job_touches += 1;
                if self.try_launch_for(JobId(key.1), fair, util) {
                    launched = true;
                    break;
                }
            }
            if !launched {
                break;
            }
        }
        // Settle: one global ledger entry instead of touching every live job.
        // Jobs fold the entry in lazily on their next touch (see type docs).
        let util = self.utilization();
        self.util_stat.update(self.now, util);
        self.timeline.push((self.now, util));
        self.maybe_compact_timeline();
    }

    /// Offer one free slot to `job_id`. Returns true if a copy was launched.
    fn try_launch_for(&mut self, job_id: JobId, fair_share: usize, utilization: f64) -> bool {
        let mut views = std::mem::take(&mut self.view_scratch);
        let launched = self.try_launch_with_views(job_id, fair_share, utilization, &mut views);
        self.view_scratch = views;
        launched
    }

    fn try_launch_with_views(
        &mut self,
        job_id: JobId,
        fair_share: usize,
        utilization: f64,
        views: &mut Vec<grass_core::TaskView>,
    ) -> bool {
        let mean_slowdown = self.mean_slowdown;
        let estimator = self.config.estimator;
        let Some(job) = self.running.get_mut(&job_id) else {
            return false;
        };
        // A launch mutates `allocated_slots`; pending settle entries must be
        // folded in against the pre-launch value first.
        Self::catch_up_job(&self.timeline, self.timeline_base, job);
        job.build_task_views_into(self.now, &estimator, mean_slowdown, views);
        if views.is_empty() {
            return false;
        }
        let view = Self::job_view(job, views, self.now, fair_share, utilization);
        self.stats.policy_consultations += 1;
        let Some(action) = job.policy.choose(&view) else {
            return false;
        };

        // Validate the action against ground truth; a policy bug must not wedge or
        // corrupt the simulation.
        let idx = action.task.index();
        // grass: allow(panicky-lib, "short-circuit bounds check: the index is rejected before it is used")
        if idx >= job.tasks.len() || job.tasks[idx].finished {
            return false;
        }
        // grass: allow(panicky-lib, "idx was bounds-checked against job.tasks.len() above")
        let task_running = !job.tasks[idx].copies.is_empty();
        if action.kind == ActionKind::Launch && task_running {
            return false;
        }
        // grass: allow(panicky-lib, "idx was bounds-checked against job.tasks.len() above")
        if !job.stage_eligible(job.tasks[idx].spec.stage.value() as usize) {
            return false;
        }

        let Some(slot) = self.free_slots.pop() else {
            return false;
        };
        self.sink.record(&SimTraceEvent::Decision {
            time: self.now,
            job: job_id,
            task: action.task,
            kind: action.kind,
        });
        // grass: allow(panicky-lib, "slot came from this simulator's own SlotPool; machine indices are minted in range")
        let machine_slowdown = self.machines[slot.machine].slowdown;
        let straggle = self.config.cluster.straggler.sample(&mut self.rng);
        // grass: allow(panicky-lib, "idx was bounds-checked against job.tasks.len() above")
        let duration = (job.tasks[idx].spec.work * machine_slowdown * straggle).max(1e-6);
        let copy_id = self.next_copy_id;
        self.next_copy_id += 1;
        // grass: allow(panicky-lib, "idx was bounds-checked against job.tasks.len() above")
        let speculative = !job.tasks[idx].copies.is_empty();
        let alloc_before = job.allocated_slots;
        job.launch_copy(
            action.task,
            copy_id,
            slot,
            self.now,
            duration,
            &estimator,
            &mut self.rng,
        );
        self.candidates.remove(&(alloc_before, job_id.0));
        self.candidates.insert((job.allocated_slots, job_id.0));
        self.sink.record(&SimTraceEvent::CopyLaunch {
            time: self.now,
            job: job_id,
            task: action.task,
            copy: copy_id,
            slot,
            duration,
            speculative,
        });
        self.total_copies += 1;
        self.events.push(
            self.now + duration,
            Event::CopyFinish {
                job: job_id,
                task: action.task,
                copy: copy_id,
            },
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grass_core::{GsFactory, RasFactory};

    fn exact_job(id: u64, arrival: f64, tasks: usize, work: f64) -> JobSpec {
        JobSpec::single_stage(id, arrival, Bound::EXACT, vec![work; tasks])
    }

    fn small_config(seed: u64) -> SimConfig {
        SimConfig {
            cluster: ClusterConfig::small(2, 2),
            estimator: EstimatorConfig::paper_default(),
            seed,
            max_time: None,
        }
    }

    #[test]
    fn single_exact_job_completes_all_tasks() {
        let result = run_simulation(
            &small_config(1),
            vec![exact_job(1, 0.0, 10, 2.0)],
            &GsFactory,
        );
        assert_eq!(result.outcomes.len(), 1);
        let o = &result.outcomes[0];
        assert_eq!(o.completed_input_tasks, 10);
        assert!((o.accuracy() - 1.0).abs() < 1e-12);
        assert!(o.duration() > 0.0);
        assert!(result.total_copies >= 10);
        assert!(result.avg_utilization > 0.0);
    }

    #[test]
    fn deadline_job_is_cut_off_at_its_deadline() {
        // 100 tasks of 2s work on 4 slots with a 10s deadline cannot all finish.
        let job = JobSpec::single_stage(1, 0.0, Bound::Deadline(10.0), vec![2.0; 100]);
        let result = run_simulation(&small_config(2), vec![job], &GsFactory);
        assert_eq!(result.outcomes.len(), 1);
        let o = &result.outcomes[0];
        assert!(o.completed_input_tasks < 100);
        assert!(o.completed_input_tasks > 0);
        assert!((o.duration() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn error_bound_job_stops_once_enough_tasks_complete() {
        let job = JobSpec::single_stage(1, 0.0, Bound::Error(0.5), vec![2.0; 20]);
        let result = run_simulation(&small_config(3), vec![job], &GsFactory);
        let o = &result.outcomes[0];
        assert!(o.completed_input_tasks >= 10);
        assert!(o.completed_input_tasks <= 20);
        assert!(o.met_error_bound());
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let jobs: Vec<JobSpec> = (0..5).map(|i| exact_job(i, i as f64, 8, 3.0)).collect();
        let a = run_simulation(&small_config(7), jobs.clone(), &RasFactory);
        let b = run_simulation(&small_config(7), jobs, &RasFactory);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x.job, y.job);
            assert!((x.finish - y.finish).abs() < 1e-9);
            assert_eq!(x.completed_tasks, y.completed_tasks);
        }
    }

    #[test]
    fn multiple_jobs_share_the_cluster() {
        let jobs: Vec<JobSpec> = (0..4).map(|i| exact_job(i, 0.0, 10, 2.0)).collect();
        let result = run_simulation(&small_config(4), jobs, &GsFactory);
        assert_eq!(result.outcomes.len(), 4);
        for o in &result.outcomes {
            assert_eq!(o.completed_input_tasks, 10);
        }
    }

    #[test]
    fn dag_error_job_runs_downstream_stages() {
        let job =
            JobSpec::multi_stage(1, 0.0, Bound::Error(0.2), vec![vec![2.0; 10], vec![1.0; 3]]);
        let result = run_simulation(&small_config(5), vec![job], &GsFactory);
        let o = &result.outcomes[0];
        assert!(o.completed_input_tasks >= 8);
        // All downstream tasks must have completed.
        assert_eq!(o.completed_tasks - o.completed_input_tasks, 3);
    }

    #[test]
    fn dag_deadline_job_gets_a_shortened_input_deadline() {
        let job = JobSpec::multi_stage(
            1,
            0.0,
            Bound::Deadline(40.0),
            vec![vec![2.0; 30], vec![2.0; 5]],
        );
        let result = run_simulation(&small_config(6), vec![job], &GsFactory);
        let o = &result.outcomes[0];
        // Finishes before the nominal 40s deadline because intermediate time is
        // reserved.
        assert!(o.duration() < 40.0 - 1e-9);
        assert!(o.duration() > 0.0);
    }

    #[test]
    fn max_time_truncates_the_run() {
        let config = SimConfig {
            max_time: Some(5.0),
            ..small_config(8)
        };
        let job = exact_job(1, 0.0, 100, 3.0);
        let result = run_simulation(&config, vec![job], &GsFactory);
        assert_eq!(result.outcomes.len(), 1);
        assert!(result.outcomes[0].completed_input_tasks < 100);
        assert!(result.makespan <= 5.0 + 1e-9);
    }

    #[test]
    fn speculative_copies_occur_under_straggling() {
        // Large single-wave-ish job with heavy straggling: GS should speculate.
        let mut config = small_config(9);
        config.cluster = ClusterConfig::small(5, 4);
        let job = JobSpec::single_stage(1, 0.0, Bound::Error(0.0), vec![5.0; 40]);
        let result = run_simulation(&config, vec![job], &GsFactory);
        let o = &result.outcomes[0];
        assert!(
            o.speculative_copies > 0,
            "expected at least one speculative copy under heavy-tailed straggling"
        );
        assert_eq!(o.completed_input_tasks, 40);
    }

    #[test]
    fn traced_run_matches_untraced_run_and_captures_events() {
        use crate::trace::VecSink;
        let jobs: Vec<JobSpec> = (0..4).map(|i| exact_job(i, i as f64, 12, 3.0)).collect();
        let config = small_config(11);
        let plain = run_simulation(&config, jobs.clone(), &GsFactory);
        let mut sink = VecSink::new();
        let traced = run_simulation_traced(&config, jobs, &GsFactory, &mut sink);

        // The sink is passive: results must be bit-identical.
        assert_eq!(plain.outcomes, traced.outcomes);
        assert_eq!(plain.total_copies, traced.total_copies);
        assert!((plain.makespan - traced.makespan).abs() < 1e-12);

        // The stream covers every lifecycle stage, in non-decreasing time order.
        let events = sink.into_events();
        let count = |label: &str| events.iter().filter(|e| e.kind_label() == label).count();
        assert_eq!(count("arrive"), 4);
        assert_eq!(count("jobdone"), 4);
        assert_eq!(count("launch"), traced.total_copies);
        assert_eq!(count("decide"), traced.total_copies);
        assert!(count("finish") >= 4 * 12);
        let mut last = 0.0;
        for e in &events {
            assert!(e.time() >= last - 1e-12, "events out of order");
            last = e.time();
        }
    }

    #[test]
    fn outcome_policy_names_match_factory() {
        let result = run_simulation(
            &small_config(10),
            vec![exact_job(1, 0.0, 5, 1.0)],
            &RasFactory,
        );
        assert_eq!(result.outcomes[0].policy, "RAS");
        assert_eq!(result.outcomes_for("RAS").count(), 1);
        assert_eq!(result.outcomes_for("GS").count(), 0);
    }
}
