//! The discrete-event cluster simulator.
//!
//! This is the substrate that stands in for the paper's 200-node EC2 deployment and
//! its trace-driven simulator. It models:
//!
//! * a cluster of machines × slots with machine heterogeneity and per-copy straggler
//!   multipliers,
//! * fair sharing of slots across concurrently active jobs (each job's *wave width*),
//! * per-job speculation policies consulted whenever a slot frees up,
//! * speculative copy races (first copy to finish wins, siblings are killed),
//! * deadline-bound job finalisation and error-bound completion detection,
//! * DAG stage unlocking and estimation of intermediate-stage time for deadline jobs
//!   (§5.2 of the paper),
//! * progress-style `trem` / `tnew` estimation with configurable accuracy.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use grass_core::{
    ActionKind, Bound, EstimatorConfig, JobId, JobOutcome, JobSpec, JobView, PolicyFactory, Time,
};

use crate::cluster::ClusterConfig;
use crate::event::{Event, EventQueue};
use crate::machine::{Machine, SlotId};
use crate::runtime::JobRuntime;
use crate::stats::TimeWeighted;
use crate::trace::{NullSink, SimTraceEvent, TraceSink};

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cluster layout and straggler behaviour.
    pub cluster: ClusterConfig,
    /// Estimator accuracy model.
    pub estimator: EstimatorConfig,
    /// RNG seed; every random draw in the run derives from it.
    pub seed: u64,
    /// Optional hard stop: jobs still running at this time are finalised as-is.
    pub max_time: Option<Time>,
}

impl SimConfig {
    /// Default configuration: the scaled EC2 cluster, paper-default estimator
    /// accuracy, seed 0.
    pub fn new() -> Self {
        SimConfig {
            cluster: ClusterConfig::ec2_scaled(),
            estimator: EstimatorConfig::paper_default(),
            seed: 0,
            max_time: None,
        }
    }

    /// Same configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::new()
    }
}

/// Aggregate result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// One outcome per job, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Time of the last processed event.
    pub makespan: Time,
    /// Total copies launched across all jobs (originals + speculative).
    pub total_copies: usize,
    /// Time-averaged cluster utilisation over the run.
    pub avg_utilization: f64,
}

impl SimResult {
    /// Outcomes of jobs scheduled by a given policy name.
    pub fn outcomes_for<'s>(
        &'s self,
        policy: &'s str,
    ) -> impl Iterator<Item = &'s JobOutcome> + 's {
        self.outcomes.iter().filter(move |o| o.policy == policy)
    }
}

/// Run a full simulation: feed `jobs` (in any order; arrivals are honoured) through a
/// cluster scheduled by policies from `factory`.
pub fn run_simulation(
    config: &SimConfig,
    jobs: Vec<JobSpec>,
    factory: &dyn PolicyFactory,
) -> SimResult {
    let mut sink = NullSink;
    Simulator::new(config.clone(), jobs, factory, &mut sink).run()
}

/// Run a full simulation while streaming every scheduling-level event into `sink`.
///
/// The sink is strictly passive, so a traced run produces a [`SimResult`] identical
/// to what [`run_simulation`] would return for the same inputs.
pub fn run_simulation_traced(
    config: &SimConfig,
    jobs: Vec<JobSpec>,
    factory: &dyn PolicyFactory,
    sink: &mut dyn TraceSink,
) -> SimResult {
    Simulator::new(config.clone(), jobs, factory, sink).run()
}

struct Simulator<'a> {
    config: SimConfig,
    factory: &'a dyn PolicyFactory,
    sink: &'a mut dyn TraceSink,
    /// Scratch buffer reused for every `TaskView` snapshot (hot path: one snapshot
    /// per slot-free event; rebuilding the `Vec` from scratch each time showed up in
    /// `microbench/simulator`).
    view_scratch: Vec<grass_core::TaskView>,
    machines: Vec<Machine>,
    free_slots: Vec<SlotId>,
    total_slots: usize,
    pending: HashMap<JobId, JobSpec>,
    running: HashMap<JobId, JobRuntime>,
    active_order: Vec<JobId>,
    events: EventQueue,
    rng: StdRng,
    next_copy_id: u64,
    now: Time,
    util_stat: TimeWeighted,
    outcomes: Vec<JobOutcome>,
    total_copies: usize,
    mean_slowdown: f64,
}

impl<'a> Simulator<'a> {
    fn new(
        config: SimConfig,
        jobs: Vec<JobSpec>,
        factory: &'a dyn PolicyFactory,
        sink: &'a mut dyn TraceSink,
    ) -> Self {
        let machines = config.cluster.build_machines(config.seed);
        let free_slots: Vec<SlotId> = machines.iter().flat_map(|m| m.slot_ids()).collect();
        let total_slots = free_slots.len();
        let mut events = EventQueue::new();
        let mut pending = HashMap::with_capacity(jobs.len());
        for job in jobs {
            debug_assert!(job.validate().is_ok(), "invalid job spec {:?}", job.id);
            events.push(job.arrival, Event::JobArrival(job.id));
            pending.insert(job.id, job);
        }
        let mean_slowdown = config.cluster.mean_slowdown();
        Simulator {
            config,
            factory,
            sink,
            view_scratch: Vec::new(),
            machines,
            free_slots,
            total_slots,
            pending,
            running: HashMap::new(),
            active_order: Vec::new(),
            events,
            rng: StdRng::seed_from_u64(0),
            next_copy_id: 0,
            now: 0.0,
            util_stat: TimeWeighted::new(0.0, 0.0),
            outcomes: Vec::new(),
            total_copies: 0,
            mean_slowdown,
        }
    }

    fn run(mut self) -> SimResult {
        self.rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(0x5EED));
        while let Some((time, event)) = self.events.pop() {
            if let Some(max) = self.config.max_time {
                if time > max {
                    self.now = max;
                    break;
                }
            }
            self.now = time;
            match event {
                Event::JobArrival(id) => self.handle_arrival(id),
                Event::CopyFinish { job, task, copy } => self.handle_copy_finish(job, task, copy),
                Event::JobDeadline(id) => self.handle_deadline(id),
            }
        }
        // Finalise anything still running (hit max_time or starved of slots).
        let leftover: Vec<JobId> = self
            .active_order
            .iter()
            .copied()
            .filter(|id| self.running.get(id).is_some_and(|j| !j.done))
            .collect();
        for id in leftover {
            self.finalize_job(id);
        }
        SimResult {
            outcomes: self.outcomes,
            makespan: self.now,
            total_copies: self.total_copies,
            avg_utilization: self.util_stat.average(self.now),
        }
    }

    fn utilization(&self) -> f64 {
        if self.total_slots == 0 {
            return 0.0;
        }
        (self.total_slots - self.free_slots.len()) as f64 / self.total_slots as f64
    }

    fn active_job_count(&self) -> usize {
        self.active_order
            .iter()
            .filter(|id| self.running.get(id).is_some_and(|j| !j.done))
            .count()
    }

    fn fair_share(&self) -> usize {
        let active = self.active_job_count().max(1);
        (self.total_slots / active).max(1)
    }

    fn handle_arrival(&mut self, id: JobId) {
        let Some(spec) = self.pending.remove(&id) else {
            return;
        };
        self.sink.record(&SimTraceEvent::JobArrival {
            time: self.now,
            job: id,
        });
        let policy = self.factory.create(&spec);
        let mut runtime = JobRuntime::new(
            spec,
            policy,
            &self.config.estimator,
            self.now,
            &mut self.rng,
        );

        // Deadline-bound DAG jobs: derive the effective input-stage deadline by
        // subtracting an estimate of the intermediate stages' duration (§5.2).
        if let Bound::Deadline(deadline) = runtime.spec.bound {
            let input_deadline = if runtime.spec.dag_length() > 1 {
                let intermediate = self.estimate_intermediate_time(&runtime.spec);
                (deadline - intermediate).max(0.2 * deadline)
            } else {
                deadline
            };
            runtime.input_deadline = Some(input_deadline);
            self.events.push(
                runtime.spec.arrival + input_deadline,
                Event::JobDeadline(id),
            );
        }

        // Let the policy observe the job's initial state.
        {
            let mut views = std::mem::take(&mut self.view_scratch);
            runtime.build_task_views_into(
                self.now,
                &self.config.estimator,
                self.mean_slowdown,
                &mut views,
            );
            let view = Self::job_view(
                &runtime,
                &views,
                self.now,
                self.fair_share(),
                self.utilization(),
            );
            runtime.policy.on_job_start(&view);
            self.view_scratch = views;
        }

        self.running.insert(id, runtime);
        self.active_order.push(id);
        self.dispatch();
    }

    /// Rough estimate of how long the non-input stages of a DAG job will take,
    /// assuming the job keeps its fair share of slots and tasks take their mean work
    /// times the cluster's mean slowdown.
    fn estimate_intermediate_time(&self, spec: &JobSpec) -> Time {
        let share = self.fair_share().max(1) as f64;
        let mut total = 0.0;
        for (s, stage) in spec.stages.iter().enumerate().skip(1) {
            if stage.task_count == 0 {
                continue;
            }
            let work: f64 = spec
                .tasks
                .iter()
                .filter(|t| t.stage.value() as usize == s)
                .map(|t| t.work)
                .sum();
            let mean_work = work / stage.task_count as f64;
            let waves = (stage.task_count as f64 / share).ceil();
            total += waves * mean_work * self.mean_slowdown;
        }
        total
    }

    fn handle_copy_finish(&mut self, job_id: JobId, task: grass_core::TaskId, copy: u64) {
        let util = self.utilization();
        let fair = self.fair_share();
        let Some(job) = self.running.get_mut(&job_id) else {
            return;
        };
        if job.done {
            return;
        }
        let effect = job.complete_copy(task, copy, self.now);
        if effect.stale {
            return;
        }
        self.sink.record(&SimTraceEvent::CopyFinish {
            time: self.now,
            job: job_id,
            task,
            copy,
            task_completed: effect.task_completed,
        });
        for &(killed_copy, slot) in &effect.killed_copies {
            self.sink.record(&SimTraceEvent::CopyKill {
                time: self.now,
                job: job_id,
                task,
                copy: killed_copy,
                slot,
            });
        }
        self.free_slots.extend(effect.freed_slots.iter().copied());
        self.util_stat.update(self.now, util);
        job.update_stats(self.now, util);

        if effect.task_completed {
            let mut views = std::mem::take(&mut self.view_scratch);
            job.build_task_views_into(
                self.now,
                &self.config.estimator,
                self.mean_slowdown,
                &mut views,
            );
            let view = Self::job_view(job, &views, self.now, fair, util);
            job.policy.on_task_complete(&view, task);
            self.view_scratch = views;
        }

        // Error-bound jobs finish the moment their bound is satisfied.
        let satisfied = job.spec.bound.is_error() && job.bound_satisfied();
        if satisfied {
            self.finalize_job(job_id);
        }
        self.dispatch();
    }

    fn handle_deadline(&mut self, id: JobId) {
        let done = self.running.get(&id).map(|j| j.done).unwrap_or(true);
        if !done {
            self.finalize_job(id);
        }
        self.dispatch();
    }

    fn finalize_job(&mut self, id: JobId) {
        let util = self.utilization();
        let Some(job) = self.running.get_mut(&id) else {
            return;
        };
        if job.done {
            return;
        }
        let freed = job.kill_all_copies(self.now);
        for &(task, copy, slot) in &freed {
            self.sink.record(&SimTraceEvent::CopyKill {
                time: self.now,
                job: id,
                task,
                copy,
                slot,
            });
        }
        self.free_slots
            .extend(freed.iter().map(|&(_, _, slot)| slot));
        job.update_stats(self.now, util);
        job.done = true;
        let outcome = job.outcome(self.now);
        self.sink.record(&SimTraceEvent::JobFinish {
            time: self.now,
            job: id,
            completed_input: outcome.completed_input_tasks,
            completed_total: outcome.completed_tasks,
        });
        job.policy.on_job_complete(&outcome);
        self.outcomes.push(outcome);
        self.util_stat.update(self.now, self.utilization());
    }

    fn job_view<'v>(
        job: &JobRuntime,
        views: &'v [grass_core::TaskView],
        now: Time,
        fair_share: usize,
        utilization: f64,
    ) -> JobView<'v> {
        JobView {
            job: job.spec.id,
            now,
            arrival: job.spec.arrival,
            bound: job.spec.bound,
            input_deadline: job.input_deadline,
            total_input_tasks: job.spec.input_tasks(),
            completed_input_tasks: job.completed_input(),
            total_tasks: job.spec.total_tasks(),
            completed_tasks: job.completed_total(),
            tasks: views,
            wave_width: job
                .allocated_slots
                .max(fair_share.min(job.spec.total_tasks())),
            cluster_utilization: utilization,
            estimation_accuracy: job.accuracy.accuracy(),
        }
    }

    /// Hand out free slots: repeatedly offer the next free slot to the active job with
    /// the fewest allocated slots (max–min fair sharing without preemption) until no
    /// job wants a slot or no slots remain.
    fn dispatch(&mut self) {
        loop {
            if self.free_slots.is_empty() {
                break;
            }
            let util = self.utilization();
            let fair = self.fair_share();
            // Fair ordering: fewest allocated slots first, job id as tie-breaker.
            let mut order: Vec<(usize, JobId)> = self
                .active_order
                .iter()
                .filter_map(|id| {
                    let job = self.running.get(id)?;
                    if job.done || !job.has_unfinished_work() {
                        return None;
                    }
                    Some((job.allocated_slots, *id))
                })
                .collect();
            order.sort_by_key(|(alloc, id)| (*alloc, id.0));

            let mut launched = false;
            for (_, id) in order {
                if self.try_launch_for(id, fair, util) {
                    launched = true;
                    break;
                }
            }
            if !launched {
                break;
            }
        }
        // Refresh per-job statistics after the allocation settled.
        let util = self.utilization();
        self.util_stat.update(self.now, util);
        for id in &self.active_order {
            if let Some(job) = self.running.get_mut(id) {
                if !job.done {
                    job.update_stats(self.now, util);
                }
            }
        }
    }

    /// Offer one free slot to `job_id`. Returns true if a copy was launched.
    fn try_launch_for(&mut self, job_id: JobId, fair_share: usize, utilization: f64) -> bool {
        let mut views = std::mem::take(&mut self.view_scratch);
        let launched = self.try_launch_with_views(job_id, fair_share, utilization, &mut views);
        self.view_scratch = views;
        launched
    }

    fn try_launch_with_views(
        &mut self,
        job_id: JobId,
        fair_share: usize,
        utilization: f64,
        views: &mut Vec<grass_core::TaskView>,
    ) -> bool {
        let mean_slowdown = self.mean_slowdown;
        let estimator = self.config.estimator;
        let Some(job) = self.running.get_mut(&job_id) else {
            return false;
        };
        job.build_task_views_into(self.now, &estimator, mean_slowdown, views);
        if views.is_empty() {
            return false;
        }
        let view = Self::job_view(job, views, self.now, fair_share, utilization);
        let Some(action) = job.policy.choose(&view) else {
            return false;
        };

        // Validate the action against ground truth; a policy bug must not wedge or
        // corrupt the simulation.
        let idx = action.task.index();
        if idx >= job.tasks.len() || job.tasks[idx].finished {
            return false;
        }
        let task_running = !job.tasks[idx].copies.is_empty();
        if action.kind == ActionKind::Launch && task_running {
            return false;
        }
        if !job.stage_eligible(job.tasks[idx].spec.stage.value() as usize) {
            return false;
        }

        let Some(slot) = self.free_slots.pop() else {
            return false;
        };
        self.sink.record(&SimTraceEvent::Decision {
            time: self.now,
            job: job_id,
            task: action.task,
            kind: action.kind,
        });
        let machine_slowdown = self.machines[slot.machine].slowdown;
        let straggle = self.config.cluster.straggler.sample(&mut self.rng);
        let duration = (job.tasks[idx].spec.work * machine_slowdown * straggle).max(1e-6);
        let copy_id = self.next_copy_id;
        self.next_copy_id += 1;
        let speculative = !job.tasks[idx].copies.is_empty();
        job.launch_copy(
            action.task,
            copy_id,
            slot,
            self.now,
            duration,
            &estimator,
            &mut self.rng,
        );
        self.sink.record(&SimTraceEvent::CopyLaunch {
            time: self.now,
            job: job_id,
            task: action.task,
            copy: copy_id,
            slot,
            duration,
            speculative,
        });
        self.total_copies += 1;
        self.events.push(
            self.now + duration,
            Event::CopyFinish {
                job: job_id,
                task: action.task,
                copy: copy_id,
            },
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grass_core::{GsFactory, RasFactory};

    fn exact_job(id: u64, arrival: f64, tasks: usize, work: f64) -> JobSpec {
        JobSpec::single_stage(id, arrival, Bound::EXACT, vec![work; tasks])
    }

    fn small_config(seed: u64) -> SimConfig {
        SimConfig {
            cluster: ClusterConfig::small(2, 2),
            estimator: EstimatorConfig::paper_default(),
            seed,
            max_time: None,
        }
    }

    #[test]
    fn single_exact_job_completes_all_tasks() {
        let result = run_simulation(
            &small_config(1),
            vec![exact_job(1, 0.0, 10, 2.0)],
            &GsFactory,
        );
        assert_eq!(result.outcomes.len(), 1);
        let o = &result.outcomes[0];
        assert_eq!(o.completed_input_tasks, 10);
        assert!((o.accuracy() - 1.0).abs() < 1e-12);
        assert!(o.duration() > 0.0);
        assert!(result.total_copies >= 10);
        assert!(result.avg_utilization > 0.0);
    }

    #[test]
    fn deadline_job_is_cut_off_at_its_deadline() {
        // 100 tasks of 2s work on 4 slots with a 10s deadline cannot all finish.
        let job = JobSpec::single_stage(1, 0.0, Bound::Deadline(10.0), vec![2.0; 100]);
        let result = run_simulation(&small_config(2), vec![job], &GsFactory);
        assert_eq!(result.outcomes.len(), 1);
        let o = &result.outcomes[0];
        assert!(o.completed_input_tasks < 100);
        assert!(o.completed_input_tasks > 0);
        assert!((o.duration() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn error_bound_job_stops_once_enough_tasks_complete() {
        let job = JobSpec::single_stage(1, 0.0, Bound::Error(0.5), vec![2.0; 20]);
        let result = run_simulation(&small_config(3), vec![job], &GsFactory);
        let o = &result.outcomes[0];
        assert!(o.completed_input_tasks >= 10);
        assert!(o.completed_input_tasks <= 20);
        assert!(o.met_error_bound());
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let jobs: Vec<JobSpec> = (0..5).map(|i| exact_job(i, i as f64, 8, 3.0)).collect();
        let a = run_simulation(&small_config(7), jobs.clone(), &RasFactory);
        let b = run_simulation(&small_config(7), jobs, &RasFactory);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x.job, y.job);
            assert!((x.finish - y.finish).abs() < 1e-9);
            assert_eq!(x.completed_tasks, y.completed_tasks);
        }
    }

    #[test]
    fn multiple_jobs_share_the_cluster() {
        let jobs: Vec<JobSpec> = (0..4).map(|i| exact_job(i, 0.0, 10, 2.0)).collect();
        let result = run_simulation(&small_config(4), jobs, &GsFactory);
        assert_eq!(result.outcomes.len(), 4);
        for o in &result.outcomes {
            assert_eq!(o.completed_input_tasks, 10);
        }
    }

    #[test]
    fn dag_error_job_runs_downstream_stages() {
        let job =
            JobSpec::multi_stage(1, 0.0, Bound::Error(0.2), vec![vec![2.0; 10], vec![1.0; 3]]);
        let result = run_simulation(&small_config(5), vec![job], &GsFactory);
        let o = &result.outcomes[0];
        assert!(o.completed_input_tasks >= 8);
        // All downstream tasks must have completed.
        assert_eq!(o.completed_tasks - o.completed_input_tasks, 3);
    }

    #[test]
    fn dag_deadline_job_gets_a_shortened_input_deadline() {
        let job = JobSpec::multi_stage(
            1,
            0.0,
            Bound::Deadline(40.0),
            vec![vec![2.0; 30], vec![2.0; 5]],
        );
        let result = run_simulation(&small_config(6), vec![job], &GsFactory);
        let o = &result.outcomes[0];
        // Finishes before the nominal 40s deadline because intermediate time is
        // reserved.
        assert!(o.duration() < 40.0 - 1e-9);
        assert!(o.duration() > 0.0);
    }

    #[test]
    fn max_time_truncates_the_run() {
        let config = SimConfig {
            max_time: Some(5.0),
            ..small_config(8)
        };
        let job = exact_job(1, 0.0, 100, 3.0);
        let result = run_simulation(&config, vec![job], &GsFactory);
        assert_eq!(result.outcomes.len(), 1);
        assert!(result.outcomes[0].completed_input_tasks < 100);
        assert!(result.makespan <= 5.0 + 1e-9);
    }

    #[test]
    fn speculative_copies_occur_under_straggling() {
        // Large single-wave-ish job with heavy straggling: GS should speculate.
        let mut config = small_config(9);
        config.cluster = ClusterConfig::small(5, 4);
        let job = JobSpec::single_stage(1, 0.0, Bound::Error(0.0), vec![5.0; 40]);
        let result = run_simulation(&config, vec![job], &GsFactory);
        let o = &result.outcomes[0];
        assert!(
            o.speculative_copies > 0,
            "expected at least one speculative copy under heavy-tailed straggling"
        );
        assert_eq!(o.completed_input_tasks, 40);
    }

    #[test]
    fn traced_run_matches_untraced_run_and_captures_events() {
        use crate::trace::VecSink;
        let jobs: Vec<JobSpec> = (0..4).map(|i| exact_job(i, i as f64, 12, 3.0)).collect();
        let config = small_config(11);
        let plain = run_simulation(&config, jobs.clone(), &GsFactory);
        let mut sink = VecSink::new();
        let traced = run_simulation_traced(&config, jobs, &GsFactory, &mut sink);

        // The sink is passive: results must be bit-identical.
        assert_eq!(plain.outcomes, traced.outcomes);
        assert_eq!(plain.total_copies, traced.total_copies);
        assert!((plain.makespan - traced.makespan).abs() < 1e-12);

        // The stream covers every lifecycle stage, in non-decreasing time order.
        let events = sink.into_events();
        let count = |label: &str| events.iter().filter(|e| e.kind_label() == label).count();
        assert_eq!(count("arrive"), 4);
        assert_eq!(count("jobdone"), 4);
        assert_eq!(count("launch"), traced.total_copies);
        assert_eq!(count("decide"), traced.total_copies);
        assert!(count("finish") >= 4 * 12);
        let mut last = 0.0;
        for e in &events {
            assert!(e.time() >= last - 1e-12, "events out of order");
            last = e.time();
        }
    }

    #[test]
    fn outcome_policy_names_match_factory() {
        let result = run_simulation(
            &small_config(10),
            vec![exact_job(1, 0.0, 5, 1.0)],
            &RasFactory,
        );
        assert_eq!(result.outcomes[0].policy, "RAS");
        assert_eq!(result.outcomes_for("RAS").count(), 1);
        assert_eq!(result.outcomes_for("GS").count(), 0);
    }
}
