//! Execution-trace capture hooks.
//!
//! The paper's evaluation is trace-driven (§6.1); this module makes the simulator
//! itself traceable. A [`TraceSink`] threaded through
//! [`run_simulation_traced`](crate::run_simulation_traced) observes every
//! scheduling-level state change — job arrivals, policy decisions, copy launches
//! with their slot allocation, copy finishes and kills, and job completions — as a
//! stream of [`SimTraceEvent`]s. Sinks must be passive: recording an event must not
//! influence the simulation (no randomness, no feedback), so a traced run produces
//! bit-identical results to an untraced one.
//!
//! The `grass-trace` crate provides a sink that encodes this stream into the
//! versioned on-disk trace format; [`VecSink`] buffers it in memory for tests and
//! benches; [`NullSink`] discards it (what plain `run_simulation` uses).

use grass_core::{ActionKind, JobId, TaskId, Time};

use crate::event::CopyId;
use crate::machine::SlotId;

/// One scheduling-level event observed during a simulation run.
///
/// Every variant carries the simulation time at which it occurred; events are
/// emitted in non-decreasing time order (the simulator's event order).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimTraceEvent {
    /// A job arrived and became active.
    JobArrival {
        /// Simulation time.
        time: Time,
        /// The arriving job.
        job: JobId,
    },
    /// A policy decided what to run on a freed slot (before the copy launches).
    Decision {
        /// Simulation time.
        time: Time,
        /// Job the decision belongs to.
        job: JobId,
        /// Task the decision selects.
        task: TaskId,
        /// Whether this launches a first copy or a speculative duplicate.
        kind: ActionKind,
    },
    /// A copy was launched on a slot (the slot allocation record).
    CopyLaunch {
        /// Simulation time.
        time: Time,
        /// Job the copy belongs to.
        job: JobId,
        /// Task the copy belongs to.
        task: TaskId,
        /// Unique copy identifier.
        copy: CopyId,
        /// Slot the copy occupies.
        slot: SlotId,
        /// Ground-truth duration the copy will need on its slot.
        duration: Time,
        /// Whether the copy is a speculative duplicate.
        speculative: bool,
    },
    /// A copy finished its work.
    CopyFinish {
        /// Simulation time.
        time: Time,
        /// Job the copy belongs to.
        job: JobId,
        /// Task the copy belongs to.
        task: TaskId,
        /// Unique copy identifier.
        copy: CopyId,
        /// Whether this finish completed the task (first copy to cross the line).
        task_completed: bool,
    },
    /// A copy was killed (sibling finished first, or the job was finalised).
    CopyKill {
        /// Simulation time.
        time: Time,
        /// Job the copy belonged to.
        job: JobId,
        /// Task the copy belonged to.
        task: TaskId,
        /// Unique copy identifier.
        copy: CopyId,
        /// Slot the copy was freed from.
        slot: SlotId,
    },
    /// A job finished (deadline fired, error bound satisfied, or run truncated).
    JobFinish {
        /// Simulation time.
        time: Time,
        /// The finishing job.
        job: JobId,
        /// Input-stage tasks completed by the finish time.
        completed_input: usize,
        /// Tasks completed across all stages by the finish time.
        completed_total: usize,
    },
}

impl SimTraceEvent {
    /// Simulation time at which the event occurred.
    pub fn time(&self) -> Time {
        match *self {
            SimTraceEvent::JobArrival { time, .. }
            | SimTraceEvent::Decision { time, .. }
            | SimTraceEvent::CopyLaunch { time, .. }
            | SimTraceEvent::CopyFinish { time, .. }
            | SimTraceEvent::CopyKill { time, .. }
            | SimTraceEvent::JobFinish { time, .. } => time,
        }
    }

    /// Job the event belongs to.
    pub fn job(&self) -> JobId {
        match *self {
            SimTraceEvent::JobArrival { job, .. }
            | SimTraceEvent::Decision { job, .. }
            | SimTraceEvent::CopyLaunch { job, .. }
            | SimTraceEvent::CopyFinish { job, .. }
            | SimTraceEvent::CopyKill { job, .. }
            | SimTraceEvent::JobFinish { job, .. } => job,
        }
    }

    /// Short stable label of the event kind (used by trace stats and codecs).
    pub fn kind_label(&self) -> &'static str {
        match self {
            SimTraceEvent::JobArrival { .. } => "arrive",
            SimTraceEvent::Decision { .. } => "decide",
            SimTraceEvent::CopyLaunch { .. } => "launch",
            SimTraceEvent::CopyFinish { .. } => "finish",
            SimTraceEvent::CopyKill { .. } => "kill",
            SimTraceEvent::JobFinish { .. } => "jobdone",
        }
    }
}

/// Passive observer of a simulation run.
///
/// Implementations must not feed anything back into the simulation: a traced run
/// must produce exactly the same [`crate::SimResult`] as an untraced one.
pub trait TraceSink {
    /// Record one event. Called in simulation-event order.
    fn record(&mut self, event: &SimTraceEvent);
}

/// Sink that discards every event (the default for plain `run_simulation`).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &SimTraceEvent) {}
}

/// Sink that buffers every event in memory, for tests, benches and in-process
/// consumers.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// The recorded events, in emission order.
    pub events: Vec<SimTraceEvent>,
}

impl VecSink {
    /// Empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Consume the sink, yielding the recorded events.
    pub fn into_events(self) -> Vec<SimTraceEvent> {
        self.events
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, event: &SimTraceEvent) {
        self.events.push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch_event() -> SimTraceEvent {
        SimTraceEvent::CopyLaunch {
            time: 2.5,
            job: JobId(3),
            task: TaskId(1),
            copy: 9,
            slot: SlotId {
                machine: 2,
                slot: 1,
            },
            duration: 4.0,
            speculative: true,
        }
    }

    #[test]
    fn accessors_cover_every_variant() {
        let events = vec![
            SimTraceEvent::JobArrival {
                time: 0.0,
                job: JobId(1),
            },
            SimTraceEvent::Decision {
                time: 1.0,
                job: JobId(1),
                task: TaskId(0),
                kind: ActionKind::Launch,
            },
            launch_event(),
            SimTraceEvent::CopyFinish {
                time: 3.0,
                job: JobId(1),
                task: TaskId(0),
                copy: 0,
                task_completed: true,
            },
            SimTraceEvent::CopyKill {
                time: 3.0,
                job: JobId(1),
                task: TaskId(0),
                copy: 1,
                slot: SlotId {
                    machine: 0,
                    slot: 0,
                },
            },
            SimTraceEvent::JobFinish {
                time: 4.0,
                job: JobId(1),
                completed_input: 5,
                completed_total: 5,
            },
        ];
        let labels: Vec<&str> = events.iter().map(|e| e.kind_label()).collect();
        assert_eq!(
            labels,
            vec!["arrive", "decide", "launch", "finish", "kill", "jobdone"]
        );
        for e in &events {
            assert!(e.time() >= 0.0);
        }
        assert_eq!(launch_event().job(), JobId(3));
    }

    #[test]
    fn vec_sink_buffers_in_order() {
        let mut sink = VecSink::new();
        sink.record(&SimTraceEvent::JobArrival {
            time: 0.0,
            job: JobId(7),
        });
        sink.record(&launch_event());
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].job(), JobId(7));
        let events = sink.into_events();
        assert_eq!(events[1].kind_label(), "launch");
    }

    #[test]
    fn null_sink_discards() {
        let mut sink = NullSink;
        sink.record(&launch_event());
    }
}
