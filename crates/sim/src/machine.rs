//! Machines and slots.
//!
//! A cluster is a set of machines, each exposing a fixed number of compute slots
//! (the paper's Hadoop/Dryad-era slot model). Machines differ in speed — the cluster
//! heterogeneity that LATE was designed around and one of the two sources of straggling
//! in the simulator (the other being per-copy runtime straggle multipliers).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a single compute slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SlotId {
    /// Index of the machine that hosts the slot.
    pub machine: usize,
    /// Index of the slot within its machine.
    pub slot: usize,
}

/// How machine speed factors are assigned across the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HeterogeneityModel {
    /// All machines run at unit speed.
    Homogeneous,
    /// A fraction of machines is slower by a constant factor (EC2-style "bad node"
    /// heterogeneity, §2.2 of the LATE paper).
    TwoSpeed {
        /// Fraction of machines that are slow, in `[0, 1]`.
        slow_fraction: f64,
        /// Runtime multiplier of slow machines (`> 1` means slower).
        slow_factor: f64,
    },
    /// Machine runtime multipliers drawn uniformly from `[min, max]`.
    UniformRange {
        /// Fastest multiplier (usually `1.0`).
        min: f64,
        /// Slowest multiplier.
        max: f64,
    },
}

impl Default for HeterogeneityModel {
    fn default() -> Self {
        // A mild EC2-like mix: 20% of machines run ~50% slower.
        HeterogeneityModel::TwoSpeed {
            slow_fraction: 0.2,
            slow_factor: 1.5,
        }
    }
}

impl HeterogeneityModel {
    /// Draw the runtime multiplier for one machine.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            HeterogeneityModel::Homogeneous => 1.0,
            HeterogeneityModel::TwoSpeed {
                slow_fraction,
                slow_factor,
            } => {
                if rng.gen_bool(slow_fraction.clamp(0.0, 1.0)) {
                    slow_factor.max(1.0)
                } else {
                    1.0
                }
            }
            HeterogeneityModel::UniformRange { min, max } => {
                let lo = min.max(0.01);
                let hi = max.max(lo);
                rng.gen_range(lo..=hi)
            }
        }
    }

    /// Expected runtime multiplier across machines.
    pub fn mean(&self) -> f64 {
        match *self {
            HeterogeneityModel::Homogeneous => 1.0,
            HeterogeneityModel::TwoSpeed {
                slow_fraction,
                slow_factor,
            } => 1.0 + slow_fraction.clamp(0.0, 1.0) * (slow_factor.max(1.0) - 1.0),
            HeterogeneityModel::UniformRange { min, max } => 0.5 * (min.max(0.01) + max.max(min)),
        }
    }
}

/// One machine of the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Machine index.
    pub id: usize,
    /// Number of compute slots.
    pub slots: usize,
    /// Runtime multiplier applied to every copy running on this machine (`1.0` = unit
    /// speed, larger = slower).
    pub slowdown: f64,
}

impl Machine {
    /// All slot identifiers of this machine.
    pub fn slot_ids(&self) -> impl Iterator<Item = SlotId> + '_ {
        (0..self.slots).map(move |s| SlotId {
            machine: self.id,
            slot: s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn homogeneous_machines_run_at_unit_speed() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(HeterogeneityModel::Homogeneous.sample(&mut rng), 1.0);
        }
        assert_eq!(HeterogeneityModel::Homogeneous.mean(), 1.0);
    }

    #[test]
    fn two_speed_matches_configured_fraction() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = HeterogeneityModel::TwoSpeed {
            slow_fraction: 0.3,
            slow_factor: 2.0,
        };
        let n = 20_000;
        let slow = (0..n).filter(|_| model.sample(&mut rng) > 1.0).count();
        let frac = slow as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "slow fraction {frac}");
        assert!((model.mean() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn uniform_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = HeterogeneityModel::UniformRange { min: 1.0, max: 2.0 };
        for _ in 0..1000 {
            let s = model.sample(&mut rng);
            assert!((1.0..=2.0).contains(&s));
        }
        assert_eq!(model.mean(), 1.5);
    }

    #[test]
    fn machine_exposes_all_slots() {
        let m = Machine {
            id: 3,
            slots: 4,
            slowdown: 1.0,
        };
        let ids: Vec<SlotId> = m.slot_ids().collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(
            ids[0],
            SlotId {
                machine: 3,
                slot: 0
            }
        );
        assert_eq!(
            ids[3],
            SlotId {
                machine: 3,
                slot: 3
            }
        );
    }
}
