//! Machines and slots.
//!
//! A cluster is a set of machines, each exposing a fixed number of compute slots
//! (the paper's Hadoop/Dryad-era slot model). Machines differ in speed — the cluster
//! heterogeneity that LATE was designed around and one of the two sources of straggling
//! in the simulator (the other being per-copy runtime straggle multipliers).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a single compute slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SlotId {
    /// Index of the machine that hosts the slot.
    pub machine: usize,
    /// Index of the slot within its machine.
    pub slot: usize,
}

/// How machine speed factors are assigned across the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HeterogeneityModel {
    /// All machines run at unit speed.
    Homogeneous,
    /// A fraction of machines is slower by a constant factor (EC2-style "bad node"
    /// heterogeneity, §2.2 of the LATE paper).
    TwoSpeed {
        /// Fraction of machines that are slow, in `[0, 1]`.
        slow_fraction: f64,
        /// Runtime multiplier of slow machines (`> 1` means slower).
        slow_factor: f64,
    },
    /// Machine runtime multipliers drawn uniformly from `[min, max]`.
    UniformRange {
        /// Fastest multiplier (usually `1.0`).
        min: f64,
        /// Slowest multiplier.
        max: f64,
    },
}

impl Default for HeterogeneityModel {
    fn default() -> Self {
        // A mild EC2-like mix: 20% of machines run ~50% slower.
        HeterogeneityModel::TwoSpeed {
            slow_fraction: 0.2,
            slow_factor: 1.5,
        }
    }
}

impl HeterogeneityModel {
    /// Draw the runtime multiplier for one machine.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            HeterogeneityModel::Homogeneous => 1.0,
            HeterogeneityModel::TwoSpeed {
                slow_fraction,
                slow_factor,
            } => {
                if rng.gen_bool(slow_fraction.clamp(0.0, 1.0)) {
                    slow_factor.max(1.0)
                } else {
                    1.0
                }
            }
            HeterogeneityModel::UniformRange { min, max } => {
                let lo = min.max(0.01);
                let hi = max.max(lo);
                rng.gen_range(lo..=hi)
            }
        }
    }

    /// Expected runtime multiplier across machines.
    pub fn mean(&self) -> f64 {
        match *self {
            HeterogeneityModel::Homogeneous => 1.0,
            HeterogeneityModel::TwoSpeed {
                slow_fraction,
                slow_factor,
            } => 1.0 + slow_fraction.clamp(0.0, 1.0) * (slow_factor.max(1.0) - 1.0),
            HeterogeneityModel::UniformRange { min, max } => 0.5 * (min.max(0.01) + max.max(min)),
        }
    }
}

/// One machine of the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Machine index.
    pub id: usize,
    /// Number of compute slots.
    pub slots: usize,
    /// Runtime multiplier applied to every copy running on this machine (`1.0` = unit
    /// speed, larger = slower).
    pub slowdown: f64,
}

impl Machine {
    /// All slot identifiers of this machine.
    pub fn slot_ids(&self) -> impl Iterator<Item = SlotId> + '_ {
        (0..self.slots).map(move |s| SlotId {
            machine: self.id,
            slot: s,
        })
    }
}

/// The cluster's free-slot pool, indexed per machine.
///
/// Allocation order is a strict LIFO stack — the same order a plain
/// `Vec<SlotId>` with `pop()`/`extend()` gives — because the slot a copy lands
/// on feeds the execution trace and (through the machine's slowdown) the copy's
/// duration, so the allocation sequence is part of the simulator's reproducible
/// behaviour. The per-machine free counts ride alongside the stack, giving the
/// event core O(1) "how loaded is this machine" answers without a scan.
#[derive(Debug, Clone)]
pub struct SlotPool {
    stack: Vec<SlotId>,
    free_per_machine: Vec<usize>,
    total: usize,
}

impl SlotPool {
    /// Pool with every slot of every machine free, in machine-then-slot order
    /// (so the first `pop` returns the last slot of the last machine).
    pub fn new(machines: &[Machine]) -> Self {
        let stack: Vec<SlotId> = machines.iter().flat_map(|m| m.slot_ids()).collect();
        let free_per_machine = machines.iter().map(|m| m.slots).collect();
        let total = stack.len();
        SlotPool {
            stack,
            free_per_machine,
            total,
        }
    }

    /// Take the most recently freed slot, if any.
    pub fn pop(&mut self) -> Option<SlotId> {
        let slot = self.stack.pop()?;
        // grass: allow(panicky-lib, "SlotId.machine is minted by this pool from the cluster config and is always in range")
        self.free_per_machine[slot.machine] -= 1;
        Some(slot)
    }

    /// Return a slot to the pool (it becomes the next `pop` result).
    pub fn push(&mut self, slot: SlotId) {
        // grass: allow(panicky-lib, "SlotId.machine is minted by this pool from the cluster config and is always in range")
        self.free_per_machine[slot.machine] += 1;
        self.stack.push(slot);
    }

    /// Return a batch of slots in iteration order.
    pub fn extend(&mut self, slots: impl IntoIterator<Item = SlotId>) {
        for slot in slots {
            self.push(slot);
        }
    }

    /// Number of currently free slots.
    pub fn free_len(&self) -> usize {
        self.stack.len()
    }

    /// Whether no slot is free.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// Total slots in the cluster (free or busy).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Free slots on one machine, O(1). Unknown machine indices have no slots.
    pub fn free_on_machine(&self, machine: usize) -> usize {
        self.free_per_machine.get(machine).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn homogeneous_machines_run_at_unit_speed() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(HeterogeneityModel::Homogeneous.sample(&mut rng), 1.0);
        }
        assert_eq!(HeterogeneityModel::Homogeneous.mean(), 1.0);
    }

    #[test]
    fn two_speed_matches_configured_fraction() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = HeterogeneityModel::TwoSpeed {
            slow_fraction: 0.3,
            slow_factor: 2.0,
        };
        let n = 20_000;
        let slow = (0..n).filter(|_| model.sample(&mut rng) > 1.0).count();
        let frac = slow as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "slow fraction {frac}");
        assert!((model.mean() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn uniform_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = HeterogeneityModel::UniformRange { min: 1.0, max: 2.0 };
        for _ in 0..1000 {
            let s = model.sample(&mut rng);
            assert!((1.0..=2.0).contains(&s));
        }
        assert_eq!(model.mean(), 1.5);
    }

    #[test]
    fn machine_exposes_all_slots() {
        let m = Machine {
            id: 3,
            slots: 4,
            slowdown: 1.0,
        };
        let ids: Vec<SlotId> = m.slot_ids().collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(
            ids[0],
            SlotId {
                machine: 3,
                slot: 0
            }
        );
        assert_eq!(
            ids[3],
            SlotId {
                machine: 3,
                slot: 3
            }
        );
    }

    #[test]
    fn slot_pool_preserves_vec_lifo_order_and_tracks_per_machine_counts() {
        let machines: Vec<Machine> = (0..3)
            .map(|id| Machine {
                id,
                slots: 2,
                slowdown: 1.0,
            })
            .collect();
        // The order contract: identical pop sequence to the plain Vec-as-stack
        // the pre-event-core simulator used.
        let mut reference: Vec<SlotId> = machines.iter().flat_map(|m| m.slot_ids()).collect();
        let mut pool = SlotPool::new(&machines);
        assert_eq!(pool.total(), 6);
        assert_eq!(pool.free_len(), 6);
        assert_eq!(pool.free_on_machine(1), 2);

        let a = pool.pop().unwrap();
        assert_eq!(Some(a), reference.pop());
        let b = pool.pop().unwrap();
        assert_eq!(Some(b), reference.pop());
        assert_eq!(pool.free_len(), 4);
        assert_eq!(pool.free_on_machine(2), 0);

        pool.extend([b, a]);
        reference.extend([b, a]);
        for _ in 0..6 {
            assert_eq!(pool.pop(), reference.pop());
        }
        assert!(pool.is_empty());
        assert_eq!(pool.pop(), None);
        for m in 0..3 {
            assert_eq!(pool.free_on_machine(m), 0);
        }
    }
}
