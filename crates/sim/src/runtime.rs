//! Per-job runtime state: running copies, completed counters, estimation state and the
//! construction of the [`TaskView`]s / [`JobOutcome`]s handed to policies.

use rand::Rng;

use grass_core::{
    degrade_estimate, AccuracyTracker, Bound, BoxedPolicy, EstimatorConfig, JobOutcome, JobSpec,
    TaskId, TaskSpec, TaskView, Time,
};

use crate::event::CopyId;
use crate::machine::SlotId;
use crate::stats::TimeWeighted;

/// One running copy of a task.
#[derive(Debug, Clone)]
pub struct CopyRuntime {
    /// Unique copy identifier (for stale-event detection).
    pub id: CopyId,
    /// Slot the copy occupies.
    pub slot: SlotId,
    /// Launch time.
    pub start: Time,
    /// Total runtime the copy needs on its slot.
    pub duration: Time,
    /// Whether this copy was launched as a speculative duplicate.
    pub speculative: bool,
    /// Multiplicative estimation bias applied to this copy's remaining-time estimates
    /// (drawn once at launch so estimates are consistent over the copy's lifetime).
    pub rem_bias: f64,
}

impl CopyRuntime {
    /// Ground-truth remaining runtime at `now`.
    pub fn true_remaining(&self, now: Time) -> Time {
        (self.start + self.duration - now).max(0.0)
    }

    /// Elapsed runtime at `now`.
    pub fn elapsed(&self, now: Time) -> Time {
        (now - self.start).max(0.0)
    }

    /// Progress fraction at `now`.
    pub fn progress(&self, now: Time) -> f64 {
        if self.duration <= 0.0 {
            return 1.0;
        }
        (self.elapsed(now) / self.duration).min(1.0)
    }
}

/// Runtime state of one task.
#[derive(Debug, Clone)]
pub struct TaskRuntime {
    /// The task's static description.
    pub spec: TaskSpec,
    /// Currently running copies.
    pub copies: Vec<CopyRuntime>,
    /// Whether the task has completed.
    pub finished: bool,
    /// Completion time, if finished.
    pub finish_time: Option<Time>,
    /// Multiplicative estimation bias applied to this task's `tnew` estimates.
    pub tnew_bias: f64,
    /// Total number of copies ever launched for this task.
    pub launched_copies: usize,
}

impl TaskRuntime {
    fn new(spec: TaskSpec, tnew_bias: f64) -> Self {
        TaskRuntime {
            spec,
            copies: Vec::new(),
            finished: false,
            finish_time: None,
            tnew_bias,
            launched_copies: 0,
        }
    }

    /// The running copy expected to finish first, by ground truth.
    pub fn best_copy(&self, now: Time) -> Option<&CopyRuntime> {
        self.copies
            .iter()
            .min_by(|a, b| a.true_remaining(now).total_cmp(&b.true_remaining(now)))
    }
}

/// What happened when a copy-finish event was applied to a job.
#[derive(Debug, Default)]
pub struct CompletionEffect {
    /// Slots freed (the finishing copy's slot plus every killed sibling's slot).
    pub freed_slots: Vec<SlotId>,
    /// Number of sibling copies killed.
    pub killed: usize,
    /// Identity (copy id, slot) of every killed sibling, for trace capture.
    pub killed_copies: Vec<(CopyId, SlotId)>,
    /// Whether the event referred to a copy that no longer exists (stale).
    pub stale: bool,
    /// Whether the task transitioned to finished by this event.
    pub task_completed: bool,
}

impl CompletionEffect {
    /// Clear all fields, keeping the vector capacities. The event core reuses
    /// one effect as a scratch buffer across all copy-finish events instead of
    /// allocating two `Vec`s per event (a measured slot-free-path hot spot).
    pub fn reset(&mut self) {
        self.freed_slots.clear();
        self.killed_copies.clear();
        self.killed = 0;
        self.stale = false;
        self.task_completed = false;
    }
}

/// Runtime state of one job.
pub struct JobRuntime {
    /// The job's static specification.
    pub spec: JobSpec,
    /// The per-job speculation policy instance.
    pub policy: BoxedPolicy,
    /// Per-task runtime state, indexed by [`TaskId`].
    pub tasks: Vec<TaskRuntime>,
    /// Completed-task counters per DAG stage.
    pub completed_per_stage: Vec<usize>,
    /// Slots currently allocated to (occupied by) this job.
    pub allocated_slots: usize,
    /// Speculative copies launched so far.
    pub speculative_copies: usize,
    /// Copies killed because a sibling finished first.
    pub killed_copies: usize,
    /// Slot-seconds consumed so far (all copies, including killed ones).
    pub slot_seconds: f64,
    /// Effective deadline for the input stage (deadline-bound jobs only), relative to
    /// arrival.
    pub input_deadline: Option<Time>,
    /// Completed copy durations normalised by task work, used to estimate `tnew`.
    pub duration_per_work: Vec<f64>,
    /// Measured estimation accuracy.
    pub accuracy: AccuracyTracker,
    /// Time-weighted allocated-slot count.
    pub wave_width_stat: TimeWeighted,
    /// Time-weighted cluster utilisation observed by this job.
    pub util_stat: TimeWeighted,
    /// Time-weighted measured estimation accuracy.
    pub acc_stat: TimeWeighted,
    /// Whether the job has finished (deadline fired or error bound met).
    pub done: bool,
    /// Number of tasks not yet finished (kept in lockstep with
    /// `tasks[i].finished` so [`has_unfinished_work`](Self::has_unfinished_work)
    /// is O(1) instead of an O(tasks) scan).
    pub unfinished: usize,
    /// Event-core bookkeeping: index of the next global utilisation-timeline
    /// entry this job has not yet folded into its time-weighted statistics (see
    /// the simulator's lazy stats catch-up). Unused by the frozen reference
    /// engine.
    pub stats_cursor: usize,
}

impl JobRuntime {
    /// Create the runtime state for a job at its arrival.
    pub fn new<R: Rng + ?Sized>(
        spec: JobSpec,
        policy: BoxedPolicy,
        estimator: &EstimatorConfig,
        now: Time,
        rng: &mut R,
    ) -> Self {
        let tasks: Vec<TaskRuntime> = spec
            .tasks
            .iter()
            .map(|t| {
                let bias = if estimator.oracle {
                    1.0
                } else {
                    degrade_estimate(1.0, estimator.tnew_accuracy, rng)
                };
                TaskRuntime::new(*t, bias)
            })
            .collect();
        let stages = spec.stages.len();
        let prior_accuracy = estimator.nominal_accuracy();
        let unfinished = tasks.len();
        JobRuntime {
            spec,
            policy,
            tasks,
            completed_per_stage: vec![0; stages],
            allocated_slots: 0,
            speculative_copies: 0,
            killed_copies: 0,
            slot_seconds: 0.0,
            input_deadline: None,
            duration_per_work: Vec::new(),
            accuracy: AccuracyTracker::new(prior_accuracy),
            wave_width_stat: TimeWeighted::new(now, 0.0),
            util_stat: TimeWeighted::new(now, 0.0),
            acc_stat: TimeWeighted::new(now, prior_accuracy),
            done: false,
            unfinished,
            stats_cursor: 0,
        }
    }

    /// Number of input-stage tasks required for this job's bound.
    fn stage_needed(&self, stage: usize) -> usize {
        // grass: allow(panicky-lib, "stage indices come from iterating this spec's own stages")
        let count = self.spec.stages[stage].task_count;
        if stage == 0 {
            match self.spec.bound {
                Bound::Deadline(_) => count,
                Bound::Error(e) => Bound::Error(e).tasks_needed(count),
            }
        } else {
            count
        }
    }

    /// Whether the tasks of `stage` may be scheduled. Stage 0 is always eligible;
    /// stage `s > 0` unlocks when stage `s − 1` has met its completion requirement.
    pub fn stage_eligible(&self, stage: usize) -> bool {
        if stage == 0 {
            return true;
        }
        // grass: allow(panicky-lib, "completed_per_stage is sized from spec.stages at construction")
        self.completed_per_stage[stage - 1] >= self.stage_needed(stage - 1)
    }

    /// Whether every stage has met its completion requirement (error-bound jobs
    /// finish when this becomes true).
    pub fn bound_satisfied(&self) -> bool {
        // grass: allow(panicky-lib, "completed_per_stage is sized from spec.stages at construction")
        (0..self.spec.stages.len()).all(|s| self.completed_per_stage[s] >= self.stage_needed(s))
    }

    /// Completed input-stage tasks.
    pub fn completed_input(&self) -> usize {
        self.completed_per_stage.first().copied().unwrap_or(0)
    }

    /// Completed tasks across all stages.
    pub fn completed_total(&self) -> usize {
        self.completed_per_stage.iter().sum()
    }

    /// Whether any unfinished task remains (used to decide whether the job still has
    /// demand for slots). O(1) via the `unfinished` counter.
    pub fn has_unfinished_work(&self) -> bool {
        debug_assert_eq!(
            self.unfinished,
            self.tasks.iter().filter(|t| !t.finished).count()
        );
        self.unfinished > 0
    }

    /// Current estimate of a new copy's duration per unit work: the mean of completed
    /// copy durations normalised by work, falling back to the cluster's mean slowdown
    /// before any completions.
    pub fn duration_per_work_estimate(&self, cluster_mean_slowdown: f64) -> f64 {
        if self.duration_per_work.is_empty() {
            cluster_mean_slowdown
        } else {
            self.duration_per_work.iter().sum::<f64>() / self.duration_per_work.len() as f64
        }
    }

    /// Build the [`TaskView`]s for every unfinished task.
    pub fn build_task_views(
        &self,
        now: Time,
        estimator: &EstimatorConfig,
        cluster_mean_slowdown: f64,
    ) -> Vec<TaskView> {
        let mut views = Vec::with_capacity(self.tasks.len());
        self.build_task_views_into(now, estimator, cluster_mean_slowdown, &mut views);
        views
    }

    /// Build the [`TaskView`]s for every unfinished task into a caller-provided
    /// buffer, clearing it first. The simulator reuses one scratch buffer across all
    /// slot-free events instead of allocating a fresh `Vec` per decision (a measured
    /// hot path: one allocation per event at thousands of events per run).
    pub fn build_task_views_into(
        &self,
        now: Time,
        estimator: &EstimatorConfig,
        cluster_mean_slowdown: f64,
        views: &mut Vec<TaskView>,
    ) {
        views.clear();
        let per_work = self.duration_per_work_estimate(cluster_mean_slowdown);
        for (idx, task) in self.tasks.iter().enumerate() {
            if task.finished {
                continue;
            }
            let eligible = self.stage_eligible(task.spec.stage.value() as usize);
            let true_new_hint = task.spec.work * cluster_mean_slowdown;
            let tnew = if estimator.oracle {
                true_new_hint
            } else {
                (task.spec.work * per_work * task.tnew_bias).max(1e-6)
            };
            let (running, elapsed, progress, rate, trem, true_rem) = match task.best_copy(now) {
                Some(best) => {
                    let oldest_start = task
                        .copies
                        .iter()
                        .map(|c| c.start)
                        .fold(f64::INFINITY, f64::min);
                    let elapsed = (now - oldest_start).max(0.0);
                    let true_rem = best.true_remaining(now);
                    let trem = if estimator.oracle {
                        true_rem
                    } else {
                        (true_rem * best.rem_bias).max(0.0)
                    };
                    let progress = best.progress(now);
                    let rate = if elapsed > 0.0 {
                        progress / elapsed
                    } else {
                        0.0
                    };
                    (
                        task.copies.len() as u32,
                        elapsed,
                        progress,
                        rate,
                        trem,
                        true_rem,
                    )
                }
                None => (0, 0.0, 0.0, 0.0, f64::INFINITY, f64::INFINITY),
            };
            views.push(TaskView {
                id: TaskId(idx as u32),
                stage: task.spec.stage,
                eligible,
                running_copies: running,
                elapsed,
                progress,
                progress_rate: rate,
                trem,
                tnew,
                true_remaining: true_rem,
                true_new_hint,
                work: task.spec.work,
            });
        }
    }

    /// Record the launch of a copy of `task` on `slot`.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_copy<R: Rng + ?Sized>(
        &mut self,
        task: TaskId,
        copy_id: CopyId,
        slot: SlotId,
        now: Time,
        duration: Time,
        estimator: &EstimatorConfig,
        rng: &mut R,
    ) {
        // grass: allow(panicky-lib, "TaskIds are minted by this runtime's constructor; index is always valid")
        let t = &mut self.tasks[task.index()];
        debug_assert!(!t.finished, "launched a copy of a finished task");
        let speculative = !t.copies.is_empty();
        let rem_bias = if estimator.oracle {
            1.0
        } else {
            degrade_estimate(1.0, estimator.trem_accuracy, rng)
        };
        t.copies.push(CopyRuntime {
            id: copy_id,
            slot,
            start: now,
            duration,
            speculative,
            rem_bias,
        });
        t.launched_copies += 1;
        if speculative {
            self.speculative_copies += 1;
        }
        self.allocated_slots += 1;
    }

    /// Apply a copy-finish event. Marks the task finished, kills sibling copies, and
    /// reports which slots were freed.
    pub fn complete_copy(&mut self, task: TaskId, copy_id: CopyId, now: Time) -> CompletionEffect {
        let mut effect = CompletionEffect::default();
        self.complete_copy_into(task, copy_id, now, &mut effect);
        effect
    }

    /// [`complete_copy`](Self::complete_copy) into a caller-owned effect buffer,
    /// resetting it first. The event core threads one scratch effect through
    /// every copy-finish event, retiring the two per-event `Vec` allocations.
    pub fn complete_copy_into(
        &mut self,
        task: TaskId,
        copy_id: CopyId,
        now: Time,
        effect: &mut CompletionEffect,
    ) {
        effect.reset();
        // grass: allow(panicky-lib, "TaskIds are minted by this runtime's constructor; index is always valid")
        let t = &mut self.tasks[task.index()];
        let Some(pos) = t.copies.iter().position(|c| c.id == copy_id) else {
            effect.stale = true;
            return;
        };
        if t.finished {
            effect.stale = true;
            return;
        }
        let finishing = t.copies.swap_remove(pos);
        self.slot_seconds += finishing.elapsed(now);
        effect.freed_slots.push(finishing.slot);
        // Kill every sibling copy: the race is over.
        for sibling in t.copies.drain(..) {
            self.slot_seconds += sibling.elapsed(now);
            effect.freed_slots.push(sibling.slot);
            effect.killed_copies.push((sibling.id, sibling.slot));
            effect.killed += 1;
        }
        self.killed_copies += effect.killed;
        self.allocated_slots = self
            .allocated_slots
            .saturating_sub(effect.freed_slots.len());
        t.finished = true;
        t.finish_time = Some(now);
        effect.task_completed = true;
        self.unfinished -= 1;

        let stage = t.spec.stage.value() as usize;
        let work = t.spec.work;
        let tnew_bias = t.tnew_bias;
        let rem_bias = finishing.rem_bias;
        let actual = finishing.duration;
        // grass: allow(panicky-lib, "stage comes from this task's spec; completed_per_stage is sized from spec.stages")
        self.completed_per_stage[stage] += 1;
        if work > 0.0 && actual > 0.0 {
            self.duration_per_work.push(actual / work);
            // What the estimator believed versus what happened, folded into the
            // measured-accuracy signal GRASS consumes.
            self.accuracy.record(actual * rem_bias, actual);
            self.accuracy.record(work * tnew_bias, actual);
        }
    }

    /// Kill every running copy of every task (used when a job hits its deadline or is
    /// finalised early). Returns the identity of every killed copy
    /// (task, copy id, freed slot).
    pub fn kill_all_copies(&mut self, now: Time) -> Vec<(TaskId, CopyId, SlotId)> {
        let mut freed = Vec::new();
        for (idx, t) in self.tasks.iter_mut().enumerate() {
            for c in t.copies.drain(..) {
                self.slot_seconds += c.elapsed(now);
                freed.push((TaskId(idx as u32), c.id, c.slot));
                self.killed_copies += 1;
            }
        }
        self.allocated_slots = self.allocated_slots.saturating_sub(freed.len());
        freed
    }

    /// Update the job's time-weighted statistics at `now`.
    pub fn update_stats(&mut self, now: Time, cluster_utilization: f64) {
        self.wave_width_stat
            .update(now, self.allocated_slots as f64);
        self.util_stat.update(now, cluster_utilization);
        self.acc_stat.update(now, self.accuracy.accuracy());
    }

    /// Build the job's final outcome record at `finish`.
    pub fn outcome(&self, finish: Time) -> JobOutcome {
        JobOutcome {
            job: self.spec.id,
            policy: self.policy.name().to_string(),
            bound: self.spec.bound,
            input_tasks: self.spec.input_tasks(),
            total_tasks: self.spec.total_tasks(),
            dag_length: self.spec.dag_length(),
            arrival: self.spec.arrival,
            finish,
            completed_input_tasks: self.completed_input(),
            completed_tasks: self.completed_total(),
            speculative_copies: self.speculative_copies,
            killed_copies: self.killed_copies,
            slot_seconds: self.slot_seconds,
            avg_wave_width: self.wave_width_stat.average(finish),
            avg_cluster_utilization: self.util_stat.average(finish),
            avg_estimation_accuracy: self.acc_stat.average(finish),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grass_core::{Action, JobView, SpeculationPolicy, StageId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Noop;
    impl SpeculationPolicy for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn choose(&mut self, _view: &JobView) -> Option<Action> {
            None
        }
    }

    fn job_runtime(bound: Bound, work: Vec<f64>) -> JobRuntime {
        let spec = JobSpec::single_stage(1, 0.0, bound, work);
        let mut rng = StdRng::seed_from_u64(1);
        JobRuntime::new(
            spec,
            Box::new(Noop),
            &EstimatorConfig::oracle(),
            0.0,
            &mut rng,
        )
    }

    fn slot(n: usize) -> SlotId {
        SlotId {
            machine: 0,
            slot: n,
        }
    }

    #[test]
    fn launch_and_complete_single_copy() {
        let mut rt = job_runtime(Bound::EXACT, vec![2.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(2);
        rt.launch_copy(
            TaskId(0),
            1,
            slot(0),
            0.0,
            2.0,
            &EstimatorConfig::oracle(),
            &mut rng,
        );
        assert_eq!(rt.allocated_slots, 1);
        assert_eq!(rt.speculative_copies, 0);
        let effect = rt.complete_copy(TaskId(0), 1, 2.0);
        assert!(effect.task_completed);
        assert!(!effect.stale);
        assert_eq!(effect.freed_slots, vec![slot(0)]);
        assert_eq!(effect.killed, 0);
        assert_eq!(rt.completed_input(), 1);
        assert_eq!(rt.allocated_slots, 0);
        assert!((rt.slot_seconds - 2.0).abs() < 1e-12);
        assert!(!rt.bound_satisfied());
    }

    #[test]
    fn speculative_copy_race_kills_loser() {
        let mut rt = job_runtime(Bound::EXACT, vec![5.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let est = EstimatorConfig::oracle();
        rt.launch_copy(TaskId(0), 1, slot(0), 0.0, 10.0, &est, &mut rng);
        rt.launch_copy(TaskId(0), 2, slot(1), 2.0, 3.0, &est, &mut rng);
        assert_eq!(rt.speculative_copies, 1);
        assert_eq!(rt.allocated_slots, 2);
        // The speculative copy (id 2) finishes at t = 5.
        let effect = rt.complete_copy(TaskId(0), 2, 5.0);
        assert!(effect.task_completed);
        assert_eq!(effect.killed, 1);
        assert_eq!(effect.freed_slots.len(), 2);
        assert_eq!(rt.killed_copies, 1);
        assert_eq!(rt.allocated_slots, 0);
        // Slot-seconds: speculative ran 3s, original ran 5s before being killed.
        assert!((rt.slot_seconds - 8.0).abs() < 1e-12);
        // The original's finish event is now stale.
        let stale = rt.complete_copy(TaskId(0), 1, 10.0);
        assert!(stale.stale);
        assert!(rt.bound_satisfied());
    }

    #[test]
    fn task_views_report_estimates_and_truth() {
        let mut rt = job_runtime(Bound::Deadline(20.0), vec![2.0, 4.0]);
        let mut rng = StdRng::seed_from_u64(4);
        let est = EstimatorConfig::oracle();
        rt.launch_copy(TaskId(0), 1, slot(0), 0.0, 4.0, &est, &mut rng);
        let views = rt.build_task_views(1.0, &est, 1.0);
        assert_eq!(views.len(), 2);
        let running = views.iter().find(|v| v.id == TaskId(0)).unwrap();
        assert_eq!(running.running_copies, 1);
        assert!((running.true_remaining - 3.0).abs() < 1e-12);
        assert!((running.trem - 3.0).abs() < 1e-12);
        assert!((running.elapsed - 1.0).abs() < 1e-12);
        assert!((running.progress - 0.25).abs() < 1e-12);
        let idle = views.iter().find(|v| v.id == TaskId(1)).unwrap();
        assert_eq!(idle.running_copies, 0);
        assert!(idle.trem.is_infinite());
        assert!((idle.tnew - 4.0).abs() < 1e-12);
    }

    #[test]
    fn completed_tasks_disappear_from_views_and_feed_tnew() {
        let mut rt = job_runtime(Bound::EXACT, vec![2.0, 2.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let est = EstimatorConfig::oracle();
        rt.launch_copy(TaskId(0), 1, slot(0), 0.0, 6.0, &est, &mut rng);
        rt.complete_copy(TaskId(0), 1, 6.0);
        let views = rt.build_task_views(6.0, &est, 1.0);
        assert_eq!(views.len(), 1);
        // Observed duration/work = 3.0, so the non-oracle tnew estimate for the other
        // task (work 2.0) would be ~6.0; the oracle hint stays work × slowdown.
        assert!((rt.duration_per_work_estimate(1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn error_bound_satisfaction_counts_needed_tasks() {
        let mut rt = job_runtime(Bound::Error(0.5), vec![1.0, 1.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(6);
        let est = EstimatorConfig::oracle();
        for i in 0..2 {
            rt.launch_copy(
                TaskId(i),
                u64::from(i) + 1,
                slot(i as usize),
                0.0,
                1.0,
                &est,
                &mut rng,
            );
            rt.complete_copy(TaskId(i), u64::from(i) + 1, 1.0);
        }
        // ε = 0.5 of 4 tasks => 2 needed.
        assert!(rt.bound_satisfied());
        assert_eq!(rt.completed_input(), 2);
    }

    #[test]
    fn multi_stage_eligibility_unlocks_after_upstream_completion() {
        let spec = JobSpec::multi_stage(7, 0.0, Bound::Error(0.5), vec![vec![1.0, 1.0], vec![2.0]]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut rt = JobRuntime::new(
            spec,
            Box::new(Noop),
            &EstimatorConfig::oracle(),
            0.0,
            &mut rng,
        );
        assert!(rt.stage_eligible(0));
        assert!(!rt.stage_eligible(1));
        let est = EstimatorConfig::oracle();
        // ε = 0.5 of 2 input tasks => 1 needed; completing one unlocks stage 1.
        rt.launch_copy(TaskId(0), 1, slot(0), 0.0, 1.0, &est, &mut rng);
        rt.complete_copy(TaskId(0), 1, 1.0);
        assert!(rt.stage_eligible(1));
        assert!(!rt.bound_satisfied());
        let views = rt.build_task_views(1.0, &est, 1.0);
        let downstream = views.iter().find(|v| v.stage == StageId(1)).unwrap();
        assert!(downstream.eligible);
    }

    #[test]
    fn kill_all_copies_frees_every_slot() {
        let mut rt = job_runtime(Bound::Deadline(10.0), vec![4.0, 4.0]);
        let mut rng = StdRng::seed_from_u64(8);
        let est = EstimatorConfig::oracle();
        rt.launch_copy(TaskId(0), 1, slot(0), 0.0, 4.0, &est, &mut rng);
        rt.launch_copy(TaskId(1), 2, slot(1), 0.0, 4.0, &est, &mut rng);
        let freed = rt.kill_all_copies(2.0);
        assert_eq!(freed.len(), 2);
        assert_eq!(rt.allocated_slots, 0);
        assert_eq!(rt.killed_copies, 2);
        assert!((rt.slot_seconds - 4.0).abs() < 1e-12);
    }

    #[test]
    fn outcome_summarises_job_state() {
        let mut rt = job_runtime(Bound::Deadline(10.0), vec![2.0, 2.0]);
        let mut rng = StdRng::seed_from_u64(9);
        let est = EstimatorConfig::oracle();
        rt.launch_copy(TaskId(0), 1, slot(0), 0.0, 2.0, &est, &mut rng);
        rt.update_stats(0.0, 0.5);
        rt.complete_copy(TaskId(0), 1, 2.0);
        rt.update_stats(2.0, 0.5);
        let outcome = rt.outcome(10.0);
        assert_eq!(outcome.completed_input_tasks, 1);
        assert_eq!(outcome.input_tasks, 2);
        assert!((outcome.accuracy() - 0.5).abs() < 1e-12);
        assert_eq!(outcome.policy, "noop");
        assert!(outcome.avg_wave_width > 0.0);
    }

    #[test]
    fn noisy_estimates_deviate_from_truth_but_stay_positive() {
        let spec = JobSpec::single_stage(1, 0.0, Bound::EXACT, vec![5.0; 50]);
        let mut rng = StdRng::seed_from_u64(10);
        let est = EstimatorConfig::with_accuracy(0.6);
        let mut rt = JobRuntime::new(spec, Box::new(Noop), &est, 0.0, &mut rng);
        rt.launch_copy(TaskId(0), 1, slot(0), 0.0, 5.0, &est, &mut rng);
        let views = rt.build_task_views(1.0, &est, 1.0);
        let mut any_differs = false;
        for v in &views {
            assert!(v.tnew > 0.0);
            if v.is_running() {
                assert!(v.trem >= 0.0);
                if (v.trem - v.true_remaining).abs() > 1e-9 {
                    any_differs = true;
                }
            }
            if (v.tnew - v.true_new_hint).abs() > 1e-9 {
                any_differs = true;
            }
        }
        assert!(any_differs, "noisy estimator produced only exact estimates");
    }
}
