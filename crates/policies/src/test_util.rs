//! Shared helpers for unit tests across the baseline policies.

#![allow(dead_code)]

use grass_core::{Bound, JobId, JobView, StageId, TaskId, TaskView};

/// An unscheduled input-stage task with the given estimated fresh-copy duration.
pub fn unscheduled_task(id: u32, tnew: f64) -> TaskView {
    TaskView {
        id: TaskId(id),
        stage: StageId::INPUT,
        eligible: true,
        running_copies: 0,
        elapsed: 0.0,
        progress: 0.0,
        progress_rate: 0.0,
        trem: f64::INFINITY,
        tnew,
        true_remaining: f64::INFINITY,
        true_new_hint: tnew,
        work: tnew,
    }
}

/// A running input-stage task with the given estimates. The copy is modelled as being
/// halfway done, so slower tasks (larger `trem`) show proportionally lower progress
/// rates — the signal LATE keys on.
pub fn running_task(id: u32, trem: f64, tnew: f64, copies: u32) -> TaskView {
    let elapsed = trem.max(1.0);
    let progress = elapsed / (elapsed + trem);
    TaskView {
        id: TaskId(id),
        stage: StageId::INPUT,
        eligible: true,
        running_copies: copies,
        elapsed,
        progress,
        progress_rate: progress / elapsed,
        trem,
        tnew,
        true_remaining: trem,
        true_new_hint: tnew,
        work: tnew,
    }
}

/// A deadline-bound job view over the given tasks.
pub fn deadline_view<'a>(tasks: &'a [TaskView], now: f64, deadline: f64) -> JobView<'a> {
    JobView {
        job: JobId(1),
        now,
        arrival: 0.0,
        bound: Bound::Deadline(deadline),
        input_deadline: None,
        total_input_tasks: tasks.len() + 1,
        completed_input_tasks: 1,
        total_tasks: tasks.len() + 1,
        completed_tasks: 1,
        tasks,
        wave_width: 4,
        cluster_utilization: 0.7,
        estimation_accuracy: 0.75,
    }
}

/// An error-bound job view over the given tasks.
pub fn error_view<'a>(
    tasks: &'a [TaskView],
    epsilon: f64,
    total: usize,
    completed: usize,
) -> JobView<'a> {
    JobView {
        job: JobId(1),
        now: 5.0,
        arrival: 0.0,
        bound: Bound::Error(epsilon),
        input_deadline: None,
        total_input_tasks: total,
        completed_input_tasks: completed,
        total_tasks: total,
        completed_tasks: completed,
        tasks,
        wave_width: 4,
        cluster_utilization: 0.7,
        estimation_accuracy: 0.75,
    }
}
