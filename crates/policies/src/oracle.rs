//! Oracle scheduler: the paper's "optimal" comparison point (§2.3 and Figure 8).
//!
//! The paper compares GRASS against "an optimal scheduler that knows task durations
//! and slot availabilities in advance" (an offline bin-packing formulation). A true
//! offline optimum is NP-hard; the oracle here captures what makes it an upper bound
//! in practice:
//!
//! * it sees **ground-truth** remaining times and fresh-copy durations (no estimation
//!   error at all), and
//! * it applies the theoretically right regime per Guideline 3 — opportunity-cost
//!   aware (RAS-style) decisions while more than two waves of work remain, greedy
//!   (GS-style) decisions in the final two waves — with perfect knowledge of where
//!   that boundary lies.
//!
//! Used together with [`grass_core::EstimatorConfig::oracle`] in the simulator, this
//! yields the near-optimal reference the figures normalise against.

use grass_core::speculation::{choose, SpeculationMode};
use grass_core::{
    Action, BoxedPolicy, JobSpec, JobView, PolicyFactory, SpeculationPolicy, TaskView,
};

/// Per-job oracle policy.
#[derive(Debug, Default, Clone)]
pub struct OraclePolicy;

impl OraclePolicy {
    /// Rewrite a task view so the estimate fields carry ground truth.
    fn with_truth(task: &TaskView) -> TaskView {
        let mut t = task.clone();
        t.trem = t.true_remaining;
        t.tnew = t.true_new_hint;
        t
    }
}

impl SpeculationPolicy for OraclePolicy {
    fn name(&self) -> &str {
        "Oracle"
    }

    fn choose(&mut self, view: &JobView) -> Option<Action> {
        // Substitute ground truth for every estimate, then run the GS/RAS machinery
        // with the oracle-exact switch point.
        let truth_tasks: Vec<TaskView> = view.tasks.iter().map(Self::with_truth).collect();
        let truth_view = JobView {
            tasks: &truth_tasks,
            estimation_accuracy: 1.0,
            ..view.clone()
        };
        let unscheduled = truth_view.unscheduled_eligible();
        let mode = if unscheduled > 2 * truth_view.wave_width.max(1) {
            SpeculationMode::Ras
        } else {
            SpeculationMode::Gs
        };
        choose(&truth_view, mode)
    }
}

/// Factory for [`OraclePolicy`].
#[derive(Debug, Default, Clone)]
pub struct OracleFactory;

impl PolicyFactory for OracleFactory {
    fn name(&self) -> &str {
        "Oracle"
    }

    fn create(&self, _job: &JobSpec) -> BoxedPolicy {
        Box::new(OraclePolicy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{deadline_view, error_view, running_task, unscheduled_task};
    use grass_core::{ActionKind, TaskId};

    #[test]
    fn oracle_uses_ground_truth_not_estimates() {
        // The estimate says the running task has only 1s left (no point speculating),
        // but the truth is 50s; with one unscheduled task and wave width 4 the oracle
        // is in its greedy regime and speculates.
        let mut straggler = running_task(0, 1.0, 3.0, 1);
        straggler.true_remaining = 50.0;
        straggler.true_new_hint = 3.0;
        let tasks = vec![straggler];
        let view = error_view(&tasks, 0.0, 10, 9);
        let a = OraclePolicy.choose(&view).unwrap();
        assert_eq!(a.task, TaskId(0));
        assert_eq!(a.kind, ActionKind::Speculate);
    }

    #[test]
    fn oracle_is_conservative_with_many_waves_remaining() {
        // 20 unscheduled tasks on wave width 4 (> 2 waves): RAS regime, so a marginal
        // speculation (positive time saving but negative resource saving) is declined
        // in favour of launching fresh work.
        let mut tasks = vec![running_task(0, 4.0, 3.0, 1)];
        for i in 1..21 {
            tasks.push(unscheduled_task(i, 3.0));
        }
        let view = deadline_view(&tasks, 0.0, 1000.0);
        let a = OraclePolicy.choose(&view).unwrap();
        assert_eq!(a.kind, ActionKind::Launch);
    }

    #[test]
    fn oracle_speculates_aggressively_in_the_last_wave() {
        // Same marginal speculation, but no unscheduled work left: GS regime, so the
        // oracle races a copy (tnew < trem by ground truth).
        let tasks = vec![running_task(0, 4.0, 3.0, 1)];
        let view = deadline_view(&tasks, 0.0, 1000.0);
        let a = OraclePolicy.choose(&view).unwrap();
        assert_eq!(a.kind, ActionKind::Speculate);
    }

    #[test]
    fn factory_name_and_creation() {
        let job =
            grass_core::JobSpec::single_stage(1, 0.0, grass_core::Bound::Deadline(10.0), vec![1.0]);
        assert_eq!(OracleFactory.name(), "Oracle");
        assert_eq!(OracleFactory.create(&job).name(), "Oracle");
    }
}
