//! # grass-policies
//!
//! Baseline straggler-mitigation policies for the GRASS (NSDI '14) reproduction:
//!
//! * [`LatePolicy`] — LATE (OSDI '08), the baseline deployed in the Facebook cluster,
//! * [`MantriPolicy`] — Mantri (OSDI '10), the baseline deployed in the Bing cluster,
//! * [`NoSpecPolicy`], [`SjfPolicy`], [`LjfPolicy`] — non-speculating anchors,
//! * [`OraclePolicy`] — the "optimal scheduler with advance knowledge" comparison
//!   point used in §2.3 and Figure 8.
//!
//! All of them implement [`grass_core::SpeculationPolicy`] and plug into the
//! `grass-sim` simulator exactly like GS/RAS/GRASS do.

pub mod late;
pub mod mantri;
pub mod naive;
pub mod oracle;
#[cfg(test)]
mod test_util;

pub use late::{LateConfig, LateFactory, LatePolicy};
pub use mantri::{MantriConfig, MantriFactory, MantriPolicy};
pub use naive::{LjfFactory, LjfPolicy, NoSpecFactory, NoSpecPolicy, SjfFactory, SjfPolicy};
pub use oracle::{OracleFactory, OraclePolicy};
