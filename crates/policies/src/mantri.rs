//! Mantri — "Reining in the Outliers in Map-Reduce Clusters" (Ananthanarayanan et al.,
//! OSDI 2010), the speculation policy deployed in the Bing cluster and the paper's
//! second baseline.
//!
//! Mantri is *resource aware*: it schedules a duplicate of a running task only when
//! doing so is expected to reduce total resource consumption — the rule this
//! reimplementation uses is `trem > 2 × tnew` (a duplicate plus the original consume
//! less slot-time than letting the original run alone). Unlike LATE, Mantri acts on
//! stragglers promptly, even while unscheduled tasks remain, but it still launches
//! unscheduled work FIFO with no awareness of the job's approximation bound.

use grass_core::{
    Action, BoxedPolicy, JobSpec, JobView, PolicyFactory, SpeculationPolicy, TaskView,
};
use serde::{Deserialize, Serialize};

/// Tunables of the Mantri reimplementation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MantriConfig {
    /// Duplicate a task when its estimated remaining time exceeds this multiple of a
    /// fresh copy's estimated duration (the "2×" rule).
    pub restart_threshold: f64,
    /// Maximum concurrently running copies per task (original + duplicates).
    pub max_copies: u32,
    /// Minimum progress a copy must have made before Mantri judges it (its estimate of
    /// `trem` is meaningless before any progress reports).
    pub min_progress: f64,
}

impl Default for MantriConfig {
    fn default() -> Self {
        MantriConfig {
            restart_threshold: 2.0,
            max_copies: 2,
            min_progress: 0.05,
        }
    }
}

/// Per-job Mantri policy instance.
#[derive(Debug, Clone, Default)]
pub struct MantriPolicy {
    config: MantriConfig,
}

impl MantriPolicy {
    /// New Mantri policy with the given tunables.
    pub fn new(config: MantriConfig) -> Self {
        MantriPolicy { config }
    }

    fn duplicate_candidate<'v>(&self, view: &'v JobView) -> Option<&'v TaskView> {
        view.tasks
            .iter()
            .filter(|t| {
                t.eligible
                    && t.is_running()
                    && t.running_copies < self.config.max_copies
                    && t.progress >= self.config.min_progress
                    && t.trem > self.config.restart_threshold * t.tnew
            })
            .max_by(|a, b| a.trem.total_cmp(&b.trem))
    }
}

impl SpeculationPolicy for MantriPolicy {
    fn name(&self) -> &str {
        "Mantri"
    }

    fn choose(&mut self, view: &JobView) -> Option<Action> {
        // Resource-saving duplicates are taken eagerly — that is Mantri's defining
        // behaviour relative to LATE.
        if let Some(t) = self.duplicate_candidate(view) {
            return Some(Action::speculate(t.id));
        }
        // Otherwise launch pending work FIFO (no approximation awareness).
        view.eligible_tasks()
            .filter(|t| !t.is_running())
            .min_by_key(|t| t.id)
            .map(|t| Action::launch(t.id))
    }
}

/// Factory for [`MantriPolicy`].
#[derive(Debug, Clone, Default)]
pub struct MantriFactory {
    config: MantriConfig,
}

impl MantriFactory {
    /// Factory with explicit tunables.
    pub fn new(config: MantriConfig) -> Self {
        MantriFactory { config }
    }
}

impl PolicyFactory for MantriFactory {
    fn name(&self) -> &str {
        "Mantri"
    }

    fn create(&self, _job: &JobSpec) -> BoxedPolicy {
        Box::new(MantriPolicy::new(self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{deadline_view, error_view, running_task, unscheduled_task};
    use grass_core::{ActionKind, TaskId};

    #[test]
    fn duplicates_resource_wasting_stragglers_even_with_pending_work() {
        let tasks = vec![
            running_task(0, 10.0, 3.0, 1), // trem > 2*tnew => duplicate
            unscheduled_task(1, 3.0),
        ];
        let view = deadline_view(&tasks, 0.0, 100.0);
        let a = MantriPolicy::default().choose(&view).unwrap();
        assert_eq!(a.task, TaskId(0));
        assert_eq!(a.kind, ActionKind::Speculate);
    }

    #[test]
    fn does_not_duplicate_when_saving_is_insufficient() {
        let tasks = vec![
            running_task(0, 5.0, 3.0, 1), // trem < 2*tnew => keep waiting
            unscheduled_task(1, 3.0),
        ];
        let view = deadline_view(&tasks, 0.0, 100.0);
        let a = MantriPolicy::default().choose(&view).unwrap();
        assert_eq!(a, Action::launch(TaskId(1)));
    }

    #[test]
    fn respects_copy_cap() {
        let tasks = vec![running_task(0, 50.0, 3.0, 2)];
        let view = error_view(&tasks, 0.0, 10, 9);
        assert!(MantriPolicy::default().choose(&view).is_none());
    }

    #[test]
    fn picks_worst_straggler_among_candidates() {
        let tasks = vec![
            running_task(0, 20.0, 3.0, 1),
            running_task(1, 40.0, 3.0, 1),
            running_task(2, 30.0, 3.0, 1),
        ];
        let view = deadline_view(&tasks, 0.0, 100.0);
        assert_eq!(
            MantriPolicy::default().choose(&view).unwrap().task,
            TaskId(1)
        );
    }

    #[test]
    fn ignores_copies_without_progress() {
        let mut fresh = running_task(0, 50.0, 3.0, 1);
        fresh.progress = 0.01;
        let tasks = vec![fresh];
        let view = deadline_view(&tasks, 0.0, 100.0);
        assert!(MantriPolicy::default().choose(&view).is_none());
    }

    #[test]
    fn factory_name_and_creation() {
        let job =
            grass_core::JobSpec::single_stage(1, 0.0, grass_core::Bound::Deadline(10.0), vec![1.0]);
        assert_eq!(MantriFactory::default().name(), "Mantri");
        assert_eq!(MantriFactory::default().create(&job).name(), "Mantri");
    }
}
