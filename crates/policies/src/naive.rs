//! Naive baselines: FIFO without speculation, and the classic SJF / LJF prioritisers
//! without speculation.
//!
//! These are not evaluated in the paper's figures directly, but they anchor the
//! ablation space: LATE/Mantri add speculation on top of FIFO, GS adds
//! approximation-aware prioritisation on top of SJF/LJF, and RAS adds opportunity-cost
//! awareness on top of GS.

use grass_core::{
    Action, BoxedPolicy, JobSpec, JobView, PolicyFactory, SpeculationPolicy, TaskView,
};

/// Launch unscheduled tasks in task-id (FIFO) order; never speculate.
#[derive(Debug, Default, Clone)]
pub struct NoSpecPolicy;

impl SpeculationPolicy for NoSpecPolicy {
    fn name(&self) -> &str {
        "NoSpec"
    }

    fn choose(&mut self, view: &JobView) -> Option<Action> {
        view.eligible_tasks()
            .filter(|t| !t.is_running())
            .min_by_key(|t| t.id)
            .map(|t| Action::launch(t.id))
    }
}

/// Factory for [`NoSpecPolicy`].
#[derive(Debug, Default, Clone)]
pub struct NoSpecFactory;

impl PolicyFactory for NoSpecFactory {
    fn name(&self) -> &str {
        "NoSpec"
    }

    fn create(&self, _job: &JobSpec) -> BoxedPolicy {
        Box::new(NoSpecPolicy)
    }
}

/// Shortest Job First over unscheduled tasks, no speculation. The classical optimal
/// prioritisation for maximising completions by a deadline when durations are known
/// (§3.1.1).
#[derive(Debug, Default, Clone)]
pub struct SjfPolicy;

impl SpeculationPolicy for SjfPolicy {
    fn name(&self) -> &str {
        "SJF"
    }

    fn choose(&mut self, view: &JobView) -> Option<Action> {
        pick_unscheduled(view, |a, b| a.tnew.total_cmp(&b.tnew))
    }
}

/// Longest Job First over unscheduled tasks, no speculation. The classical
/// makespan-minimising prioritisation for error-bound jobs (§3.1.2).
#[derive(Debug, Default, Clone)]
pub struct LjfPolicy;

impl SpeculationPolicy for LjfPolicy {
    fn name(&self) -> &str {
        "LJF"
    }

    fn choose(&mut self, view: &JobView) -> Option<Action> {
        pick_unscheduled(view, |a, b| b.tnew.total_cmp(&a.tnew))
    }
}

fn pick_unscheduled(
    view: &JobView,
    cmp: impl Fn(&TaskView, &TaskView) -> std::cmp::Ordering,
) -> Option<Action> {
    view.eligible_tasks()
        .filter(|t| !t.is_running())
        .min_by(|a, b| cmp(a, b))
        .map(|t| Action::launch(t.id))
}

/// Factory for [`SjfPolicy`].
#[derive(Debug, Default, Clone)]
pub struct SjfFactory;

impl PolicyFactory for SjfFactory {
    fn name(&self) -> &str {
        "SJF"
    }

    fn create(&self, _job: &JobSpec) -> BoxedPolicy {
        Box::new(SjfPolicy)
    }
}

/// Factory for [`LjfPolicy`].
#[derive(Debug, Default, Clone)]
pub struct LjfFactory;

impl PolicyFactory for LjfFactory {
    fn name(&self) -> &str {
        "LJF"
    }

    fn create(&self, _job: &JobSpec) -> BoxedPolicy {
        Box::new(LjfPolicy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{deadline_view, running_task, unscheduled_task};
    use grass_core::TaskId;

    #[test]
    fn nospec_launches_in_fifo_order_and_never_speculates() {
        let tasks = vec![
            running_task(0, 10.0, 1.0, 1),
            unscheduled_task(2, 5.0),
            unscheduled_task(1, 9.0),
        ];
        let view = deadline_view(&tasks, 0.0, 100.0);
        let mut p = NoSpecPolicy;
        assert_eq!(p.choose(&view).unwrap(), Action::launch(TaskId(1)));
        // Only a straggling running task left: NoSpec has nothing to do.
        let tasks = vec![running_task(0, 10.0, 1.0, 1)];
        let view = deadline_view(&tasks, 0.0, 100.0);
        assert!(p.choose(&view).is_none());
    }

    #[test]
    fn sjf_and_ljf_order_by_estimated_duration() {
        let tasks = vec![
            unscheduled_task(0, 7.0),
            unscheduled_task(1, 2.0),
            unscheduled_task(2, 5.0),
        ];
        let view = deadline_view(&tasks, 0.0, 100.0);
        assert_eq!(SjfPolicy.choose(&view).unwrap().task, TaskId(1));
        assert_eq!(LjfPolicy.choose(&view).unwrap().task, TaskId(0));
    }

    #[test]
    fn factories_produce_named_policies() {
        let job =
            grass_core::JobSpec::single_stage(1, 0.0, grass_core::Bound::Deadline(10.0), vec![1.0]);
        assert_eq!(NoSpecFactory.create(&job).name(), "NoSpec");
        assert_eq!(SjfFactory.create(&job).name(), "SJF");
        assert_eq!(LjfFactory.create(&job).name(), "LJF");
        assert_eq!(NoSpecFactory.name(), "NoSpec");
        assert_eq!(SjfFactory.name(), "SJF");
        assert_eq!(LjfFactory.name(), "LJF");
    }
}
