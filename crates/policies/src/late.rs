//! LATE — "Longest Approximate Time to End" (Zaharia et al., OSDI 2008), the
//! speculation policy deployed in the Facebook cluster and the paper's primary
//! baseline.
//!
//! LATE's decision rules, as reimplemented here:
//!
//! * unscheduled tasks are launched first, in plain FIFO order — LATE has no notion of
//!   approximation bounds, which is exactly the deficiency GRASS targets;
//! * speculation is considered only when the job has no unscheduled work left;
//! * only tasks whose progress rate falls below the `slow_task_threshold` percentile of
//!   currently running tasks are candidates;
//! * among candidates, the task with the *longest estimated time to end* is speculated;
//! * at most one speculative copy per task, and the number of concurrently running
//!   speculative copies is capped at `speculative_cap` × the job's wave width.

use grass_core::{
    Action, BoxedPolicy, JobSpec, JobView, PolicyFactory, SpeculationPolicy, TaskView,
};
use serde::{Deserialize, Serialize};

/// Tunables of the LATE reimplementation, mirroring the defaults of the original
/// paper / Hadoop implementation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LateConfig {
    /// Fraction of a job's wave width that may be used for concurrently running
    /// speculative copies (Hadoop's `SpeculativeCap` is 10% of the cluster; per job we
    /// apply it to the job's slot share).
    pub speculative_cap: f64,
    /// Percentile (0–1) of progress rates below which a task counts as slow
    /// (`SlowTaskThreshold`, 25th percentile by default).
    pub slow_task_threshold: f64,
    /// Minimum progress a copy must have made before it can be judged (avoids
    /// speculating tasks that only just started).
    pub min_progress: f64,
}

impl Default for LateConfig {
    fn default() -> Self {
        LateConfig {
            speculative_cap: 0.10,
            slow_task_threshold: 0.25,
            min_progress: 0.05,
        }
    }
}

/// Per-job LATE policy instance.
#[derive(Debug, Clone, Default)]
pub struct LatePolicy {
    config: LateConfig,
}

impl LatePolicy {
    /// New LATE policy with the given tunables.
    pub fn new(config: LateConfig) -> Self {
        LatePolicy { config }
    }

    fn speculative_budget(&self, view: &JobView) -> usize {
        ((view.wave_width as f64 * self.config.speculative_cap).floor() as usize).max(1)
    }

    fn running_speculative_copies(view: &JobView) -> usize {
        view.tasks
            .iter()
            .map(|t| t.running_copies.saturating_sub(1) as usize)
            .sum()
    }

    fn slow_rate_cutoff(&self, view: &JobView) -> Option<f64> {
        let mut rates: Vec<f64> = view
            .tasks
            .iter()
            .filter(|t| t.is_running() && t.progress >= self.config.min_progress)
            .map(|t| t.progress_rate)
            .collect();
        if rates.is_empty() {
            return None;
        }
        rates.sort_by(f64::total_cmp);
        let idx = ((rates.len() as f64) * self.config.slow_task_threshold).floor() as usize;
        rates.get(idx.min(rates.len() - 1)).copied()
    }

    fn speculation_candidate<'v>(&self, view: &'v JobView) -> Option<&'v TaskView> {
        let cutoff = self.slow_rate_cutoff(view)?;
        view.tasks
            .iter()
            .filter(|t| {
                t.eligible
                    && t.running_copies == 1
                    && t.progress >= self.config.min_progress
                    && t.progress_rate <= cutoff
            })
            .max_by(|a, b| a.trem.total_cmp(&b.trem))
    }
}

impl SpeculationPolicy for LatePolicy {
    fn name(&self) -> &str {
        "LATE"
    }

    fn choose(&mut self, view: &JobView) -> Option<Action> {
        // 1. Pending (unscheduled) work always comes first, in FIFO order.
        if let Some(t) = view
            .eligible_tasks()
            .filter(|t| !t.is_running())
            .min_by_key(|t| t.id)
        {
            return Some(Action::launch(t.id));
        }
        // 2. No pending work: consider speculation, subject to the cap.
        if Self::running_speculative_copies(view) >= self.speculative_budget(view) {
            return None;
        }
        self.speculation_candidate(view)
            .map(|t| Action::speculate(t.id))
    }
}

/// Factory for [`LatePolicy`].
#[derive(Debug, Clone, Default)]
pub struct LateFactory {
    config: LateConfig,
}

impl LateFactory {
    /// Factory with explicit tunables.
    pub fn new(config: LateConfig) -> Self {
        LateFactory { config }
    }
}

impl PolicyFactory for LateFactory {
    fn name(&self) -> &str {
        "LATE"
    }

    fn create(&self, _job: &JobSpec) -> BoxedPolicy {
        Box::new(LatePolicy::new(self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{deadline_view, error_view, running_task, unscheduled_task};
    use grass_core::{ActionKind, TaskId};

    #[test]
    fn pending_tasks_take_priority_over_speculation() {
        let tasks = vec![
            running_task(0, 50.0, 2.0, 1), // an obvious straggler
            unscheduled_task(3, 2.0),
            unscheduled_task(2, 9.0),
        ];
        let view = deadline_view(&tasks, 0.0, 100.0);
        let a = LatePolicy::default().choose(&view).unwrap();
        // FIFO: lowest task id among unscheduled, regardless of duration or bound.
        assert_eq!(a, Action::launch(TaskId(2)));
    }

    #[test]
    fn speculates_slowest_task_when_no_pending_work() {
        // Three running tasks; task 2 has by far the slowest progress rate and the
        // longest time to end.
        let tasks = vec![
            running_task(0, 3.0, 3.0, 1),
            running_task(1, 4.0, 3.0, 1),
            running_task(2, 60.0, 3.0, 1),
        ];
        let view = deadline_view(&tasks, 0.0, 100.0);
        let a = LatePolicy::default().choose(&view).unwrap();
        assert_eq!(a.task, TaskId(2));
        assert_eq!(a.kind, ActionKind::Speculate);
    }

    #[test]
    fn respects_one_speculative_copy_per_task() {
        let tasks = vec![running_task(0, 60.0, 3.0, 2), running_task(1, 4.0, 3.0, 1)];
        let view = deadline_view(&tasks, 0.0, 100.0);
        // Task 0 already has 2 copies; with the cap of max(1, 10% of 4) = 1 speculative
        // copy already running, LATE declines.
        assert!(LatePolicy::default().choose(&view).is_none());
    }

    #[test]
    fn speculative_cap_limits_concurrent_duplicates() {
        let config = LateConfig {
            speculative_cap: 0.5, // budget = 2 for wave width 4
            ..LateConfig::default()
        };
        let tasks = vec![
            running_task(0, 60.0, 3.0, 2),
            running_task(1, 50.0, 3.0, 2),
            running_task(2, 80.0, 3.0, 1),
        ];
        let view = deadline_view(&tasks, 0.0, 100.0);
        // Two speculative copies already running == budget, so no more.
        assert!(LatePolicy::new(config).choose(&view).is_none());
        // With a larger cap it speculates task 2, the slowest task with a single copy.
        let config = LateConfig {
            speculative_cap: 0.9,
            ..config
        };
        let a = LatePolicy::new(config).choose(&view).unwrap();
        assert_eq!(a.task, TaskId(2));
    }

    #[test]
    fn ignores_tasks_without_enough_progress() {
        let mut barely_started = running_task(0, 100.0, 3.0, 1);
        barely_started.progress = 0.0;
        barely_started.progress_rate = 0.0;
        let tasks = vec![barely_started];
        let view = error_view(&tasks, 0.1, 10, 9);
        assert!(LatePolicy::default().choose(&view).is_none());
    }

    #[test]
    fn factory_name_and_creation() {
        let job =
            grass_core::JobSpec::single_stage(1, 0.0, grass_core::Bound::Deadline(10.0), vec![1.0]);
        assert_eq!(LateFactory::default().name(), "LATE");
        assert_eq!(LateFactory::default().create(&job).name(), "LATE");
    }
}
