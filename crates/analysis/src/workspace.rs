//! Workspace discovery: find every Rust source file under a root, classify its
//! role from its path, and run the lint pipeline over the lot.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::AnalysisConfig;
use crate::engine::lint_source;
use crate::finding::{sort_findings, Finding};

/// What kind of target a file belongs to, derived from its path. Several lints
/// scope themselves by role: test, bench and example code is exempt from
/// library-robustness rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library code (`src/**`, the default).
    Lib,
    /// Binary target (`src/bin/**`, `build.rs`).
    Bin,
    /// Test code (any `tests/` directory).
    Test,
    /// Bench code (any `benches/` directory).
    Bench,
    /// Example code (any `examples/` directory).
    Example,
}

impl Role {
    /// The JSON/report spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Lib => "lib",
            Role::Bin => "bin",
            Role::Test => "test",
            Role::Bench => "bench",
            Role::Example => "example",
        }
    }
}

/// Derive a file's [`Role`] from its workspace-relative path.
pub fn role_for(rel_path: &str) -> Role {
    let mut under_src = false;
    for component in rel_path.split('/') {
        match component {
            "tests" => return Role::Test,
            "benches" => return Role::Bench,
            "examples" => return Role::Example,
            "bin" if under_src => return Role::Bin,
            "src" => under_src = true,
            _ => {}
        }
    }
    if rel_path.ends_with("build.rs") {
        Role::Bin
    } else {
        Role::Lib
    }
}

/// One discovered source file, read eagerly so linting is infallible.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// File contents.
    pub source: String,
}

/// A discovered tree of Rust sources plus the configuration they are linted
/// under.
#[derive(Debug)]
pub struct Workspace {
    /// Discovery root.
    pub root: PathBuf,
    /// Effective configuration (parsed `analysis.toml`, or defaults).
    pub config: AnalysisConfig,
    /// Every `.rs` file found, in sorted path order.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Discover `root`, loading `<root>/analysis.toml` when present.
    pub fn discover(root: &Path) -> Result<Workspace, String> {
        let config_path = root.join("analysis.toml");
        let config = if config_path.exists() {
            let text = fs::read_to_string(&config_path)
                .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
            AnalysisConfig::parse(&text)?
        } else {
            AnalysisConfig::default()
        };
        Workspace::discover_with_config(root, config)
    }

    /// Discover `root` under an explicit configuration (used by self-tests).
    pub fn discover_with_config(root: &Path, config: AnalysisConfig) -> Result<Workspace, String> {
        let mut files = Vec::new();
        walk(root, root, &config, &mut files)?;
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Ok(Workspace {
            root: root.to_path_buf(),
            config,
            files,
        })
    }
}

/// Run every lint over every discovered file. Findings come back sorted by
/// (path, line, column, lint) and include suppressed entries (flagged as such).
pub fn run_lints(workspace: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &workspace.files {
        findings.extend(lint_source(&file.rel_path, &file.source, &workspace.config));
    }
    sort_findings(&mut findings);
    findings
}

/// Directory names never descended into, regardless of configuration.
fn always_skipped(name: &str) -> bool {
    name == "target" || name.starts_with('.')
}

fn walk(
    root: &Path,
    dir: &Path,
    config: &AnalysisConfig,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    // Sort for deterministic discovery order — readdir order is OS-dependent.
    paths.sort();
    for path in paths {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if always_skipped(name) {
            continue;
        }
        let rel = rel_path(root, &path);
        if config.is_skipped(&rel) {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, config, out)?;
        } else if name.ends_with(".rs") {
            let source = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            out.push(SourceFile {
                rel_path: rel,
                source,
            });
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_from_paths() {
        assert_eq!(role_for("crates/sim/src/event.rs"), Role::Lib);
        assert_eq!(role_for("crates/experiments/src/bin/repro.rs"), Role::Bin);
        assert_eq!(role_for("tests/pipeline.rs"), Role::Test);
        assert_eq!(role_for("crates/fleet/tests/state_props.rs"), Role::Test);
        assert_eq!(role_for("crates/bench/benches/microbench.rs"), Role::Bench);
        assert_eq!(role_for("examples/quickstart.rs"), Role::Example);
        assert_eq!(
            role_for("crates/analysis/tests/corpus/clean.rs"),
            Role::Test
        );
        assert_eq!(role_for("build.rs"), Role::Bin);
        assert_eq!(role_for("src/lib.rs"), Role::Lib);
    }
}
