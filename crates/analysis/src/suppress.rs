//! Per-line suppression directives.
//!
//! A finding is suppressed by a comment directive of the form
//!
//! ```text
//! let t = m.lock(); // grass: allow(nested-lock, "single-threaded setup path")
//! ```
//!
//! The reason string is **mandatory** — a directive without one is itself a
//! finding (`malformed-suppression`). A directive in a comment that shares a
//! line with code applies to that line; a directive on a line of its own
//! applies to the next line that holds code (so it can sit above the offending
//! statement). Directives are only recognised in plain comments: the same text
//! inside a string literal is inert (the lexer never scans string contents for
//! directives), and doc comments (`///`, `//!`, `/** … */`, `/*! … */`) are
//! documentation — a directive shown there as an example is not applied.

use std::collections::BTreeSet;

use crate::lexer::LexedFile;
use crate::lints;

/// One parsed `grass: allow(...)` directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Lint id being allowed.
    pub lint: String,
    /// Mandatory justification.
    pub reason: String,
    /// Line of the comment holding the directive.
    pub comment_line: u32,
    /// Line whose findings it suppresses (0 when dangling at end of file).
    pub target_line: u32,
}

/// A directive that could not be parsed.
#[derive(Debug, Clone)]
pub struct SuppressionError {
    /// Line of the offending comment.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

const MARKER: &str = "grass:";

/// Extract all suppression directives (and directive errors) from a lexed file.
pub fn parse_suppressions(lexed: &LexedFile) -> (Vec<Suppression>, Vec<SuppressionError>) {
    let token_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let mut found = Vec::new();
    let mut errors = Vec::new();
    for comment in &lexed.comments {
        // Doc comments are documentation: `///` / `//!` bodies start with `/`
        // or `!` (`/** */` and `/*! */` with `*` or `!`). Example directives
        // in docs must not be applied — or counted as unused.
        if matches!(comment.text.chars().next(), Some('/' | '!' | '*')) {
            continue;
        }
        let mut rest = comment.text.as_str();
        while let Some(at) = rest.find(MARKER) {
            let after = rest.get(at + MARKER.len()..).unwrap_or("");
            // Prose mentions of the `grass::` crate path, or of identifiers
            // merely ending in "grass", are not directives.
            let path_not_directive = after.starts_with(':');
            let mid_word = rest
                .get(..at)
                .and_then(|before| before.chars().next_back())
                .map(|c| c.is_alphanumeric() || c == '_' || c == '-')
                .unwrap_or(false);
            if path_not_directive || mid_word {
                rest = after;
                continue;
            }
            match parse_directive(after) {
                Ok((lint, reason)) => found.push(Suppression {
                    lint,
                    reason,
                    comment_line: comment.line,
                    target_line: target_line(comment, &token_lines),
                }),
                Err(message) => errors.push(SuppressionError {
                    line: comment.line,
                    message,
                }),
            }
            rest = after;
        }
    }
    (found, errors)
}

/// The code line a directive applies to: its own line when the comment trails
/// code, otherwise the next line holding a token.
fn target_line(comment: &crate::lexer::Comment, token_lines: &BTreeSet<u32>) -> u32 {
    if token_lines.contains(&comment.line) {
        return comment.line;
    }
    // A block comment can end on a line that code then continues.
    if token_lines.contains(&comment.end_line) {
        return comment.end_line;
    }
    token_lines
        .range(comment.end_line + 1..)
        .next()
        .copied()
        .unwrap_or(0)
}

/// Parse `allow(<lint-id>, "<reason>")` after the `grass:` marker.
fn parse_directive(text: &str) -> Result<(String, String), String> {
    let rest = text.trim_start();
    let rest = rest.strip_prefix("allow").ok_or_else(|| {
        "unknown grass directive; expected `allow(<lint>, \"<reason>\")`".to_string()
    })?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_string())?;
    let id_len = rest
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '-'))
        .map(|(index, _)| index)
        .unwrap_or(rest.len());
    let lint = rest.get(..id_len).unwrap_or("").to_string();
    if lint.is_empty() {
        return Err("missing lint id in `allow(...)`".to_string());
    }
    if !lints::is_known_lint(&lint) {
        return Err(format!("unknown lint id `{lint}` in `allow(...)`"));
    }
    let rest = rest.get(id_len..).unwrap_or("").trim_start();
    if rest.starts_with(')') {
        return Err(format!(
            "suppression of `{lint}` has no reason — every allow must justify itself: allow({lint}, \"<why>\")"
        ));
    }
    let rest = rest
        .strip_prefix(',')
        .ok_or_else(|| "expected `,` between lint id and reason".to_string())?
        .trim_start();
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| "reason must be a quoted string".to_string())?;
    let end = rest
        .find('"')
        .ok_or_else(|| "unterminated reason string".to_string())?;
    let reason = rest.get(..end).unwrap_or("").to_string();
    if reason.trim().is_empty() {
        return Err("reason string must not be empty".to_string());
    }
    let rest = rest.get(end + 1..).unwrap_or("").trim_start();
    if !rest.starts_with(')') {
        return Err("expected `)` after reason".to_string());
    }
    Ok((lint, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(source: &str) -> (Vec<Suppression>, Vec<SuppressionError>) {
        parse_suppressions(&lex(source))
    }

    #[test]
    fn trailing_directive_targets_its_own_line() {
        let (sups, errs) = parse("let x = 1; // grass: allow(unseeded-rng, \"seeded upstream\")\n");
        assert!(errs.is_empty());
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].lint, "unseeded-rng");
        assert_eq!(sups[0].reason, "seeded upstream");
        assert_eq!(sups[0].target_line, 1);
    }

    #[test]
    fn own_line_directive_targets_next_code_line() {
        let src = "\n// grass: allow(nested-lock, \"why\")\n// another comment\nlet x = 1;\n";
        let (sups, _) = parse(src);
        assert_eq!(sups[0].comment_line, 2);
        assert_eq!(sups[0].target_line, 4);
    }

    #[test]
    fn directive_inside_string_is_inert() {
        let src = "let s = \"grass: allow(unseeded-rng, \\\"nope\\\")\";\n";
        let (sups, errs) = parse(src);
        assert!(sups.is_empty() && errs.is_empty());
    }

    #[test]
    fn missing_reason_is_an_error() {
        let (sups, errs) = parse("// grass: allow(unseeded-rng)\n");
        assert!(sups.is_empty());
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("no reason"), "{}", errs[0].message);
    }

    #[test]
    fn unknown_lint_is_an_error() {
        let (_, errs) = parse("// grass: allow(made-up, \"x\")\n");
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("unknown lint id"));
    }

    #[test]
    fn two_directives_in_one_comment() {
        let src = "x(); // grass: allow(unseeded-rng, \"a\") grass: allow(nested-lock, \"b\")\n";
        let (sups, errs) = parse(src);
        assert!(errs.is_empty());
        assert_eq!(sups.len(), 2);
    }

    #[test]
    fn crate_path_mentions_are_not_directives() {
        let (sups, errs) = parse("let x = 1; // see `use grass::prelude::*` and seagrass: too\n");
        assert!(sups.is_empty());
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn doc_comment_directives_are_inert() {
        let src = "\
/// Suppress with: grass: allow(unseeded-rng, \"why\")\n\
//! grass: allow(nested-lock, \"module doc\")\n\
/** grass: allow(nested-lock, \"block doc\") */\n\
let x = 1;\n";
        let (sups, errs) = parse(src);
        assert!(sups.is_empty(), "doc comments must not suppress");
        assert!(errs.is_empty(), "doc comments must not error");
    }

    #[test]
    fn dangling_directive_has_no_target() {
        let (sups, _) = parse("let x = 1;\n// grass: allow(unseeded-rng, \"nothing follows\")\n");
        assert_eq!(sups[0].target_line, 0);
    }
}
