//! `analysis.toml` — the path-scoped lint configuration.
//!
//! Hand-parsed (the workspace is offline; no toml crate), accepting the small
//! TOML subset the file actually uses:
//!
//! * top-level string arrays: `skip`, `digest`, `timing`, `library` — each a
//!   list of workspace-relative path prefixes (a prefix matches itself and
//!   everything below it);
//! * a `[severity]` table mapping lint ids to `"off" | "warn" | "error"`;
//! * repeated `[[allow]]` tables with `lint`, `path` and a **required**
//!   `reason` — the path-scoped counterpart of the per-line
//!   `grass: allow(...)` comment directive.
//!
//! `#` comments and blank lines are ignored; arrays may span lines.

use crate::finding::Severity;
use crate::lints;

/// A path-scoped suppression from an `[[allow]]` table.
#[derive(Debug, Clone)]
pub struct PathAllow {
    /// Lint id the allowance applies to.
    pub lint: String,
    /// Workspace-relative path prefix it covers.
    pub path: String,
    /// Mandatory justification, echoed into reports.
    pub reason: String,
}

/// Parsed `analysis.toml`.
#[derive(Debug, Clone, Default)]
pub struct AnalysisConfig {
    /// Path prefixes never linted (fixture corpora, vendored code).
    pub skip: Vec<String>,
    /// Digest-path modules: iteration order and float comparisons here reach
    /// result digests (`unordered-iter-on-digest-path` applies).
    pub digest: Vec<String>,
    /// Timing modules: wall-clock reads are their job
    /// (`wall-clock-in-core` does not apply).
    pub timing: Vec<String>,
    /// Library modules: panicking is an API bug (`panicky-lib` applies).
    pub library: Vec<String>,
    /// Per-lint severity overrides.
    pub severity: Vec<(String, Severity)>,
    /// Path-scoped suppressions.
    pub allows: Vec<PathAllow>,
}

/// Class membership of one file under a config.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassSet {
    /// In a `digest` path.
    pub digest: bool,
    /// In a `timing` path.
    pub timing: bool,
    /// In a `library` path.
    pub library: bool,
}

/// Does `prefix` cover `rel` (equal, or an ancestor directory of it)?
pub fn path_covers(prefix: &str, rel: &str) -> bool {
    let prefix = prefix.trim_end_matches('/');
    rel == prefix
        || (rel.len() > prefix.len()
            && rel.starts_with(prefix)
            && rel.as_bytes().get(prefix.len()) == Some(&b'/'))
}

impl AnalysisConfig {
    /// Parse `analysis.toml` text. Errors name the offending 1-based line.
    pub fn parse(text: &str) -> Result<AnalysisConfig, String> {
        Parser::default().run(text)
    }

    /// Whether `rel` is excluded from linting entirely.
    pub fn is_skipped(&self, rel: &str) -> bool {
        self.skip.iter().any(|p| path_covers(p, rel))
    }

    /// Class membership for `rel`.
    pub fn classes_for(&self, rel: &str) -> ClassSet {
        ClassSet {
            digest: self.digest.iter().any(|p| path_covers(p, rel)),
            timing: self.timing.iter().any(|p| path_covers(p, rel)),
            library: self.library.iter().any(|p| path_covers(p, rel)),
        }
    }

    /// Effective severity of `lint`, honouring overrides.
    pub fn severity_of(&self, lint: &str, default: Severity) -> Severity {
        self.severity
            .iter()
            .find(|(id, _)| id == lint)
            .map(|(_, s)| *s)
            .unwrap_or(default)
    }

    /// The reason of the first path-scoped allow covering (`lint`, `rel`).
    pub fn allow_reason(&self, lint: &str, rel: &str) -> Option<&str> {
        self.allows
            .iter()
            .find(|a| a.lint == lint && path_covers(&a.path, rel))
            .map(|a| a.reason.as_str())
    }
}

#[derive(Default)]
enum Section {
    #[default]
    Top,
    Severity,
    Allow,
}

// Partially parsed [[allow]] table: (lint, path, reason), with the line it
// started on for error reporting.
type PartialAllow = (Option<String>, Option<String>, Option<String>, u32);

#[derive(Default)]
struct Parser {
    config: AnalysisConfig,
    section: Section,
    allow: Option<PartialAllow>,
    // Key whose array value is still open across lines.
    pending: Option<(String, String, u32)>,
}

impl Parser {
    fn run(mut self, text: &str) -> Result<AnalysisConfig, String> {
        for (index, raw) in text.lines().enumerate() {
            let lineno = (index as u32) + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some((key, mut value, start)) = self.pending.take() {
                value.push(' ');
                value.push_str(&line);
                if brackets_balance(&value) {
                    self.finish_array(&key, &value, start)?;
                } else {
                    self.pending = Some((key, value, start));
                }
                continue;
            }
            if line == "[[allow]]" {
                self.flush_allow()?;
                self.section = Section::Allow;
                self.allow = Some((None, None, None, lineno));
                continue;
            }
            if line == "[severity]" {
                self.flush_allow()?;
                self.section = Section::Severity;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("analysis.toml:{lineno}: unknown section {line}"));
            }
            let (key, value) = split_key_value(&line)
                .ok_or_else(|| format!("analysis.toml:{lineno}: expected `key = value`"))?;
            match self.section {
                Section::Top => {
                    if !matches!(key.as_str(), "skip" | "digest" | "timing" | "library") {
                        return Err(format!("analysis.toml:{lineno}: unknown key `{key}`"));
                    }
                    if brackets_balance(&value) {
                        self.finish_array(&key, &value, lineno)?;
                    } else {
                        self.pending = Some((key, value, lineno));
                    }
                }
                Section::Severity => {
                    let id = unquote(&key);
                    if !lints::is_known_lint(&id) {
                        return Err(format!("analysis.toml:{lineno}: unknown lint `{id}`"));
                    }
                    let spelled = parse_string(&value).ok_or_else(|| {
                        format!("analysis.toml:{lineno}: severity must be a string")
                    })?;
                    let severity = Severity::parse(&spelled).ok_or_else(|| {
                        format!(
                            "analysis.toml:{lineno}: severity must be off|warn|error, got `{spelled}`"
                        )
                    })?;
                    self.config.severity.push((id, severity));
                }
                Section::Allow => {
                    let slot = match self.allow.as_mut() {
                        Some(entry) => entry,
                        None => {
                            return Err(format!(
                                "analysis.toml:{lineno}: key outside an [[allow]] table"
                            ))
                        }
                    };
                    let text = parse_string(&value).ok_or_else(|| {
                        format!("analysis.toml:{lineno}: `{key}` must be a string")
                    })?;
                    match key.as_str() {
                        "lint" => slot.0 = Some(text),
                        "path" => slot.1 = Some(text),
                        "reason" => slot.2 = Some(text),
                        other => {
                            return Err(format!(
                                "analysis.toml:{lineno}: unknown [[allow]] key `{other}`"
                            ))
                        }
                    }
                }
            }
        }
        if let Some((_, _, start)) = &self.pending {
            return Err(format!("analysis.toml:{start}: unterminated array"));
        }
        self.flush_allow()?;
        Ok(self.config)
    }

    fn finish_array(&mut self, key: &str, value: &str, lineno: u32) -> Result<(), String> {
        let items = parse_string_array(value)
            .ok_or_else(|| format!("analysis.toml:{lineno}: `{key}` must be a string array"))?;
        let target = match key {
            "skip" => &mut self.config.skip,
            "digest" => &mut self.config.digest,
            "timing" => &mut self.config.timing,
            "library" => &mut self.config.library,
            other => return Err(format!("analysis.toml:{lineno}: unknown key `{other}`")),
        };
        target.extend(items);
        Ok(())
    }

    fn flush_allow(&mut self) -> Result<(), String> {
        let Some((lint, path, reason, start)) = self.allow.take() else {
            return Ok(());
        };
        let lint =
            lint.ok_or_else(|| format!("analysis.toml:{start}: [[allow]] is missing `lint`"))?;
        let path =
            path.ok_or_else(|| format!("analysis.toml:{start}: [[allow]] is missing `path`"))?;
        let reason = reason.ok_or_else(|| {
            format!("analysis.toml:{start}: [[allow]] is missing `reason` — every suppression must be justified")
        })?;
        if !lints::is_known_lint(&lint) {
            return Err(format!("analysis.toml:{start}: unknown lint `{lint}`"));
        }
        if reason.trim().is_empty() {
            return Err(format!(
                "analysis.toml:{start}: [[allow]] reason must not be empty"
            ));
        }
        self.config.allows.push(PathAllow { lint, path, reason });
        Ok(())
    }
}

/// Remove a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (index, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return line.get(..index).unwrap_or(line),
            _ => {}
        }
    }
    line
}

fn brackets_balance(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_string = false;
    for c in value.chars() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn split_key_value(line: &str) -> Option<(String, String)> {
    let eq = line.find('=')?;
    let key = line.get(..eq)?.trim().to_string();
    let value = line.get(eq + 1..)?.trim().to_string();
    if key.is_empty() || value.is_empty() {
        return None;
    }
    Some((key, value))
}

fn unquote(text: &str) -> String {
    let trimmed = text.trim();
    trimmed
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
        .unwrap_or(trimmed)
        .to_string()
}

/// Parse a `"string"` value.
fn parse_string(value: &str) -> Option<String> {
    let trimmed = value.trim().trim_end_matches(',').trim();
    let inner = trimmed.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_string())
}

/// Parse a `[ "a", "b" ]` value (trailing comma tolerated).
fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let trimmed = value.trim();
    let inner = trimmed.strip_prefix('[')?.strip_suffix(']')?;
    let mut items = Vec::new();
    for piece in inner.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let lit = piece.strip_prefix('"')?.strip_suffix('"')?;
        items.push(lit.to_string());
    }
    Some(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_subset() {
        let text = r##"
# comment
skip = ["a/b"]
digest = [
    "crates/sim",  # trailing comment
    "crates/core",
]
timing = []
library = ["crates/core"]

[severity]
"unused-suppression" = "warn"

[[allow]]
lint = "panicky-lib"
path = "crates/core/src/grass/samples.rs"
reason = "bounded kernel indexing"
"##;
        let config = AnalysisConfig::parse(text).expect("parses");
        assert_eq!(config.skip, ["a/b"]);
        assert_eq!(config.digest, ["crates/sim", "crates/core"]);
        assert!(config.timing.is_empty());
        let classes = config.classes_for("crates/sim/src/event.rs");
        assert!(classes.digest && !classes.timing && !classes.library);
        assert_eq!(
            config.severity_of("unused-suppression", Severity::Error),
            Severity::Warn
        );
        assert_eq!(
            config.severity_of("panicky-lib", Severity::Error),
            Severity::Error
        );
        assert_eq!(
            config.allow_reason("panicky-lib", "crates/core/src/grass/samples.rs"),
            Some("bounded kernel indexing")
        );
        assert_eq!(
            config.allow_reason("panicky-lib", "crates/core/src/job.rs"),
            None
        );
    }

    #[test]
    fn path_cover_is_component_aware() {
        assert!(path_covers("crates/sim", "crates/sim/src/event.rs"));
        assert!(path_covers("crates/sim", "crates/sim"));
        assert!(!path_covers("crates/sim", "crates/simx/src/lib.rs"));
        assert!(!path_covers("crates/sim/src/event.rs", "crates/sim/src"));
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let text = "[[allow]]\nlint = \"panicky-lib\"\npath = \"x\"\n";
        let err = AnalysisConfig::parse(text).expect_err("must fail");
        assert!(err.contains("missing `reason`"), "{err}");
    }

    #[test]
    fn unknown_lint_is_rejected() {
        let text = "[severity]\nnot-a-lint = \"warn\"\n";
        assert!(AnalysisConfig::parse(text).is_err());
        let text = "[[allow]]\nlint = \"nope\"\npath = \"x\"\nreason = \"y\"\n";
        assert!(AnalysisConfig::parse(text).is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let text = "skip = [\"a#b\"]\n";
        let config = AnalysisConfig::parse(text).expect("parses");
        assert_eq!(config.skip, ["a#b"]);
    }
}
