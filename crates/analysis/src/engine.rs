//! Per-file lint pipeline: lex, locate test code, run the catalog, apply
//! suppressions, and keep the suppression system honest.

use std::collections::BTreeSet;

use crate::config::AnalysisConfig;
use crate::finding::{sort_findings, Finding, Severity};
use crate::lexer::{lex, Token, TokenKind};
use crate::lints;
use crate::suppress::parse_suppressions;
use crate::workspace::{role_for, Role};

/// Everything a lint pass may look at for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: &'a str,
    /// File role derived from its path (lib, bin, test, bench, example).
    pub role: Role,
    /// Class membership from `analysis.toml`.
    pub classes: crate::config::ClassSet,
    /// The lexed token stream.
    pub tokens: &'a [Token],
    /// Token index ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(usize, usize)>,
}

impl FileCtx<'_> {
    /// Whether the token at `index` sits inside test-only code.
    pub fn in_test(&self, index: usize) -> bool {
        self.test_regions
            .iter()
            .any(|(start, end)| (*start..=*end).contains(&index))
    }
}

/// Lint a single file's source text under `config`. The file's role and class
/// membership are derived from `rel_path`, exactly as in a workspace run.
pub fn lint_source(rel_path: &str, source: &str, config: &AnalysisConfig) -> Vec<Finding> {
    let lexed = lex(source);
    let ctx = FileCtx {
        rel_path,
        role: role_for(rel_path),
        classes: config.classes_for(rel_path),
        tokens: &lexed.tokens,
        test_regions: test_regions(&lexed.tokens),
    };

    let mut findings = lints::run_catalog(&ctx, config);
    let (suppressions, errors) = parse_suppressions(&lexed);

    // Directive problems are findings themselves, and are never suppressible:
    // a broken allow must be fixed, not allowed.
    let malformed_severity = config.severity_of(lints::MALFORMED_SUPPRESSION, Severity::Error);
    if malformed_severity != Severity::Off {
        for error in &errors {
            findings.push(Finding {
                lint: lints::MALFORMED_SUPPRESSION,
                severity: malformed_severity,
                path: rel_path.to_string(),
                line: error.line,
                column: 1,
                message: error.message.clone(),
                suppressed: None,
            });
        }
    }

    // Per-line directives first, then path-scoped config allows.
    let mut used = vec![false; suppressions.len()];
    for finding in findings.iter_mut() {
        if finding.lint == lints::MALFORMED_SUPPRESSION {
            continue;
        }
        let matched = suppressions
            .iter()
            .enumerate()
            .filter(|(_, s)| s.lint == finding.lint && s.target_line == finding.line)
            .map(|(index, s)| (index, s.reason.clone()))
            .collect::<Vec<_>>();
        if let Some((_, reason)) = matched.first() {
            finding.suppressed = Some(reason.clone());
            for (index, _) in &matched {
                if let Some(slot) = used.get_mut(*index) {
                    *slot = true;
                }
            }
            continue;
        }
        if let Some(reason) = config.allow_reason(finding.lint, rel_path) {
            finding.suppressed = Some(format!("analysis.toml: {reason}"));
        }
    }

    // A directive that allowed nothing is stale (or mis-targeted) and would
    // otherwise silently mask a future regression at the wrong line.
    let unused_severity = config.severity_of(lints::UNUSED_SUPPRESSION, Severity::Error);
    if unused_severity != Severity::Off {
        for (suppression, was_used) in suppressions.iter().zip(&used) {
            if !was_used {
                findings.push(Finding {
                    lint: lints::UNUSED_SUPPRESSION,
                    severity: unused_severity,
                    path: rel_path.to_string(),
                    line: suppression.comment_line,
                    column: 1,
                    message: format!(
                        "suppression of `{}` matches no finding on line {}",
                        suppression.lint, suppression.target_line
                    ),
                    suppressed: None,
                });
            }
        }
    }

    sort_findings(&mut findings);
    findings
}

/// Token ranges belonging to `#[cfg(test)]` / `#[test]` items (the attached
/// item body, brace-matched), plus the whole file for `#![cfg(test)]`.
fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut index = 0usize;
    while index < tokens.len() {
        if !is_punct(tokens, index, '#') {
            index += 1;
            continue;
        }
        let inner = is_punct(tokens, index + 1, '!');
        let open = if inner { index + 2 } else { index + 1 };
        if !is_punct(tokens, open, '[') {
            index += 1;
            continue;
        }
        let Some(close) = matching(tokens, open, '[', ']') else {
            break;
        };
        if is_test_attribute(tokens.get(open + 1..close).unwrap_or(&[])) {
            if inner {
                // `#![cfg(test)]`: the enclosing file is test-only.
                regions.push((0, tokens.len().saturating_sub(1)));
                break;
            }
            if let Some(region) = attached_item(tokens, close + 1) {
                regions.push((index, region));
                index = region + 1;
                continue;
            }
        }
        index = close + 1;
    }
    regions
}

/// A `cfg`/`test` attribute body marks test code when it mentions `test` and is
/// not a `not(test)` / `any(not(test), ..)` shape.
fn is_test_attribute(body: &[Token]) -> bool {
    let mut saw_test = false;
    for token in body {
        if token.kind == TokenKind::Ident {
            match token.text.as_str() {
                "test" => saw_test = true,
                "not" => return false,
                _ => {}
            }
        }
    }
    saw_test
}

/// The end of the item an attribute at `start` is attached to: skip further
/// attributes, then brace-match the first `{` (or stop at a bare `;`).
fn attached_item(tokens: &[Token], mut start: usize) -> Option<usize> {
    // Skip stacked attributes such as `#[cfg(test)] #[allow(...)] mod t {}`.
    while is_punct(tokens, start, '#') && is_punct(tokens, start + 1, '[') {
        start = matching(tokens, start + 1, '[', ']')? + 1;
    }
    let mut index = start;
    while index < tokens.len() {
        if is_punct(tokens, index, '{') {
            return matching(tokens, index, '{', '}');
        }
        if is_punct(tokens, index, ';') {
            return Some(index);
        }
        index += 1;
    }
    None
}

/// Index of the delimiter closing `open_index` (which must hold `open`).
fn matching(tokens: &[Token], open_index: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    let mut index = open_index;
    while let Some(token) = tokens.get(index) {
        if token.kind == TokenKind::Punct {
            if token.text.starts_with(open) {
                depth += 1;
            } else if token.text.starts_with(close) {
                depth -= 1;
                if depth == 0 {
                    return Some(index);
                }
            }
        }
        index += 1;
    }
    None
}

fn is_punct(tokens: &[Token], index: usize, c: char) -> bool {
    tokens
        .get(index)
        .map(|t| t.kind == TokenKind::Punct && t.text.starts_with(c))
        .unwrap_or(false)
}

/// Lines holding at least one token — used by tests and reports.
pub fn code_lines(tokens: &[Token]) -> BTreeSet<u32> {
    tokens.iter().map(|t| t.line).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn regions(source: &str) -> Vec<(usize, usize)> {
        test_regions(&lex(source).tokens)
    }

    #[test]
    fn cfg_test_module_is_a_region() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions.len(), 1);
        let (start, end) = regions[0];
        let covered: Vec<&str> = lexed.tokens[start..=end]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(covered.contains(&"tests"));
        assert!(covered.contains(&"b"));
        assert!(!covered.contains(&"c"));
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        assert!(regions("#[cfg(not(test))]\nfn a() {}").is_empty());
    }

    #[test]
    fn stacked_attributes_are_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn x() {} }";
        assert_eq!(regions(src).len(), 1);
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let src = "#![cfg(test)]\nfn a() {}\nfn b() {}";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions, vec![(0, lexed.tokens.len() - 1)]);
    }

    #[test]
    fn test_fn_attribute_is_a_region() {
        let src = "#[test]\nfn works() { assert!(true); }\nfn not_test() {}";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions.len(), 1);
        let (_, end) = regions[0];
        let tail: Vec<&str> = lexed.tokens[end + 1..]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(tail.contains(&"not_test"));
    }
}
