//! Finding and severity types shared by the lint framework and its reports.

use std::fmt;

/// How a lint's findings are treated. Every catalog lint has a default
/// severity; `analysis.toml` may override it per lint (including `off`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The lint is disabled and produces no findings.
    Off,
    /// Reported, but does not fail the run (exit code stays 0 unless denied).
    Warn,
    /// Reported and fails the run: `repro lint` exits non-zero.
    Error,
}

impl Severity {
    /// Parse the `analysis.toml` spelling.
    pub fn parse(text: &str) -> Option<Severity> {
        match text {
            "off" => Some(Severity::Off),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }

    /// The `analysis.toml` / JSON spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Off => "off",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint hit at one source position.
///
/// Suppressed findings are kept (with the justification that suppressed them)
/// so machine consumers can audit suppressions; only *unsuppressed* findings
/// affect the exit code.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable lint id (see [`crate::lints::CATALOG`]).
    pub lint: &'static str,
    /// Resolved severity (defaults overridden by `analysis.toml`). Never
    /// [`Severity::Off`] — disabled lints do not run.
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (chars).
    pub column: u32,
    /// Human-readable description of the hit.
    pub message: String,
    /// `Some(reason)` when an allow directive or a config-scoped allow
    /// suppressed this finding.
    pub suppressed: Option<String>,
}

impl Finding {
    /// Whether this finding should fail a lint run.
    pub fn is_blocking(&self) -> bool {
        self.suppressed.is_none() && self.severity == Severity::Error
    }
}

/// Deterministic report order: path, then position, then lint id.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.column, a.lint).cmp(&(
            b.path.as_str(),
            b.line,
            b.column,
            b.lint,
        ))
    });
}
