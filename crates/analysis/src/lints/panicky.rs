//! `panicky-lib` — abort paths in non-test library code.
//!
//! In library-class modules a panic is an API bug: it takes down whichever
//! host process embedded the crate (a sweep worker, the fleet broker, a future
//! service). The lint flags the four lexical shapes that can abort:
//!
//! * `.unwrap()` and `.expect(..)` method calls,
//! * `panic!(..)` invocations,
//! * indexing expressions `expr[..]` (slice and map indexing both panic on a
//!   miss; `.get(..)` is the non-aborting spelling).
//!
//! Code under `#[cfg(test)]` / `#[test]` is exempt, as are test/bench/example
//! targets (by role). Invariant-backed sites stay — with an allow naming the
//! invariant, which is the documentation the next reader needs anyway.

use crate::engine::FileCtx;
use crate::finding::{Finding, Severity};
use crate::lexer::TokenKind;
use crate::lints::{finding, is_keyword, PANICKY_LIB};
use crate::workspace::Role;

pub(crate) fn check(ctx: &FileCtx<'_>, severity: Severity, out: &mut Vec<Finding>) {
    if !ctx.classes.library || ctx.role != Role::Lib {
        return;
    }
    let tokens = ctx.tokens;
    for (index, token) in tokens.iter().enumerate() {
        if ctx.in_test(index) {
            continue;
        }
        let previous = index.checked_sub(1).and_then(|i| tokens.get(i));
        let next = tokens.get(index + 1);
        let what: Option<String> = match (token.kind, token.text.as_str()) {
            (TokenKind::Ident, "unwrap") | (TokenKind::Ident, "expect") => {
                let is_method_call = previous
                    .map(|p| p.kind == TokenKind::Punct && p.text == ".")
                    .unwrap_or(false)
                    && next
                        .map(|n| n.kind == TokenKind::Punct && n.text == "(")
                        .unwrap_or(false);
                is_method_call.then(|| format!(".{}()", token.text))
            }
            (TokenKind::Ident, "panic") => next
                .map(|n| n.kind == TokenKind::Punct && n.text == "!")
                .unwrap_or(false)
                .then(|| "panic!".to_string()),
            (TokenKind::Punct, "[") => previous
                .map(is_expression_tail)
                .unwrap_or(false)
                .then(|| "indexing".to_string()),
            _ => None,
        };
        if let Some(what) = what {
            out.push(finding(
                ctx,
                PANICKY_LIB,
                severity,
                token,
                format!(
                    "{what} in library code can abort the embedding process; return a \
                     `Result`, use `.get(..)`, or justify the invariant that makes this \
                     infallible"
                ),
            ));
        }
    }
}

/// Can the previous token end an expression? If so, a following `[` is an
/// index operation (as opposed to an array literal, slice type, attribute or
/// slice pattern).
fn is_expression_tail(token: &crate::lexer::Token) -> bool {
    match token.kind {
        TokenKind::Ident => !is_keyword(&token.text),
        TokenKind::Punct => matches!(token.text.as_str(), ")" | "]" | "?"),
        _ => false,
    }
}
