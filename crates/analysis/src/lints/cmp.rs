//! `nan-unsafe-cmp` — the PR 3 bug class.
//!
//! `a.partial_cmp(&b).unwrap()` panics the moment a NaN reaches the comparator,
//! and the "safe-looking" variants are worse: `.unwrap_or(Ordering::Equal)`
//! silently declares NaN equal to everything, which breaks sort transitivity
//! and poisons every downstream ordering decision. `f64::total_cmp` is a total
//! order and the right tool on every digest-affecting path.
//!
//! Token pattern: `. partial_cmp ( … ) . unwrap|expect|unwrap_or|unwrap_or_else`.
//! Applies to every role and class — a NaN-unsafe comparator in a test weakens
//! the test just as surely.

use crate::engine::FileCtx;
use crate::finding::{Finding, Severity};
use crate::lexer::TokenKind;
use crate::lints::{finding, NAN_UNSAFE_CMP};

const SINKS: &[&str] = &["unwrap", "expect", "unwrap_or", "unwrap_or_else"];

pub(crate) fn check(ctx: &FileCtx<'_>, severity: Severity, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    for (index, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident || token.text != "partial_cmp" {
            continue;
        }
        // Method call position: preceded by `.`, followed by `(`.
        let is_method = index > 0
            && tokens
                .get(index - 1)
                .map(|t| t.kind == TokenKind::Punct && t.text == ".")
                .unwrap_or(false);
        if !is_method {
            continue;
        }
        let has_args = tokens
            .get(index + 1)
            .map(|t| t.kind == TokenKind::Punct && t.text == "(")
            .unwrap_or(false);
        if !has_args {
            continue;
        }
        let Some(close) = matching_paren(ctx, index + 1) else {
            continue;
        };
        let dot = close + 1;
        let sink = close + 2;
        let dotted = tokens
            .get(dot)
            .map(|t| t.kind == TokenKind::Punct && t.text == ".")
            .unwrap_or(false);
        let Some(sink_token) = tokens.get(sink) else {
            continue;
        };
        if dotted
            && sink_token.kind == TokenKind::Ident
            && SINKS.contains(&sink_token.text.as_str())
        {
            out.push(finding(
                ctx,
                NAN_UNSAFE_CMP,
                severity,
                token,
                format!(
                    "`partial_cmp(..).{}()` is NaN-unsafe: it panics or silently mis-orders \
                     when a NaN reaches the comparator; use `f64::total_cmp` (a total order) \
                     or handle the `None` case explicitly",
                    sink_token.text
                ),
            ));
        }
    }
}

fn matching_paren(ctx: &FileCtx<'_>, open_index: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut index = open_index;
    while let Some(token) = ctx.tokens.get(index) {
        if token.kind == TokenKind::Punct {
            if token.text == "(" {
                depth += 1;
            } else if token.text == ")" {
                depth -= 1;
                if depth == 0 {
                    return Some(index);
                }
            }
        }
        index += 1;
    }
    None
}
