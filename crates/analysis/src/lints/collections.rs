//! `unordered-iter-on-digest-path` — hash collections where order can leak.
//!
//! `HashMap`/`HashSet` iteration order is arbitrary (and, with a randomized
//! hasher, differs between runs). In a module whose outputs feed result
//! digests, *any* hash collection is a standing hazard: today's keyed lookup is
//! one refactor away from tomorrow's `.values()` loop. The lint therefore
//! flags every mention of the types in digest-class files; genuinely
//! order-insensitive uses carry an allow explaining why ordering never
//! escapes, which is exactly the audit trail a reviewer needs.

use std::collections::BTreeSet;

use crate::engine::FileCtx;
use crate::finding::{Finding, Severity};
use crate::lexer::TokenKind;
use crate::lints::{finding, UNORDERED_ITER};
use crate::workspace::Role;

pub(crate) fn check(ctx: &FileCtx<'_>, severity: Severity, out: &mut Vec<Finding>) {
    if !ctx.classes.digest || !matches!(ctx.role, Role::Lib | Role::Bin) {
        return;
    }
    let mut seen_lines: BTreeSet<u32> = BTreeSet::new();
    for (index, token) in ctx.tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident {
            continue;
        }
        if token.text != "HashMap" && token.text != "HashSet" {
            continue;
        }
        if ctx.in_test(index) {
            continue;
        }
        if !seen_lines.insert(token.line) {
            continue;
        }
        out.push(finding(
            ctx,
            UNORDERED_ITER,
            severity,
            token,
            format!(
                "`{}` in a digest-path module: hash iteration order is nondeterministic and \
                 must never reach a digest; use `BTreeMap`/`BTreeSet`, sort before iterating, \
                 or justify why ordering cannot escape",
                token.text
            ),
        ));
    }
}
