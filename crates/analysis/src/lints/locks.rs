//! `nested-lock` — a second guard acquired while one is live.
//!
//! Two guards held at once in one function is how lock-ordering deadlocks are
//! born (the fleet broker's standing hazard: the grid state mutex plus
//! anything else). The pass is a lexical approximation of guard liveness,
//! tracked per function body:
//!
//! * `let g = …​.lock();` binds a guard that lives to the end of its enclosing
//!   block (or an explicit `drop(g)`);
//! * a bare `…​.lock().x()` temporary lives to the end of its statement;
//! * any `.lock()` / `.read()` / `.write()` **with empty argument lists**
//!   (RwLock/Mutex shapes — `io::Read::read(&mut buf)` never matches) while a
//!   guard is live is a finding.
//!
//! The approximation is deliberately conservative; false positives carry an
//! allow explaining the ordering argument, which is precisely what a reviewer
//! wants written down next to a double-lock.

use crate::engine::FileCtx;
use crate::finding::{Finding, Severity};
use crate::lexer::{Token, TokenKind};
use crate::lints::{finding, NESTED_LOCK};
use crate::workspace::Role;

const ACQUIRERS: &[&str] = &["lock", "read", "write"];

struct Guard {
    /// Brace depth the guard was created at.
    depth: i64,
    /// Bound name for `drop(name)` tracking; `None` for tuples/patterns.
    name: Option<String>,
    /// Statement-scoped temporary (dies at the next `;` at its depth).
    temp: bool,
}

pub(crate) fn check(ctx: &FileCtx<'_>, severity: Severity, out: &mut Vec<Finding>) {
    if !matches!(ctx.role, Role::Lib | Role::Bin) {
        return;
    }
    let tokens = ctx.tokens;
    let mut index = 0usize;
    while index < tokens.len() {
        let is_fn = tokens
            .get(index)
            .map(|t| t.kind == TokenKind::Ident && t.text == "fn")
            .unwrap_or(false);
        if is_fn && !ctx.in_test(index) {
            if let Some((body_start, body_end)) = function_body(tokens, index) {
                scan_body(ctx, severity, body_start, body_end, out);
                index = body_end + 1;
                continue;
            }
        }
        index += 1;
    }
}

/// From a `fn` keyword, locate the `{`..`}` token range of its body, if any
/// (trait method declarations end with `;` and have none).
fn function_body(tokens: &[Token], fn_index: usize) -> Option<(usize, usize)> {
    let mut index = fn_index + 1;
    // Find the parameter list and skip it, so `where` clauses and default
    // generic expressions can't confuse the body search.
    while index < tokens.len() && !is_punct(tokens, index, "(") {
        if is_punct(tokens, index, ";") || is_punct(tokens, index, "{") {
            return None;
        }
        index += 1;
    }
    let params_close = matching(tokens, index, "(", ")")?;
    let mut cursor = params_close + 1;
    while cursor < tokens.len() {
        if is_punct(tokens, cursor, ";") {
            return None;
        }
        if is_punct(tokens, cursor, "{") {
            let close = matching(tokens, cursor, "{", "}")?;
            return Some((cursor, close));
        }
        cursor += 1;
    }
    None
}

fn scan_body(
    ctx: &FileCtx<'_>,
    severity: Severity,
    body_start: usize,
    body_end: usize,
    out: &mut Vec<Finding>,
) {
    let tokens = ctx.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i64;
    let mut index = body_start;
    while index <= body_end {
        let Some(token) = tokens.get(index) else {
            break;
        };
        if token.kind == TokenKind::Punct {
            match token.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                ";" => guards.retain(|g| !(g.temp && g.depth >= depth)),
                _ => {}
            }
            index += 1;
            continue;
        }
        // drop(name) releases the named guard early.
        if token.kind == TokenKind::Ident
            && token.text == "drop"
            && is_punct(tokens, index + 1, "(")
        {
            if let Some(name) = tokens.get(index + 2) {
                if name.kind == TokenKind::Ident && is_punct(tokens, index + 3, ")") {
                    guards.retain(|g| g.name.as_deref() != Some(name.text.as_str()));
                }
            }
        }
        // An acquisition: `. lock ( )` with an empty argument list.
        let acquires = token.kind == TokenKind::Ident
            && ACQUIRERS.contains(&token.text.as_str())
            && index > 0
            && is_punct(tokens, index - 1, ".")
            && is_punct(tokens, index + 1, "(")
            && is_punct(tokens, index + 2, ")");
        if acquires {
            if !guards.is_empty() {
                out.push(finding(
                    ctx,
                    NESTED_LOCK,
                    severity,
                    token,
                    format!(
                        "`.{}()` while another guard is live in this function: two guards \
                         held at once is a lock-ordering deadlock hazard; narrow the first \
                         guard's scope (or `drop` it), or justify the ordering",
                        token.text
                    ),
                ));
            }
            let (name, temp) = binding_of(tokens, body_start, index);
            guards.push(Guard { depth, name, temp });
            index += 3;
            continue;
        }
        index += 1;
    }
}

/// How the guard produced at `acquire_index` is held: scan back to the start
/// of the statement; a `let` makes it a block-scoped binding (named when the
/// pattern is a plain identifier), anything else a statement temporary.
fn binding_of(tokens: &[Token], body_start: usize, acquire_index: usize) -> (Option<String>, bool) {
    let mut start = acquire_index;
    while start > body_start {
        let Some(token) = tokens.get(start - 1) else {
            break;
        };
        if token.kind == TokenKind::Punct && matches!(token.text.as_str(), ";" | "{" | "}") {
            break;
        }
        start -= 1;
    }
    let mut cursor = start;
    while cursor < acquire_index {
        let Some(token) = tokens.get(cursor) else {
            break;
        };
        if token.kind == TokenKind::Ident && token.text == "let" {
            let mut name_index = cursor + 1;
            if tokens
                .get(name_index)
                .map(|t| t.kind == TokenKind::Ident && t.text == "mut")
                .unwrap_or(false)
            {
                name_index += 1;
            }
            let name = tokens
                .get(name_index)
                .filter(|t| t.kind == TokenKind::Ident && t.text != "_")
                .map(|t| t.text.clone());
            // `let _ = …​.lock()` drops the guard immediately: a temporary.
            let discarded = tokens
                .get(cursor + 1)
                .map(|t| t.text == "_")
                .unwrap_or(false);
            return (name, discarded);
        }
        cursor += 1;
    }
    (None, true)
}

fn is_punct(tokens: &[Token], index: usize, text: &str) -> bool {
    tokens
        .get(index)
        .map(|t| t.kind == TokenKind::Punct && t.text == text)
        .unwrap_or(false)
}

fn matching(tokens: &[Token], open_index: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i64;
    let mut index = open_index;
    while let Some(token) = tokens.get(index) {
        if token.kind == TokenKind::Punct {
            if token.text == open {
                depth += 1;
            } else if token.text == close {
                depth -= 1;
                if depth == 0 {
                    return Some(index);
                }
            }
        }
        index += 1;
    }
    None
}
