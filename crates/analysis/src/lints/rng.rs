//! `unseeded-rng` — OS entropy in a reproducibility-first workspace.
//!
//! `thread_rng()`, `SeedableRng::from_entropy()` and `ThreadRng` draw operating
//! system entropy, which is the one thing a byte-identity claim can never
//! tolerate. Every RNG in this workspace is a `StdRng` seeded from a config
//! field, so the lint applies everywhere — including tests, where an unseeded
//! RNG means an unreproducible failure.

use crate::engine::FileCtx;
use crate::finding::{Finding, Severity};
use crate::lexer::TokenKind;
use crate::lints::{finding, UNSEEDED_RNG};

const ENTROPY_SOURCES: &[&str] = &["thread_rng", "from_entropy", "ThreadRng"];

pub(crate) fn check(ctx: &FileCtx<'_>, severity: Severity, out: &mut Vec<Finding>) {
    for (index, token) in ctx.tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident {
            continue;
        }
        if !ENTROPY_SOURCES.contains(&token.text.as_str()) {
            continue;
        }
        // A definition (`fn from_entropy`, e.g. in the rand shim) is not a use.
        let is_definition = index > 0
            && ctx
                .tokens
                .get(index - 1)
                .map(|t| t.kind == TokenKind::Ident && t.text == "fn")
                .unwrap_or(false);
        if is_definition {
            continue;
        }
        out.push(finding(
            ctx,
            UNSEEDED_RNG,
            severity,
            token,
            format!(
                "`{}` draws OS entropy and destroys reproducibility; seed a `StdRng` \
                 (`SeedableRng::seed_from_u64`) from a config or derived seed instead",
                token.text
            ),
        ));
    }
}
