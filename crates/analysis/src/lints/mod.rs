//! The lint catalog and the shared lint-author toolkit.
//!
//! Every lint has a stable id (used in suppression directives, `analysis.toml`
//! and the JSON report), a one-line summary and a default severity. The six
//! code lints are token-pattern passes over the [`crate::lexer`] output; two
//! meta lints (`malformed-suppression`, `unused-suppression`) keep the
//! suppression system itself honest and are produced by the engine.
//!
//! The catalog is documented for humans in `docs/lints.md` — keep the two in
//! sync when adding a lint.

mod cmp;
mod collections;
mod locks;
mod panicky;
mod rng;
mod time;

use crate::config::AnalysisConfig;
use crate::engine::FileCtx;
use crate::finding::{Finding, Severity};
use crate::lexer::Token;

/// Catalog metadata for one lint.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Stable id, as used by `grass: allow(<id>, "...")`.
    pub id: &'static str,
    /// One-line summary (shown by `repro lint --help` style listings).
    pub summary: &'static str,
    /// Severity unless overridden in `analysis.toml`.
    pub default_severity: Severity,
}

/// Lint id of the NaN-unsafe comparator lint.
pub const NAN_UNSAFE_CMP: &str = "nan-unsafe-cmp";
/// Lint id of the hash-collection-in-digest-path lint.
pub const UNORDERED_ITER: &str = "unordered-iter-on-digest-path";
/// Lint id of the wall-clock lint.
pub const WALL_CLOCK: &str = "wall-clock-in-core";
/// Lint id of the entropy-seeded RNG lint.
pub const UNSEEDED_RNG: &str = "unseeded-rng";
/// Lint id of the panicking-library-code lint.
pub const PANICKY_LIB: &str = "panicky-lib";
/// Lint id of the nested lock-guard lint.
pub const NESTED_LOCK: &str = "nested-lock";
/// Lint id for unparseable or reasonless suppression directives.
pub const MALFORMED_SUPPRESSION: &str = "malformed-suppression";
/// Lint id for suppression directives that matched no finding.
pub const UNUSED_SUPPRESSION: &str = "unused-suppression";

/// Every lint the engine knows, in documentation order.
pub const CATALOG: &[LintInfo] = &[
    LintInfo {
        id: NAN_UNSAFE_CMP,
        summary: "`partial_cmp(..).unwrap()`-style float comparators panic or mis-order on NaN",
        default_severity: Severity::Error,
    },
    LintInfo {
        id: UNORDERED_ITER,
        summary: "HashMap/HashSet in digest-path modules leak nondeterministic iteration order",
        default_severity: Severity::Error,
    },
    LintInfo {
        id: WALL_CLOCK,
        summary: "Instant::now/SystemTime outside declared timing modules",
        default_severity: Severity::Error,
    },
    LintInfo {
        id: UNSEEDED_RNG,
        summary: "thread_rng/from_entropy draw OS entropy and destroy reproducibility",
        default_severity: Severity::Error,
    },
    LintInfo {
        id: PANICKY_LIB,
        summary: "unwrap/expect/panic!/indexing in non-test library code",
        default_severity: Severity::Error,
    },
    LintInfo {
        id: NESTED_LOCK,
        summary: "second lock guard acquired while another is live in the same function",
        default_severity: Severity::Error,
    },
    LintInfo {
        id: MALFORMED_SUPPRESSION,
        summary: "suppression directive that does not parse or lacks a reason",
        default_severity: Severity::Error,
    },
    LintInfo {
        id: UNUSED_SUPPRESSION,
        summary: "suppression directive that matched no finding",
        default_severity: Severity::Error,
    },
];

/// Whether `id` names a catalog lint.
pub fn is_known_lint(id: &str) -> bool {
    CATALOG.iter().any(|info| info.id == id)
}

/// Catalog metadata for `id`, if known.
pub fn lint_info(id: &str) -> Option<&'static LintInfo> {
    CATALOG.iter().find(|info| info.id == id)
}

/// Run the six code lints over one file, honouring severity overrides.
pub(crate) fn run_catalog(ctx: &FileCtx<'_>, config: &AnalysisConfig) -> Vec<Finding> {
    type Pass = fn(&FileCtx<'_>, Severity, &mut Vec<Finding>);
    const PASSES: &[(&str, Pass)] = &[
        (NAN_UNSAFE_CMP, cmp::check),
        (UNORDERED_ITER, collections::check),
        (WALL_CLOCK, time::check),
        (UNSEEDED_RNG, rng::check),
        (PANICKY_LIB, panicky::check),
        (NESTED_LOCK, locks::check),
    ];
    let mut out = Vec::new();
    for (id, pass) in PASSES {
        let default = lint_info(id)
            .map(|i| i.default_severity)
            .unwrap_or(Severity::Error);
        let severity = config.severity_of(id, default);
        if severity == Severity::Off {
            continue;
        }
        pass(ctx, severity, &mut out);
    }
    out
}

/// Build a finding anchored at `token`.
pub(crate) fn finding(
    ctx: &FileCtx<'_>,
    lint: &'static str,
    severity: Severity,
    token: &Token,
    message: String,
) -> Finding {
    Finding {
        lint,
        severity,
        path: ctx.rel_path.to_string(),
        line: token.line,
        column: token.col,
        message,
        suppressed: None,
    }
}

/// Rust keywords, for "is the previous token an expression tail?" decisions.
pub(crate) fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "as" | "async"
            | "await"
            | "box"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}
