//! `wall-clock-in-core` — host time observed outside declared timing modules.
//!
//! `Instant::now()` and `SystemTime` make control flow depend on the machine
//! the code happens to run on. In this workspace every result-affecting path
//! is supposed to be a pure function of (trace, seed, config); clock reads
//! belong only in modules whose *job* is timing (the fleet's lease machinery,
//! the bench harness), declared via the `timing` class in `analysis.toml`.
//! Elapsed-time progress reporting in other modules is fine — but it must be
//! annotated, so a reviewer can check the value never reaches a result.

use crate::engine::FileCtx;
use crate::finding::{Finding, Severity};
use crate::lexer::TokenKind;
use crate::lints::{finding, WALL_CLOCK};
use crate::workspace::Role;

pub(crate) fn check(ctx: &FileCtx<'_>, severity: Severity, out: &mut Vec<Finding>) {
    if ctx.classes.timing || !matches!(ctx.role, Role::Lib | Role::Bin) {
        return;
    }
    for (index, token) in ctx.tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident || ctx.in_test(index) {
            continue;
        }
        let hit = match token.text.as_str() {
            // Any mention of the wall-clock type is a hazard.
            "SystemTime" => true,
            // `Instant` is flagged at the acquisition point: `Instant :: now`.
            "Instant" => {
                is_punct(ctx, index + 1, ':')
                    && is_punct(ctx, index + 2, ':')
                    && ctx
                        .tokens
                        .get(index + 3)
                        .map(|t| t.kind == TokenKind::Ident && t.text == "now")
                        .unwrap_or(false)
            }
            _ => false,
        };
        if hit {
            out.push(finding(
                ctx,
                WALL_CLOCK,
                severity,
                token,
                format!(
                    "`{}` read in a non-timing module: results must be a pure function of \
                     (trace, seed, config); inject time, mark the module `timing` in \
                     analysis.toml, or justify that the value never reaches a result",
                    token.text
                ),
            ));
        }
    }
}

fn is_punct(ctx: &FileCtx<'_>, index: usize, c: char) -> bool {
    ctx.tokens
        .get(index)
        .map(|t| t.kind == TokenKind::Punct && t.text.starts_with(c))
        .unwrap_or(false)
}
