//! A minimal, hand-rolled Rust lexer.
//!
//! The lint engine needs just enough lexical structure to reason about real code
//! without being fooled by comments or string literals: an occurrence of
//! `thread_rng` inside a doc comment or a `"..."` literal is not a finding. The
//! lexer therefore produces two streams — [`Token`]s (identifiers, literals,
//! punctuation) and [`Comment`]s (line and block, with nesting) — and is careful
//! about exactly the places where a naive scanner goes wrong:
//!
//! * nested block comments (`/* a /* b */ c */`),
//! * string literals with escapes, including multi-line strings,
//! * raw strings `r"…"` / `r#"…"#` (any hash depth) and raw identifiers `r#type`,
//! * byte strings `b"…"`, raw byte strings `br#"…"#` and byte chars `b'x'`,
//! * char literals vs lifetimes (`'a'` is a char, `'a` is a lifetime).
//!
//! It does **not** attempt full fidelity (numeric literals are approximate, there
//! is no interning) — lints operate on token *shapes*, not values.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#type` → `type`).
    Ident,
    /// Lifetime such as `'a` (no closing quote).
    Lifetime,
    /// Character or byte-character literal (`'a'`, `b'\n'`).
    Char,
    /// String literal of any flavour (plain, raw, byte, raw byte).
    Str,
    /// Numeric literal (integers and floats, suffixes included).
    Num,
    /// Single punctuation character (`.`, `(`, `[`, `#`, …).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Source text. For identifiers this is the name (raw identifiers are
    /// stripped of `r#`); for literals it is the literal as written.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
}

/// One comment (line or block), kept separate from the token stream so that
/// suppression directives can be parsed from comments only.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body, without the `//` / `/*` delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for multi-line block comments).
    pub end_line: u32,
    /// 1-based column the comment starts on.
    pub col: u32,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lex `source` into tokens and comments. Never fails: malformed input (e.g. an
/// unterminated string) is lexed best-effort to end of file.
pub fn lex(source: &str) -> LexedFile {
    let mut lexer = Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: LexedFile::default(),
    };
    lexer.run();
    lexer.out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: LexedFile,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.peek_at(0)
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek() {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek_at(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek_at(1) == Some('*') {
                self.block_comment(line, col);
            } else if c == '"' {
                self.string_literal(String::new(), line, col);
            } else if c == '\'' {
                self.quote(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if is_ident_start(c) {
                self.ident_or_prefixed_literal(line, col);
            } else {
                self.bump();
                self.push(TokenKind::Punct, c.to_string(), line, col);
            }
        }
    }

    /// `// …` to end of line. The body (after `//`) is recorded as a comment.
    fn line_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text,
            line,
            end_line: line,
            col,
        });
    }

    /// `/* … */` with nesting. Unterminated comments extend to end of file.
    fn block_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        let mut text = String::new();
        while depth > 0 {
            if self.peek() == Some('/') && self.peek_at(1) == Some('*') {
                self.bump();
                self.bump();
                depth += 1;
                text.push_str("/*");
            } else if self.peek() == Some('*') && self.peek_at(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth > 0 {
                    text.push_str("*/");
                }
            } else {
                match self.bump() {
                    Some(c) => text.push(c),
                    None => break,
                }
            }
        }
        self.out.comments.push(Comment {
            text,
            line,
            end_line: self.line,
            col,
        });
    }

    /// A `"…"` literal with escapes; `prefix` carries any consumed `b`.
    fn string_literal(&mut self, prefix: String, line: u32, col: u32) {
        let mut text = prefix;
        text.push('"');
        self.bump();
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(escaped) = self.bump() {
                    text.push(escaped);
                }
            } else if c == '"' {
                break;
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// A raw string after the `r`/`br` prefix and `hashes` consumed `#`s:
    /// scan to `"` followed by the same number of `#`s. No escapes.
    fn raw_string(&mut self, mut text: String, hashes: usize, line: u32, col: u32) {
        text.push('"');
        self.bump();
        'scan: while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                let mut seen = 0usize;
                while seen < hashes {
                    if self.peek() == Some('#') {
                        self.bump();
                        text.push('#');
                        seen += 1;
                    } else {
                        continue 'scan;
                    }
                }
                break;
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// `'` starts either a char literal or a lifetime. Rule: `'X…'` (closing
    /// quote directly after the ident run, or an escape/punctuation payload) is
    /// a char literal; `'ident` without a closing quote is a lifetime.
    fn quote(&mut self, line: u32, col: u32) {
        self.bump();
        match self.peek() {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                let mut text = String::from("'");
                while let Some(c) = self.bump() {
                    text.push(c);
                    if c == '\\' {
                        if let Some(escaped) = self.bump() {
                            text.push(escaped);
                        }
                    } else if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, text, line, col);
            }
            Some(c) if is_ident_start(c) => {
                // Look ahead past the ident run to decide char vs lifetime.
                let mut len = 0usize;
                while self.peek_at(len).map(is_ident_continue).unwrap_or(false) {
                    len += 1;
                }
                if self.peek_at(len) == Some('\'') {
                    // 'a' — char literal.
                    let mut text = String::from("'");
                    for _ in 0..=len {
                        if let Some(consumed) = self.bump() {
                            text.push(consumed);
                        }
                    }
                    self.push(TokenKind::Char, text, line, col);
                } else {
                    // 'a — lifetime (includes 'static).
                    let mut text = String::from("'");
                    for _ in 0..len {
                        if let Some(consumed) = self.bump() {
                            text.push(consumed);
                        }
                    }
                    self.push(TokenKind::Lifetime, text, line, col);
                }
            }
            Some(_) => {
                // Non-ident payload such as ' ' or '+': always a char literal.
                let mut text = String::from("'");
                while let Some(c) = self.bump() {
                    text.push(c);
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, text, line, col);
            }
            None => self.push(TokenKind::Punct, "'".into(), line, col),
        }
    }

    /// Numeric literal: digits, `_`, base prefixes, suffixes, `.`-followed-by-
    /// digit fractions and signed exponents. Approximate by design.
    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut last = '\0';
        while let Some(c) = self.peek() {
            let take = if c.is_alphanumeric() || c == '_' {
                true
            } else if c == '.' {
                // Fraction only when a digit follows: `1.0` yes, `1..n`/`1.max` no.
                self.peek_at(1).map(|d| d.is_ascii_digit()).unwrap_or(false)
            } else if c == '+' || c == '-' {
                // Exponent sign only directly after `e`/`E` with a digit next.
                (last == 'e' || last == 'E')
                    && self.peek_at(1).map(|d| d.is_ascii_digit()).unwrap_or(false)
            } else {
                false
            };
            if !take {
                break;
            }
            last = c;
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Num, text, line, col);
    }

    /// Identifier, or one of the ident-prefixed literals: `r"…"`, `r#"…"#`,
    /// `b"…"`, `br#"…"#`, `b'x'`, and raw identifiers `r#name`.
    fn ident_or_prefixed_literal(&mut self, line: u32, col: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if !is_ident_continue(c) {
                break;
            }
            name.push(c);
            self.bump();
        }
        let raw_capable = name == "r" || name == "br";
        if raw_capable && matches!(self.peek(), Some('"') | Some('#')) {
            // Count hashes by lookahead before committing: `r#ident` has hashes
            // but no quote and must stay an identifier path.
            let mut hashes = 0usize;
            while self.peek_at(hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek_at(hashes) == Some('"') {
                let mut text = name;
                for _ in 0..hashes {
                    text.push('#');
                    self.bump();
                }
                self.raw_string(text, hashes, line, col);
                return;
            }
            if name == "r" && hashes == 1 {
                // Raw identifier r#name: emit the bare name.
                self.bump();
                let mut raw = String::new();
                while let Some(c) = self.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    raw.push(c);
                    self.bump();
                }
                self.push(TokenKind::Ident, raw, line, col);
                return;
            }
        }
        if name == "b" {
            if self.peek() == Some('"') {
                self.string_literal(name, line, col);
                return;
            }
            if self.peek() == Some('\'') {
                // Byte char b'x' — always a char literal, never a lifetime.
                self.bump();
                let mut text = String::from("b'");
                while let Some(c) = self.bump() {
                    text.push(c);
                    if c == '\\' {
                        if let Some(escaped) = self.bump() {
                            text.push(escaped);
                        }
                    } else if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, text, line, col);
                return;
            }
        }
        self.push(TokenKind::Ident, name, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn token_kind_sequence_is_stable() {
        use TokenKind::*;
        assert_eq!(
            kinds(r#"let x: &'a f64 = 1.5e3; "s""#),
            [Ident, Ident, Punct, Punct, Lifetime, Ident, Punct, Num, Punct, Str]
        );
    }

    #[test]
    fn comments_are_not_tokens() {
        let lexed = lex("let x = 1; // trailing HashMap\n/* block thread_rng */ let y = 2;");
        let names = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>();
        assert_eq!(names, ["let", "x", "let", "y"]);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].text, " trailing HashMap");
        assert_eq!(lexed.comments[1].text, " block thread_rng ");
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("a /* outer /* inner */ still comment */ b");
        let names: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].text, " outer /* inner */ still comment ");
    }

    #[test]
    fn block_comment_line_spans() {
        let lexed = lex("/* one\ntwo\nthree */ x");
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].end_line, 3);
        assert_eq!(lexed.tokens[0].line, 3);
    }

    #[test]
    fn strings_swallow_pattern_text() {
        // Lint patterns inside string literals must never surface as idents.
        let src = r#"let s = "thread_rng HashMap // grass: allow(x, \"y\")";"#;
        assert_eq!(idents(src), ["let", "s"]);
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r###"let a = r"plain \ backslash"; let b = r#"quote " inside"#; let c = r##"deep "# inside"##;"###;
        let lexed = lex(src);
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs.len(), 3);
        assert!(strs[0].starts_with("r\"plain"));
        assert!(strs[1].contains("quote \" inside"));
        assert!(strs[2].contains("deep \"# inside"));
        assert_eq!(
            idents(src),
            ["let", "a", "let", "b", "let", "c"],
            "raw string contents must not leak tokens"
        );
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = r#"let a = b"bytes HashMap"; let c = b'x'; let d = b'\n';"#;
        let lexed = lex(src);
        assert_eq!(idents(src), ["let", "a", "let", "c", "let", "d"]);
        let lits: Vec<(TokenKind, &str)> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Str | TokenKind::Char))
            .map(|t| (t.kind, t.text.as_str()))
            .collect();
        assert_eq!(
            lits,
            [
                (TokenKind::Str, "b\"bytes HashMap\""),
                (TokenKind::Char, "b'x'"),
                (TokenKind::Char, "b'\\n'"),
            ]
        );
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'a'; let nl = '\\n'; let sp = ' '; }");
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        let chars: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        assert_eq!(chars, ["'a'", "'\\n'", "' '"]);
    }

    #[test]
    fn static_lifetime_and_escaped_quote_char() {
        let lexed = lex("const S: &'static str = \"s\"; let q = '\\'';");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>(),
            ["'static"]
        );
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>(),
            ["'\\''"]
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let lexed = lex("let a = 1..n; let b = 1.0e-3; let c = 0xFF_u32; let d = 7.max(2);");
        let nums: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["1", "1.0e-3", "0xFF_u32", "7", "2"]);
        assert!(idents("let d = 7.max(2);").contains(&"max".to_string()));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("ab\n  cd");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn unterminated_inputs_do_not_hang() {
        for src in ["\"open", "/* open", "r#\"open", "'", "b'"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn multiline_string_counts_lines() {
        let lexed = lex("let s = \"one\ntwo\"; after");
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.text == "after")
            .expect("token");
        assert_eq!(after.line, 2);
    }
}
