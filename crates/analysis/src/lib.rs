//! # grass-analysis — determinism & robustness lints for the GRASS workspace
//!
//! The workspace's headline claims are byte-identity claims: fleet digests
//! equal sweep digests, streamed decode equals eager decode, the live
//! simulator equals the reference oracle. Those claims die quietly — a
//! `HashMap` iteration here, an `Instant::now()` there — long before a test
//! notices. This crate is the standing audit: a dependency-free lint engine
//! (no `syn`, no `clippy` plumbing; the container has neither as a library)
//! that tokenizes every `.rs` file in the workspace and runs a small catalog
//! of determinism and robustness passes over the token stream.
//!
//! ## Architecture
//!
//! * [`lexer`] — a hand-rolled Rust lexer that understands line and nested
//!   block comments, strings, raw strings, byte/char literals and lifetimes.
//!   Everything downstream works on tokens, so a lint pattern inside a string
//!   or comment can never fire.
//! * [`config`] — `analysis.toml`, hand-parsed (line-oriented TOML subset):
//!   path classes (`digest`, `timing`, `library`), per-lint severities, skips,
//!   and path-scoped `[[allow]]` entries with mandatory reasons.
//! * [`suppress`] — per-line suppressions:
//!   `// grass: allow(<lint-id>, "<reason>")`, reason mandatory. A trailing
//!   comment targets its own line; an own-line comment targets the next code
//!   line. Malformed or unused directives are findings themselves
//!   (`malformed-suppression`, `unused-suppression`) and cannot be suppressed.
//! * [`lints`] — the catalog. Six passes: `nan-unsafe-cmp`,
//!   `unordered-iter-on-digest-path`, `wall-clock-in-core`, `unseeded-rng`,
//!   `panicky-lib`, `nested-lock`.
//! * [`engine`] / [`workspace`] — per-file orchestration ([`lint_source`]) and
//!   the directory walk + config discovery ([`Workspace`], [`run_lints`]).
//! * [`report`] — text and versioned-JSON renderers (`grass-analysis/1`).
//!
//! ## Entry points
//!
//! ```no_run
//! use grass_analysis::{run_lints, Workspace};
//!
//! let workspace = Workspace::discover("/path/to/repo".as_ref())?;
//! let findings = run_lints(&workspace);
//! for finding in findings.iter().filter(|f| f.is_blocking()) {
//!     eprintln!("{}:{}: [{}] {}", finding.path, finding.line, finding.lint, finding.message);
//! }
//! # Ok::<(), String>(())
//! ```
//!
//! The CLI lives in `grass-experiments` as `repro lint [--format text|json]
//! [paths…]` and is wired into CI: any unsuppressed error-severity finding
//! fails the build.

pub mod config;
pub mod engine;
pub mod finding;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod suppress;
pub mod workspace;

pub use config::{path_covers, AnalysisConfig, ClassSet, PathAllow};
pub use engine::{lint_source, FileCtx};
pub use finding::{sort_findings, Finding, Severity};
pub use lexer::{lex, Comment, LexedFile, Token, TokenKind};
pub use lints::{is_known_lint, lint_info, LintInfo, CATALOG};
pub use report::{render_json, render_text, summarize, Summary};
pub use suppress::{parse_suppressions, Suppression, SuppressionError};
pub use workspace::{role_for, run_lints, Role, SourceFile, Workspace};
