//! Rendering lint results for humans (`text`) and machines (`json`).
//!
//! The JSON schema is versioned (`"schema": "grass-analysis/1"`) and pinned by
//! `tests/json_format.rs` so pre-commit hooks and bench tooling can consume it
//! without tracking this crate's internals.

use crate::finding::{Finding, Severity};

/// Aggregate counts for one lint run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Files scanned (after `skip` filtering).
    pub files: usize,
    /// Unsuppressed error-severity findings.
    pub errors: usize,
    /// Unsuppressed warn-severity findings.
    pub warnings: usize,
    /// Suppressed findings (line directives or path-scoped allows).
    pub suppressed: usize,
}

/// Count findings by disposition.
pub fn summarize(findings: &[Finding], files: usize) -> Summary {
    let mut summary = Summary {
        files,
        errors: 0,
        warnings: 0,
        suppressed: 0,
    };
    for finding in findings {
        if finding.suppressed.is_some() {
            summary.suppressed += 1;
        } else {
            match finding.severity {
                Severity::Error => summary.errors += 1,
                Severity::Warn => summary.warnings += 1,
                Severity::Off => {}
            }
        }
    }
    summary
}

/// Human-readable report: one line per unsuppressed finding plus a summary.
pub fn render_text(findings: &[Finding], summary: &Summary) -> String {
    let mut out = String::new();
    for finding in findings {
        if finding.suppressed.is_some() {
            continue;
        }
        out.push_str(&format!(
            "{}[{}] {}:{}:{}: {}\n",
            finding.severity,
            finding.lint,
            finding.path,
            finding.line,
            finding.column,
            finding.message
        ));
    }
    out.push_str(&format!(
        "grass-analysis: {} error{}, {} warning{}, {} suppressed across {} file{}\n",
        summary.errors,
        plural(summary.errors),
        summary.warnings,
        plural(summary.warnings),
        summary.suppressed,
        summary.files,
        plural(summary.files),
    ));
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Machine-readable report. Schema `grass-analysis/1`:
///
/// ```json
/// {
///   "schema": "grass-analysis/1",
///   "summary": {"files": 0, "errors": 0, "warnings": 0, "suppressed": 0},
///   "findings": [
///     {"lint": "...", "severity": "error", "path": "...", "line": 1,
///      "column": 1, "message": "...", "suppressed": false, "reason": null}
///   ]
/// }
/// ```
///
/// `findings` includes suppressed entries (with `"suppressed": true` and the
/// justification in `"reason"`) so tooling can audit the suppression set.
pub fn render_json(findings: &[Finding], summary: &Summary) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"grass-analysis/1\",\n");
    out.push_str(&format!(
        "  \"summary\": {{\"files\": {}, \"errors\": {}, \"warnings\": {}, \"suppressed\": {}}},\n",
        summary.files, summary.errors, summary.warnings, summary.suppressed
    ));
    out.push_str("  \"findings\": [");
    for (index, finding) in findings.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!(
            "\"lint\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \"column\": {}, \
             \"message\": {}, \"suppressed\": {}, \"reason\": {}",
            json_string(finding.lint),
            json_string(finding.severity.as_str()),
            json_string(&finding.path),
            finding.line,
            finding.column,
            json_string(&finding.message),
            finding.suppressed.is_some(),
            match &finding.suppressed {
                Some(reason) => json_string(reason),
                None => "null".to_string(),
            },
        ));
        out.push('}');
    }
    if findings.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

/// Encode `text` as a JSON string literal.
pub fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
