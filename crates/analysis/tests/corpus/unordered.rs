//! Fixture: `unordered-iter-on-digest-path`. This file is marked `digest` by
//! the corpus configuration; every `HashMap`/`HashSet` mention outside tests
//! is flagged (deduplicated per line), ordered collections are not.

use std::collections::{BTreeMap, HashMap, HashSet}; //~ unordered-iter-on-digest-path

pub struct Index {
    by_task: HashMap<u64, usize>, //~ unordered-iter-on-digest-path
    seen: HashSet<u64>, //~ unordered-iter-on-digest-path
    ordered: BTreeMap<u64, usize>, // ok: deterministic iteration order
}

pub struct Cache {
    // grass: allow(unordered-iter-on-digest-path, "fixture: keyed lookup only, never iterated")
    slots: HashMap<u64, Vec<u8>>, // suppressed: carries a justification
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap; // ok: test code is exempt

    #[test]
    fn lookup() {
        let mut m: HashMap<u64, u64> = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.get(&1), Some(&2));
    }
}
