//! Fixture: `wall-clock-in-core`. This file carries no `timing` class, so
//! `SystemTime` mentions and `Instant::now()` acquisitions are flagged.

use std::time::{Duration, Instant, SystemTime}; //~ wall-clock-in-core

pub fn epoch_millis() -> u128 {
    SystemTime::now() //~ wall-clock-in-core
        .duration_since(SystemTime::UNIX_EPOCH) //~ wall-clock-in-core
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

pub fn measure<F: FnOnce()>(f: F) -> Duration {
    let begin = Instant::now(); //~ wall-clock-in-core
    f();
    begin.elapsed() // ok: only the acquisition point is flagged
}

pub fn injected(now_ms: u64) -> u64 {
    now_ms // ok: time injected by the caller keeps results reproducible
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let begin = Instant::now(); // ok: test code is exempt
        assert!(begin.elapsed().as_secs() < 60);
    }
}
