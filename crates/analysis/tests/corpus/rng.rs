//! Fixture: `unseeded-rng`. OS-entropy sources are flagged everywhere,
//! including tests — an unseeded RNG makes a failure unreproducible.

use rand::{rngs::StdRng, Rng, SeedableRng};

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng(); //~ unseeded-rng
    rng.gen()
}

pub fn respawn() -> StdRng {
    StdRng::from_entropy() //~ unseeded-rng
}

pub fn handle() -> rand::rngs::ThreadRng {
    //~^ unseeded-rng
    rand::thread_rng() //~ unseeded-rng
}

pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed) // ok: derived from configuration
}

/// A local definition is not a use (this mirrors the rand shim itself).
pub fn from_entropy() -> u64 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unseeded_in_tests_is_still_flagged() {
        let mut rng = rand::thread_rng(); //~ unseeded-rng
        assert!(rng.gen::<u64>() >= 0);
    }
}
