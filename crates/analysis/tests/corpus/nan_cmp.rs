//! Fixture: `nan-unsafe-cmp`. Every NaN-unsafe comparator sink is flagged,
//! including inside `#[cfg(test)]` (a NaN-unsafe comparator weakens the test).

use std::cmp::Ordering;

pub fn sorted(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ nan-unsafe-cmp
    xs.sort_by(|a, b| a.partial_cmp(b).expect("comparable")); //~ nan-unsafe-cmp
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)); //~ nan-unsafe-cmp
    xs.sort_by(|a, b| {
        b.partial_cmp(a) //~ nan-unsafe-cmp
            .unwrap_or_else(|| Ordering::Equal)
    });
    xs.sort_by(|a, b| a.total_cmp(b)); // ok: total order
    xs
}

pub fn fine(a: f64, b: f64) -> Option<Ordering> {
    a.partial_cmp(&b) // ok: the None case is the caller's to handle
}

#[cfg(test)]
mod tests {
    #[test]
    fn flagged_in_tests_too() {
        let mut xs = vec![1.0_f64, 0.5];
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ nan-unsafe-cmp
    }
}
