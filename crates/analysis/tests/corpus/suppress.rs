//! Fixture: suppression mechanics. Valid directives silence their target line
//! (own-line form targets the next code line, trailing form its own line);
//! malformed directives and unused directives are findings in their own right.

use rand::Rng;

pub fn allowed() -> u64 {
    // grass: allow(unseeded-rng, "fixture: demonstrating a justified suppression")
    let mut rng = rand::thread_rng(); // suppressed by the directive above
    rng.gen()
}

pub fn allowed_trailing() -> u64 {
    let mut rng = rand::thread_rng(); // grass: allow(unseeded-rng, "fixture: trailing form")
    rng.gen()
}

pub fn broken() -> u64 {
    // grass: allow(unseeded-rng)
    //~^ malformed-suppression
    let mut rng = rand::thread_rng(); //~ unseeded-rng
    rng.gen()
}

pub fn unknown() -> u64 {
    // grass: allow(no-such-lint, "fixture: unknown lint id")
    //~^ malformed-suppression
    7
}

pub fn tidy() -> u64 {
    // grass: allow(nan-unsafe-cmp, "fixture: nothing here triggers it")
    //~^ unused-suppression
    7
}
