//! Fixture: `nested-lock`. Acquiring a second guard while one is live is
//! flagged; explicit `drop`, block scoping and statement temporaries are the
//! sanctioned shapes.

use parking_lot::{Mutex, RwLock};

pub struct Pair {
    left: Mutex<Vec<u64>>,
    right: Mutex<Vec<u64>>,
}

impl Pair {
    pub fn transfer(&self) {
        let mut from = self.left.lock();
        let mut to = self.right.lock(); //~ nested-lock
        to.append(&mut from);
    }

    pub fn drained(&self) -> usize {
        let mut from = self.left.lock();
        let taken: Vec<u64> = from.drain(..).collect();
        drop(from);
        let mut to = self.right.lock(); // ok: the first guard was dropped
        to.extend(taken);
        to.len()
    }

    pub fn staged(&self) -> usize {
        let taken: Vec<u64> = {
            let mut from = self.left.lock();
            from.drain(..).collect()
        };
        let mut to = self.right.lock(); // ok: the first guard died with its block
        to.extend(taken);
        to.len()
    }

    pub fn counts(&self) {
        self.left.lock().push(1);
        self.right.lock().push(2); // ok: the temporary died at the semicolon
    }
}

pub struct Table {
    map: RwLock<Vec<u64>>,
    log: Mutex<Vec<u64>>,
}

impl Table {
    pub fn audit(&self) {
        let snapshot = self.map.read();
        self.log.lock().extend(snapshot.iter().copied()); //~ nested-lock
    }

    pub fn fill(stream: &mut dyn std::io::Read, buf: &mut [u8]) -> usize {
        stream.read(buf).unwrap_or(0) // ok: `io::Read::read` takes arguments
    }
}
