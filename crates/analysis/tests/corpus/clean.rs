//! Fixture: deterministic, robust code. This file carries both the `digest`
//! and `library` classes and must produce zero findings.

use std::collections::BTreeMap;

pub fn tally(xs: &[(u64, f64)]) -> BTreeMap<u64, f64> {
    let mut out = BTreeMap::new();
    for (k, v) in xs {
        *out.entry(*k).or_insert(0.0) += *v;
    }
    out
}

pub fn rank(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs
}

pub fn head(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}
