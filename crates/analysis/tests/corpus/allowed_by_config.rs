//! Fixture: path-scoped `[[allow]]`. The corpus configuration allows
//! `wall-clock-in-core` for this file, so the finding below is suppressed
//! with the configured reason rather than reported.

use std::time::SystemTime;

pub fn stamp() -> u128 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}
