//! Fixture: `panicky-lib`. This file is marked `library` by the corpus
//! configuration; abort paths (`unwrap`/`expect`/`panic!`/indexing) outside
//! tests are flagged.

pub fn fetch(xs: &[u64], i: usize) -> u64 {
    xs[i] //~ panicky-lib
}

pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap() //~ panicky-lib
}

pub fn must(path: &str) -> String {
    std::fs::read_to_string(path).expect("readable") //~ panicky-lib
}

pub fn never(flag: bool) {
    if !flag {
        panic!("invariant violated"); //~ panicky-lib
    }
}

pub fn safe(xs: &[u64], i: usize) -> Option<u64> {
    xs.get(i).copied() // ok: non-aborting lookup
}

pub fn literal() -> [u64; 2] {
    [1, 2] // ok: an array literal, not an index expression
}

pub fn justified(xs: &[u64]) -> u64 {
    // grass: allow(panicky-lib, "fixture: slice is non-empty by construction above")
    xs[0] // suppressed: carries the invariant as its justification
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!("7".parse::<u64>().unwrap(), fetch(&[7], 0));
    }
}
