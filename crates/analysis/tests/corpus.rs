//! Corpus self-test: every fixture under `tests/corpus/` self-describes its
//! expected findings with trailing `//~ <lint-id>` markers (compiletest
//! style; `//~^` anchors to the previous line). The engine must produce
//! exactly that set — same lint, same file, same line — no more, no less.
//!
//! The corpus directory is excluded from workspace linting via the `skip`
//! list in the repo-root `analysis.toml`, and its files are not compiled by
//! cargo (only top-level `tests/*.rs` are test targets), so fixtures are free
//! to contain deliberately broken patterns.

use std::path::PathBuf;

use grass_analysis::{run_lints, AnalysisConfig, Workspace};

/// Classes and allows the fixtures are linted under. Mirrors the shape of the
/// repo-root `analysis.toml`, scoped to fixture file names.
const CORPUS_CONFIG: &str = r#"
digest = ["unordered.rs", "clean.rs"]
library = ["panicky.rs", "clean.rs"]

[[allow]]
lint = "wall-clock-in-core"
path = "allowed_by_config.rs"
reason = "fixture: path-scoped allow"
"#;

fn corpus() -> Workspace {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus");
    let config = match AnalysisConfig::parse(CORPUS_CONFIG) {
        Ok(config) => config,
        Err(e) => panic!("corpus config must parse: {e}"),
    };
    match Workspace::discover_with_config(&root, config) {
        Ok(workspace) => workspace,
        Err(e) => panic!("corpus must be discoverable: {e}"),
    }
}

/// Extract `(path, line, lint)` expectations from `//~` markers. A marker on
/// its own line with `^` (`//~^ lint-id`) anchors to the previous line.
fn expected_markers(workspace: &Workspace) -> Vec<(String, u32, String)> {
    let mut expected = Vec::new();
    for file in &workspace.files {
        for (index, text) in file.source.lines().enumerate() {
            let line = index as u32 + 1;
            for chunk in text.split("//~").skip(1) {
                let (anchor, rest) = match chunk.strip_prefix('^') {
                    Some(rest) => (line.saturating_sub(1), rest),
                    None => (line, chunk),
                };
                let lint: String = rest
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                    .collect();
                assert!(
                    !lint.is_empty(),
                    "{}:{}: marker with no lint id",
                    file.rel_path,
                    line
                );
                expected.push((file.rel_path.clone(), anchor, lint));
            }
        }
    }
    expected.sort();
    expected
}

#[test]
fn corpus_findings_match_markers_exactly() {
    let workspace = corpus();
    assert!(
        workspace.files.len() >= 8,
        "corpus went missing: found only {} files",
        workspace.files.len()
    );

    let expected = expected_markers(&workspace);
    let mut actual: Vec<(String, u32, String)> = run_lints(&workspace)
        .into_iter()
        .filter(|f| f.suppressed.is_none())
        .map(|f| (f.path.clone(), f.line, f.lint.to_string()))
        .collect();
    actual.sort();

    for miss in expected.iter().filter(|e| !actual.contains(e)) {
        eprintln!("expected but not reported: {miss:?}");
    }
    for extra in actual.iter().filter(|a| !expected.contains(a)) {
        eprintln!("reported but not expected: {extra:?}");
    }
    assert_eq!(actual, expected);
}

#[test]
fn corpus_exercises_every_lint() {
    let workspace = corpus();
    let expected = expected_markers(&workspace);
    for lint in [
        "nan-unsafe-cmp",
        "unordered-iter-on-digest-path",
        "wall-clock-in-core",
        "unseeded-rng",
        "panicky-lib",
        "nested-lock",
        "malformed-suppression",
        "unused-suppression",
    ] {
        assert!(
            expected.iter().any(|(_, _, id)| id == lint),
            "corpus has no fixture exercising `{lint}` — a pass could go dead unnoticed"
        );
    }
}

#[test]
fn suppressions_carry_their_reasons() {
    let workspace = corpus();
    let findings = run_lints(&workspace);

    // Line directive, own-line form.
    assert!(findings.iter().any(|f| f.path == "suppress.rs"
        && f.lint == "unseeded-rng"
        && f.suppressed.as_deref() == Some("fixture: demonstrating a justified suppression")));
    // Line directive, trailing form.
    assert!(findings.iter().any(|f| f.path == "suppress.rs"
        && f.lint == "unseeded-rng"
        && f.suppressed.as_deref() == Some("fixture: trailing form")));
    // Path-scoped allow from the configuration, reason prefixed with its origin.
    let config_suppressed = findings
        .iter()
        .filter(|f| f.path == "allowed_by_config.rs" && f.lint == "wall-clock-in-core")
        .collect::<Vec<_>>();
    assert_eq!(config_suppressed.len(), 3);
    for finding in config_suppressed {
        assert_eq!(
            finding.suppressed.as_deref(),
            Some("analysis.toml: fixture: path-scoped allow")
        );
    }
}

#[test]
fn clean_fixture_is_clean() {
    let workspace = corpus();
    let findings = run_lints(&workspace);
    assert!(
        !findings.iter().any(|f| f.path == "clean.rs"),
        "clean.rs must produce zero findings"
    );
}

#[test]
fn severity_override_downgrades_to_warning() {
    let source = "pub fn roll() -> u64 { rand::thread_rng().gen() }\n";
    let config = match AnalysisConfig::parse("[severity]\nunseeded-rng = \"warn\"\n") {
        Ok(config) => config,
        Err(e) => panic!("severity config must parse: {e}"),
    };
    let findings = grass_analysis::lint_source("demo/src/lib.rs", source, &config);
    assert_eq!(findings.len(), 1);
    let finding = &findings[0];
    assert_eq!(finding.lint, "unseeded-rng");
    assert_eq!(finding.severity, grass_analysis::Severity::Warn);
    assert!(!finding.is_blocking(), "warnings must not gate the build");
}

#[test]
fn severity_off_disables_a_lint() {
    let source = "pub fn roll() -> u64 { rand::thread_rng().gen() }\n";
    let config = match AnalysisConfig::parse("[severity]\nunseeded-rng = \"off\"\n") {
        Ok(config) => config,
        Err(e) => panic!("severity config must parse: {e}"),
    };
    let findings = grass_analysis::lint_source("demo/src/lib.rs", source, &config);
    assert!(findings.is_empty());
}
