//! Pins the `repro lint --format json` schema (`grass-analysis/1`)
//! byte-for-byte. Tooling consumes this output; widen the schema by bumping
//! the version string, never by silently reshaping version 1.

use grass_analysis::{lint_source, render_json, summarize, AnalysisConfig, Finding};

#[test]
fn one_finding_schema_is_pinned() {
    let source =
        "pub fn roll() -> u64 {\n    let mut rng = rand::thread_rng();\n    rng.gen()\n}\n";
    let findings = lint_source("demo/src/lib.rs", source, &AnalysisConfig::default());
    let summary = summarize(&findings, 1);
    let json = render_json(&findings, &summary);

    let expected = "{\n\
        \x20 \"schema\": \"grass-analysis/1\",\n\
        \x20 \"summary\": {\"files\": 1, \"errors\": 1, \"warnings\": 0, \"suppressed\": 0},\n\
        \x20 \"findings\": [\n\
        \x20   {\"lint\": \"unseeded-rng\", \"severity\": \"error\", \"path\": \"demo/src/lib.rs\", \
        \"line\": 2, \"column\": 25, \"message\": \"`thread_rng` draws OS entropy and destroys \
        reproducibility; seed a `StdRng` (`SeedableRng::seed_from_u64`) from a config or derived \
        seed instead\", \"suppressed\": false, \"reason\": null}\n\
        \x20 ]\n\
        }\n";
    assert_eq!(json, expected);
}

#[test]
fn clean_run_schema_is_pinned() {
    let findings: Vec<Finding> = Vec::new();
    let summary = summarize(&findings, 42);
    let json = render_json(&findings, &summary);
    let expected = "{\n\
        \x20 \"schema\": \"grass-analysis/1\",\n\
        \x20 \"summary\": {\"files\": 42, \"errors\": 0, \"warnings\": 0, \"suppressed\": 0},\n\
        \x20 \"findings\": []\n\
        }\n";
    assert_eq!(json, expected);
}

#[test]
fn suppressed_findings_keep_their_reason_in_json() {
    let source = "pub fn roll() -> u64 {\n    \
         let mut rng = rand::thread_rng(); // grass: allow(unseeded-rng, \"seeded upstream\")\n    \
         rng.gen()\n}\n";
    let findings = lint_source("demo/src/lib.rs", source, &AnalysisConfig::default());
    assert_eq!(findings.len(), 1);
    let summary = summarize(&findings, 1);
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.suppressed, 1);
    let json = render_json(&findings, &summary);
    assert!(json.contains("\"suppressed\": true"));
    assert!(json.contains("\"reason\": \"seeded upstream\""));
}
