//! Benchmark-only crate: see the `benches/` directory. The library target exists only
//! so the crate participates in the workspace; the benchmark harnesses in
//! `benches/figures.rs`, `benches/tables.rs` and `benches/microbench.rs` regenerate
//! the paper's figures and tables under Criterion timing.
