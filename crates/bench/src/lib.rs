//! Shared corpus builders for the `grass-bench` targets (see `benches/`).
//!
//! The trace-generation setup used to be duplicated across `tracebench` and
//! `sweepbench`; it lives here once so every bench measures the same corpus:
//! a Facebook-Spark error-bound workload recorded with the canonical bench
//! seeds (generator 7, simulator 11), plus the event log of a 20-job GS run
//! for the execution stream.

use grass_core::GsFactory;
use grass_sim::{run_simulation_traced, VecSink};
use grass_trace::{record_workload, replay_config, ExecutionMeta, ExecutionTrace, WorkloadTrace};
use grass_workload::{BoundSpec, Framework, RecordedWorkload, TraceProfile, WorkloadConfig};

/// The bench corpus profile: Facebook-Spark, error-bound jobs.
pub fn workload_config(jobs: usize) -> WorkloadConfig {
    WorkloadConfig::new(TraceProfile::facebook(Framework::Spark))
        .with_jobs(jobs)
        .with_bound(BoundSpec::paper_errors())
}

/// A recorded workload trace of `jobs` jobs with the canonical bench seeds.
pub fn recorded_trace(jobs: usize) -> WorkloadTrace {
    record_workload(&workload_config(jobs), 7, 11, "GS", 20, 4)
}

/// The same workload as a replayable [`RecordedWorkload`] job source.
pub fn recorded_source(jobs: usize) -> RecordedWorkload {
    recorded_trace(jobs).to_source()
}

/// The event log of a 20-job simulated GS run (the execution-stream corpus).
pub fn recorded_execution() -> ExecutionTrace {
    let small = recorded_trace(20);
    let sim = replay_config(&small);
    let mut sink = VecSink::new();
    run_simulation_traced(&sim, small.jobs.clone(), &GsFactory, &mut sink);
    ExecutionTrace::new(
        ExecutionMeta {
            sim_seed: sim.seed,
            policy: "GS".into(),
            machines: 20,
            slots_per_machine: 4,
        },
        sink.into_events(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use grass_workload::JobSource;

    #[test]
    fn corpus_builders_are_deterministic_and_consistent() {
        let trace = recorded_trace(6);
        assert_eq!(trace.jobs.len(), 6);
        assert_eq!(trace.jobs, recorded_trace(6).jobs);
        assert_eq!(recorded_source(6).jobs(0), trace.jobs);
        let execution = recorded_execution();
        assert!(!execution.events.is_empty());
        assert_eq!(execution.meta.policy, "GS");
    }
}
