//! Benchmarks of the `grass-experiments` sweep runner: serial versus threaded
//! wall-clock for the same cluster-size × policy grid over one recorded workload.
//! The grid cells are independent simulations, so the threaded runner should
//! approach `min(threads, cells)`-way speed-up; the assembled results are
//! bit-identical either way (asserted by `tests/sweep.rs`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use grass_bench::recorded_source;
use grass_experiments::{run_sweep, ExpConfig, PolicyKind, SweepConfig};

fn bench_grid() -> SweepConfig {
    let mut base = ExpConfig::tiny();
    base.jobs_per_run = 12;
    SweepConfig {
        machines: vec![8, 12, 16],
        policies: vec![
            PolicyKind::Late,
            PolicyKind::GsOnly,
            PolicyKind::RasOnly,
            PolicyKind::grass(),
        ],
        baseline: PolicyKind::Late,
        threads: 1,
        base,
    }
}

fn sweep_serial_vs_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweepbench");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    let source = recorded_source(12);
    println!(
        "# sweep corpus: 12 recorded jobs, 3 cluster sizes x 4 policies = {} cells",
        bench_grid().machines.len() * bench_grid().policies.len()
    );
    for threads in [1usize, 2, 4] {
        let mut config = bench_grid();
        config.threads = threads;
        group.bench_function(format!("sweep_12cells_threads_{threads}"), |b| {
            b.iter(|| criterion::black_box(run_sweep(&source, &config).cells.len()))
        });
    }
    group.finish();
}

criterion_group!(sweepbench, sweep_serial_vs_threaded);
criterion_main!(sweepbench);
