//! Criterion benchmarks for the paper's non-figure results: Table 1, the §2.3
//! potential-gains numbers, and the §6.2.2 exact-job speed-up.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use grass_experiments::{run_experiment, ExpConfig};

fn bench_config() -> ExpConfig {
    let mut cfg = ExpConfig::tiny();
    cfg.jobs_per_run = 8;
    cfg.seeds = vec![11];
    cfg
}

fn bench_table(c: &mut Criterion, id: &'static str) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("tables");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    group.bench_function(id, |b| {
        b.iter(|| {
            let report = run_experiment(id, &cfg).expect("known experiment id");
            criterion::black_box(report.tables.len())
        })
    });
    group.finish();
}

fn table1_traces(c: &mut Criterion) {
    bench_table(c, "table1");
}

fn potential_gains(c: &mut Criterion) {
    bench_table(c, "sec2-3");
}

fn exact_jobs(c: &mut Criterion) {
    bench_table(c, "exact");
}

criterion_group!(tables, table1_traces, potential_gains, exact_jobs);
criterion_main!(tables);
