//! Benchmarks of the `grass-trace` subsystem: per-format codec encode/decode
//! throughput for both record streams (text v1 vs compact binary v2 vs
//! block-compressed v3 on the same workload, eager collect vs `_streamed`
//! pull-iterator decode, plus the file-backed `_binary_file` buffered read vs
//! `_mmap` zero-copy scan), and replay-from-trace versus regenerate-from-seed
//! simulation speed (the cost a trace-driven experiment pays — or saves —
//! relative to re-rolling the workload every run).
//!
//! Filter one format via the shim's CLI filtering, e.g.
//! `cargo bench -p grass-bench --bench tracebench -- binary`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use grass_bench::{recorded_execution, recorded_trace, workload_config};
use grass_core::GsFactory;
use grass_sim::{run_simulation, SimConfig};
use grass_trace::{
    replay, replay_config, ExecutionEvents, ExecutionTrace, MappedWorkload, TraceFormat,
    WorkloadItems, WorkloadTrace,
};
use grass_workload::generate;

const FORMATS: [TraceFormat; 3] = TraceFormat::ALL;

/// Write `bytes` to a bench-scoped temp file for the file-backed read paths
/// (mmap vs buffered reads need a real file, not a `&[u8]`).
fn temp_trace(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("grass-tracebench-{tag}-{}", std::process::id()));
    std::fs::write(&path, bytes).expect("write bench trace");
    path
}

/// Minimum wall time of `f` over `reps` runs (same convention as the shim's
/// "min" column); used for the printed throughput summary table.
fn time_min(reps: usize, mut f: impl FnMut()) -> Duration {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("reps > 0")
}

/// Print the text-vs-binary throughput table the EXPERIMENTS.md entry pins:
/// MiB/s against each format's own encoded size, plus the speedup of binary
/// over text in wall time per operation on the same in-memory trace.
///
/// The summary is plain `println!` work, not a registered benchmark, so it
/// checks the CLI filter itself (through the shim's matcher, so the semantics
/// cannot diverge): `cargo bench ... -- binary` skips the ~10 s summary rather
/// than paying for output it was asked to filter out.
fn throughput_summary(c: &mut Criterion) {
    if !c.filter_matches("trace_codec/throughput_summary") {
        return;
    }
    let workload = recorded_trace(500);
    let execution = recorded_execution();
    let tasks: usize = workload.jobs.iter().map(|j| j.total_tasks()).sum();
    println!(
        "# corpus: workload 500 jobs / {tasks} tasks; execution {} events",
        execution.events.len()
    );
    println!(
        "# stream    format  size-KiB  encode-ms  enc-MiB/s  decode-ms  dec-MiB/s  \
         sdec-ms  sdec-MiB/s"
    );
    let mut op_times: Vec<(f64, f64)> = Vec::new();
    for (stream, encode, bytes) in [
        (
            "workload",
            Box::new(|f: TraceFormat| workload.to_bytes_as(f))
                as Box<dyn Fn(TraceFormat) -> Vec<u8>>,
            FORMATS.map(|f| workload.to_bytes_as(f)),
        ),
        (
            "execution",
            Box::new(|f: TraceFormat| execution.to_bytes_as(f)),
            FORMATS.map(|f| execution.to_bytes_as(f)),
        ),
    ] {
        for (format, encoded) in FORMATS.iter().zip(bytes.iter()) {
            let mib = encoded.len() as f64 / (1024.0 * 1024.0);
            let enc = time_min(15, || {
                criterion::black_box(encode(*format).len());
            })
            .as_secs_f64();
            let dec = time_min(15, || match stream {
                "workload" => {
                    criterion::black_box(WorkloadTrace::from_bytes(encoded).unwrap().jobs.len());
                }
                _ => {
                    criterion::black_box(ExecutionTrace::from_bytes(encoded).unwrap().events.len());
                }
            })
            .as_secs_f64();
            // Streamed decode: pull every record through the frame iterator
            // without collecting (the constant-memory path).
            let sdec = time_min(15, || match stream {
                "workload" => {
                    let items = WorkloadItems::open(&encoded[..]).unwrap();
                    criterion::black_box(
                        items.map(|job| job.unwrap().total_tasks()).sum::<usize>(),
                    );
                }
                _ => {
                    let events = ExecutionEvents::open(&encoded[..]).unwrap();
                    criterion::black_box(events.fold(0usize, |n, e| {
                        e.unwrap();
                        n + 1
                    }));
                }
            })
            .as_secs_f64();
            op_times.push((enc, dec));
            println!(
                "# {stream:<9} {format:<10} {:>8.1}  {:>9.2}  {:>9.0}  {:>9.2}  {:>9.0}  {:>7.2}  {:>10.0}",
                encoded.len() as f64 / 1024.0,
                enc * 1e3,
                mib / enc,
                dec * 1e3,
                mib / dec,
                sdec * 1e3,
                mib / sdec,
            );
        }
        // Size ratio of the compressed format against v2 on this corpus.
        let (bin_len, comp_len) = (bytes[1].len() as f64, bytes[2].len() as f64);
        println!(
            "# {stream} size ratio: binary/compressed = {:.2}x ({:.1} KiB -> {:.1} KiB)",
            bin_len / comp_len,
            bin_len / 1024.0,
            comp_len / 1024.0,
        );
    }

    // File-backed workload reads: mmap zero-copy scan vs the buffered streamed
    // decode of the same binary file — the speedup EXPERIMENTS.md pins.
    let binary = workload.to_bytes_as(TraceFormat::Binary);
    let mib = binary.len() as f64 / (1024.0 * 1024.0);
    let path = temp_trace("summary", &binary);
    let buffered = time_min(15, || {
        let items = WorkloadItems::open_path(&path).unwrap();
        criterion::black_box(items.map(|job| job.unwrap().total_tasks()).sum::<usize>());
    })
    .as_secs_f64();
    let mapped = time_min(15, || {
        let mapped = MappedWorkload::open(&path).unwrap();
        criterion::black_box(
            mapped
                .jobs()
                .map(|job| job.unwrap().task_count())
                .sum::<usize>(),
        );
    })
    .as_secs_f64();
    println!(
        "# workload file scan (binary): buffered {:.2} ms ({:.0} MiB/s), mmap {:.2} ms \
         ({:.0} MiB/s) -> mmap speedup {:.1}x",
        buffered * 1e3,
        mib / buffered,
        mapped * 1e3,
        mib / mapped,
        buffered / mapped,
    );
    let _ = std::fs::remove_file(&path);

    for (stream, rows) in ["workload", "execution"].iter().zip(op_times.chunks(3)) {
        let (text_enc, text_dec) = rows[0];
        for (format, (enc, dec)) in FORMATS.iter().zip(rows.iter()).skip(1) {
            println!(
                "# {stream} speedup ({format} over text, same trace): encode {:.1}x, decode {:.1}x",
                text_enc / enc,
                text_dec / dec,
            );
        }
    }
}

/// Whether the CLI filter selects any id of the form `prefix_{text|binary}` or
/// its `_streamed` variant.
fn any_format_selected(c: &Criterion, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|prefix| {
        FORMATS.iter().any(|format| {
            c.filter_matches(&format!("{prefix}_{format}"))
                || c.filter_matches(&format!("{prefix}_{format}_streamed"))
        })
    })
}

fn codec_throughput(c: &mut Criterion) {
    // Build each corpus only when the filter selects at least one of its
    // benchmarks — the 500-job recording and the 20-job simulation dominate a
    // filtered run's wall time otherwise.
    let run_workload = any_format_selected(
        c,
        &[
            "trace_codec/encode_workload_500_jobs",
            "trace_codec/decode_workload_500_jobs",
        ],
    ) || c.filter_matches("trace_codec/decode_workload_500_jobs_binary_file")
        || c.filter_matches("trace_codec/decode_workload_500_jobs_mmap");
    let run_execution = any_format_selected(
        c,
        &[
            "trace_codec/encode_execution_20_jobs",
            "trace_codec/decode_execution_20_jobs",
        ],
    );
    if !run_workload && !run_execution {
        return;
    }
    let mut group = c.benchmark_group("trace_codec");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    // Workload stream: 500 heavy-tailed jobs (tens of thousands of tasks). The
    // `_streamed` ids pull jobs through the frame iterator without collecting,
    // isolating the cost of the streaming layer from Vec assembly.
    if run_workload {
        let trace = recorded_trace(500);
        for format in FORMATS {
            let bytes = trace.to_bytes_as(format);
            group.throughput(Throughput::Bytes(bytes.len() as u64));
            group.bench_function(format!("encode_workload_500_jobs_{format}"), |b| {
                b.iter(|| criterion::black_box(trace.to_bytes_as(format).len()))
            });
            group.bench_function(format!("decode_workload_500_jobs_{format}"), |b| {
                b.iter(|| {
                    criterion::black_box(WorkloadTrace::from_bytes(&bytes).unwrap().jobs.len())
                })
            });
            group.bench_function(format!("decode_workload_500_jobs_{format}_streamed"), |b| {
                b.iter(|| {
                    let items = WorkloadItems::open(&bytes[..]).unwrap();
                    criterion::black_box(items.map(|job| job.unwrap().total_tasks()).sum::<usize>())
                })
            });
        }
        // File-backed binary reads: zero-copy mmap scan vs the buffered
        // streamed decode of the same file — the tentpole comparison.
        let binary = trace.to_bytes_as(TraceFormat::Binary);
        let path = temp_trace("codec", &binary);
        group.throughput(Throughput::Bytes(binary.len() as u64));
        group.bench_function("decode_workload_500_jobs_binary_file", |b| {
            b.iter(|| {
                let items = WorkloadItems::open_path(&path).unwrap();
                criterion::black_box(items.map(|job| job.unwrap().total_tasks()).sum::<usize>())
            })
        });
        group.bench_function("decode_workload_500_jobs_mmap", |b| {
            b.iter(|| {
                let mapped = MappedWorkload::open(&path).unwrap();
                criterion::black_box(
                    mapped
                        .jobs()
                        .map(|job| job.unwrap().task_count())
                        .sum::<usize>(),
                )
            })
        });
        let _ = std::fs::remove_file(&path);
    }

    // Execution stream: the event log of a 20-job simulated run.
    if run_execution {
        let exec = recorded_execution();
        for format in FORMATS {
            let bytes = exec.to_bytes_as(format);
            group.throughput(Throughput::Bytes(bytes.len() as u64));
            group.bench_function(format!("encode_execution_20_jobs_{format}"), |b| {
                b.iter(|| criterion::black_box(exec.to_bytes_as(format).len()))
            });
            group.bench_function(format!("decode_execution_20_jobs_{format}"), |b| {
                b.iter(|| {
                    criterion::black_box(ExecutionTrace::from_bytes(&bytes).unwrap().events.len())
                })
            });
            group.bench_function(format!("decode_execution_20_jobs_{format}_streamed"), |b| {
                b.iter(|| {
                    let events = ExecutionEvents::open(&bytes[..]).unwrap();
                    criterion::black_box(events.fold(0usize, |n, e| {
                        e.unwrap();
                        n + 1
                    }))
                })
            });
        }
    }
    group.finish();
}

fn replay_vs_regenerate(c: &mut Criterion) {
    if !c.filter_matches("trace_replay/regenerate_and_run_20_jobs")
        && !any_format_selected(c, &["trace_replay/decode_and_run_20_jobs"])
    {
        return;
    }
    let mut group = c.benchmark_group("trace_replay");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let config = workload_config(20);
    let trace = recorded_trace(20);
    let sim: SimConfig = replay_config(&trace);

    // Baseline: the status quo ante — sample the workload fresh, then simulate.
    group.bench_function("regenerate_and_run_20_jobs", |b| {
        b.iter(|| {
            let jobs = generate(&config, 7);
            criterion::black_box(run_simulation(&sim, jobs, &GsFactory).total_copies)
        })
    });
    // Replay: decode the recorded workload from bytes, then simulate.
    for format in FORMATS {
        let bytes = trace.to_bytes_as(format);
        group.bench_function(format!("decode_and_run_20_jobs_{format}"), |b| {
            b.iter(|| {
                let decoded = WorkloadTrace::from_bytes(&bytes).unwrap();
                criterion::black_box(replay(&decoded, &sim, &GsFactory).total_copies)
            })
        });
    }
    group.finish();
}

criterion_group!(
    tracebench,
    throughput_summary,
    codec_throughput,
    replay_vs_regenerate
);
criterion_main!(tracebench);
