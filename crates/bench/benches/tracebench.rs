//! Benchmarks of the `grass-trace` subsystem: codec encode/decode throughput for
//! both record streams, and replay-from-trace versus regenerate-from-seed
//! simulation speed (the cost a trace-driven experiment pays — or saves — relative
//! to re-rolling the workload every run).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use grass_core::GsFactory;
use grass_sim::{run_simulation, run_simulation_traced, SimConfig, VecSink};
use grass_trace::{
    record_workload, replay, replay_config, ExecutionMeta, ExecutionTrace, WorkloadTrace,
};
use grass_workload::{generate, BoundSpec, Framework, TraceProfile, WorkloadConfig};

fn workload_config(jobs: usize) -> WorkloadConfig {
    WorkloadConfig::new(TraceProfile::facebook(Framework::Spark))
        .with_jobs(jobs)
        .with_bound(BoundSpec::paper_errors())
}

fn recorded_trace(jobs: usize) -> WorkloadTrace {
    record_workload(&workload_config(jobs), 7, 11, "GS", 20, 4)
}

fn codec_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_codec");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    // Workload stream: 500 heavy-tailed jobs (tens of thousands of tasks).
    let trace = recorded_trace(500);
    let bytes = trace.to_bytes();
    let tasks: usize = trace.jobs.iter().map(|j| j.total_tasks()).sum();
    println!(
        "# workload corpus: 500 jobs, {tasks} tasks, {:.1} KiB encoded",
        bytes.len() as f64 / 1024.0
    );
    group.bench_function("encode_workload_500_jobs", |b| {
        b.iter(|| criterion::black_box(trace.to_bytes().len()))
    });
    group.bench_function("decode_workload_500_jobs", |b| {
        b.iter(|| criterion::black_box(WorkloadTrace::from_bytes(&bytes).unwrap().jobs.len()))
    });

    // Execution stream: the event log of a 20-job simulated run.
    let small = recorded_trace(20);
    let sim = replay_config(&small);
    let mut sink = VecSink::new();
    run_simulation_traced(&sim, small.jobs.clone(), &GsFactory, &mut sink);
    let exec = ExecutionTrace::new(
        ExecutionMeta {
            sim_seed: sim.seed,
            policy: "GS".into(),
            machines: 20,
            slots_per_machine: 4,
        },
        sink.into_events(),
    );
    let exec_bytes = exec.to_bytes();
    println!(
        "# execution corpus: {} events, {:.1} KiB encoded",
        exec.events.len(),
        exec_bytes.len() as f64 / 1024.0
    );
    group.bench_function("encode_execution_20_jobs", |b| {
        b.iter(|| criterion::black_box(exec.to_bytes().len()))
    });
    group.bench_function("decode_execution_20_jobs", |b| {
        b.iter(|| {
            criterion::black_box(
                ExecutionTrace::from_bytes(&exec_bytes)
                    .unwrap()
                    .events
                    .len(),
            )
        })
    });
    group.finish();
}

fn replay_vs_regenerate(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_replay");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let config = workload_config(20);
    let trace = recorded_trace(20);
    let bytes = trace.to_bytes();
    let sim: SimConfig = replay_config(&trace);

    // Baseline: the status quo ante — sample the workload fresh, then simulate.
    group.bench_function("regenerate_and_run_20_jobs", |b| {
        b.iter(|| {
            let jobs = generate(&config, 7);
            criterion::black_box(run_simulation(&sim, jobs, &GsFactory).total_copies)
        })
    });
    // Replay: decode the recorded workload from bytes, then simulate.
    group.bench_function("decode_and_run_20_jobs", |b| {
        b.iter(|| {
            let decoded = WorkloadTrace::from_bytes(&bytes).unwrap();
            criterion::black_box(replay(&decoded, &sim, &GsFactory).total_copies)
        })
    });
    group.finish();
}

criterion_group!(tracebench, codec_throughput, replay_vs_regenerate);
criterion_main!(tracebench);
