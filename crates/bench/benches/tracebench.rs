//! Benchmarks of the `grass-trace` subsystem: per-format codec encode/decode
//! throughput for both record streams (text v1 vs compact binary v2 on the same
//! workload, eager collect vs `_streamed` pull-iterator decode), and
//! replay-from-trace versus regenerate-from-seed simulation speed (the cost a
//! trace-driven experiment pays — or saves — relative to re-rolling the
//! workload every run).
//!
//! Filter one format via the shim's CLI filtering, e.g.
//! `cargo bench -p grass-bench --bench tracebench -- binary`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use grass_bench::{recorded_execution, recorded_trace, workload_config};
use grass_core::GsFactory;
use grass_sim::{run_simulation, SimConfig};
use grass_trace::{
    replay, replay_config, ExecutionEvents, ExecutionTrace, TraceFormat, WorkloadItems,
    WorkloadTrace,
};
use grass_workload::generate;

const FORMATS: [TraceFormat; 2] = [TraceFormat::Text, TraceFormat::Binary];

/// Minimum wall time of `f` over `reps` runs (same convention as the shim's
/// "min" column); used for the printed throughput summary table.
fn time_min(reps: usize, mut f: impl FnMut()) -> Duration {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("reps > 0")
}

/// Print the text-vs-binary throughput table the EXPERIMENTS.md entry pins:
/// MiB/s against each format's own encoded size, plus the speedup of binary
/// over text in wall time per operation on the same in-memory trace.
///
/// The summary is plain `println!` work, not a registered benchmark, so it
/// checks the CLI filter itself (through the shim's matcher, so the semantics
/// cannot diverge): `cargo bench ... -- binary` skips the ~10 s summary rather
/// than paying for output it was asked to filter out.
fn throughput_summary(c: &mut Criterion) {
    if !c.filter_matches("trace_codec/throughput_summary") {
        return;
    }
    let workload = recorded_trace(500);
    let execution = recorded_execution();
    let tasks: usize = workload.jobs.iter().map(|j| j.total_tasks()).sum();
    println!(
        "# corpus: workload 500 jobs / {tasks} tasks; execution {} events",
        execution.events.len()
    );
    println!(
        "# stream    format  size-KiB  encode-ms  enc-MiB/s  decode-ms  dec-MiB/s  \
         sdec-ms  sdec-MiB/s"
    );
    let mut op_times: Vec<(f64, f64)> = Vec::new();
    for (stream, encode, bytes) in [
        (
            "workload",
            Box::new(|f: TraceFormat| workload.to_bytes_as(f))
                as Box<dyn Fn(TraceFormat) -> Vec<u8>>,
            FORMATS.map(|f| workload.to_bytes_as(f)),
        ),
        (
            "execution",
            Box::new(|f: TraceFormat| execution.to_bytes_as(f)),
            FORMATS.map(|f| execution.to_bytes_as(f)),
        ),
    ] {
        for (format, encoded) in FORMATS.iter().zip(bytes.iter()) {
            let mib = encoded.len() as f64 / (1024.0 * 1024.0);
            let enc = time_min(15, || {
                criterion::black_box(encode(*format).len());
            })
            .as_secs_f64();
            let dec = time_min(15, || match stream {
                "workload" => {
                    criterion::black_box(WorkloadTrace::from_bytes(encoded).unwrap().jobs.len());
                }
                _ => {
                    criterion::black_box(ExecutionTrace::from_bytes(encoded).unwrap().events.len());
                }
            })
            .as_secs_f64();
            // Streamed decode: pull every record through the frame iterator
            // without collecting (the constant-memory path).
            let sdec = time_min(15, || match stream {
                "workload" => {
                    let items = WorkloadItems::open(&encoded[..]).unwrap();
                    criterion::black_box(
                        items.map(|job| job.unwrap().total_tasks()).sum::<usize>(),
                    );
                }
                _ => {
                    let events = ExecutionEvents::open(&encoded[..]).unwrap();
                    criterion::black_box(events.fold(0usize, |n, e| {
                        e.unwrap();
                        n + 1
                    }));
                }
            })
            .as_secs_f64();
            op_times.push((enc, dec));
            println!(
                "# {stream:<9} {format:<7} {:>8.1}  {:>9.2}  {:>9.0}  {:>9.2}  {:>9.0}  {:>7.2}  {:>10.0}",
                encoded.len() as f64 / 1024.0,
                enc * 1e3,
                mib / enc,
                dec * 1e3,
                mib / dec,
                sdec * 1e3,
                mib / sdec,
            );
        }
    }
    for (stream, pair) in ["workload", "execution"].iter().zip(op_times.chunks(2)) {
        let [(text_enc, text_dec), (bin_enc, bin_dec)] = pair else {
            unreachable!()
        };
        println!(
            "# {stream} speedup (binary over text, same trace): encode {:.1}x, decode {:.1}x",
            text_enc / bin_enc,
            text_dec / bin_dec,
        );
    }
}

/// Whether the CLI filter selects any id of the form `prefix_{text|binary}` or
/// its `_streamed` variant.
fn any_format_selected(c: &Criterion, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|prefix| {
        FORMATS.iter().any(|format| {
            c.filter_matches(&format!("{prefix}_{format}"))
                || c.filter_matches(&format!("{prefix}_{format}_streamed"))
        })
    })
}

fn codec_throughput(c: &mut Criterion) {
    // Build each corpus only when the filter selects at least one of its
    // benchmarks — the 500-job recording and the 20-job simulation dominate a
    // filtered run's wall time otherwise.
    let run_workload = any_format_selected(
        c,
        &[
            "trace_codec/encode_workload_500_jobs",
            "trace_codec/decode_workload_500_jobs",
        ],
    );
    let run_execution = any_format_selected(
        c,
        &[
            "trace_codec/encode_execution_20_jobs",
            "trace_codec/decode_execution_20_jobs",
        ],
    );
    if !run_workload && !run_execution {
        return;
    }
    let mut group = c.benchmark_group("trace_codec");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    // Workload stream: 500 heavy-tailed jobs (tens of thousands of tasks). The
    // `_streamed` ids pull jobs through the frame iterator without collecting,
    // isolating the cost of the streaming layer from Vec assembly.
    if run_workload {
        let trace = recorded_trace(500);
        for format in FORMATS {
            let bytes = trace.to_bytes_as(format);
            group.bench_function(format!("encode_workload_500_jobs_{format}"), |b| {
                b.iter(|| criterion::black_box(trace.to_bytes_as(format).len()))
            });
            group.bench_function(format!("decode_workload_500_jobs_{format}"), |b| {
                b.iter(|| {
                    criterion::black_box(WorkloadTrace::from_bytes(&bytes).unwrap().jobs.len())
                })
            });
            group.bench_function(format!("decode_workload_500_jobs_{format}_streamed"), |b| {
                b.iter(|| {
                    let items = WorkloadItems::open(&bytes[..]).unwrap();
                    criterion::black_box(items.map(|job| job.unwrap().total_tasks()).sum::<usize>())
                })
            });
        }
    }

    // Execution stream: the event log of a 20-job simulated run.
    if run_execution {
        let exec = recorded_execution();
        for format in FORMATS {
            let bytes = exec.to_bytes_as(format);
            group.bench_function(format!("encode_execution_20_jobs_{format}"), |b| {
                b.iter(|| criterion::black_box(exec.to_bytes_as(format).len()))
            });
            group.bench_function(format!("decode_execution_20_jobs_{format}"), |b| {
                b.iter(|| {
                    criterion::black_box(ExecutionTrace::from_bytes(&bytes).unwrap().events.len())
                })
            });
            group.bench_function(format!("decode_execution_20_jobs_{format}_streamed"), |b| {
                b.iter(|| {
                    let events = ExecutionEvents::open(&bytes[..]).unwrap();
                    criterion::black_box(events.fold(0usize, |n, e| {
                        e.unwrap();
                        n + 1
                    }))
                })
            });
        }
    }
    group.finish();
}

fn replay_vs_regenerate(c: &mut Criterion) {
    if !c.filter_matches("trace_replay/regenerate_and_run_20_jobs")
        && !any_format_selected(c, &["trace_replay/decode_and_run_20_jobs"])
    {
        return;
    }
    let mut group = c.benchmark_group("trace_replay");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let config = workload_config(20);
    let trace = recorded_trace(20);
    let sim: SimConfig = replay_config(&trace);

    // Baseline: the status quo ante — sample the workload fresh, then simulate.
    group.bench_function("regenerate_and_run_20_jobs", |b| {
        b.iter(|| {
            let jobs = generate(&config, 7);
            criterion::black_box(run_simulation(&sim, jobs, &GsFactory).total_copies)
        })
    });
    // Replay: decode the recorded workload from bytes, then simulate.
    for format in FORMATS {
        let bytes = trace.to_bytes_as(format);
        group.bench_function(format!("decode_and_run_20_jobs_{format}"), |b| {
            b.iter(|| {
                let decoded = WorkloadTrace::from_bytes(&bytes).unwrap();
                criterion::black_box(replay(&decoded, &sim, &GsFactory).total_copies)
            })
        });
    }
    group.finish();
}

criterion_group!(
    tracebench,
    throughput_summary,
    codec_throughput,
    replay_vs_regenerate
);
criterion_main!(tracebench);
