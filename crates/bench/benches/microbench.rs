//! Micro-benchmarks of the building blocks: policy decision latency, simulator event
//! throughput, workload generation and the Hill estimator. These are the overheads a
//! production scheduler would care about — the paper's schedulers make a decision
//! every time a slot frees, so `choose()` must be cheap.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use grass_core::grass::reference::ReferenceSampleStore;
use grass_core::grass::{BoundKind, QueryContext, Sample};
use grass_core::{
    Bound, FactorSet, GrassConfig, GrassFactory, GsFactory, JobId, JobSpec, JobView, PolicyFactory,
    RasFactory, SampleStore, SizeBucket, SpeculationMode, StageId, TaskId, TaskView,
};
use grass_model::tail_index;
use grass_policies::{LateFactory, MantriFactory};
use grass_sim::{run_simulation, ClusterConfig, SimConfig};
use grass_workload::{generate, BoundSpec, Framework, TraceProfile, WorkloadConfig};

/// Build a job view with `n` tasks, half of them running, for decision benchmarks.
fn synthetic_view(n: u32) -> (Vec<TaskView>, JobSpec) {
    let tasks: Vec<TaskView> = (0..n)
        .map(|i| {
            let running = i % 2 == 0;
            TaskView {
                id: TaskId(i),
                stage: StageId::INPUT,
                eligible: true,
                running_copies: u32::from(running),
                elapsed: if running { 5.0 } else { 0.0 },
                progress: if running { 0.5 } else { 0.0 },
                progress_rate: if running { 0.05 } else { 0.0 },
                trem: if running {
                    4.0 + (i % 7) as f64
                } else {
                    f64::INFINITY
                },
                tnew: 2.0 + (i % 5) as f64,
                true_remaining: 4.0 + (i % 7) as f64,
                true_new_hint: 2.0 + (i % 5) as f64,
                work: 2.0 + (i % 5) as f64,
            }
        })
        .collect();
    let spec = JobSpec::single_stage(1, 0.0, Bound::Deadline(100.0), vec![2.0; n as usize]);
    (tasks, spec)
}

fn view_of(tasks: &[TaskView]) -> JobView<'_> {
    JobView {
        job: JobId(1),
        now: 10.0,
        arrival: 0.0,
        bound: Bound::Deadline(100.0),
        input_deadline: None,
        total_input_tasks: tasks.len() + 10,
        completed_input_tasks: 10,
        total_tasks: tasks.len() + 10,
        completed_tasks: 10,
        tasks,
        wave_width: 20,
        cluster_utilization: 0.8,
        estimation_accuracy: 0.75,
    }
}

fn policy_decision_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_choose_500_tasks");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let (tasks, spec) = synthetic_view(500);
    let factories: Vec<(&str, Box<dyn PolicyFactory>)> = vec![
        ("GS", Box::new(GsFactory)),
        ("RAS", Box::new(RasFactory)),
        ("GRASS", Box::new(GrassFactory::new(1))),
        ("LATE", Box::new(LateFactory::default())),
        ("Mantri", Box::new(MantriFactory::default())),
    ];
    for (name, factory) in &factories {
        group.bench_function(*name, |b| {
            b.iter_batched(
                || factory.create(&spec),
                |mut policy| {
                    let view = view_of(&tasks);
                    criterion::black_box(policy.choose(&view))
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Deterministic synthetic sample stream spread evenly over all four
/// (mode, kind) partitions — the worst case for the partitioned layout, since
/// only a quarter of the records land in the queried partition.
fn synthetic_sample(i: usize) -> Sample {
    let mode = if i.is_multiple_of(2) {
        SpeculationMode::Gs
    } else {
        SpeculationMode::Ras
    };
    let kind = if (i / 2).is_multiple_of(2) {
        BoundKind::Deadline
    } else {
        BoundKind::Error
    };
    Sample {
        mode,
        kind,
        size_bucket: SizeBucket((i % 8) as u8),
        bound_value: 10.0 + (i % 31) as f64,
        performance: 5.0 + (i % 17) as f64,
        utilization: 0.05 + ((i % 10) as f64) / 10.0,
        accuracy: 0.5 + ((i % 5) as f64) / 10.0,
    }
}

/// Fixed-relevance stream: exactly `n / stride` samples land in the queried
/// (GS, deadline) partition, the rest cycle over the other three partitions —
/// the fleet-scale shape where one bound kind or mode dominates the learned
/// history and predictions for the minority partition should not pay for it.
fn fixed_relevant_sample(i: usize, stride: usize) -> Sample {
    let mut s = synthetic_sample(i);
    if i.is_multiple_of(stride) {
        s.mode = SpeculationMode::Gs;
        s.kind = BoundKind::Deadline;
    } else {
        match i % 3 {
            0 => {
                s.mode = SpeculationMode::Ras;
                s.kind = BoundKind::Deadline;
            }
            1 => {
                s.mode = SpeculationMode::Gs;
                s.kind = BoundKind::Error;
            }
            _ => {
                s.mode = SpeculationMode::Ras;
                s.kind = BoundKind::Error;
            }
        }
    }
    s
}

fn store_query() -> QueryContext {
    QueryContext {
        kind: BoundKind::Deadline,
        size_bucket: SizeBucket(3),
        bound_value: 25.0,
        utilization: 0.55,
        accuracy: 0.72,
    }
}

/// `predict_rate` latency at growing store populations: the frozen
/// pre-partitioning store (whole-store filtered scan), the exact partitioned
/// store (single-partition scan) and the sketched store (O(bins) aggregates).
fn sample_store_prediction(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_store_predict_rate");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let ctx = store_query();
    for n in [1_000usize, 10_000, 50_000] {
        let reference = ReferenceSampleStore::with_capacity(n);
        let exact = SampleStore::with_capacity(n);
        let sketched = SampleStore::sketched();
        for i in 0..n {
            let sample = synthetic_sample(i);
            reference.record(sample.clone());
            exact.record(sample.clone());
            sketched.record(sample);
        }
        let label = format!("{}k", n / 1_000);
        group.bench_function(format!("reference/{label}"), |b| {
            b.iter(|| {
                criterion::black_box(reference.predict_rate(
                    SpeculationMode::Gs,
                    &ctx,
                    FactorSet::all(),
                    1,
                ))
            })
        });
        group.bench_function(format!("exact/{label}"), |b| {
            b.iter(|| {
                criterion::black_box(exact.predict_rate(
                    SpeculationMode::Gs,
                    &ctx,
                    FactorSet::all(),
                    1,
                ))
            })
        });
        group.bench_function(format!("sketched/{label}"), |b| {
            b.iter(|| {
                criterion::black_box(sketched.predict_rate(
                    SpeculationMode::Gs,
                    &ctx,
                    FactorSet::all(),
                    1,
                ))
            })
        });

        // O(relevant) series: the queried partition holds a fixed 500 samples
        // while the store grows around it. The whole-store scan pays for every
        // stored sample; the partition scan pays only for the relevant ones.
        let stride = n / 500;
        let reference = ReferenceSampleStore::with_capacity(n);
        let exact = SampleStore::with_capacity(n);
        for i in 0..n {
            let sample = fixed_relevant_sample(i, stride);
            reference.record(sample.clone());
            exact.record(sample);
        }
        group.bench_function(format!("reference/500-of-{label}"), |b| {
            b.iter(|| {
                criterion::black_box(reference.predict_rate(
                    SpeculationMode::Gs,
                    &ctx,
                    FactorSet::all(),
                    1,
                ))
            })
        });
        group.bench_function(format!("exact/500-of-{label}"), |b| {
            b.iter(|| {
                criterion::black_box(exact.predict_rate(
                    SpeculationMode::Gs,
                    &ctx,
                    FactorSet::all(),
                    1,
                ))
            })
        });
    }
    group.finish();
}

/// End-to-end GRASS `choose()` with a warmed store: the store scan dominates
/// once the store is large, so this shows how much of the predict_rate win
/// survives in the full decision path.
fn grass_choose_warmed(c: &mut Criterion) {
    let mut group = c.benchmark_group("grass_choose_warmed_500_tasks");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let (tasks, spec) = synthetic_view(500);
    for n in [1_000usize, 10_000, 50_000] {
        let exact = Arc::new(SampleStore::with_capacity(n));
        let sketched = Arc::new(SampleStore::sketched());
        for i in 0..n {
            let sample = synthetic_sample(i);
            exact.record(sample.clone());
            sketched.record(sample);
        }
        let label = format!("{}k", n / 1_000);
        for (layer, store) in [("exact", exact), ("sketched", sketched)] {
            let factory =
                GrassFactory::with_store(GrassConfig::paper_default(), Arc::clone(&store), 1);
            group.bench_function(format!("{layer}/{label}"), |b| {
                b.iter_batched(
                    || factory.create(&spec),
                    |mut policy| {
                        let view = view_of(&tasks);
                        criterion::black_box(policy.choose(&view))
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

fn simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    let workload = WorkloadConfig::new(TraceProfile::facebook(Framework::Spark))
        .with_jobs(20)
        .with_bound(BoundSpec::paper_errors());
    let jobs = generate(&workload, 7);
    let sim = SimConfig {
        cluster: ClusterConfig {
            machines: 20,
            slots_per_machine: 4,
            ..ClusterConfig::ec2_scaled()
        },
        ..SimConfig::default()
    };
    group.bench_function("20_error_bound_jobs_gs", |b| {
        b.iter(|| {
            let result = run_simulation(&sim, jobs.clone(), &GsFactory);
            criterion::black_box(result.total_copies)
        })
    });
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let cfg = WorkloadConfig::new(TraceProfile::bing(Framework::Hadoop)).with_jobs(500);
    group.bench_function("generate_500_jobs", |b| {
        b.iter(|| criterion::black_box(generate(&cfg, 3).len()))
    });
    group.finish();
}

fn hill_estimation(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut group = c.benchmark_group("hill");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(1);
    let samples: Vec<f64> = (0..50_000)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            u.powf(-1.0 / 1.259)
        })
        .collect();
    group.bench_function("tail_index_50k_samples", |b| {
        b.iter(|| criterion::black_box(tail_index(&samples)))
    });
    group.finish();
}

criterion_group!(
    micro,
    policy_decision_latency,
    sample_store_prediction,
    grass_choose_warmed,
    simulator_throughput,
    workload_generation,
    hill_estimation
);
criterion_main!(micro);
