//! Micro-benchmarks of the building blocks: policy decision latency, simulator event
//! throughput, workload generation and the Hill estimator. These are the overheads a
//! production scheduler would care about — the paper's schedulers make a decision
//! every time a slot frees, so `choose()` must be cheap.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use grass_core::{
    Bound, GrassFactory, GsFactory, JobId, JobSpec, JobView, PolicyFactory, RasFactory, StageId,
    TaskId, TaskView,
};
use grass_model::tail_index;
use grass_policies::{LateFactory, MantriFactory};
use grass_sim::{run_simulation, ClusterConfig, SimConfig};
use grass_workload::{generate, BoundSpec, Framework, TraceProfile, WorkloadConfig};

/// Build a job view with `n` tasks, half of them running, for decision benchmarks.
fn synthetic_view(n: u32) -> (Vec<TaskView>, JobSpec) {
    let tasks: Vec<TaskView> = (0..n)
        .map(|i| {
            let running = i % 2 == 0;
            TaskView {
                id: TaskId(i),
                stage: StageId::INPUT,
                eligible: true,
                running_copies: u32::from(running),
                elapsed: if running { 5.0 } else { 0.0 },
                progress: if running { 0.5 } else { 0.0 },
                progress_rate: if running { 0.05 } else { 0.0 },
                trem: if running {
                    4.0 + (i % 7) as f64
                } else {
                    f64::INFINITY
                },
                tnew: 2.0 + (i % 5) as f64,
                true_remaining: 4.0 + (i % 7) as f64,
                true_new_hint: 2.0 + (i % 5) as f64,
                work: 2.0 + (i % 5) as f64,
            }
        })
        .collect();
    let spec = JobSpec::single_stage(1, 0.0, Bound::Deadline(100.0), vec![2.0; n as usize]);
    (tasks, spec)
}

fn view_of(tasks: &[TaskView]) -> JobView<'_> {
    JobView {
        job: JobId(1),
        now: 10.0,
        arrival: 0.0,
        bound: Bound::Deadline(100.0),
        input_deadline: None,
        total_input_tasks: tasks.len() + 10,
        completed_input_tasks: 10,
        total_tasks: tasks.len() + 10,
        completed_tasks: 10,
        tasks,
        wave_width: 20,
        cluster_utilization: 0.8,
        estimation_accuracy: 0.75,
    }
}

fn policy_decision_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_choose_500_tasks");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let (tasks, spec) = synthetic_view(500);
    let factories: Vec<(&str, Box<dyn PolicyFactory>)> = vec![
        ("GS", Box::new(GsFactory)),
        ("RAS", Box::new(RasFactory)),
        ("GRASS", Box::new(GrassFactory::new(1))),
        ("LATE", Box::new(LateFactory::default())),
        ("Mantri", Box::new(MantriFactory::default())),
    ];
    for (name, factory) in &factories {
        group.bench_function(*name, |b| {
            b.iter_batched(
                || factory.create(&spec),
                |mut policy| {
                    let view = view_of(&tasks);
                    criterion::black_box(policy.choose(&view))
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    let workload = WorkloadConfig::new(TraceProfile::facebook(Framework::Spark))
        .with_jobs(20)
        .with_bound(BoundSpec::paper_errors());
    let jobs = generate(&workload, 7);
    let sim = SimConfig {
        cluster: ClusterConfig {
            machines: 20,
            slots_per_machine: 4,
            ..ClusterConfig::ec2_scaled()
        },
        ..SimConfig::default()
    };
    group.bench_function("20_error_bound_jobs_gs", |b| {
        b.iter(|| {
            let result = run_simulation(&sim, jobs.clone(), &GsFactory);
            criterion::black_box(result.total_copies)
        })
    });
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let cfg = WorkloadConfig::new(TraceProfile::bing(Framework::Hadoop)).with_jobs(500);
    group.bench_function("generate_500_jobs", |b| {
        b.iter(|| criterion::black_box(generate(&cfg, 3).len()))
    });
    group.finish();
}

fn hill_estimation(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut group = c.benchmark_group("hill");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(1);
    let samples: Vec<f64> = (0..50_000)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            u.powf(-1.0 / 1.259)
        })
        .collect();
    group.bench_function("tail_index_50k_samples", |b| {
        b.iter(|| criterion::black_box(tail_index(&samples)))
    });
    group.finish();
}

criterion_group!(
    micro,
    policy_decision_latency,
    simulator_throughput,
    workload_generation,
    hill_estimation
);
criterion_main!(micro);
