//! One Criterion benchmark per figure of the GRASS paper's evaluation.
//!
//! Each benchmark runs the corresponding experiment harness end to end (workload
//! generation → simulation of every policy involved → improvement tables) at a
//! reduced scale, so `cargo bench` both times the harness and regenerates the
//! figure's numbers. The full-scale numbers are produced by the `repro` binary.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use grass_experiments::{run_experiment, ExpConfig};

/// Reduced-scale configuration so each figure regenerates in a bench-friendly time.
fn bench_config() -> ExpConfig {
    let mut cfg = ExpConfig::tiny();
    cfg.jobs_per_run = 8;
    cfg.seeds = vec![11];
    cfg
}

fn bench_figure(c: &mut Criterion, id: &'static str) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    group.bench_function(id, |b| {
        b.iter(|| {
            let report = run_experiment(id, &cfg).expect("known experiment id");
            criterion::black_box(report.tables.len())
        })
    });
    group.finish();
}

fn fig3(c: &mut Criterion) {
    bench_figure(c, "fig3");
}
fn fig4(c: &mut Criterion) {
    bench_figure(c, "fig4");
}
fn fig5(c: &mut Criterion) {
    bench_figure(c, "fig5");
}
fn fig6(c: &mut Criterion) {
    bench_figure(c, "fig6");
}
fn fig7(c: &mut Criterion) {
    bench_figure(c, "fig7");
}
fn fig8(c: &mut Criterion) {
    bench_figure(c, "fig8");
}
fn fig9(c: &mut Criterion) {
    bench_figure(c, "fig9");
}
fn fig10(c: &mut Criterion) {
    bench_figure(c, "fig10");
}
fn fig11(c: &mut Criterion) {
    bench_figure(c, "fig11");
}
fn fig12(c: &mut Criterion) {
    bench_figure(c, "fig12");
}
fn fig13(c: &mut Criterion) {
    bench_figure(c, "fig13");
}
fn fig14(c: &mut Criterion) {
    bench_figure(c, "fig14");
}
fn fig15(c: &mut Criterion) {
    bench_figure(c, "fig15");
}

criterion_group!(
    figures, fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14, fig15
);
criterion_main!(figures);
