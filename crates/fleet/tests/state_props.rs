//! Property tests for the broker's cell-grid state machine: under arbitrary
//! interleavings of claim / heartbeat / complete / crash / lease-expiry
//! events, the grid never loses a cell, never double-completes one, and a
//! live worker can always drive it to termination (every cell completed or
//! exhausted-retries).

use grass_fleet::{Claim, Completion, FleetConfig, GridState};
use proptest::prelude::*;

const WORKERS: usize = 4;

/// A lease the model believes is live: `(worker, cell, lease_id)`.
type Held = (usize, usize, u64);

struct Model {
    state: GridState,
    now: u64,
    config: FleetConfig,
    /// Leases that are live from the grid's point of view.
    held: Vec<Held>,
    /// Leases invalidated by crash/expiry — completing them must be stale.
    stale: Vec<Held>,
    /// Accepted completion payload per cell (at most one, ever).
    accepted: Vec<Option<String>>,
}

impl Model {
    fn new(cells: usize, max_retries: u32, seed: u64) -> Model {
        let config = FleetConfig {
            max_retries,
            backoff_seed: seed,
            ..FleetConfig::test_profile()
        };
        Model {
            state: GridState::new(cells, config.clone()),
            now: 0,
            config,
            held: Vec::new(),
            stale: Vec::new(),
            accepted: vec![None; cells],
        }
    }

    fn worker_name(w: usize) -> String {
        format!("w{w}")
    }

    fn claim(&mut self, w: usize) {
        match self.state.claim(&Model::worker_name(w), self.now) {
            Claim::Granted { cell, lease, .. } => {
                assert!(
                    !self.held.iter().any(|&(_, c, _)| c == cell),
                    "cell {cell} granted while already leased"
                );
                assert!(
                    self.accepted[cell].is_none(),
                    "completed cell {cell} re-dispatched"
                );
                self.held.push((w, cell, lease));
            }
            Claim::Wait { ms } => assert!(ms >= 1),
            Claim::Finished => assert!(self.state.all_done()),
        }
    }

    fn heartbeat(&mut self, pick: usize) {
        if self.held.is_empty() {
            // Heartbeat for a lease nobody holds must be rejected.
            assert!(!self
                .state
                .heartbeat("w0", pick % self.accepted.len(), self.now));
            return;
        }
        let (w, cell, _) = self.held[pick % self.held.len()];
        assert!(
            self.state.heartbeat(&Model::worker_name(w), cell, self.now),
            "heartbeat for live lease on cell {cell} rejected"
        );
    }

    fn complete(&mut self, pick: usize) {
        if self.held.is_empty() {
            return;
        }
        let (w, cell, lease) = self.held.swap_remove(pick % self.held.len());
        let payload = format!("cell{cell}-lease{lease}");
        let outcome = self
            .state
            .complete(&Model::worker_name(w), cell, lease, payload.clone());
        assert_eq!(outcome, Completion::Accepted);
        assert!(
            self.accepted[cell].replace(payload).is_none(),
            "cell {cell} completed twice"
        );
    }

    fn stale_complete(&mut self, pick: usize) {
        if self.stale.is_empty() {
            return;
        }
        let (w, cell, lease) = self.stale[pick % self.stale.len()];
        let outcome = self
            .state
            .complete(&Model::worker_name(w), cell, lease, "zombie".into());
        assert_eq!(
            outcome,
            Completion::Stale,
            "dead lease on cell {cell} accepted"
        );
    }

    fn crash(&mut self, w: usize) {
        self.state.release_worker(&Model::worker_name(w), self.now);
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 == w {
                self.stale.push(self.held.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }

    fn advance_and_expire(&mut self, delta: u64) {
        self.now += delta;
        let expired = self.state.expire_leases(self.now);
        for cell in expired {
            let idx = self
                .held
                .iter()
                .position(|&(_, c, _)| c == cell)
                .unwrap_or_else(|| panic!("expired lease on cell {cell} not in model"));
            self.stale.push(self.held.swap_remove(idx));
        }
    }

    /// A single healthy worker drives every remaining cell to a terminal
    /// state. Bounded: if the grid can stall, this panics.
    fn drain(&mut self) {
        let cells = self.accepted.len();
        // Generous bound: every cell can be re-dispatched max_retries times
        // with exponentially growing backoff gates, plus poll waits.
        let mut budget = 20_000usize;
        loop {
            assert!(
                budget > 0,
                "grid failed to terminate while a worker was live"
            );
            budget -= 1;
            self.advance_and_expire(1);
            match self.state.claim("drainer", self.now) {
                Claim::Granted { cell, lease, .. } => {
                    let payload = format!("cell{cell}-lease{lease}");
                    assert_eq!(
                        self.state.complete("drainer", cell, lease, payload.clone()),
                        Completion::Accepted
                    );
                    assert!(self.accepted[cell].replace(payload).is_none());
                }
                Claim::Wait { ms } => self.now += ms,
                Claim::Finished => break,
            }
        }
        assert!(self.state.all_done());
        let statuses = self.state.statuses();
        assert_eq!(statuses.len(), cells);
        let exhausted = self.state.exhausted_cells();
        for (cell, accepted) in self.accepted.iter().enumerate() {
            let is_exhausted = exhausted.contains(&cell);
            assert!(
                accepted.is_some() || is_exhausted,
                "cell {cell} lost: neither completed nor exhausted"
            );
            assert!(
                !(accepted.is_some() && is_exhausted),
                "cell {cell} both completed and exhausted"
            );
        }
        match self.state.results() {
            Ok(results) => {
                assert!(exhausted.is_empty());
                assert_eq!(results.len(), cells);
                for (cell, payload) in results.iter().enumerate() {
                    assert_eq!(Some(payload), self.accepted[cell].as_ref());
                }
            }
            Err(cells_out) => assert_eq!(cells_out, exhausted),
        }
        let stats = self.state.stats();
        let max_dispatches = (1 + self.config.max_retries) as u64 * cells as u64;
        assert!(stats.dispatched <= max_dispatches);
        assert_eq!(
            stats.completed as usize,
            self.accepted.iter().flatten().count()
        );
        assert_eq!(stats.exhausted as usize, exhausted.len());
    }
}

proptest! {
    #[test]
    fn arbitrary_interleavings_never_lose_or_double_complete_cells(
        cells in 1usize..8,
        max_retries in 0u32..4,
        seed in 0u64..1000,
        ops in prop::collection::vec((0u8..6, 0u64..16, 0u64..400), 0..80),
    ) {
        let mut model = Model::new(cells, max_retries, seed);
        for (kind, a, b) in ops {
            match kind {
                0 => model.claim(a as usize % WORKERS),
                1 => model.heartbeat(a as usize),
                2 => model.complete(a as usize),
                3 => model.crash(a as usize % WORKERS),
                4 => model.advance_and_expire(b),
                _ => model.stale_complete(a as usize),
            }
        }
        model.drain();
    }
}
