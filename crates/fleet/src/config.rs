//! Timing and retry knobs for the fleet, all explicit so tests can shrink the
//! clock into the tens-of-milliseconds range and stay deterministic.

/// All fleet timing/retry parameters.
///
/// The broker is the single source of truth: workers learn the heartbeat
/// cadence from the `grant` response, so overriding the profile on the broker
/// reconfigures the whole fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Interval at which a worker heartbeats a leased cell, in milliseconds.
    pub heartbeat_ms: u64,
    /// A lease with no heartbeat for this long is expired and the cell
    /// re-dispatched.
    pub lease_timeout_ms: u64,
    /// Base of the exponential re-dispatch backoff: attempt `n` waits
    /// `backoff_base_ms * 2^(n-1)` (plus jitter) before becoming claimable.
    pub backoff_base_ms: u64,
    /// Upper bound (inclusive) of the uniform jitter added to each backoff.
    pub backoff_jitter_ms: u64,
    /// Additional dispatches allowed after the first: a cell is dispatched at
    /// most `1 + max_retries` times before it is marked exhausted.
    pub max_retries: u32,
    /// Seed for the jitter RNG — fixed seed, fixed backoff schedule.
    pub backoff_seed: u64,
    /// Broker accept/expiry poll interval and the default worker wait hint.
    pub poll_ms: u64,
}

impl FleetConfig {
    /// Production-ish defaults: second-scale heartbeats, 5s lease timeout.
    pub fn production() -> Self {
        FleetConfig {
            heartbeat_ms: 1_000,
            lease_timeout_ms: 5_000,
            backoff_base_ms: 250,
            backoff_jitter_ms: 250,
            max_retries: 3,
            backoff_seed: 0x6C17,
            poll_ms: 25,
        }
    }

    /// Test profile: everything shrunk so lease expiry and redispatch complete
    /// in well under a second while keeping heartbeat << lease timeout.
    pub fn test_profile() -> Self {
        FleetConfig {
            heartbeat_ms: 20,
            lease_timeout_ms: 150,
            backoff_base_ms: 5,
            backoff_jitter_ms: 5,
            max_retries: 3,
            backoff_seed: 0x6C17,
            poll_ms: 5,
        }
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig::production()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_profile_keeps_heartbeat_inside_lease_timeout() {
        for cfg in [FleetConfig::production(), FleetConfig::test_profile()] {
            // At least three heartbeats fit in one lease window, so a healthy
            // worker can miss two before losing the lease.
            assert!(cfg.heartbeat_ms * 3 <= cfg.lease_timeout_ms);
            assert!(cfg.poll_ms <= cfg.heartbeat_ms);
        }
    }
}
