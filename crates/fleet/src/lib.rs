//! # grass-fleet
//!
//! A broker/worker sweep service: one **broker** owns a grid of sweep cells and
//! their lifecycle state machine, a pool of **workers** connects over localhost
//! TCP, claims cells, runs them, and reports full-precision result payloads.
//!
//! The crate is deliberately *generic over the cell domain*: a cell is an opaque
//! spec `String` handed to a [`CellRunner`], and a result is an opaque payload
//! `String` the broker collects in grid order. `grass-experiments` supplies the
//! GRASS-specific glue (cell specs that name a recorded trace, a cluster size, a
//! policy and a seed; payloads that encode per-job outcomes bit-exactly), which
//! keeps the dependency direction `experiments -> fleet` and the state machine
//! testable without a simulator.
//!
//! ## Lifecycle
//!
//! ```text
//! pending --claim--> leased --complete--> completed
//!    ^                 |
//!    |                 +-- missed heartbeats (lease expiry)
//!    |                 +-- connection drop (worker crash)
//!    |                 +-- explicit `fail` report
//!    |                 |
//!    +---- backoff ----+--(attempts exhausted)--> exhausted
//! ```
//!
//! Every transition is driven by a millisecond clock the caller passes in, so
//! the whole state machine is deterministic under test (see
//! `tests/state_props.rs`). Re-dispatch backoff is `base * 2^(attempt-1)` plus
//! jitter drawn from a seeded [`rand::rngs::StdRng`] — deterministic for a fixed
//! [`FleetConfig::backoff_seed`].
//!
//! ## Wire protocol
//!
//! Line-oriented `tag key=value ...` frames over TCP, percent-escaped with the
//! `grass-trace` codec helpers — no generic serialization (the workspace serde
//! is a no-op shim). See [`protocol`] for the full message set.

pub mod broker;
pub mod cache;
pub mod config;
pub mod lease;
pub mod protocol;
pub mod spawn;
pub mod state;
pub mod worker;

pub use broker::{serve_broker, BrokerHandle, FleetOutcome, FleetSnapshot};
pub use cache::{fnv1a64, DigestCache};
pub use config::FleetConfig;
pub use lease::{Lease, LeaseTable};
pub use protocol::{Request, Response, PROTOCOL_VERSION, SYNC_SEPARATOR};
pub use spawn::{run_fleet, FleetRunReport};
pub use state::{CellStatus, Claim, Completion, FleetStats, GridState};
pub use worker::{run_worker, CellRunner, WorkerReport};

use std::fmt;

/// Errors surfaced by the broker/worker plumbing.
#[derive(Debug)]
pub enum FleetError {
    /// Transport-level failure (bind, connect, read, write).
    Io(std::io::Error),
    /// A peer spoke something that does not parse or was not expected.
    Protocol(String),
    /// The grid terminated but some cells ran out of retries.
    Exhausted(Vec<usize>),
    /// Every worker process exited while cells were still outstanding.
    WorkersExited(usize),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Io(e) => write!(f, "fleet i/o error: {e}"),
            FleetError::Protocol(msg) => write!(f, "fleet protocol error: {msg}"),
            FleetError::Exhausted(cells) => {
                write!(f, "fleet cells exhausted retries: {cells:?}")
            }
            FleetError::WorkersExited(n) => {
                write!(f, "all {n} worker processes exited with cells outstanding")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}
