//! The TCP broker: owns the [`GridState`] behind a mutex, accepts worker
//! connections on localhost, and drives lease expiry from a poll loop.
//!
//! The broker is embeddable: [`serve_broker`] returns a [`BrokerHandle`]
//! immediately, and the caller decides whether to spawn worker processes
//! ([`crate::spawn::run_fleet`]), run worker threads in-process (tests), or
//! just wait for external workers (`repro fleet serve`).

use crate::config::FleetConfig;
use crate::protocol::{Request, Response, PROTOCOL_VERSION};
use crate::state::{CellStatus, Claim, Completion, FleetStats, GridState};
use crate::FleetError;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Everything a finished fleet run produced: grid-order payloads plus the
/// broker's event counters.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// One result payload per cell, in grid order.
    pub results: Vec<String>,
    pub stats: FleetStats,
}

/// A point-in-time view of the broker, for monitoring and tests.
#[derive(Debug, Clone)]
pub struct FleetSnapshot {
    pub statuses: Vec<CellStatus>,
    pub stats: FleetStats,
    /// `(cell, worker)` pairs for currently active leases.
    pub leases: Vec<(usize, String)>,
    pub done: bool,
}

struct Shared {
    state: Mutex<GridState>,
    specs: Vec<String>,
    config: FleetConfig,
    started: Instant,
    done: AtomicBool,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Re-check terminality after any mutation and latch the done flag.
    fn refresh_done(&self, state: &GridState) {
        if state.all_done() {
            self.done.store(true, Ordering::SeqCst);
        }
    }
}

/// A running broker. Dropping the handle does not stop the accept thread;
/// call [`BrokerHandle::wait`] to drive the run to completion.
pub struct BrokerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
}

/// Start a broker for `specs` on `127.0.0.1:port` (`port = 0` picks a free
/// one). `cached[i] = Some(payload)` pre-completes cell `i` from the digest
/// cache so it is never dispatched.
pub fn serve_broker(
    specs: Vec<String>,
    cached: Vec<Option<String>>,
    config: FleetConfig,
) -> io::Result<BrokerHandle> {
    serve_broker_on(specs, cached, config, 0)
}

/// [`serve_broker`] with an explicit port.
pub fn serve_broker_on(
    specs: Vec<String>,
    cached: Vec<Option<String>>,
    config: FleetConfig,
    port: u16,
) -> io::Result<BrokerHandle> {
    assert_eq!(specs.len(), cached.len(), "one cached slot per spec");
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let mut state = GridState::new(specs.len(), config.clone());
    for (i, payload) in cached.into_iter().enumerate() {
        if let Some(payload) = payload {
            state.preload(i, payload);
        }
    }
    let shared = Arc::new(Shared {
        done: AtomicBool::new(state.all_done()),
        state: Mutex::new(state),
        specs,
        config: config.clone(),
        started: Instant::now(),
    });

    let accept_shared = Arc::clone(&shared);
    let accept = thread::Builder::new()
        .name("grass-fleet-broker".into())
        .spawn(move || accept_loop(listener, accept_shared))?;

    Ok(BrokerHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

impl BrokerHandle {
    /// The address workers should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once every cell is terminal.
    pub fn done(&self) -> bool {
        self.shared.done.load(Ordering::SeqCst)
    }

    /// Point-in-time view of the grid.
    pub fn snapshot(&self) -> FleetSnapshot {
        let state = self.shared.state.lock().unwrap();
        FleetSnapshot {
            statuses: state.statuses(),
            stats: state.stats(),
            leases: state.active_leases(),
            done: self.done(),
        }
    }

    /// Block until every cell is terminal, then return grid-order results.
    ///
    /// Returns [`FleetError::Exhausted`] when any cell ran out of retries.
    pub fn wait(mut self) -> Result<FleetOutcome, FleetError> {
        let poll = Duration::from_millis(self.shared.config.poll_ms.max(1));
        while !self.done() {
            thread::sleep(poll);
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let state = self.shared.state.lock().unwrap();
        match state.results() {
            Ok(results) => Ok(FleetOutcome {
                results,
                stats: state.stats(),
            }),
            Err(cells) => Err(FleetError::Exhausted(cells)),
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let poll = Duration::from_millis(shared.config.poll_ms.max(1));
    loop {
        if shared.done.load(Ordering::SeqCst) {
            return;
        }
        // Drive lease expiry from the accept loop: the broker's one ticker.
        {
            let mut state = shared.state.lock().unwrap();
            state.expire_leases(shared.now_ms());
            shared.refresh_done(&state);
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(&shared);
                let _ = thread::Builder::new()
                    .name("grass-fleet-conn".into())
                    .spawn(move || handle_connection(stream, conn_shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(poll),
            Err(_) => thread::sleep(poll),
        }
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let mut worker_id: Option<String> = None;
    let mut clean_exit = false;
    if let Err(_e) = serve_connection(&stream, &shared, &mut worker_id, &mut clean_exit) {
        // I/O errors fall through to the crash-release path below.
    }
    if !clean_exit {
        if let Some(worker) = worker_id {
            let mut state = shared.state.lock().unwrap();
            state.release_worker(&worker, shared.now_ms());
            shared.refresh_done(&state);
        }
    }
}

fn serve_connection(
    stream: &TcpStream,
    shared: &Shared,
    worker_id: &mut Option<String>,
    clean_exit: &mut bool,
) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream.try_clone()?;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(req) => req,
            Err(message) => {
                write_response(&mut writer, &Response::Error { message })?;
                continue;
            }
        };
        *worker_id = Some(request.worker().to_string());
        let is_bye = matches!(request, Request::Bye { .. });
        // Compute the response under the lock, write it outside the lock.
        let response = {
            let mut state = shared.state.lock().unwrap();
            let response = apply_request(&mut state, shared, &request);
            shared.refresh_done(&state);
            response
        };
        if let Some(response) = response {
            write_response(&mut writer, &response)?;
        }
        if is_bye {
            *clean_exit = true;
            return Ok(());
        }
    }
    Ok(())
}

/// Translate one request into a state transition plus an optional response
/// (`heartbeat` is fire-and-forget).
fn apply_request(state: &mut GridState, shared: &Shared, request: &Request) -> Option<Response> {
    let now_ms = shared.now_ms();
    match request {
        Request::Hello { .. } => Some(Response::Welcome {
            version: PROTOCOL_VERSION,
            cells: state.len(),
        }),
        Request::Claim { worker } => Some(match state.claim(worker, now_ms) {
            Claim::Granted {
                cell,
                attempt,
                lease,
            } => Response::Grant {
                cell,
                attempt,
                lease,
                heartbeat_ms: shared.config.heartbeat_ms,
                spec: shared.specs[cell].clone(),
            },
            Claim::Wait { ms } => Response::Wait { ms },
            Claim::Finished => Response::Finished,
        }),
        Request::Heartbeat { worker, cell } => {
            state.heartbeat(worker, *cell, now_ms);
            None
        }
        Request::Complete {
            worker,
            cell,
            lease,
            payload,
        } => Some(
            match state.complete(worker, *cell, *lease, payload.clone()) {
                Completion::Accepted => Response::Ok,
                Completion::Stale => Response::Stale,
            },
        ),
        Request::Fail {
            worker,
            cell,
            lease,
            ..
        } => {
            state.fail(worker, *cell, *lease, now_ms);
            Some(Response::Ok)
        }
        Request::Sync { worker, payload } => Some(Response::State {
            payload: state.sync(worker, payload.clone()),
        }),
        Request::Bye { .. } => Some(Response::Ok),
    }
}

fn write_response(writer: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut line = response.encode();
    line.push('\n');
    writer.write_all(line.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::run_worker;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn broker_with_thread_workers_collects_grid_order_results() {
        let specs: Vec<String> = (0..6).map(|i| format!("spec-{i}")).collect();
        let cached = vec![None; specs.len()];
        let handle = serve_broker(specs, cached, FleetConfig::test_profile()).unwrap();
        let addr = handle.addr();

        let workers: Vec<_> = (0..2)
            .map(|w| {
                thread::spawn(move || {
                    run_worker(addr, &format!("w{w}"), &|cell: usize, spec: &str| {
                        Ok(format!("cell={cell} spec={spec}"))
                    })
                })
            })
            .collect();

        let outcome = handle.wait().unwrap();
        for w in workers {
            w.join().unwrap().unwrap();
        }
        assert_eq!(outcome.results.len(), 6);
        for (i, payload) in outcome.results.iter().enumerate() {
            assert_eq!(payload, &format!("cell={i} spec=spec-{i}"));
        }
        assert_eq!(outcome.stats.completed, 6);
        assert_eq!(outcome.stats.dispatched, 6);
    }

    #[test]
    fn failed_cells_are_retried_until_they_succeed() {
        static FAILURES_LEFT: AtomicUsize = AtomicUsize::new(2);
        let handle =
            serve_broker(vec!["only".into()], vec![None], FleetConfig::test_profile()).unwrap();
        let addr = handle.addr();
        let worker = thread::spawn(move || {
            run_worker(addr, "flaky", &|cell: usize, _spec: &str| {
                if FAILURES_LEFT
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    Err("transient".into())
                } else {
                    Ok(format!("ok-{cell}"))
                }
            })
        });
        let outcome = handle.wait().unwrap();
        let report = worker.join().unwrap().unwrap();
        assert_eq!(outcome.results, vec!["ok-0"]);
        assert_eq!(outcome.stats.failed_reports, 2);
        assert_eq!(outcome.stats.dispatched, 3);
        assert_eq!(report.failed, 2);
        assert_eq!(report.completed, 1);
    }

    #[test]
    fn fully_cached_grid_finishes_without_any_worker() {
        let handle = serve_broker(
            vec!["a".into(), "b".into()],
            vec![Some("ra".into()), Some("rb".into())],
            FleetConfig::test_profile(),
        )
        .unwrap();
        assert!(handle.done());
        let outcome = handle.wait().unwrap();
        assert_eq!(outcome.results, vec!["ra", "rb"]);
        assert_eq!(outcome.stats.cached, 2);
        assert_eq!(outcome.stats.dispatched, 0);
    }

    #[test]
    fn dropped_connection_releases_leases_for_redispatch() {
        let handle =
            serve_broker(vec!["only".into()], vec![None], FleetConfig::test_profile()).unwrap();
        let addr = handle.addr();

        // A raw client claims the cell and vanishes without `bye`.
        {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            writer.write_all(b"hello worker=ghost\n").unwrap();
            reader.read_line(&mut line).unwrap();
            line.clear();
            writer.write_all(b"claim worker=ghost\n").unwrap();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("grant "), "got {line:?}");
            // Drop both halves: unclean disconnect.
        }

        // A healthy worker picks the cell back up after the crash release.
        let worker = thread::spawn(move || {
            run_worker(addr, "healthy", &|_c: usize, _s: &str| Ok("done".into()))
        });
        let outcome = handle.wait().unwrap();
        worker.join().unwrap().unwrap();
        assert_eq!(outcome.results, vec!["done"]);
        assert_eq!(outcome.stats.crash_releases, 1);
        assert_eq!(outcome.stats.dispatched, 2);
    }
}
