//! The worker side: connect, claim cells, heartbeat while running, report
//! results, repeat until the broker says `finished`.

use crate::protocol::{Request, Response, PROTOCOL_VERSION};
use crate::FleetError;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Runs one cell. The spec and payload are opaque to the transport; the
/// domain layer (`grass-experiments`) defines both encodings.
///
/// `Err` reports a cell the worker could not run — the broker re-dispatches
/// it (subject to the retry cap), so a runner error is not fatal to the fleet.
pub trait CellRunner: Sync {
    fn run(&self, cell: usize, spec: &str) -> Result<String, String>;

    /// Learned-state snapshot to offer the fleet after each accepted completion.
    /// `None` (the default) disables the sync exchange entirely.
    fn snapshot(&self) -> Option<String> {
        None
    }

    /// Absorb the peer snapshots returned by the broker (joined with
    /// [`SYNC_SEPARATOR`](crate::protocol::SYNC_SEPARATOR); never called with an
    /// empty payload). Default: ignore them.
    fn absorb(&self, _snapshots: &str) {}
}

impl<F> CellRunner for F
where
    F: Fn(usize, &str) -> Result<String, String> + Sync,
{
    fn run(&self, cell: usize, spec: &str) -> Result<String, String> {
        self(cell, spec)
    }
}

/// What one worker did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Cells completed and accepted by the broker.
    pub completed: usize,
    /// Cells completed but rejected as stale (lease had expired).
    pub stale: usize,
    /// Cells the runner failed.
    pub failed: usize,
    /// Learned-state sync exchanges performed with the broker.
    pub syncs: usize,
}

/// Writes protocol lines; shared with the heartbeat thread behind a mutex so
/// concurrent frames never interleave mid-line.
#[derive(Clone)]
struct FrameWriter {
    stream: Arc<Mutex<TcpStream>>,
}

impl FrameWriter {
    fn send(&self, request: &Request) -> std::io::Result<()> {
        let mut line = request.encode();
        line.push('\n');
        let mut stream = self.stream.lock().unwrap();
        stream.write_all(line.as_bytes())
    }
}

/// Connect to a broker and work until it reports `finished`.
///
/// While a cell runs, a background thread heartbeats it at the cadence the
/// broker supplied in the grant, so a long cell keeps its lease and a
/// SIGKILLed worker stops heartbeating (and loses it).
pub fn run_worker(
    addr: impl ToSocketAddrs,
    worker_id: &str,
    runner: &dyn CellRunner,
) -> Result<WorkerReport, FleetError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = FrameWriter {
        stream: Arc::new(Mutex::new(stream)),
    };
    let worker = worker_id.to_string();
    let mut report = WorkerReport::default();

    writer.send(&Request::Hello {
        worker: worker.clone(),
    })?;
    match recv(&mut reader)? {
        Response::Welcome { version, .. } if version == PROTOCOL_VERSION => {}
        Response::Welcome { version, .. } => {
            return Err(FleetError::Protocol(format!(
                "broker speaks protocol v{version}, worker speaks v{PROTOCOL_VERSION}"
            )))
        }
        other => return Err(unexpected("welcome", &other)),
    }

    loop {
        writer.send(&Request::Claim {
            worker: worker.clone(),
        })?;
        match recv(&mut reader)? {
            Response::Grant {
                cell,
                lease,
                heartbeat_ms,
                spec,
                ..
            } => {
                let result = run_with_heartbeats(&writer, &worker, cell, heartbeat_ms, || {
                    runner.run(cell, &spec)
                });
                match result {
                    Ok(payload) => {
                        writer.send(&Request::Complete {
                            worker: worker.clone(),
                            cell,
                            lease,
                            payload,
                        })?;
                        match recv(&mut reader)? {
                            Response::Ok => report.completed += 1,
                            Response::Stale => report.stale += 1,
                            other => return Err(unexpected("ok|stale", &other)),
                        }
                        // Learned-state exchange: offer our snapshot, absorb the
                        // peers'. The heartbeat thread is already joined, so no
                        // other frame can interleave with this request/response.
                        if let Some(snapshot) = runner.snapshot() {
                            writer.send(&Request::Sync {
                                worker: worker.clone(),
                                payload: snapshot,
                            })?;
                            match recv(&mut reader)? {
                                Response::State { payload } => {
                                    if !payload.is_empty() {
                                        runner.absorb(&payload);
                                    }
                                    report.syncs += 1;
                                }
                                other => return Err(unexpected("state", &other)),
                            }
                        }
                    }
                    Err(error) => {
                        writer.send(&Request::Fail {
                            worker: worker.clone(),
                            cell,
                            lease,
                            error,
                        })?;
                        match recv(&mut reader)? {
                            Response::Ok => report.failed += 1,
                            other => return Err(unexpected("ok", &other)),
                        }
                    }
                }
            }
            Response::Wait { ms } => thread::sleep(Duration::from_millis(ms.clamp(1, 5_000))),
            Response::Finished => {
                writer.send(&Request::Bye { worker })?;
                // The broker acks `bye`, but it may already be shutting down;
                // a missing ack is not an error.
                let _ = recv(&mut reader);
                return Ok(report);
            }
            other => return Err(unexpected("grant|wait|finished", &other)),
        }
    }
}

/// Run `body`, heartbeating `(worker, cell)` every `heartbeat_ms` until it
/// returns. The heartbeat thread is joined before reporting, so a `complete`
/// frame is never followed by a heartbeat for the same (released) lease.
fn run_with_heartbeats<T>(
    writer: &FrameWriter,
    worker: &str,
    cell: usize,
    heartbeat_ms: u64,
    body: impl FnOnce() -> T,
) -> T {
    let stop = Arc::new(AtomicBool::new(false));
    let beat_stop = Arc::clone(&stop);
    let beat_writer = writer.clone();
    let beat_worker = worker.to_string();
    let interval = Duration::from_millis(heartbeat_ms.max(1));
    let beats = thread::spawn(move || {
        loop {
            // Sleep in small slices so join() never waits a full interval.
            let slice = Duration::from_millis(5.min(heartbeat_ms.max(1)));
            let mut slept = Duration::ZERO;
            while slept < interval {
                if beat_stop.load(Ordering::SeqCst) {
                    return;
                }
                thread::sleep(slice);
                slept += slice;
            }
            if beat_stop.load(Ordering::SeqCst) {
                return;
            }
            if beat_writer
                .send(&Request::Heartbeat {
                    worker: beat_worker.clone(),
                    cell,
                })
                .is_err()
            {
                // Broker gone: the main loop will hit the same error.
                return;
            }
        }
    });
    let result = body();
    stop.store(true, Ordering::SeqCst);
    let _ = beats.join();
    result
}

fn recv(reader: &mut BufReader<TcpStream>) -> Result<Response, FleetError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(FleetError::Protocol("broker closed the connection".into()));
    }
    Response::parse(line.trim_end_matches('\n')).map_err(FleetError::Protocol)
}

fn unexpected(wanted: &str, got: &Response) -> FleetError {
    FleetError::Protocol(format!("expected {wanted}, got `{}`", got.encode()))
}
