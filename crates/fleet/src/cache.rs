//! The persistent per-cell digest cache.
//!
//! One file per cell, named by the FNV-1a 64 hash of the cell key; the file
//! stores the escaped key on its first line (so hash collisions and key-scheme
//! drift are detected, never silently served) followed by the payload verbatim.
//! Writes go through a temp file + rename, so a crashed writer never leaves a
//! half-written entry that a later run would trust.

use grass_trace::codec::{escape, unescape};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process;

/// FNV-1a 64-bit hash — tiny, dependency-free, stable across runs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

/// An on-disk map from cell key to result payload.
#[derive(Debug, Clone)]
pub struct DigestCache {
    dir: PathBuf,
}

impl DigestCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(DigestCache { dir })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.cell", fnv1a64(key.as_bytes())))
    }

    /// Look `key` up. Returns `None` on a miss, a hash collision, or an entry
    /// that fails to parse (corruption is treated as a miss, not an error).
    pub fn get(&self, key: &str) -> Option<String> {
        let text = fs::read_to_string(self.path_for(key)).ok()?;
        let (stored_key, payload) = text.split_once('\n')?;
        if unescape(stored_key).ok()? != key {
            return None;
        }
        Some(payload.to_string())
    }

    /// Store `payload` under `key`, atomically (temp file + rename).
    pub fn put(&self, key: &str, payload: &str) -> io::Result<()> {
        let path = self.path_for(key);
        let tmp = self.dir.join(format!(
            ".{:016x}.{}.tmp",
            fnv1a64(key.as_bytes()),
            process::id()
        ));
        fs::write(&tmp, format!("{}\n{}", escape(key), payload))?;
        fs::rename(&tmp, &path)
    }

    /// Number of entries on disk (diagnostic; counts `.cell` files).
    pub fn len(&self) -> io::Result<usize> {
        let mut n = 0;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "cell") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::env;

    fn temp_cache(tag: &str) -> DigestCache {
        let dir = env::temp_dir().join(format!("grass-fleet-cache-{tag}-{}", process::id()));
        let _ = fs::remove_dir_all(&dir);
        DigestCache::open(&dir).unwrap()
    }

    #[test]
    fn put_get_round_trip_preserves_payload_bytes() {
        let cache = temp_cache("roundtrip");
        let key = "trace=abc machines=50 policy=grass seed=11 slots=4";
        let payload = "line1\nline2 mean=0.30000000000000004\n";
        assert!(cache.get(key).is_none());
        cache.put(key, payload).unwrap();
        assert_eq!(cache.get(key).as_deref(), Some(payload));
        assert_eq!(cache.len().unwrap(), 1);

        // Overwrite is atomic and last-write-wins.
        cache.put(key, "v2").unwrap();
        assert_eq!(cache.get(key).as_deref(), Some("v2"));
        assert_eq!(cache.len().unwrap(), 1);
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn key_mismatch_in_entry_is_a_miss() {
        let cache = temp_cache("collide");
        cache.put("key-a", "payload-a").unwrap();
        // Simulate a hash collision: copy a's entry onto b's slot.
        let a_path = cache.path_for("key-a");
        let b_path = cache.path_for("key-b");
        fs::copy(&a_path, &b_path).unwrap();
        assert_eq!(cache.get("key-a").as_deref(), Some("payload-a"));
        assert!(
            cache.get("key-b").is_none(),
            "foreign key must not be served"
        );
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let cache = temp_cache("corrupt");
        cache.put("k", "v").unwrap();
        fs::write(cache.path_for("k"), "no-newline-no-key").unwrap();
        assert!(cache.get("k").is_none());
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn keys_with_newlines_and_spaces_survive_escaping() {
        let cache = temp_cache("escape");
        let key = "weird key\nwith=newline and café";
        cache.put(key, "v").unwrap();
        assert_eq!(cache.get(key).as_deref(), Some("v"));
        fs::remove_dir_all(cache.dir()).unwrap();
    }
}
