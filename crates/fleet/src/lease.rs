//! The broker's lease table: which worker currently holds which cell, and how
//! fresh its heartbeat is. Purely in-memory bookkeeping over a caller-supplied
//! millisecond clock — no threads, no sockets — so it is trivially testable.

/// One active lease: `worker` holds `cell` since `granted_ms`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Unique, monotonically increasing id. A `complete` must quote the id it
    /// was granted, which is what makes a post-expiry completion detectably
    /// stale instead of silently overwriting a re-dispatched cell.
    pub id: u64,
    pub worker: String,
    pub cell: usize,
    pub granted_ms: u64,
    pub last_heartbeat_ms: u64,
}

/// All currently active leases. At most one lease per cell.
#[derive(Debug, Default)]
pub struct LeaseTable {
    active: Vec<Lease>,
    next_id: u64,
}

impl LeaseTable {
    pub fn new() -> Self {
        LeaseTable {
            active: Vec::new(),
            next_id: 1,
        }
    }

    /// Grant `cell` to `worker`, returning the new lease id. The caller (the
    /// grid state machine) guarantees the cell is not currently leased.
    pub fn grant(&mut self, worker: &str, cell: usize, now_ms: u64) -> u64 {
        debug_assert!(self.holder(cell).is_none(), "cell {cell} already leased");
        let id = self.next_id;
        self.next_id += 1;
        self.active.push(Lease {
            id,
            worker: worker.to_string(),
            cell,
            granted_ms: now_ms,
            last_heartbeat_ms: now_ms,
        });
        id
    }

    /// Refresh the heartbeat for `(worker, cell)`. Returns `false` when the
    /// worker no longer holds that cell (expired lease or stale heartbeat).
    pub fn heartbeat(&mut self, worker: &str, cell: usize, now_ms: u64) -> bool {
        for lease in &mut self.active {
            if lease.cell == cell && lease.worker == worker {
                lease.last_heartbeat_ms = lease.last_heartbeat_ms.max(now_ms);
                return true;
            }
        }
        false
    }

    /// The active lease on `cell`, if any.
    pub fn holder(&self, cell: usize) -> Option<&Lease> {
        self.active.iter().find(|l| l.cell == cell)
    }

    /// Drop the lease on `cell`, returning it.
    pub fn release_cell(&mut self, cell: usize) -> Option<Lease> {
        let idx = self.active.iter().position(|l| l.cell == cell)?;
        Some(self.active.swap_remove(idx))
    }

    /// Drop every lease held by `worker` (connection lost), returning them.
    pub fn release_worker(&mut self, worker: &str) -> Vec<Lease> {
        let mut released = Vec::new();
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].worker == worker {
                released.push(self.active.swap_remove(i));
            } else {
                i += 1;
            }
        }
        released
    }

    /// Cells whose last heartbeat is at least `timeout_ms` old.
    pub fn expired(&self, now_ms: u64, timeout_ms: u64) -> Vec<usize> {
        self.active
            .iter()
            .filter(|l| now_ms.saturating_sub(l.last_heartbeat_ms) >= timeout_ms)
            .map(|l| l.cell)
            .collect()
    }

    pub fn len(&self) -> usize {
        self.active.len()
    }

    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// `(cell, worker)` pairs for status snapshots.
    pub fn entries(&self) -> Vec<(usize, String)> {
        self.active
            .iter()
            .map(|l| (l.cell, l.worker.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_heartbeat_expire_cycle() {
        let mut table = LeaseTable::new();
        let id = table.grant("w1", 0, 100);
        assert_eq!(id, 1);
        assert_eq!(table.holder(0).unwrap().worker, "w1");

        // Fresh lease: not expired at the timeout boundary minus one.
        assert!(table.expired(249, 150).is_empty());
        assert_eq!(table.expired(250, 150), vec![0]);

        // A heartbeat pushes expiry out.
        assert!(table.heartbeat("w1", 0, 200));
        assert!(table.expired(250, 150).is_empty());
        assert_eq!(table.expired(350, 150), vec![0]);

        // Heartbeats from a non-holder are rejected.
        assert!(!table.heartbeat("w2", 0, 300));
        assert!(!table.heartbeat("w1", 5, 300));
    }

    #[test]
    fn heartbeat_never_moves_backwards() {
        let mut table = LeaseTable::new();
        table.grant("w1", 0, 100);
        assert!(table.heartbeat("w1", 0, 500));
        // A delayed heartbeat with an older timestamp must not rewind expiry.
        assert!(table.heartbeat("w1", 0, 200));
        assert_eq!(table.holder(0).unwrap().last_heartbeat_ms, 500);
    }

    #[test]
    fn release_worker_drops_all_its_leases() {
        let mut table = LeaseTable::new();
        table.grant("w1", 0, 0);
        table.grant("w2", 1, 0);
        table.grant("w1", 2, 0);
        let dropped = table.release_worker("w1");
        assert_eq!(dropped.len(), 2);
        assert_eq!(table.len(), 1);
        assert_eq!(table.holder(1).unwrap().worker, "w2");
        assert!(table.release_cell(1).is_some());
        assert!(table.is_empty());
    }

    #[test]
    fn lease_ids_are_unique_across_regrants() {
        let mut table = LeaseTable::new();
        let a = table.grant("w1", 0, 0);
        table.release_cell(0);
        let b = table.grant("w2", 0, 10);
        assert_ne!(a, b);
    }
}
