//! The line-oriented wire protocol between workers and the broker.
//!
//! One frame per line, `tag key=value ...`, every free-form value
//! percent-escaped with [`grass_trace::codec::escape`] (the same escaping the
//! trace formats use), so frames survive spaces, `=`, newlines and non-ASCII in
//! worker ids, cell specs and payloads.
//!
//! ```text
//! -> hello worker=w1
//! <- welcome version=1 cells=12
//! -> claim worker=w1
//! <- grant cell=3 attempt=1 lease=7 heartbeat_ms=1000 spec=<escaped>
//! <- wait ms=25                 (nothing claimable right now)
//! <- finished                   (every cell is terminal)
//! -> heartbeat worker=w1 cell=3          (fire-and-forget, no response)
//! -> complete worker=w1 cell=3 lease=7 payload=<escaped>
//! <- ok | stale
//! -> fail worker=w1 cell=3 lease=7 error=<escaped>
//! <- ok
//! -> sync worker=w1 payload=<escaped>        (offer learned state, get peers')
//! <- state payload=<escaped>
//! -> bye worker=w1
//! <- ok
//! ```

use grass_trace::codec::{escape, unescape};

/// Protocol version carried in `welcome`; workers refuse a mismatch.
/// Version history: 1 = initial broker/worker protocol; 2 = added the
/// `sync`/`state` learned-state exchange frames.
pub const PROTOCOL_VERSION: u32 = 2;

/// Separator between individual peer snapshots inside a `state` payload. Chosen as
/// an ASCII control character that never appears in snapshot encodings (which are
/// printable text), and that `split_whitespace` does not treat as whitespace.
pub const SYNC_SEPARATOR: char = '\x1f';

/// Frames a worker sends to the broker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Introduce the worker; the broker answers [`Response::Welcome`].
    Hello { worker: String },
    /// Ask for a cell; answered by `grant`, `wait` or `finished`.
    Claim { worker: String },
    /// Keep a lease alive. Fire-and-forget: no response frame.
    Heartbeat { worker: String, cell: usize },
    /// Report a finished cell with its result payload.
    Complete {
        worker: String,
        cell: usize,
        lease: u64,
        payload: String,
    },
    /// Report a cell the worker could not run (the broker re-dispatches it).
    Fail {
        worker: String,
        cell: usize,
        lease: u64,
        error: String,
    },
    /// Offer this worker's learned-state snapshot to the fleet; answered by
    /// [`Response::State`] carrying the other workers' snapshots.
    Sync { worker: String, payload: String },
    /// Clean shutdown: the broker must not treat the disconnect as a crash.
    Bye { worker: String },
}

/// Frames the broker sends back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Welcome {
        version: u32,
        cells: usize,
    },
    Grant {
        cell: usize,
        attempt: u32,
        lease: u64,
        heartbeat_ms: u64,
        spec: String,
    },
    Wait {
        ms: u64,
    },
    /// Answer to [`Request::Sync`]: every *other* worker's most recent snapshot,
    /// joined with [`SYNC_SEPARATOR`] (empty when no peer has synced yet).
    State {
        payload: String,
    },
    Finished,
    Ok,
    Stale,
    Error {
        message: String,
    },
}

impl Request {
    /// Encode as a single line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Hello { worker } => format!("hello worker={}", escape(worker)),
            Request::Claim { worker } => format!("claim worker={}", escape(worker)),
            Request::Heartbeat { worker, cell } => {
                format!("heartbeat worker={} cell={cell}", escape(worker))
            }
            Request::Complete {
                worker,
                cell,
                lease,
                payload,
            } => format!(
                "complete worker={} cell={cell} lease={lease} payload={}",
                escape(worker),
                escape(payload)
            ),
            Request::Fail {
                worker,
                cell,
                lease,
                error,
            } => format!(
                "fail worker={} cell={cell} lease={lease} error={}",
                escape(worker),
                escape(error)
            ),
            Request::Sync { worker, payload } => {
                format!("sync worker={} payload={}", escape(worker), escape(payload))
            }
            Request::Bye { worker } => format!("bye worker={}", escape(worker)),
        }
    }

    /// Parse one line. `Err` carries a human-readable reason.
    pub fn parse(line: &str) -> Result<Request, String> {
        let frame = Frame::parse(line)?;
        match frame.tag {
            "hello" => Ok(Request::Hello {
                worker: frame.text("worker")?,
            }),
            "claim" => Ok(Request::Claim {
                worker: frame.text("worker")?,
            }),
            "heartbeat" => Ok(Request::Heartbeat {
                worker: frame.text("worker")?,
                cell: frame.number("cell")? as usize,
            }),
            "complete" => Ok(Request::Complete {
                worker: frame.text("worker")?,
                cell: frame.number("cell")? as usize,
                lease: frame.number("lease")?,
                payload: frame.text("payload")?,
            }),
            "fail" => Ok(Request::Fail {
                worker: frame.text("worker")?,
                cell: frame.number("cell")? as usize,
                lease: frame.number("lease")?,
                error: frame.text("error")?,
            }),
            "sync" => Ok(Request::Sync {
                worker: frame.text("worker")?,
                payload: frame.text("payload")?,
            }),
            "bye" => Ok(Request::Bye {
                worker: frame.text("worker")?,
            }),
            other => Err(format!("unknown request tag `{other}`")),
        }
    }

    /// The worker id carried by every request variant.
    pub fn worker(&self) -> &str {
        match self {
            Request::Hello { worker }
            | Request::Claim { worker }
            | Request::Heartbeat { worker, .. }
            | Request::Complete { worker, .. }
            | Request::Fail { worker, .. }
            | Request::Sync { worker, .. }
            | Request::Bye { worker } => worker,
        }
    }
}

impl Response {
    /// Encode as a single line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Response::Welcome { version, cells } => {
                format!("welcome version={version} cells={cells}")
            }
            Response::Grant {
                cell,
                attempt,
                lease,
                heartbeat_ms,
                spec,
            } => format!(
                "grant cell={cell} attempt={attempt} lease={lease} heartbeat_ms={heartbeat_ms} spec={}",
                escape(spec)
            ),
            Response::Wait { ms } => format!("wait ms={ms}"),
            Response::State { payload } => format!("state payload={}", escape(payload)),
            Response::Finished => "finished".to_string(),
            Response::Ok => "ok".to_string(),
            Response::Stale => "stale".to_string(),
            Response::Error { message } => format!("error message={}", escape(message)),
        }
    }

    /// Parse one line. `Err` carries a human-readable reason.
    pub fn parse(line: &str) -> Result<Response, String> {
        let frame = Frame::parse(line)?;
        match frame.tag {
            "welcome" => Ok(Response::Welcome {
                version: frame.number("version")? as u32,
                cells: frame.number("cells")? as usize,
            }),
            "grant" => Ok(Response::Grant {
                cell: frame.number("cell")? as usize,
                attempt: frame.number("attempt")? as u32,
                lease: frame.number("lease")?,
                heartbeat_ms: frame.number("heartbeat_ms")?,
                spec: frame.text("spec")?,
            }),
            "wait" => Ok(Response::Wait {
                ms: frame.number("ms")?,
            }),
            "state" => Ok(Response::State {
                payload: frame.text("payload")?,
            }),
            "finished" => Ok(Response::Finished),
            "ok" => Ok(Response::Ok),
            "stale" => Ok(Response::Stale),
            "error" => Ok(Response::Error {
                message: frame.text("message")?,
            }),
            other => Err(format!("unknown response tag `{other}`")),
        }
    }
}

/// A parsed `tag key=value ...` line.
struct Frame<'a> {
    tag: &'a str,
    fields: Vec<(&'a str, &'a str)>,
}

impl<'a> Frame<'a> {
    fn parse(line: &'a str) -> Result<Frame<'a>, String> {
        let mut parts = line.split_whitespace();
        let tag = parts.next().ok_or_else(|| "empty frame".to_string())?;
        let mut fields = Vec::new();
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("field `{part}` is not key=value"))?;
            fields.push((key, value));
        }
        Ok(Frame { tag, fields })
    }

    fn raw(&self, key: &str) -> Result<&'a str, String> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("`{}` frame missing field `{key}`", self.tag))
    }

    fn text(&self, key: &str) -> Result<String, String> {
        unescape(self.raw(key)?).map_err(|e| format!("field `{key}`: {e}"))
    }

    fn number(&self, key: &str) -> Result<u64, String> {
        let raw = self.raw(key)?;
        raw.parse::<u64>()
            .map_err(|e| format!("field `{key}`={raw}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Hello {
                worker: "worker 1 = weird|id".into(),
            },
            Request::Claim { worker: "w".into() },
            Request::Heartbeat {
                worker: "w".into(),
                cell: 7,
            },
            Request::Complete {
                worker: "w".into(),
                cell: 3,
                lease: 19,
                payload: "line one\nline two = 0.5%".into(),
            },
            Request::Fail {
                worker: "w".into(),
                cell: 0,
                lease: 1,
                error: "boom: café".into(),
            },
            Request::Sync {
                worker: "w".into(),
                payload: "storesnap v1\npart idx=0 lifetime=3".into(),
            },
            Request::Bye { worker: "w".into() },
        ];
        for req in cases {
            let line = req.encode();
            assert!(!line.contains('\n'), "frame must be one line: {line:?}");
            assert_eq!(Request::parse(&line).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Welcome {
                version: PROTOCOL_VERSION,
                cells: 12,
            },
            Response::Grant {
                cell: 4,
                attempt: 2,
                lease: 11,
                heartbeat_ms: 20,
                spec: "machines=50 policy=grass trace=/tmp/a b.trace".into(),
            },
            Response::Wait { ms: 25 },
            Response::State {
                payload: format!("snap one{SYNC_SEPARATOR}snap two\nwith a second line"),
            },
            Response::State {
                payload: String::new(),
            },
            Response::Finished,
            Response::Ok,
            Response::Stale,
            Response::Error {
                message: "no such cell".into(),
            },
        ];
        for resp in cases {
            let line = resp.encode();
            assert!(!line.contains('\n'));
            assert_eq!(Response::parse(&line).unwrap(), resp);
        }
    }

    #[test]
    fn parse_rejects_malformed_frames() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("warble worker=w").is_err());
        assert!(Request::parse("heartbeat worker=w").is_err());
        assert!(Request::parse("heartbeat worker=w cell=notanumber").is_err());
        assert!(Response::parse("grant cell=1").is_err());
        assert!(Request::parse("complete worker w").is_err());
    }
}
