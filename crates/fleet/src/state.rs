//! The broker's cell-grid state machine: pending → leased → completed, with
//! lease expiry, capped retries and seeded backoff-with-jitter on re-dispatch.
//!
//! [`GridState`] is pure data over a caller-supplied millisecond clock — the
//! TCP broker wraps it in a mutex and feeds it wall-clock time, the property
//! tests feed it a synthetic clock and arbitrary event interleavings.

use std::collections::BTreeMap;

use crate::config::FleetConfig;
use crate::lease::LeaseTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lifecycle status of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Waiting to be dispatched (possibly gated by a backoff deadline).
    Pending,
    /// Held by a worker under an active lease.
    Leased,
    /// Result payload accepted; terminal.
    Completed,
    /// Ran out of retries; terminal.
    Exhausted,
}

impl CellStatus {
    pub fn is_terminal(self) -> bool {
        matches!(self, CellStatus::Completed | CellStatus::Exhausted)
    }
}

/// Outcome of a claim request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Claim {
    /// The worker now holds `cell` under `lease`; this is dispatch `attempt`.
    Granted {
        cell: usize,
        attempt: u32,
        lease: u64,
    },
    /// Nothing claimable right now; ask again in roughly `ms`.
    Wait { ms: u64 },
    /// Every cell is terminal — the worker can shut down.
    Finished,
}

/// Outcome of a completion report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// The payload was recorded; the cell is completed.
    Accepted,
    /// The lease was no longer valid (expired, re-dispatched or already
    /// completed); the payload was discarded.
    Stale,
}

/// Monotonic counters describing what the broker saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Grants handed out (first dispatches and re-dispatches).
    pub dispatched: u64,
    /// Cells completed by a worker this run.
    pub completed: u64,
    /// Cells pre-completed from the digest cache.
    pub cached: u64,
    /// Leases expired by heartbeat timeout.
    pub expired_leases: u64,
    /// Leases released because a worker connection dropped uncleanly.
    pub crash_releases: u64,
    /// Explicit `fail` reports from workers.
    pub failed_reports: u64,
    /// Completion reports rejected as stale.
    pub stale_completes: u64,
    /// Cells that ran out of retries.
    pub exhausted: u64,
    /// `sync` exchanges served (workers posting a learned-state snapshot).
    pub sync_exchanges: u64,
}

#[derive(Debug)]
struct Cell {
    status: CellStatus,
    /// Dispatches so far (== the `attempt` number of the current/last lease).
    attempts: u32,
    /// Earliest time the cell may be dispatched again (backoff gate).
    not_before_ms: u64,
    result: Option<String>,
}

/// The full grid: cell states, the lease table, retry/backoff policy.
#[derive(Debug)]
pub struct GridState {
    cells: Vec<Cell>,
    leases: LeaseTable,
    config: FleetConfig,
    jitter: StdRng,
    stats: FleetStats,
    /// Latest learned-state snapshot posted by each worker via `sync`.
    /// `BTreeMap` so the peer payload handed back is deterministically ordered.
    sync_board: BTreeMap<String, String>,
}

impl GridState {
    pub fn new(cells: usize, config: FleetConfig) -> Self {
        let jitter = StdRng::seed_from_u64(config.backoff_seed);
        GridState {
            cells: (0..cells)
                .map(|_| Cell {
                    status: CellStatus::Pending,
                    attempts: 0,
                    not_before_ms: 0,
                    result: None,
                })
                .collect(),
            leases: LeaseTable::new(),
            config,
            jitter,
            stats: FleetStats::default(),
            sync_board: BTreeMap::new(),
        }
    }

    /// Pre-complete `cell` with a cached result (never dispatched).
    ///
    /// Only valid before any claim touches the cell.
    pub fn preload(&mut self, cell: usize, result: String) {
        let c = &mut self.cells[cell];
        assert_eq!(
            c.status,
            CellStatus::Pending,
            "preload on a dispatched cell"
        );
        c.status = CellStatus::Completed;
        c.result = Some(result);
        self.stats.cached += 1;
    }

    /// A worker asks for a cell.
    pub fn claim(&mut self, worker: &str, now_ms: u64) -> Claim {
        if self.all_done() {
            return Claim::Finished;
        }
        let mut next_ready: Option<u64> = None;
        for i in 0..self.cells.len() {
            if self.cells[i].status != CellStatus::Pending {
                continue;
            }
            if self.cells[i].not_before_ms <= now_ms {
                let lease = self.leases.grant(worker, i, now_ms);
                let cell = &mut self.cells[i];
                cell.status = CellStatus::Leased;
                cell.attempts += 1;
                self.stats.dispatched += 1;
                return Claim::Granted {
                    cell: i,
                    attempt: cell.attempts,
                    lease,
                };
            }
            let wait = self.cells[i].not_before_ms - now_ms;
            next_ready = Some(next_ready.map_or(wait, |w| w.min(wait)));
        }
        // Either every pending cell is backoff-gated (wait until the nearest
        // gate opens) or all remaining cells are leased elsewhere (poll).
        Claim::Wait {
            ms: next_ready.unwrap_or(self.config.poll_ms).max(1),
        }
    }

    /// Refresh a lease. Returns `false` for stale heartbeats.
    pub fn heartbeat(&mut self, worker: &str, cell: usize, now_ms: u64) -> bool {
        if cell >= self.cells.len() {
            return false;
        }
        self.leases.heartbeat(worker, cell, now_ms)
    }

    /// A worker reports a finished cell.
    pub fn complete(
        &mut self,
        worker: &str,
        cell: usize,
        lease: u64,
        payload: String,
    ) -> Completion {
        if cell >= self.cells.len() {
            self.stats.stale_completes += 1;
            return Completion::Stale;
        }
        match self.leases.holder(cell) {
            Some(l) if l.worker == worker && l.id == lease => {
                self.leases.release_cell(cell);
                let c = &mut self.cells[cell];
                debug_assert_eq!(c.status, CellStatus::Leased);
                c.status = CellStatus::Completed;
                c.result = Some(payload);
                self.stats.completed += 1;
                Completion::Accepted
            }
            _ => {
                self.stats.stale_completes += 1;
                Completion::Stale
            }
        }
    }

    /// A worker reports it could not run a cell (the cell is re-dispatched,
    /// subject to the retry cap). Stale reports are ignored.
    pub fn fail(&mut self, worker: &str, cell: usize, lease: u64, now_ms: u64) {
        if cell >= self.cells.len() {
            return;
        }
        let held = matches!(
            self.leases.holder(cell),
            Some(l) if l.worker == worker && l.id == lease
        );
        if held {
            self.leases.release_cell(cell);
            self.stats.failed_reports += 1;
            self.requeue(cell, now_ms);
        }
    }

    /// Expire every lease whose heartbeat is older than the timeout and
    /// requeue the cells. Returns the expired cell indices.
    pub fn expire_leases(&mut self, now_ms: u64) -> Vec<usize> {
        let expired = self.leases.expired(now_ms, self.config.lease_timeout_ms);
        for &cell in &expired {
            self.leases.release_cell(cell);
            self.stats.expired_leases += 1;
            self.requeue(cell, now_ms);
        }
        expired
    }

    /// A worker's connection dropped uncleanly: release everything it held.
    pub fn release_worker(&mut self, worker: &str, now_ms: u64) -> Vec<usize> {
        let dropped = self.leases.release_worker(worker);
        let cells: Vec<usize> = dropped.iter().map(|l| l.cell).collect();
        for &cell in &cells {
            self.stats.crash_releases += 1;
            self.requeue(cell, now_ms);
        }
        cells
    }

    /// Back a failed cell off and return it to the pending pool, or mark it
    /// exhausted when its dispatch budget (`1 + max_retries`) is spent.
    fn requeue(&mut self, cell: usize, now_ms: u64) {
        let max_dispatches = 1 + self.config.max_retries;
        let c = &mut self.cells[cell];
        debug_assert_eq!(c.status, CellStatus::Leased);
        if c.attempts >= max_dispatches {
            c.status = CellStatus::Exhausted;
            self.stats.exhausted += 1;
            return;
        }
        // attempts >= 1 here (the cell was dispatched at least once).
        let exponent = (c.attempts - 1).min(16);
        let backoff = self.config.backoff_base_ms.saturating_mul(1u64 << exponent);
        let jitter = if self.config.backoff_jitter_ms > 0 {
            self.jitter.gen_range(0..=self.config.backoff_jitter_ms)
        } else {
            0
        };
        c.status = CellStatus::Pending;
        c.not_before_ms = now_ms.saturating_add(backoff).saturating_add(jitter);
    }

    /// True once every cell is completed or exhausted.
    pub fn all_done(&self) -> bool {
        self.cells.iter().all(|c| c.status.is_terminal())
    }

    /// Cells that ran out of retries.
    pub fn exhausted_cells(&self) -> Vec<usize> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.status == CellStatus::Exhausted)
            .map(|(i, _)| i)
            .collect()
    }

    /// Grid-order result payloads, or the exhausted cells if any cell failed
    /// for good. Call only after [`GridState::all_done`].
    pub fn results(&self) -> Result<Vec<String>, Vec<usize>> {
        debug_assert!(self.all_done());
        let exhausted = self.exhausted_cells();
        if !exhausted.is_empty() {
            return Err(exhausted);
        }
        Ok(self
            .cells
            .iter()
            .map(|c| c.result.clone().expect("completed cell has a result"))
            .collect())
    }

    pub fn statuses(&self) -> Vec<CellStatus> {
        self.cells.iter().map(|c| c.status).collect()
    }

    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// `(cell, worker)` pairs for active leases (status snapshots).
    pub fn active_leases(&self) -> Vec<(usize, String)> {
        self.leases.entries()
    }

    /// A worker posts its learned-state snapshot and receives every *other*
    /// worker's most recent snapshot, joined with
    /// [`SYNC_SEPARATOR`](crate::protocol::SYNC_SEPARATOR) in worker-name order
    /// (deterministic). An empty payload leaves the worker's previous snapshot —
    /// if any — on the board.
    pub fn sync(&mut self, worker: &str, payload: String) -> String {
        if !payload.is_empty() {
            self.sync_board.insert(worker.to_string(), payload);
        }
        self.stats.sync_exchanges += 1;
        let peers: Vec<&str> = self
            .sync_board
            .iter()
            .filter(|(name, _)| name.as_str() != worker)
            .map(|(_, snap)| snap.as_str())
            .collect();
        peers.join(&crate::protocol::SYNC_SEPARATOR.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(cells: usize) -> GridState {
        GridState::new(cells, FleetConfig::test_profile())
    }

    fn grant(state: &mut GridState, worker: &str, now: u64) -> (usize, u64) {
        match state.claim(worker, now) {
            Claim::Granted { cell, lease, .. } => (cell, lease),
            other => panic!("expected grant, got {other:?}"),
        }
    }

    #[test]
    fn happy_path_completes_in_grid_order() {
        let mut state = test_state(3);
        for i in 0..3 {
            let (cell, lease) = grant(&mut state, "w1", 10 * i as u64);
            assert_eq!(cell, i);
            assert_eq!(
                state.complete("w1", cell, lease, format!("r{cell}")),
                Completion::Accepted
            );
        }
        assert!(state.all_done());
        assert_eq!(state.claim("w2", 100), Claim::Finished);
        assert_eq!(state.results().unwrap(), vec!["r0", "r1", "r2"]);
        let stats = state.stats();
        assert_eq!(stats.dispatched, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.expired_leases + stats.crash_releases, 0);
    }

    #[test]
    fn lease_expiry_requeues_and_stale_complete_is_rejected() {
        let mut state = test_state(1);
        let (cell, old_lease) = grant(&mut state, "w1", 0);
        assert_eq!(cell, 0);

        // No heartbeat: the lease expires at the timeout.
        let timeout = FleetConfig::test_profile().lease_timeout_ms;
        assert!(state.expire_leases(timeout - 1).is_empty());
        assert_eq!(state.expire_leases(timeout), vec![0]);
        assert_eq!(state.statuses()[0], CellStatus::Pending);

        // The cell is backoff-gated, then re-dispatchable to another worker.
        let mut now = timeout;
        let (cell2, new_lease) = loop {
            match state.claim("w2", now) {
                Claim::Granted { cell, lease, .. } => break (cell, lease),
                Claim::Wait { ms } => now += ms,
                Claim::Finished => panic!("not finished"),
            }
        };
        assert_eq!(cell2, 0);
        assert_ne!(old_lease, new_lease);

        // The original worker's late completion is stale and changes nothing.
        assert_eq!(
            state.complete("w1", 0, old_lease, "stale".into()),
            Completion::Stale
        );
        assert_eq!(
            state.complete("w2", 0, new_lease, "good".into()),
            Completion::Accepted
        );
        assert_eq!(state.results().unwrap(), vec!["good"]);
        let stats = state.stats();
        assert_eq!(stats.expired_leases, 1);
        assert_eq!(stats.stale_completes, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn heartbeats_keep_a_lease_alive() {
        let mut state = test_state(1);
        let (_, lease) = grant(&mut state, "w1", 0);
        let timeout = FleetConfig::test_profile().lease_timeout_ms;
        for t in (0..5 * timeout).step_by(20) {
            assert!(state.heartbeat("w1", 0, t));
            assert!(state.expire_leases(t).is_empty());
        }
        assert_eq!(
            state.complete("w1", 0, lease, "ok".into()),
            Completion::Accepted
        );
    }

    #[test]
    fn retries_are_capped_and_exhaustion_is_terminal() {
        let mut config = FleetConfig::test_profile();
        config.max_retries = 2;
        let mut state = GridState::new(1, config.clone());
        let mut now = 0u64;
        // 1 + max_retries dispatches, each crashing.
        for attempt in 1..=3u32 {
            let (cell, granted_attempt) = loop {
                match state.claim("w1", now) {
                    Claim::Granted { cell, attempt, .. } => break (cell, attempt),
                    Claim::Wait { ms } => now += ms,
                    Claim::Finished => panic!("finished too early"),
                }
            };
            assert_eq!((cell, granted_attempt), (0, attempt));
            state.release_worker("w1", now);
        }
        assert!(state.all_done());
        assert_eq!(state.statuses()[0], CellStatus::Exhausted);
        assert_eq!(state.claim("w1", now), Claim::Finished);
        assert_eq!(state.results().unwrap_err(), vec![0]);
        assert_eq!(state.stats().exhausted, 1);
        assert_eq!(state.stats().dispatched, 3);
    }

    #[test]
    fn backoff_schedule_is_deterministic_for_a_fixed_seed() {
        let schedule = |seed: u64| -> Vec<u64> {
            let mut config = FleetConfig::test_profile();
            config.backoff_seed = seed;
            config.max_retries = 4;
            let mut state = GridState::new(1, config);
            let mut gates = Vec::new();
            let mut now = 0u64;
            for _ in 0..4 {
                loop {
                    match state.claim("w", now) {
                        Claim::Granted { .. } => break,
                        Claim::Wait { ms } => now += ms,
                        Claim::Finished => panic!(),
                    }
                }
                state.release_worker("w", now);
                gates.push(now);
            }
            gates
        };
        assert_eq!(schedule(7), schedule(7));
        // Exponential base: successive gaps grow (jitter is bounded by 5ms,
        // base doubles 5, 10, 20 under the test profile).
        let gates = schedule(7);
        assert!(gates.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn preloaded_cells_are_never_dispatched() {
        let mut state = test_state(2);
        state.preload(0, "cached".into());
        let (cell, lease) = grant(&mut state, "w1", 0);
        assert_eq!(cell, 1);
        state.complete("w1", 1, lease, "fresh".into());
        assert!(state.all_done());
        assert_eq!(state.results().unwrap(), vec!["cached", "fresh"]);
        assert_eq!(state.stats().cached, 1);
        assert_eq!(state.stats().dispatched, 1);
    }

    #[test]
    fn fully_preloaded_grid_is_immediately_finished() {
        let mut state = test_state(2);
        state.preload(0, "a".into());
        state.preload(1, "b".into());
        assert!(state.all_done());
        assert_eq!(state.claim("w", 0), Claim::Finished);
    }

    #[test]
    fn double_complete_of_same_lease_is_stale() {
        let mut state = test_state(1);
        let (_, lease) = grant(&mut state, "w1", 0);
        assert_eq!(
            state.complete("w1", 0, lease, "first".into()),
            Completion::Accepted
        );
        assert_eq!(
            state.complete("w1", 0, lease, "second".into()),
            Completion::Stale
        );
        assert_eq!(state.results().unwrap(), vec!["first"]);
    }

    #[test]
    fn sync_board_returns_peers_in_deterministic_order() {
        let mut state = test_state(1);
        // First syncer sees no peers.
        assert_eq!(state.sync("w2", "snap-two".into()), "");
        // A second worker sees the first's snapshot; names order the board.
        assert_eq!(state.sync("w1", "snap-one".into()), "snap-two");
        let sep = crate::protocol::SYNC_SEPARATOR;
        assert_eq!(
            state.sync("w3", "snap-three".into()),
            format!("snap-one{sep}snap-two")
        );
        // Re-sync replaces the worker's own entry; empty payload keeps it.
        assert_eq!(
            state.sync("w2", "snap-two-b".into()),
            format!("snap-one{sep}snap-three")
        );
        assert_eq!(
            state.sync("w1", String::new()),
            format!("snap-two-b{sep}snap-three")
        );
        assert_eq!(state.stats().sync_exchanges, 5);
    }
}
