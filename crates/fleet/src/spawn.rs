//! The local spawn harness: broker in-process plus N worker child processes —
//! the first-cut "fleet of machines" (`repro fleet run --workers N`).

use crate::broker::{serve_broker, FleetOutcome};
use crate::config::FleetConfig;
use crate::FleetError;
use std::net::SocketAddr;
use std::process::{Child, Command};
use std::thread;
use std::time::{Duration, Instant};

/// The outcome of a spawned fleet run plus per-worker exit codes.
#[derive(Debug)]
pub struct FleetRunReport {
    pub outcome: FleetOutcome,
    /// Exit code per worker (`None` when the process was killed by a signal
    /// or had to be reaped forcibly at shutdown).
    pub worker_exit_codes: Vec<Option<i32>>,
}

/// Serve the grid on an ephemeral port, spawn `workers` child processes via
/// `make_worker(index, broker_addr)`, and wait for every cell to finish.
///
/// Fails with [`FleetError::WorkersExited`] when all workers die while cells
/// are still outstanding (instead of hanging forever on an empty fleet).
pub fn run_fleet(
    specs: Vec<String>,
    cached: Vec<Option<String>>,
    config: FleetConfig,
    workers: usize,
    mut make_worker: impl FnMut(usize, SocketAddr) -> Command,
) -> Result<FleetRunReport, FleetError> {
    let poll = Duration::from_millis(config.poll_ms.max(1));
    let handle = serve_broker(specs, cached, config)?;
    let addr = handle.addr();

    if workers == 0 && !handle.done() {
        return Err(FleetError::WorkersExited(0));
    }

    let mut children: Vec<Option<Child>> = Vec::with_capacity(workers);
    for i in 0..workers {
        match make_worker(i, addr).spawn() {
            Ok(child) => children.push(Some(child)),
            Err(e) => {
                kill_all(&mut children);
                return Err(FleetError::Io(e));
            }
        }
    }
    let mut exit_codes: Vec<Option<i32>> = vec![None; workers];

    // Watch for the all-workers-dead-with-work-left condition.
    while !handle.done() {
        let mut alive = 0;
        for (i, slot) in children.iter_mut().enumerate() {
            if let Some(child) = slot {
                match child.try_wait() {
                    Ok(Some(status)) => {
                        exit_codes[i] = status.code();
                        *slot = None;
                    }
                    Ok(None) => alive += 1,
                    Err(_) => alive += 1,
                }
            }
        }
        if alive == 0 && !handle.done() {
            return Err(FleetError::WorkersExited(workers));
        }
        thread::sleep(poll);
    }

    let outcome = handle.wait()?;

    // Workers exit on their own after `finished`; give them a grace window,
    // then reap forcibly so the harness never leaks processes.
    let deadline = Instant::now() + Duration::from_secs(10);
    for (i, slot) in children.iter_mut().enumerate() {
        if let Some(child) = slot {
            loop {
                match child.try_wait() {
                    Ok(Some(status)) => {
                        exit_codes[i] = status.code();
                        break;
                    }
                    Ok(None) if Instant::now() < deadline => thread::sleep(poll),
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
    }

    Ok(FleetRunReport {
        outcome,
        worker_exit_codes: exit_codes,
    })
}

fn kill_all(children: &mut [Option<Child>]) {
    for slot in children.iter_mut().flatten() {
        let _ = slot.kill();
        let _ = slot.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_cached_grid_needs_no_workers() {
        let report = run_fleet(
            vec!["a".into(), "b".into()],
            vec![Some("ra".into()), Some("rb".into())],
            FleetConfig::test_profile(),
            0,
            |_i, _addr| unreachable!("no workers should be spawned"),
        )
        .unwrap();
        assert_eq!(report.outcome.results, vec!["ra", "rb"]);
        assert!(report.worker_exit_codes.is_empty());
    }

    #[test]
    fn zero_workers_with_outstanding_cells_is_an_error() {
        let err = run_fleet(
            vec!["a".into()],
            vec![None],
            FleetConfig::test_profile(),
            0,
            |_i, _addr| unreachable!(),
        )
        .unwrap_err();
        assert!(matches!(err, FleetError::WorkersExited(0)), "{err}");
    }

    #[test]
    fn workers_that_exit_immediately_fail_the_run() {
        // `true` exits instantly without speaking the protocol: the harness
        // must detect the dead fleet instead of hanging.
        let err = run_fleet(
            vec!["a".into()],
            vec![None],
            FleetConfig::test_profile(),
            2,
            |_i, _addr| Command::new("true"),
        )
        .unwrap_err();
        assert!(matches!(err, FleetError::WorkersExited(2)), "{err}");
    }
}
