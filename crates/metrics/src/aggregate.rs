//! Aggregation of job outcomes into the statistics the paper reports.
//!
//! Every evaluation figure reports a *percentage improvement of GRASS (or an ablation)
//! over a baseline*, averaged within a bin of jobs:
//!
//! * deadline-bound jobs: improvement in average accuracy (fraction of input tasks
//!   completed by the deadline),
//! * error-bound jobs: reduction in average job duration (speed-up).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use grass_core::{Bound, JobOutcome, JobSizeBin};

/// Which quantity a comparison is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Average accuracy (deadline-bound jobs) — higher is better.
    Accuracy,
    /// Average job duration (error-bound jobs) — lower is better.
    Duration,
}

impl Metric {
    /// The natural metric for a job with the given bound.
    pub fn for_bound(bound: &Bound) -> Metric {
        match bound {
            Bound::Deadline(_) => Metric::Accuracy,
            Bound::Error(_) => Metric::Duration,
        }
    }

    /// Extract the metric value from an outcome.
    pub fn value(&self, outcome: &JobOutcome) -> f64 {
        match self {
            Metric::Accuracy => outcome.accuracy(),
            Metric::Duration => outcome.duration(),
        }
    }
}

/// Mean of a metric over a set of outcomes. Returns `None` for an empty set.
pub fn mean_metric(outcomes: &[&JobOutcome], metric: Metric) -> Option<f64> {
    if outcomes.is_empty() {
        return None;
    }
    Some(outcomes.iter().map(|o| metric.value(o)).sum::<f64>() / outcomes.len() as f64)
}

/// Percentage improvement of `candidate` over `baseline` for the given metric:
/// positive means the candidate is better.
///
/// * Accuracy: `(candidate − baseline) / baseline × 100`.
/// * Duration: `(baseline − candidate) / baseline × 100` (a speed-up).
///
/// A non-positive baseline (e.g. a deadline job that completed zero tasks) makes the
/// ratio meaningless; it is reported as `None` — distinct from "no improvement" — and
/// rendered as `n/a` in the figure tables.
pub fn improvement_percent(baseline: f64, candidate: f64, metric: Metric) -> Option<f64> {
    if baseline <= 0.0 {
        return None;
    }
    Some(match metric {
        Metric::Accuracy => (candidate - baseline) / baseline * 100.0,
        Metric::Duration => (baseline - candidate) / baseline * 100.0,
    })
}

/// A keyed collection of outcomes (e.g. one entry per policy), convenient for the
/// per-bin comparisons every figure needs.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct OutcomeSet {
    outcomes: Vec<JobOutcome>,
}

impl OutcomeSet {
    /// Wrap a vector of outcomes.
    pub fn new(outcomes: Vec<JobOutcome>) -> Self {
        OutcomeSet { outcomes }
    }

    /// All outcomes.
    pub fn all(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Outcomes restricted to one job-size bin.
    pub fn in_size_bin(&self, bin: JobSizeBin) -> Vec<&JobOutcome> {
        self.outcomes
            .iter()
            .filter(|o| JobSizeBin::of(o.input_tasks) == bin)
            .collect()
    }

    /// Outcomes restricted by an arbitrary predicate.
    pub fn filtered(&self, pred: impl Fn(&JobOutcome) -> bool) -> Vec<&JobOutcome> {
        self.outcomes.iter().filter(|o| pred(o)).collect()
    }

    /// Mean of the metric over all outcomes.
    pub fn mean(&self, metric: Metric) -> Option<f64> {
        let refs: Vec<&JobOutcome> = self.outcomes.iter().collect();
        mean_metric(&refs, metric)
    }

    /// Mean of the metric per size bin.
    pub fn mean_by_size_bin(&self, metric: Metric) -> BTreeMap<JobSizeBin, f64> {
        let mut out = BTreeMap::new();
        for bin in JobSizeBin::all() {
            if let Some(m) = mean_metric(&self.in_size_bin(bin), metric) {
                out.insert(bin, m);
            }
        }
        out
    }
}

/// Per-bin improvement of one policy's outcomes over a baseline's, matched bin-wise.
/// Bins with no jobs, or with a degenerate (non-positive) baseline mean, are absent.
pub fn improvement_by_size_bin(
    baseline: &OutcomeSet,
    candidate: &OutcomeSet,
    metric: Metric,
) -> BTreeMap<JobSizeBin, f64> {
    let mut out = BTreeMap::new();
    for bin in JobSizeBin::all() {
        let base = mean_metric(&baseline.in_size_bin(bin), metric);
        let cand = mean_metric(&candidate.in_size_bin(bin), metric);
        if let (Some(b), Some(c)) = (base, cand) {
            if let Some(improvement) = improvement_percent(b, c, metric) {
                out.insert(bin, improvement);
            }
        }
    }
    out
}

/// Overall improvement of one policy over a baseline. `None` when either set is
/// empty or the baseline mean is degenerate (non-positive).
pub fn overall_improvement(
    baseline: &OutcomeSet,
    candidate: &OutcomeSet,
    metric: Metric,
) -> Option<f64> {
    improvement_percent(baseline.mean(metric)?, candidate.mean(metric)?, metric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grass_core::JobId;

    fn outcome(tasks: usize, completed: usize, duration: f64, bound: Bound) -> JobOutcome {
        JobOutcome {
            job: JobId(1),
            policy: "X".to_string(),
            bound,
            input_tasks: tasks,
            total_tasks: tasks,
            dag_length: 1,
            arrival: 0.0,
            finish: duration,
            completed_input_tasks: completed,
            completed_tasks: completed,
            speculative_copies: 0,
            killed_copies: 0,
            slot_seconds: 0.0,
            avg_wave_width: 1.0,
            avg_cluster_utilization: 0.5,
            avg_estimation_accuracy: 0.7,
        }
    }

    #[test]
    fn metric_selection_and_extraction() {
        assert_eq!(Metric::for_bound(&Bound::Deadline(5.0)), Metric::Accuracy);
        assert_eq!(Metric::for_bound(&Bound::Error(0.1)), Metric::Duration);
        let o = outcome(10, 5, 20.0, Bound::Deadline(20.0));
        assert!((Metric::Accuracy.value(&o) - 0.5).abs() < 1e-12);
        assert!((Metric::Duration.value(&o) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn improvement_signs() {
        // Accuracy 0.5 -> 0.75 is a 50% improvement.
        assert!((improvement_percent(0.5, 0.75, Metric::Accuracy).unwrap() - 50.0).abs() < 1e-9);
        // Duration 100 -> 60 is a 40% speed-up.
        assert!((improvement_percent(100.0, 60.0, Metric::Duration).unwrap() - 40.0).abs() < 1e-9);
        // Regressions are negative.
        assert!(improvement_percent(0.5, 0.4, Metric::Accuracy).unwrap() < 0.0);
        assert!(improvement_percent(100.0, 120.0, Metric::Duration).unwrap() < 0.0);
        // A degenerate baseline is not "no improvement" — it has no defined ratio.
        assert_eq!(improvement_percent(0.0, 1.0, Metric::Accuracy), None);
        assert_eq!(improvement_percent(-3.0, 1.0, Metric::Duration), None);
    }

    #[test]
    fn degenerate_baselines_propagate_as_none() {
        // A baseline whose every job completed zero tasks has mean accuracy 0.
        let baseline = OutcomeSet::new(vec![outcome(10, 0, 10.0, Bound::Deadline(10.0))]);
        let candidate = OutcomeSet::new(vec![outcome(10, 5, 10.0, Bound::Deadline(10.0))]);
        assert_eq!(
            overall_improvement(&baseline, &candidate, Metric::Accuracy),
            None
        );
        let by_bin = improvement_by_size_bin(&baseline, &candidate, Metric::Accuracy);
        assert!(
            by_bin.is_empty(),
            "degenerate bins must be absent: {by_bin:?}"
        );
    }

    #[test]
    fn outcome_set_binning_and_means() {
        let set = OutcomeSet::new(vec![
            outcome(10, 5, 10.0, Bound::Deadline(10.0)),
            outcome(10, 10, 10.0, Bound::Deadline(10.0)),
            outcome(100, 50, 10.0, Bound::Deadline(10.0)),
            outcome(1000, 250, 10.0, Bound::Deadline(10.0)),
        ]);
        assert_eq!(set.len(), 4);
        assert_eq!(set.in_size_bin(JobSizeBin::Small).len(), 2);
        assert_eq!(set.in_size_bin(JobSizeBin::Medium).len(), 1);
        assert_eq!(set.in_size_bin(JobSizeBin::Large).len(), 1);
        let by_bin = set.mean_by_size_bin(Metric::Accuracy);
        assert!((by_bin[&JobSizeBin::Small] - 0.75).abs() < 1e-12);
        assert!((by_bin[&JobSizeBin::Medium] - 0.5).abs() < 1e-12);
        assert!((by_bin[&JobSizeBin::Large] - 0.25).abs() < 1e-12);
        assert!((set.mean(Metric::Accuracy).unwrap() - 0.5625).abs() < 1e-12);
        assert!(OutcomeSet::default().is_empty());
        assert!(OutcomeSet::default().mean(Metric::Accuracy).is_none());
    }

    #[test]
    fn per_bin_improvement() {
        let baseline = OutcomeSet::new(vec![
            outcome(10, 4, 0.0, Bound::Deadline(10.0)),
            outcome(100, 40, 0.0, Bound::Deadline(10.0)),
        ]);
        let candidate = OutcomeSet::new(vec![
            outcome(10, 6, 0.0, Bound::Deadline(10.0)),
            outcome(100, 60, 0.0, Bound::Deadline(10.0)),
        ]);
        let imp = improvement_by_size_bin(&baseline, &candidate, Metric::Accuracy);
        assert!((imp[&JobSizeBin::Small] - 50.0).abs() < 1e-9);
        assert!((imp[&JobSizeBin::Medium] - 50.0).abs() < 1e-9);
        assert!(!imp.contains_key(&JobSizeBin::Large));
        let overall = overall_improvement(&baseline, &candidate, Metric::Accuracy).unwrap();
        assert!((overall - 50.0).abs() < 1e-9);
    }

    #[test]
    fn duration_improvement_for_error_jobs() {
        let baseline = OutcomeSet::new(vec![outcome(10, 9, 100.0, Bound::Error(0.1))]);
        let candidate = OutcomeSet::new(vec![outcome(10, 9, 70.0, Bound::Error(0.1))]);
        let overall = overall_improvement(&baseline, &candidate, Metric::Duration).unwrap();
        assert!((overall - 30.0).abs() < 1e-9);
    }

    #[test]
    fn filtered_predicate() {
        let set = OutcomeSet::new(vec![
            outcome(10, 5, 10.0, Bound::Error(0.1)),
            outcome(10, 5, 10.0, Bound::Error(0.25)),
        ]);
        let tight = set.filtered(|o| matches!(o.bound, Bound::Error(e) if e < 0.2));
        assert_eq!(tight.len(), 1);
    }
}
