//! # grass-metrics
//!
//! Outcome aggregation, binning and report rendering for the GRASS (NSDI '14)
//! reproduction. The paper reports percentage improvements in average accuracy
//! (deadline-bound jobs) and average duration (error-bound jobs), sliced by job-size
//! bin, bound tightness, DAG length and learning configuration; this crate provides
//! those computations plus simple text/CSV tables for the `repro` binary.

pub mod aggregate;
pub mod report;

pub use aggregate::{
    improvement_by_size_bin, improvement_percent, mean_metric, overall_improvement, Metric,
    OutcomeSet,
};
pub use report::{Cell, Report, Series, Table};
