//! Plain-text and CSV rendering of experiment results.
//!
//! Every experiment in `grass-experiments` produces a [`Table`]: a titled grid of rows
//! and columns mirroring one figure or table of the paper. The `repro` binary prints
//! these as aligned text; benches and tests consume the numeric cells directly.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A cell value: either a number (rendered with one decimal), free text, or a
/// missing/not-applicable value (rendered as `n/a`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    /// Numeric cell.
    Number(f64),
    /// Text cell.
    Text(String),
    /// Missing value.
    Empty,
}

impl Cell {
    /// Numeric value, if this is a number cell.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Cell::Number(v) => Some(*v),
            _ => None,
        }
    }

    fn render(&self) -> String {
        match self {
            Cell::Number(v) => format!("{v:.1}"),
            Cell::Text(s) => s.clone(),
            Cell::Empty => "n/a".to_string(),
        }
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Number(v)
    }
}

impl From<&str> for Cell {
    fn from(v: &str) -> Self {
        Cell::Text(v.to_string())
    }
}

impl From<String> for Cell {
    fn from(v: String) -> Self {
        Cell::Text(v)
    }
}

/// A titled table of results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. "Figure 5a: Facebook workload, Hadoop, deadline-bound").
    pub title: String,
    /// Column headers; the first column is the row label.
    pub columns: Vec<String>,
    /// Rows: a label plus one cell per non-label column.
    pub rows: Vec<(String, Vec<Cell>)>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, columns: Vec<&str>) -> Self {
        Table {
            title: title.into(),
            columns: columns.into_iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<Cell>) {
        self.rows.push((label.into(), cells));
    }

    /// Look up a cell by row label and column name.
    pub fn cell(&self, row: &str, column: &str) -> Option<&Cell> {
        let col_idx = self.columns.iter().position(|c| c == column)?;
        if col_idx == 0 {
            return None;
        }
        let (_, cells) = self.rows.iter().find(|(label, _)| label == row)?;
        cells.get(col_idx - 1)
    }

    /// Numeric value of a cell, if present.
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        self.cell(row, column)?.as_number()
    }

    /// Render as aligned plain text.
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered_rows: Vec<(String, Vec<String>)> = self
            .rows
            .iter()
            .map(|(label, cells)| (label.clone(), cells.iter().map(Cell::render).collect()))
            .collect();
        for (label, cells) in &rendered_rows {
            if let Some(w) = widths.first_mut() {
                *w = (*w).max(label.len());
            }
            for (i, c) in cells.iter().enumerate() {
                if let Some(w) = widths.get_mut(i + 1) {
                    *w = (*w).max(c.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{:<width$}", c, width = w))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for (label, cells) in &rendered_rows {
            let label_width = widths.first().copied().unwrap_or(0);
            let mut fields = vec![format!("{:<width$}", label, width = label_width)];
            for (i, c) in cells.iter().enumerate() {
                let w = widths.get(i + 1).copied().unwrap_or(8);
                fields.push(format!("{:>width$}", c, width = w));
            }
            out.push_str(&fields.join("  "));
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for (label, cells) in &self.rows {
            let mut fields = vec![label.clone()];
            fields.extend(cells.iter().map(Cell::render));
            out.push_str(&fields.join(","));
            out.push('\n');
        }
        out
    }
}

/// A labelled series of (x, y) points — the other shape experiments produce (e.g. a
/// Hill plot or the Figure 4 sweep).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series name.
    pub name: String,
    /// Points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// New series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }

    /// Minimum y value.
    pub fn min_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, y)| *y)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Maximum y value.
    pub fn max_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, y)| *y)
            .max_by(|a, b| a.total_cmp(b))
    }
}

/// A complete experiment report: tables plus optional series, keyed by subfigure id.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Report {
    /// Identifier such as "fig5" or "table1".
    pub id: String,
    /// Tables, in presentation order.
    pub tables: Vec<Table>,
    /// Series, keyed by name.
    pub series: BTreeMap<String, Series>,
}

impl Report {
    /// New empty report.
    pub fn new(id: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            ..Default::default()
        }
    }

    /// Add a table.
    pub fn add_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Add a series.
    pub fn add_series(&mut self, series: Series) {
        self.series.insert(series.name.clone(), series);
    }

    /// Render everything as text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# Experiment {}\n\n", self.id));
        for t in &self.tables {
            out.push_str(&t.render_text());
            out.push('\n');
        }
        for s in self.series.values() {
            out.push_str(&format!(
                "## Series: {} ({} points)\n",
                s.name,
                s.points.len()
            ));
            for (x, y) in &s.points {
                out.push_str(&format!("  {x:>10.3}  {y:>10.3}\n"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("Figure X", vec!["Job Bin", "LATE", "Mantri"]);
        t.push_row("<50", vec![Cell::Number(12.34), Cell::Number(8.0)]);
        t.push_row("51-500", vec![Cell::Number(20.0), Cell::Empty]);
        t
    }

    #[test]
    fn cell_conversions_and_rendering() {
        assert_eq!(Cell::from(3.0).as_number(), Some(3.0));
        assert_eq!(Cell::from("abc"), Cell::Text("abc".to_string()));
        assert_eq!(Cell::from("x".to_string()).as_number(), None);
        assert_eq!(Cell::Empty.render(), "n/a");
        assert_eq!(Cell::Number(1.25).render(), "1.2");
    }

    #[test]
    fn table_lookup() {
        let t = sample_table();
        assert!((t.value("<50", "LATE").unwrap() - 12.34).abs() < 1e-12);
        assert!((t.value("<50", "Mantri").unwrap() - 8.0).abs() < 1e-12);
        assert!(t.value("51-500", "Mantri").is_none());
        assert!(t.value("missing", "LATE").is_none());
        assert!(t.value("<50", "missing").is_none());
        assert!(t.cell("<50", "Job Bin").is_none());
    }

    #[test]
    fn text_and_csv_rendering() {
        let t = sample_table();
        let text = t.render_text();
        assert!(text.contains("Figure X"));
        assert!(text.contains("<50"));
        assert!(text.contains("12.3"));
        let csv = t.render_csv();
        assert!(csv.starts_with("Job Bin,LATE,Mantri"));
        assert!(csv.contains("51-500,20.0,n/a"));
    }

    #[test]
    fn series_extrema() {
        let s = Series::new("ratio", vec![(1.0, 2.0), (2.0, 1.5), (3.0, 4.0)]);
        assert_eq!(s.min_y(), Some(1.5));
        assert_eq!(s.max_y(), Some(4.0));
        assert!(Series::new("empty", vec![]).min_y().is_none());
    }

    #[test]
    fn report_roundup() {
        let mut r = Report::new("fig5");
        r.add_table(sample_table());
        r.add_series(Series::new("hill", vec![(10.0, 1.3)]));
        let text = r.render_text();
        assert!(text.contains("# Experiment fig5"));
        assert!(text.contains("Series: hill"));
        assert_eq!(r.tables.len(), 1);
        assert_eq!(r.series.len(), 1);
    }
}
