//! End-to-end fleet tests: a broker plus workers (threads or real `repro`
//! processes) must reproduce the single-process sweep digest byte for byte —
//! including across worker crashes, lease expiry and fully-cached re-runs.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use grass_experiments::{
    run_sweep, ExpConfig, FleetPlan, PolicyKind, SweepCellRunner, SweepConfig,
};
use grass_fleet::{run_worker, serve_broker, DigestCache, FleetConfig};
use grass_sim::ClusterConfig;
use grass_trace::{open_workload_source, record_workload, TraceFormat, WorkloadMeta};
use grass_workload::{BoundSpec, Framework, StreamedWorkload, TraceProfile, WorkloadConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grass-fleet-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn record_trace(dir: &Path) -> PathBuf {
    let config = WorkloadConfig::new(TraceProfile::facebook(Framework::Spark))
        .with_jobs(6)
        .with_bound(BoundSpec::paper_errors());
    let trace = record_workload(&config, 7, 11, "late", 10, 4);
    let path = dir.join("workload.trace");
    trace.save_as(&path, TraceFormat::Text).unwrap();
    path
}

/// A 2×2 grid over the recorded trace: small enough for CI, big enough that
/// grid-order assembly matters.
fn grid(meta: &WorkloadMeta, source: &StreamedWorkload) -> SweepConfig {
    let base = ExpConfig {
        jobs_per_run: source.total_jobs(),
        seeds: vec![meta.sim_seed],
        cluster: ClusterConfig {
            machines: meta.machines,
            slots_per_machine: meta.slots_per_machine,
            ..ClusterConfig::ec2_scaled()
        },
        ..ExpConfig::full()
    };
    SweepConfig {
        machines: vec![6, 10],
        policies: vec![PolicyKind::Late, PolicyKind::GsOnly],
        baseline: PolicyKind::Late,
        threads: 1,
        base,
    }
}

fn plan_for(trace_path: &Path) -> (FleetPlan, String) {
    let (meta, source) = open_workload_source(trace_path).unwrap();
    let config = grid(&meta, &source);
    let expected = run_sweep(&source, &config).digest();
    let plan = FleetPlan::new(trace_path, meta, source, config).unwrap();
    (plan, expected)
}

#[test]
fn fleet_of_thread_workers_reproduces_the_sweep_digest() {
    let dir = temp_dir("threads");
    let trace_path = record_trace(&dir);
    let (plan, expected) = plan_for(&trace_path);

    let specs = plan.specs().unwrap();
    let cells = specs.len();
    let cached = vec![None; cells];
    let handle = serve_broker(specs, cached, FleetConfig::test_profile()).unwrap();
    let addr = handle.addr();
    let started = Instant::now();
    let workers: Vec<_> = (0..2)
        .map(|w| {
            thread::spawn(move || {
                let runner = SweepCellRunner::new();
                run_worker(addr, &format!("w{w}"), &runner)
            })
        })
        .collect();
    let outcome = handle.wait().unwrap();
    let mut completed = 0;
    for w in workers {
        completed += w.join().unwrap().unwrap().completed;
    }
    assert_eq!(completed, cells);

    let merged = plan.merge(&outcome.results, started.elapsed()).unwrap();
    assert_eq!(merged.digest(), expected);
    assert_eq!(outcome.stats.completed as usize, cells);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hung_worker_loses_its_lease_and_the_digest_survives() {
    let dir = temp_dir("hung");
    let trace_path = record_trace(&dir);
    let (plan, expected) = plan_for(&trace_path);

    let specs = plan.specs().unwrap();
    let cells = specs.len();
    let handle = serve_broker(specs, vec![None; cells], FleetConfig::test_profile()).unwrap();
    let addr = handle.addr();

    // A raw client claims a cell and then hangs: the connection stays open but
    // no heartbeats arrive, so only the lease-expiry ticker can reclaim it.
    let hung = TcpStream::connect(addr).unwrap();
    {
        let mut writer = hung.try_clone().unwrap();
        let mut reader = BufReader::new(hung.try_clone().unwrap());
        let mut line = String::new();
        writer.write_all(b"hello worker=hung\n").unwrap();
        reader.read_line(&mut line).unwrap();
        line.clear();
        writer.write_all(b"claim worker=hung\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("grant "), "got {line:?}");
    }

    // Wait for the broker to expire the silent lease before any healthy
    // worker shows up, so the test pins expiry (not crash release).
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.snapshot().stats.expired_leases == 0 {
        assert!(Instant::now() < deadline, "lease never expired");
        thread::sleep(Duration::from_millis(10));
    }

    let started = Instant::now();
    let worker = thread::spawn(move || {
        let runner = SweepCellRunner::new();
        run_worker(addr, "healthy", &runner)
    });
    let outcome = handle.wait().unwrap();
    worker.join().unwrap().unwrap();
    drop(hung);

    let merged = plan.merge(&outcome.results, started.elapsed()).unwrap();
    assert_eq!(merged.digest(), expected);
    assert!(outcome.stats.expired_leases >= 1);
    assert!(outcome.stats.dispatched as usize > cells);
    let _ = std::fs::remove_dir_all(&dir);
}

fn spawn_worker(addr: std::net::SocketAddr, id: &str, stall_ms: u64) -> std::process::Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.arg("fleet")
        .arg("work")
        .arg("--connect")
        .arg(addr.to_string())
        .arg("--id")
        .arg(id)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if stall_ms > 0 {
        cmd.arg("--stall-ms").arg(stall_ms.to_string());
    }
    cmd.spawn().unwrap()
}

#[test]
fn sigkilled_worker_is_rescheduled_and_the_digest_survives() {
    let dir = temp_dir("sigkill");
    let trace_path = record_trace(&dir);
    let (plan, expected) = plan_for(&trace_path);

    let specs = plan.specs().unwrap();
    let cells = specs.len();
    let handle = serve_broker(specs, vec![None; cells], FleetConfig::test_profile()).unwrap();
    let addr = handle.addr();

    // The victim stalls long before running its first cell, so it is reliably
    // mid-cell (holding a lease, heartbeating) when the SIGKILL lands.
    let mut victim = spawn_worker(addr, "victim", 30_000);
    let deadline = Instant::now() + Duration::from_secs(30);
    while !handle
        .snapshot()
        .leases
        .iter()
        .any(|(_, worker)| worker == "victim")
    {
        assert!(Instant::now() < deadline, "victim never claimed a cell");
        thread::sleep(Duration::from_millis(10));
    }
    victim.kill().unwrap(); // SIGKILL on unix
    victim.wait().unwrap();

    let started = Instant::now();
    let mut healthy = spawn_worker(addr, "healthy", 0);
    let outcome = handle.wait().unwrap();
    healthy.wait().unwrap();

    let merged = plan.merge(&outcome.results, started.elapsed()).unwrap();
    assert_eq!(merged.digest(), expected);
    // The victim's cell came back via crash release (broker saw the dropped
    // connection) or lease expiry, and was dispatched at least twice.
    assert!(outcome.stats.crash_releases + outcome.stats.expired_leases >= 1);
    assert!(outcome.stats.dispatched as usize > cells);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fully_cached_grid_replays_without_workers() {
    let dir = temp_dir("cached");
    let trace_path = record_trace(&dir);
    let (plan, expected) = plan_for(&trace_path);
    let cache = DigestCache::open(dir.join("cells")).unwrap();

    // First run: thread workers fill the cache.
    let specs = plan.specs().unwrap();
    let cells = specs.len();
    let handle = serve_broker(
        specs,
        plan.lookup_cached(&cache).unwrap(),
        FleetConfig::test_profile(),
    )
    .unwrap();
    let addr = handle.addr();
    let worker = thread::spawn(move || {
        let runner = SweepCellRunner::new();
        run_worker(addr, "filler", &runner)
    });
    let started = Instant::now();
    let outcome = handle.wait().unwrap();
    worker.join().unwrap().unwrap();
    let none_cached = vec![None; cells];
    assert_eq!(
        plan.write_back(&cache, &none_cached, &outcome.results)
            .unwrap(),
        cells
    );
    let first = plan.merge(&outcome.results, started.elapsed()).unwrap();
    assert_eq!(first.digest(), expected);

    // Second run: every cell is preloaded, the broker finishes with no
    // workers at all, and the digest still matches.
    let (plan2, _) = plan_for(&trace_path);
    let cached = plan2.lookup_cached(&cache).unwrap();
    assert!(cached.iter().all(Option::is_some));
    let handle = serve_broker(plan2.specs().unwrap(), cached, FleetConfig::test_profile()).unwrap();
    assert!(handle.done());
    let outcome = handle.wait().unwrap();
    assert_eq!(outcome.stats.dispatched, 0);
    assert_eq!(outcome.stats.cached as usize, cells);
    let second = plan2.merge(&outcome.results, Duration::ZERO).unwrap();
    assert_eq!(second.digest(), expected);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Run the `repro` binary and return (stdout, stderr), asserting success.
fn repro(args: &[&str]) -> (String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    (
        String::from_utf8(output.stdout).unwrap(),
        String::from_utf8(output.stderr).unwrap(),
    )
}

#[test]
fn fleet_run_cli_matches_sweep_and_resumes_from_cache() {
    let dir = temp_dir("cli");
    let trace_path = record_trace(&dir);
    let trace = trace_path.to_str().unwrap();
    let cache_dir = dir.join("cells");
    let cache = cache_dir.to_str().unwrap();
    let grid_flags = ["--machines", "6,10", "--policies", "late,gs"];

    let mut sweep_args = vec!["sweep", trace];
    sweep_args.extend_from_slice(&grid_flags);
    let (sweep_digest, _) = repro(&sweep_args);

    let mut fleet_args = vec![
        "fleet",
        "run",
        trace,
        "--workers",
        "2",
        "--test-profile",
        "--cache",
        cache,
    ];
    fleet_args.extend_from_slice(&grid_flags);
    let (fleet_digest, fleet_log) = repro(&fleet_args);
    assert_eq!(fleet_digest, sweep_digest);
    assert!(fleet_log.contains("cached=0"), "{fleet_log}");

    // Second fleet run: every cell served from the cache, zero dispatches.
    let (fleet_digest2, fleet_log2) = repro(&fleet_args);
    assert_eq!(fleet_digest2, sweep_digest);
    assert!(
        fleet_log2.contains("cached=4 ran=0"),
        "expected fully-cached second run: {fleet_log2}"
    );

    // `sweep --resume` shares the same cache and digest.
    let mut resume_args = vec!["sweep", trace, "--resume", cache];
    resume_args.extend_from_slice(&grid_flags);
    let (resume_digest, resume_log) = repro(&resume_args);
    assert_eq!(resume_digest, sweep_digest);
    assert!(
        resume_log.contains("resume cells=4 cached=4 ran=0"),
        "{resume_log}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
