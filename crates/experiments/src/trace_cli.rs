//! The `repro trace` subcommand surface: record, generate, replay, convert and
//! inspect traces.
//!
//! ```text
//! repro trace record --out <dir> [--jobs N] [--gen-seed S] [--sim-seed S]
//!                    [--policy P] [--profile facebook|bing] [--framework hadoop|spark]
//!                    [--bound deadlines|errors|exact] [--machines N] [--slots N]
//!                    [--format text|binary|compressed]
//! repro trace gen --out <file> [--jobs N] [--seed S] [--sim-seed S] [--policy P]
//!                 [--profile facebook|bing] [--framework hadoop|spark]
//!                 [--bound deadlines|errors|exact] [--machines N] [--slots N]
//!                 [--format text|binary|compressed]
//! repro trace replay <workload.trace> [--policy P]
//! repro trace convert <in> <out> --format text|binary|compressed
//! repro trace stats [--mmap] <trace-file>...
//! ```
//!
//! `record` samples a synthetic workload, persists it as `workload.trace`, runs it
//! through the simulator while streaming `execution.trace` (both in the chosen
//! `--format`), and prints a deterministic outcome digest to stdout. `gen`
//! synthesizes the same workload trace **without running a simulation and without
//! ever materialising the job list** — jobs stream from the generator straight
//! into a `WorkloadTraceSink`, so it can produce GB-scale traces in O(one job)
//! memory; with matching parameters its output is byte-identical to `record`'s
//! `workload.trace`. `replay` decodes a workload trace — the format is sniffed,
//! so text and binary replay identically — re-runs it with the recorded simulator
//! seed / cluster / policy and prints the same digest, so `diff <(record)
//! <(replay)` is the record→replay determinism check CI runs in both formats.
//! `convert` re-encodes a trace of either stream kind into the requested format,
//! record at a time through `convert_stream` (O(one record) memory). `stats`
//! folds each file in one streaming pass; `--mmap` switches binary workload
//! traces to the zero-copy memory-mapped fold (other files fall back to the
//! streaming pass with identical output). Informational messages go to stderr
//! to keep stdout digest-clean.

use std::path::{Path, PathBuf};

use grass_core::{GrassFactory, GsFactory, PolicyFactory, RasFactory};
use grass_policies::{LateFactory, MantriFactory, NoSpecFactory, OracleFactory};
use grass_sim::{run_simulation, run_simulation_traced, SimResult};
use grass_trace::{
    convert_stream, record_workload, replay_config, ExecutionMeta, ExecutionTraceSink, TraceFormat,
    TraceStats, WorkloadMeta, WorkloadTrace, WorkloadTraceSink,
};
use grass_workload::{BoundSpec, Framework, JobGen, TraceProfile, WorkloadConfig};

/// Entry point for `repro trace <verb> ...`. Returns an error message on failure.
pub fn run_trace_command(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("gen") => gen(&args[1..]),
        Some("replay") => replay_cmd(&args[1..]),
        Some("convert") => convert(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some(other) => Err(format!(
            "unknown trace verb '{other}'; expected record, gen, replay, convert or stats"
        )),
        None => {
            Err("missing trace verb; expected record, gen, replay, convert or stats".to_string())
        }
    }
}

/// Parse a `--format` value, defaulting to text when the flag is absent.
fn parse_format(value: Option<&str>) -> Result<TraceFormat, String> {
    match value {
        None => Ok(TraceFormat::Text),
        Some(v) => TraceFormat::parse(v)
            .ok_or_else(|| format!("unknown format '{v}' (text|binary|compressed)")),
    }
}

/// One-line-per-job outcome digest. Full-precision floats so that byte-identical
/// digests imply bit-identical results.
pub fn outcome_digest(result: &SimResult) -> String {
    let mut out = String::new();
    for o in &result.outcomes {
        out.push_str(&format!(
            "outcome job={} policy={} finish={} completed_input={} completed_total={} \
             speculative={} killed={} slot_seconds={}\n",
            o.job.value(),
            o.policy,
            o.finish,
            o.completed_input_tasks,
            o.completed_tasks,
            o.speculative_copies,
            o.killed_copies,
            o.slot_seconds,
        ));
    }
    out.push_str(&format!(
        "summary jobs={} makespan={} total_copies={}\n",
        result.outcomes.len(),
        result.makespan,
        result.total_copies,
    ));
    out
}

/// Build the policy factory for a trace run. Seeded factories (GRASS) derive all
/// their randomness from `seed`, so record and replay construct identical factories.
pub fn make_factory(policy: &str, seed: u64) -> Result<Box<dyn PolicyFactory>, String> {
    match policy.to_ascii_lowercase().as_str() {
        "gs" => Ok(Box::new(GsFactory)),
        "ras" => Ok(Box::new(RasFactory)),
        "grass" => Ok(Box::new(GrassFactory::new(seed))),
        "late" => Ok(Box::new(LateFactory::default())),
        "mantri" => Ok(Box::new(MantriFactory::default())),
        "nospec" => Ok(Box::new(NoSpecFactory)),
        "oracle" => Ok(Box::new(OracleFactory)),
        other => Err(format!(
            "unknown policy '{other}'; expected gs, ras, grass, late, mantri, nospec or oracle"
        )),
    }
}

/// Minimal `--flag value` command-line parser shared by the `trace` and `sweep`
/// subcommands.
pub(crate) struct Flags {
    named: Vec<(String, String)>,
    pub(crate) positional: Vec<String>,
}

impl Flags {
    pub(crate) fn parse(args: &[String]) -> Result<Self, String> {
        Self::parse_with_switches(args, &[])
    }

    /// Parse flags; names in `switches` are valueless booleans (present or absent),
    /// every other `--flag` consumes the following argument as its value.
    pub(crate) fn parse_with_switches(args: &[String], switches: &[&str]) -> Result<Self, String> {
        let mut named = Vec::new();
        let mut positional = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if switches.contains(&name) {
                    named.push((name.to_string(), "true".to_string()));
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{name} is missing its value"))?;
                named.push((name.to_string(), value.clone()));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Flags { named, positional })
    }

    /// Reject any `--flag` not in `allowed` — a typo must not silently fall back to
    /// a default and record a trace with the wrong parameters.
    pub(crate) fn reject_unknown(&self, allowed: &[&str]) -> Result<(), String> {
        for (name, _) in &self.named {
            if !allowed.contains(&name.as_str()) {
                return Err(format!(
                    "unknown flag --{name}; expected one of: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(())
    }

    /// Whether a boolean switch was present.
    pub(crate) fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    pub(crate) fn get(&self, name: &str) -> Option<&str> {
        self.named
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    pub(crate) fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name} expects an integer, got '{v}'")),
        }
    }

    pub(crate) fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        Ok(self.get_u64(name, default as u64)? as usize)
    }
}

/// Parse the shared `--profile` / `--framework` / `--bound` workload flags.
fn workload_from_flags(flags: &Flags, jobs: usize) -> Result<WorkloadConfig, String> {
    let profile = match flags.get("profile").unwrap_or("facebook") {
        "facebook" => TraceProfile::facebook,
        "bing" => TraceProfile::bing,
        other => return Err(format!("unknown profile '{other}' (facebook|bing)")),
    };
    let framework = match flags.get("framework").unwrap_or("spark") {
        "hadoop" => Framework::Hadoop,
        "spark" => Framework::Spark,
        other => return Err(format!("unknown framework '{other}' (hadoop|spark)")),
    };
    let bound = match flags.get("bound").unwrap_or("errors") {
        "deadlines" => BoundSpec::paper_deadlines(),
        "errors" => BoundSpec::paper_errors(),
        "exact" => BoundSpec::Exact,
        other => return Err(format!("unknown bound '{other}' (deadlines|errors|exact)")),
    };
    Ok(WorkloadConfig::new(profile(framework))
        .with_jobs(jobs)
        .with_bound(bound))
}

fn record(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.reject_unknown(&[
        "out",
        "jobs",
        "gen-seed",
        "sim-seed",
        "machines",
        "slots",
        "policy",
        "profile",
        "framework",
        "bound",
        "format",
    ])?;
    if !flags.positional.is_empty() {
        return Err(format!(
            "unexpected positional arguments: {:?}",
            flags.positional
        ));
    }
    let out_dir = PathBuf::from(flags.get("out").unwrap_or("trace-out"));
    let jobs = flags.get_usize("jobs", 24)?;
    let gen_seed = flags.get_u64("gen-seed", 7)?;
    let sim_seed = flags.get_u64("sim-seed", 11)?;
    let machines = flags.get_usize("machines", 20)?;
    let slots = flags.get_usize("slots", 4)?;
    let policy = flags.get("policy").unwrap_or("grass").to_string();
    let format = parse_format(flags.get("format"))?;

    let workload = workload_from_flags(&flags, jobs)?;
    let trace = record_workload(&workload, gen_seed, sim_seed, &policy, machines, slots);
    let sim = replay_config(&trace);
    let factory = make_factory(&policy, sim_seed)?;

    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let workload_path = out_dir.join("workload.trace");
    trace
        .save_as(&workload_path, format)
        .map_err(|e| format!("cannot write {}: {e}", workload_path.display()))?;

    let execution_path = out_dir.join("execution.trace");
    let exec_meta = ExecutionMeta {
        sim_seed,
        policy: factory.name().to_string(),
        machines,
        slots_per_machine: slots,
    };
    let file = std::fs::File::create(&execution_path)
        .map_err(|e| format!("cannot create {}: {e}", execution_path.display()))?;
    let mut sink =
        ExecutionTraceSink::with_format(std::io::BufWriter::new(file), &exec_meta, format)
            .map_err(|e| e.to_string())?;
    let result = run_simulation_traced(&sim, trace.jobs.clone(), factory.as_ref(), &mut sink);
    sink.finish()
        .map_err(|e| format!("cannot finish {}: {e}", execution_path.display()))?;

    eprintln!(
        "recorded {} jobs ({} profile, policy {}, {format} format) -> {} + {}",
        trace.jobs.len(),
        trace.meta.profile,
        factory.name(),
        workload_path.display(),
        execution_path.display(),
    );
    print!("{}", outcome_digest(&result));
    Ok(())
}

/// `repro trace gen`: synthesize a (possibly GB-scale) workload trace straight
/// to a streaming sink — the generator's job iterator feeds a
/// [`WorkloadTraceSink`] one record at a time, so memory stays O(one job) no
/// matter how many jobs are requested. With the same parameters as `trace
/// record` (`--seed` here is `record`'s `--gen-seed`) the output file is
/// byte-identical to `record`'s `workload.trace`.
fn gen(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.reject_unknown(&[
        "out",
        "jobs",
        "seed",
        "sim-seed",
        "machines",
        "slots",
        "policy",
        "profile",
        "framework",
        "bound",
        "format",
    ])?;
    if !flags.positional.is_empty() {
        return Err(format!(
            "unexpected positional arguments: {:?}",
            flags.positional
        ));
    }
    let out = PathBuf::from(flags.get("out").unwrap_or("workload.trace"));
    let jobs = flags.get_usize("jobs", 24)?;
    let seed = flags.get_u64("seed", 7)?;
    let sim_seed = flags.get_u64("sim-seed", 11)?;
    let machines = flags.get_usize("machines", 20)?;
    let slots = flags.get_usize("slots", 4)?;
    let policy = flags.get("policy").unwrap_or("grass").to_string();
    let format = parse_format(flags.get("format"))?;
    let workload = workload_from_flags(&flags, jobs)?;
    // Validate the policy label up front, like record does, so a typo fails
    // before any bytes hit the disk.
    make_factory(&policy, sim_seed)?;

    let meta = WorkloadMeta {
        generator_seed: seed,
        sim_seed,
        policy,
        profile: workload.profile.label(),
        machines,
        slots_per_machine: slots,
    };
    // grass: allow(wall-clock-in-core, "elapsed is reported on stderr only; it never reaches a result")
    let started = std::time::Instant::now();
    let file =
        std::fs::File::create(&out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    let mut sink =
        WorkloadTraceSink::with_format(std::io::BufWriter::new(file), &meta, jobs, format)
            .map_err(|e| e.to_string())?;
    for job in JobGen::new(workload, seed) {
        sink.push(&job)
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    }
    sink.finish()
        .map_err(|e| format!("cannot finish {}: {e}", out.display()))?;

    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    let elapsed = started.elapsed();
    eprintln!(
        "generated {jobs} jobs ({} profile, {format} format) -> {} \
         ({:.1} MiB in {:.2?}, {:.0} MiB/s)",
        meta.profile,
        out.display(),
        bytes as f64 / (1024.0 * 1024.0),
        elapsed,
        bytes as f64 / (1024.0 * 1024.0) / elapsed.as_secs_f64().max(1e-9),
    );
    Ok(())
}

fn replay_cmd(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.reject_unknown(&["policy"])?;
    let [path] = flags.positional.as_slice() else {
        return Err("replay expects exactly one trace path".to_string());
    };
    let path = resolve_workload_path(Path::new(path));
    let trace =
        WorkloadTrace::load(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let sim = replay_config(&trace);
    let policy = flags.get("policy").unwrap_or(&trace.meta.policy);
    let factory = make_factory(policy, trace.meta.sim_seed)?;
    eprintln!(
        "replaying {} jobs ({} profile, policy {}, sim seed {})",
        trace.jobs.len(),
        trace.meta.profile,
        factory.name(),
        trace.meta.sim_seed,
    );
    let result = run_simulation(&sim, trace.jobs.clone(), factory.as_ref());
    print!("{}", outcome_digest(&result));
    Ok(())
}

fn convert(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    flags.reject_unknown(&["format"])?;
    let [input, output] = flags.positional.as_slice() else {
        return Err("convert expects exactly two paths: <in> <out>".to_string());
    };
    let format = parse_format(Some(
        flags
            .get("format")
            .ok_or("convert requires --format text|binary|compressed")?,
    ))?;
    // Record-at-a-time re-encode: the input is never held in memory, so a trace
    // bigger than RAM converts fine.
    let reader = std::io::BufReader::new(
        std::fs::File::open(input).map_err(|e| format!("cannot read {input}: {e}"))?,
    );
    let writer = std::io::BufWriter::new(
        std::fs::File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?,
    );
    match convert_stream(reader, writer, format) {
        Ok((from, kind)) => {
            eprintln!("converted {input} ({from} {kind} trace) -> {output} ({format})");
            Ok(())
        }
        Err(e) => {
            // A partially converted execution stream has no trailing count check,
            // so it would decode cleanly as a shorter trace; never leave one behind.
            let _ = std::fs::remove_file(output);
            Err(format!("cannot convert {input}: {e}"))
        }
    }
}

/// Accept either a workload trace file or the directory `record` wrote it into.
pub(crate) fn resolve_workload_path(path: &Path) -> PathBuf {
    if path.is_dir() {
        path.join("workload.trace")
    } else {
        path.to_path_buf()
    }
}

fn stats(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse_with_switches(args, &["mmap"])?;
    flags.reject_unknown(&["mmap"])?;
    if flags.positional.is_empty() {
        return Err("stats expects at least one trace path".to_string());
    }
    let mmap = flags.has("mmap");
    for path in &flags.positional {
        // --mmap folds binary workload traces zero-copy out of a memory map;
        // other files silently fall back to the streaming pass (same result).
        let stats = if mmap {
            TraceStats::load_mmap(path)
        } else {
            TraceStats::load(path)
        }
        .map_err(|e| format!("cannot read {path}: {e}"))?;
        println!("== {path}");
        println!("{stats}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_record_and_replay(dir: &Path, policy: &str, format: &str) -> (String, String) {
        let record_args: Vec<String> = [
            "record",
            "--out",
            dir.to_str().unwrap(),
            "--jobs",
            "6",
            "--policy",
            policy,
            "--format",
            format,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run_trace_command(&record_args).unwrap();
        let trace = WorkloadTrace::load(dir.join("workload.trace")).unwrap();
        let sim = replay_config(&trace);
        let factory = make_factory(policy, trace.meta.sim_seed).unwrap();
        let digest = outcome_digest(&run_simulation(&sim, trace.jobs.clone(), factory.as_ref()));
        let factory2 = make_factory(policy, trace.meta.sim_seed).unwrap();
        let digest2 = outcome_digest(&run_simulation(&sim, trace.jobs, factory2.as_ref()));
        (digest, digest2)
    }

    #[test]
    fn record_then_replay_digests_are_identical_in_both_formats() {
        let dir = std::env::temp_dir().join(format!("grass-trace-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut digests = Vec::new();
        for format in ["text", "binary", "compressed"] {
            for policy in ["gs", "grass"] {
                let (a, b) = run_record_and_replay(&dir, policy, format);
                assert_eq!(a, b, "digest mismatch for policy {policy} ({format})");
                assert!(a.contains("summary jobs=6"));
                digests.push(a);
            }
            // The stats verb reads both written files, whichever format they are
            // in — and --mmap must not change what it reports.
            let stats_args: Vec<String> = vec![
                "stats".into(),
                dir.join("workload.trace").to_str().unwrap().into(),
                dir.join("execution.trace").to_str().unwrap().into(),
            ];
            run_trace_command(&stats_args).unwrap();
            let mut mmap_args = stats_args.clone();
            mmap_args.insert(1, "--mmap".into());
            run_trace_command(&mmap_args).unwrap();
        }
        // Same seeds, same policy: the digest must not depend on the wire format.
        for pair in digests.chunks(2).skip(1) {
            assert_eq!(digests[0], pair[0]);
            assert_eq!(digests[1], pair[1]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn convert_round_trips_both_stream_kinds() {
        let dir = std::env::temp_dir().join(format!("grass-trace-conv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        run_record_and_replay(&dir, "gs", "binary");
        for name in ["workload.trace", "execution.trace"] {
            let binary = dir.join(name);
            let text = dir.join(format!("{name}.txt"));
            let back = dir.join(format!("{name}.bin"));
            let args = |input: &Path, output: &Path, fmt: &str| -> Vec<String> {
                vec![
                    "convert".into(),
                    input.to_str().unwrap().into(),
                    output.to_str().unwrap().into(),
                    "--format".into(),
                    fmt.into(),
                ]
            };
            run_trace_command(&args(&binary, &text, "text")).unwrap();
            run_trace_command(&args(&text, &back, "binary")).unwrap();
            // Canonical encodings: binary -> text -> binary is byte-identical.
            assert_eq!(
                std::fs::read(&binary).unwrap(),
                std::fs::read(&back).unwrap(),
                "{name}"
            );
            assert_ne!(
                std::fs::read(&binary).unwrap(),
                std::fs::read(&text).unwrap()
            );
            // Same canonical round trip through the compressed format.
            let comp = dir.join(format!("{name}.v3"));
            let back_v3 = dir.join(format!("{name}.bin2"));
            run_trace_command(&args(&binary, &comp, "compressed")).unwrap();
            run_trace_command(&args(&comp, &back_v3, "binary")).unwrap();
            assert_eq!(
                std::fs::read(&binary).unwrap(),
                std::fs::read(&back_v3).unwrap(),
                "{name} via compressed"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gen_matches_record_byte_for_byte_and_streams_through_convert() {
        let dir = std::env::temp_dir().join(format!("grass-trace-gen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let arg = |s: &str| s.to_string();
        for format in ["text", "binary", "compressed"] {
            // record writes workload.trace into a directory; gen writes one file.
            let rec_dir = dir.join(format!("rec-{format}"));
            run_trace_command(&[
                arg("record"),
                arg("--out"),
                rec_dir.to_str().unwrap().into(),
                arg("--jobs"),
                arg("9"),
                arg("--policy"),
                arg("gs"),
                arg("--format"),
                arg(format),
            ])
            .unwrap();
            let gen_path = dir.join(format!("gen-{format}.trace"));
            run_trace_command(&[
                arg("gen"),
                arg("--out"),
                gen_path.to_str().unwrap().into(),
                arg("--jobs"),
                arg("9"),
                arg("--seed"),
                arg("7"), // record's --gen-seed default
                arg("--policy"),
                arg("gs"),
                arg("--format"),
                arg(format),
            ])
            .unwrap();
            assert_eq!(
                std::fs::read(rec_dir.join("workload.trace")).unwrap(),
                std::fs::read(&gen_path).unwrap(),
                "gen differs from record's workload.trace ({format})"
            );

            // The generated trace flows through the streamed convert and stats.
            let other = if format == "text" { "binary" } else { "text" };
            let conv = dir.join(format!("gen-{format}.{other}.trace"));
            let back = dir.join(format!("gen-{format}.back.trace"));
            run_trace_command(&[
                arg("convert"),
                gen_path.to_str().unwrap().into(),
                conv.to_str().unwrap().into(),
                arg("--format"),
                arg(other),
            ])
            .unwrap();
            run_trace_command(&[
                arg("convert"),
                conv.to_str().unwrap().into(),
                back.to_str().unwrap().into(),
                arg("--format"),
                arg(format),
            ])
            .unwrap();
            assert_eq!(
                std::fs::read(&gen_path).unwrap(),
                std::fs::read(&back).unwrap(),
                "streamed convert round trip is not canonical ({format})"
            );
            let stats = grass_trace::TraceStats::load(&gen_path).unwrap();
            assert_eq!(stats.jobs, 9);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_conversions_leave_no_partial_output() {
        let dir = std::env::temp_dir().join(format!("grass-trace-convfail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // An execution stream truncated mid-record: streaming convert fails part
        // way through, after some records were already written. The output file
        // must be removed — a partial execution trace has no trailing count
        // check and would pass a later decode as a shorter, valid-looking trace.
        let input = dir.join("truncated.trace");
        std::fs::write(
            &input,
            b"grass-trace 1 execution\n\
              meta sim_seed=0 policy=GS machines=1 slots_per_machine=1\n\
              arrive t=0 job=1\n\
              arrive t=1 job\n",
        )
        .unwrap();
        let output = dir.join("out.trace");
        let err = run_trace_command(&[
            "convert".into(),
            input.to_str().unwrap().into(),
            output.to_str().unwrap().into(),
            "--format".into(),
            "binary".into(),
        ])
        .unwrap_err();
        assert!(err.contains("cannot convert"), "{err}");
        assert!(!output.exists(), "partial output left behind");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_invocations_are_rejected_with_messages() {
        let err = run_trace_command(&["warp".to_string()]).unwrap_err();
        assert!(err.contains("unknown trace verb"));
        let err = run_trace_command(&[]).unwrap_err();
        assert!(err.contains("missing trace verb"));
        let err = run_trace_command(&["replay".to_string()]).unwrap_err();
        assert!(err.contains("exactly one"));
        let err = run_trace_command(&["stats".to_string()]).unwrap_err();
        assert!(err.contains("at least one"));
        let err = run_trace_command(&[
            "record".to_string(),
            "--policy".to_string(),
            "quantum".to_string(),
            "--out".to_string(),
            std::env::temp_dir()
                .join("grass-trace-cli-unreached")
                .to_str()
                .unwrap()
                .to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("unknown policy"));
        // A typo'd flag must error out, not silently record with defaults.
        let err = run_trace_command(&["record".to_string(), "--job".to_string(), "12".to_string()])
            .unwrap_err();
        assert!(err.contains("unknown flag --job"), "{err}");
        // gen shares the strict-flag posture (record's --gen-seed is gen's --seed),
        // and validates the policy before writing anything.
        let err =
            run_trace_command(&["gen".to_string(), "--gen-seed".to_string(), "7".to_string()])
                .unwrap_err();
        assert!(err.contains("unknown flag --gen-seed"), "{err}");
        let err = run_trace_command(&[
            "gen".to_string(),
            "--policy".to_string(),
            "quantum".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("unknown policy"), "{err}");
        let err = run_trace_command(&[
            "replay".to_string(),
            "x.trace".to_string(),
            "--sim-seed".to_string(),
            "3".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("unknown flag --sim-seed"), "{err}");
        assert!(make_factory("late", 1).is_ok());
        assert!(make_factory("zzz", 1).is_err());
        // Format handling: unknown labels and a missing --format on convert.
        let err = run_trace_command(&[
            "record".to_string(),
            "--format".to_string(),
            "json".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("unknown format"), "{err}");
        let err = run_trace_command(&[
            "convert".to_string(),
            "a.trace".to_string(),
            "b.trace".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("requires --format"), "{err}");
        let err = run_trace_command(&["convert".to_string(), "only-one".to_string()]).unwrap_err();
        assert!(err.contains("exactly two"), "{err}");
    }
}
