//! Table 1: provenance of the Facebook and Bing traces, together with the
//! synthetic-generator configuration that stands in for them in this reproduction.

use grass_metrics::{Cell, Report, Table};
use grass_workload::{table1_rows, Framework, TraceProfile};

use crate::common::ExpConfig;

/// Table 1 of the paper plus the calibration of the synthetic stand-in traces.
pub fn table1(exp: &ExpConfig) -> Report {
    let mut report = Report::new("table1");

    let mut paper = Table::new(
        "Table 1: details of the Facebook and Bing traces (paper values)",
        vec![
            "Trace",
            "Dates",
            "Framework",
            "Script",
            "Jobs",
            "Cluster Size",
            "Straggler mitigation",
        ],
    );
    for row in table1_rows() {
        paper.push_row(
            row.name,
            vec![
                Cell::from(row.dates),
                Cell::from(row.framework),
                Cell::from(row.script),
                Cell::from(row.jobs),
                Cell::from(row.cluster_size),
                Cell::from(row.straggler_mitigation),
            ],
        );
    }
    report.add_table(paper);

    let mut synth = Table::new(
        "Synthetic stand-in calibration (this reproduction)",
        vec![
            "Profile",
            "Median task work (s)",
            "Mean task work (s)",
            "Mean interarrival (s)",
            "Small/Medium/Large mix (%)",
        ],
    );
    for profile in [
        TraceProfile::facebook(Framework::Hadoop),
        TraceProfile::facebook(Framework::Spark),
        TraceProfile::bing(Framework::Hadoop),
        TraceProfile::bing(Framework::Spark),
    ] {
        synth.push_row(
            profile.label(),
            vec![
                Cell::Number(profile.task_work.median()),
                Cell::Number(profile.task_work.mean()),
                Cell::Number(profile.interarrival.mean),
                Cell::Text(format!(
                    "{:.0}/{:.0}/{:.0}",
                    profile.size_mix.small_fraction * 100.0,
                    profile.size_mix.medium_fraction * 100.0,
                    profile.size_mix.large_fraction() * 100.0
                )),
            ],
        );
    }
    report.add_table(synth);

    let mut cluster = Table::new(
        "Simulated cluster (stand-in for the 200-node EC2 deployment)",
        vec!["Quantity", "Value"],
    );
    cluster.push_row("machines", vec![Cell::Number(exp.cluster.machines as f64)]);
    cluster.push_row(
        "slots per machine",
        vec![Cell::Number(exp.cluster.slots_per_machine as f64)],
    );
    cluster.push_row(
        "total slots",
        vec![Cell::Number(exp.cluster.total_slots() as f64)],
    );
    cluster.push_row(
        "mean copy slowdown",
        vec![Cell::Number(exp.cluster.mean_slowdown())],
    );
    cluster.push_row("jobs per run", vec![Cell::Number(exp.jobs_per_run as f64)]);
    cluster.push_row("seeds", vec![Cell::Number(exp.seeds.len() as f64)]);
    report.add_table(cluster);

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_paper_and_calibration_tables() {
        let report = table1(&ExpConfig::quick());
        assert_eq!(report.tables.len(), 3);
        let paper = &report.tables[0];
        assert!(paper.cell("Facebook", "Jobs").is_some());
        assert!(paper
            .cell("Microsoft Bing", "Straggler mitigation")
            .is_some());
        let synth = &report.tables[1];
        assert_eq!(synth.rows.len(), 4);
        let cluster = &report.tables[2];
        assert!(cluster.value("total slots", "Value").unwrap() > 0.0);
    }
}
