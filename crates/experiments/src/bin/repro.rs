//! `repro` — regenerate the tables and figures of the GRASS paper.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--csv] [<experiment-id>...]
//! repro trace record --out <dir> [--jobs N] [--policy P] [--format text|binary|compressed] [...]
//! repro trace gen --out <file> [--jobs N] [--seed S] [--format text|binary|compressed] [...]
//! repro trace replay <workload.trace> [--policy P]
//! repro trace convert <in> <out> --format text|binary|compressed
//! repro trace stats [--mmap] <trace-file>...
//! repro sweep <workload.trace|dir> [--machines 20,50,100] [--policies late,gs,ras,grass]
//!             [--baseline late] [--threads N] [--seeds a,b,c] [--slots N] [--quick]
//!             [--resume <cache-dir>] [--mmap]
//! repro fleet serve <workload.trace|dir> [grid flags] [--port P] [--cache <dir>]
//! repro fleet work --connect <host:port> [--id NAME] [--stall-ms N]
//! repro fleet run <workload.trace|dir> [grid flags] [--workers N] [--cache <dir>]
//! repro lint [--format text|json] [--root <dir>] [paths...]
//! ```
//!
//! With no experiment ids, every experiment is run in paper order. `--quick` uses the
//! reduced configuration (fewer jobs, one seed, smaller cluster) intended for smoke
//! tests; the default configuration averages three seeds on the 200-slot cluster.
//! The `trace` subcommand records, generates, replays, converts and inspects workload/execution
//! traces in either wire format (see `grass_experiments::trace_cli`); `sweep` replays
//! one recorded workload across a cluster-size × policy grid (see
//! `grass_experiments::sweep`).

use std::process::ExitCode;

use grass_experiments::{
    experiment_ids, run_experiment, run_fleet_command, run_lint_command, run_sweep_command,
    run_trace_command, ExpConfig,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("trace") {
        return match run_trace_command(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("repro trace: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("sweep") {
        return match run_sweep_command(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("repro sweep: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("lint") {
        return match run_lint_command(&args[1..]) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(message) => {
                eprintln!("repro lint: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("fleet") {
        return match run_fleet_command(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("repro fleet: {message}");
                ExitCode::FAILURE
            }
        };
    }

    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return ExitCode::SUCCESS;
    }

    let config = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::full()
    };
    let ids: Vec<&str> = if requested.is_empty() {
        experiment_ids()
    } else {
        requested
    };

    let mut failed = false;
    for id in ids {
        match run_experiment(id, &config) {
            Some(report) => {
                if csv {
                    for table in &report.tables {
                        println!("# {}", table.title);
                        println!("{}", table.render_csv());
                    }
                } else {
                    println!("{}", report.render_text());
                }
            }
            None => {
                eprintln!(
                    "unknown experiment id '{id}'; known ids: {}",
                    experiment_ids().join(", ")
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_help() {
    println!("repro — regenerate the tables and figures of the GRASS (NSDI '14) paper");
    println!();
    println!("USAGE: repro [--quick] [--csv] [<experiment-id>...]");
    println!("       repro trace record --out <dir> [--jobs N] [--gen-seed S] [--sim-seed S]");
    println!("                          [--policy P] [--profile facebook|bing]");
    println!(
        "                          [--framework hadoop|spark] [--bound deadlines|errors|exact]"
    );
    println!(
        "                          [--machines N] [--slots N] [--format text|binary|compressed]"
    );
    println!("       repro trace gen --out <file> [--jobs N] [--seed S] [--sim-seed S]");
    println!("                       [--policy P] [--profile facebook|bing]");
    println!("                       [--framework hadoop|spark] [--bound deadlines|errors|exact]");
    println!("                       [--machines N] [--slots N] [--format text|binary|compressed]");
    println!("       repro trace replay <workload.trace|dir> [--policy P]");
    println!("       repro trace convert <in> <out> --format text|binary|compressed");
    println!("       repro trace stats [--mmap] <trace-file>...");
    println!("       repro sweep <workload.trace|dir> [--machines 20,50,100]");
    println!("                   [--policies late,gs,ras,grass] [--baseline late]");
    println!("                   [--threads N] [--seeds a,b,c] [--slots N] [--quick]");
    println!("                   [--resume <cache-dir>] [--mmap]");
    println!("       repro fleet serve <workload.trace|dir> [grid flags] [--port P]");
    println!("                         [--cache <dir>] [--test-profile] [--mmap] [timing flags]");
    println!("       repro fleet work --connect <host:port> [--id NAME] [--stall-ms N] [--mmap]");
    println!("       repro fleet run <workload.trace|dir> [grid flags] [--workers N]");
    println!("                       [--cache <dir>] [--test-profile] [--mmap] [timing flags]");
    println!("       repro lint [--format text|json] [--root <dir>] [paths...]");
    println!();
    println!("Experiment ids:");
    for id in experiment_ids() {
        println!("  {id}");
    }
}
