//! Analytic experiments: the Figure 3 Hill plot of task durations and the Figure 4
//! model sweep over reactive speculation thresholds.

use grass_metrics::{Cell, Report, Series, Table};
use grass_model::{figure4_curves, hill_plot, tail_index, Pareto};
use grass_workload::{BoundSpec, Framework, TraceProfile, WorkloadConfig};

use crate::common::{sample_task_durations, ExpConfig};

/// Number of task durations sampled for the Hill plot.
const HILL_SAMPLES: usize = 60_000;

/// Figure 3: Hill plot of task durations from the (synthetic) Facebook workload. The
/// paper reads off β ≈ 1.259 from the flat region; the generated workload is
/// calibrated to the same tail, so the recovered index should be close.
pub fn fig3(exp: &ExpConfig) -> Report {
    let mut report = Report::new("fig3");
    let wl =
        WorkloadConfig::new(TraceProfile::facebook(Framework::Hadoop)).with_bound(BoundSpec::Exact);
    let samples = exp.seeds.first().copied().unwrap_or(1);
    let durations = sample_task_durations(&wl, &exp.cluster, HILL_SAMPLES, samples);

    let plot = hill_plot(&durations, 60);
    report.add_series(Series::new(
        "hill-plot",
        plot.iter()
            .map(|p| (p.order_statistics as f64, p.beta))
            .collect(),
    ));

    let mut table = Table::new(
        "Figure 3: Hill estimate of the task-duration tail index",
        vec!["Quantity", "Value"],
    );
    table.push_row("paper beta", vec![Cell::Number(1.259)]);
    if let Some(beta) = tail_index(&durations) {
        table.push_row("measured beta", vec![Cell::Number(beta)]);
    }
    let mut sorted = durations.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let p999 = sorted[(sorted.len() as f64 * 0.999) as usize];
    table.push_row("p99.9 / median duration", vec![Cell::Number(p999 / median)]);
    report.add_table(table);
    report
}

/// The ω grid used for the Figure 4 sweep.
pub fn omega_grid() -> Vec<f64> {
    (1..=50).map(|i| i as f64 * 0.1).collect()
}

/// Figure 4: response time of the wait-ω reactive policy, normalised by the best
/// achievable, for jobs of one to five waves under Pareto(β = 1.259) task durations;
/// GS and RAS correspond to ω = β·xm and ω = 2·β·xm respectively.
pub fn fig4(_exp: &ExpConfig) -> Report {
    let mut report = Report::new("fig4");
    let dist = Pareto::paper();
    let waves = [1.0, 2.0, 3.0, 4.0, 5.0];
    let omegas = omega_grid();
    let curves = figure4_curves(dist, 50.0, &waves, &omegas);

    let mut table = Table::new(
        "Figure 4: processing time / optimal at the GS and RAS operating points",
        vec!["Waves", "GS ratio", "RAS ratio"],
    );
    for curve in &curves {
        report.add_series(Series::new(
            format!("waves-{:.0}", curve.waves),
            curve.points.clone(),
        ));
        table.push_row(
            format!("{:.0}", curve.waves),
            vec![Cell::Number(curve.gs_ratio), Cell::Number(curve.ras_ratio)],
        );
    }
    let gs_omega = curves.first().map(|c| c.gs_omega).unwrap_or_default();
    let ras_omega = curves.first().map(|c| c.ras_omega).unwrap_or_default();
    table.push_row(
        "omega (GS, RAS)",
        vec![Cell::Number(gs_omega), Cell::Number(ras_omega)],
    );
    report.add_table(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_grid_spans_zero_to_five() {
        let grid = omega_grid();
        assert_eq!(grid.len(), 50);
        assert!((grid[0] - 0.1).abs() < 1e-12);
        assert!((grid[49] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fig3_recovers_a_heavy_tail() {
        let report = fig3(&ExpConfig::tiny());
        let table = &report.tables[0];
        let measured = table.value("measured beta", "Value").unwrap();
        assert!(
            measured > 0.9 && measured < 2.0,
            "measured beta {measured} should be heavy-tailed"
        );
        assert!(table.value("p99.9 / median duration", "Value").unwrap() > 5.0);
        assert!(!report.series["hill-plot"].points.is_empty());
    }
}
