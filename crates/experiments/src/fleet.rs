//! GRASS glue for the `grass-fleet` broker/worker service, plus the
//! `repro fleet` CLI verbs.
//!
//! `grass-fleet` moves opaque cell specs and result payloads; this module
//! defines both encodings for sweep work:
//!
//! * a **cell spec** names one `(trace, machines, policy, seed, slots)` cell
//!   of a sweep grid, so a worker can stream the shared on-disk trace via
//!   `open_workload_source` and run the cell through [`run_sweep_cell`] — the
//!   exact code path `run_sweep` uses in-process;
//! * a **result payload** encodes every [`JobOutcome`] field at full precision
//!   (shortest-round-trip float formatting), so the broker-side merge
//!   reconstructs bit-identical outcome sets and the fleet digest is
//!   byte-identical to a single-process sweep;
//! * a **cell key** hashes the cell's inputs (trace identity, machines,
//!   policy, seed, slots, experiment profile) for the persistent
//!   [`DigestCache`], which doubles as the `repro sweep --resume` cache.

// grass: allow(unordered-iter-on-digest-path, "keyed lookup only; the trace cache is never iterated for results")
use std::collections::HashMap;
use std::env;
use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use grass_core::{Bound, JobId, JobOutcome, SampleStore, SpeculationMode, StoreSnapshot};
use grass_fleet::broker::serve_broker_on;
use grass_fleet::{
    run_fleet, run_worker, CellRunner, DigestCache, FleetConfig, FleetOutcome, SYNC_SEPARATOR,
};
use grass_metrics::OutcomeSet;
use grass_sim::ClusterConfig;
use grass_trace::codec::{escape, unescape};
use grass_trace::{open_workload_source, open_workload_source_mmap, WorkloadMeta};
use grass_workload::{JobSource, StreamedWorkload};

use crate::common::ExpConfig;
use crate::sweep::{
    assemble_sweep_result, merge_seed_sets, parse_policy, run_sweep_cell, sweep_config_from_flags,
    SweepConfig, SweepResult,
};
use crate::trace_cli::{resolve_workload_path, Flags};
use crate::PolicyKind;

// ---------------------------------------------------------------------------
// Trace identity and cell keys
// ---------------------------------------------------------------------------

/// Content identity of a trace file: FNV-1a 64 over its bytes plus its length.
/// Part of every cell key, so editing or re-recording a trace invalidates all
/// of its cached cells.
pub fn trace_identity(path: &Path) -> Result<String, String> {
    let mut file = File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut len: u64 = 0;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = file
            .read(&mut buf)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        if n == 0 {
            break;
        }
        len += n as u64;
        for &b in &buf[..n] {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    Ok(format!("fnv64-{hash:016x}-len{len}"))
}

/// CLI/wire name of a policy ([`parse_policy`]'s inverse). Only the named
/// policy set is encodable — a custom-tuned `Grass(config)` has no wire name,
/// and refusing it here keeps cache keys and cell specs unambiguous.
fn policy_wire_name(policy: &PolicyKind) -> Result<&'static str, String> {
    match policy {
        PolicyKind::Late => Ok("late"),
        PolicyKind::Mantri => Ok("mantri"),
        PolicyKind::NoSpec => Ok("nospec"),
        PolicyKind::GsOnly => Ok("gs"),
        PolicyKind::RasOnly => Ok("ras"),
        PolicyKind::Oracle => Ok("oracle"),
        PolicyKind::Grass(_) if *policy == PolicyKind::grass() => Ok("grass"),
        PolicyKind::Grass(_) if *policy == PolicyKind::grass_sketched() => Ok("grass-sketch"),
        PolicyKind::Grass(_) => Err(
            "fleet cells carry named policies only; a custom GRASS config is not encodable"
                .to_string(),
        ),
    }
}

/// The digest-cache key for one sweep cell: every input that determines the
/// cell's outcomes. Cluster shape beyond the machine count is normalised
/// (machines are keyed separately) and included so heterogeneity/straggler
/// profile changes can never serve stale results.
pub fn cell_key(
    trace_id: &str,
    machines: usize,
    policy: &PolicyKind,
    seed: u64,
    base: &ExpConfig,
) -> Result<String, String> {
    let cluster_profile = ClusterConfig {
        machines: 0,
        ..base.cluster
    };
    Ok(format!(
        "grass-fleet cell v1 trace={} machines={} policy={} seed={} slots={} warmup={} estimator={} cluster={}",
        trace_id,
        machines,
        policy_wire_name(policy)?,
        seed,
        base.cluster.slots_per_machine,
        base.warmup_fraction,
        escape(&format!("{:?}", base.estimator)),
        escape(&format!("{cluster_profile:?}")),
    ))
}

// ---------------------------------------------------------------------------
// Cell spec codec (broker -> worker)
// ---------------------------------------------------------------------------

/// One cell of a fleet grid: the seed-level unit a worker runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCellSpec {
    pub machines: usize,
    pub policy: PolicyKind,
    pub seed: u64,
}

fn encode_cell_spec(trace: &Path, cell: &FleetCellSpec, slots: usize) -> Result<String, String> {
    Ok(format!(
        "machines={} policy={} seed={} slots={} trace={}",
        cell.machines,
        policy_wire_name(&cell.policy)?,
        cell.seed,
        slots,
        escape(&trace.display().to_string()),
    ))
}

struct ParsedCellSpec {
    machines: usize,
    policy: PolicyKind,
    seed: u64,
    slots: usize,
    trace: PathBuf,
}

fn parse_cell_spec(spec: &str) -> Result<ParsedCellSpec, String> {
    let fields = FieldMap::parse(spec)?;
    Ok(ParsedCellSpec {
        machines: fields.number("machines")? as usize,
        policy: parse_policy(&fields.text("policy")?)?,
        seed: fields.number("seed")?,
        slots: fields.number("slots")? as usize,
        trace: PathBuf::from(fields.text("trace")?),
    })
}

/// `key=value` fields of one line (specs and payload lines share the format).
struct FieldMap<'a> {
    fields: Vec<(&'a str, &'a str)>,
}

impl<'a> FieldMap<'a> {
    fn parse(line: &'a str) -> Result<FieldMap<'a>, String> {
        let mut fields = Vec::new();
        for part in line.split_whitespace() {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("field `{part}` is not key=value"))?;
            fields.push((key, value));
        }
        Ok(FieldMap { fields })
    }

    fn raw(&self, key: &str) -> Result<&'a str, String> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    fn text(&self, key: &str) -> Result<String, String> {
        unescape(self.raw(key)?).map_err(|e| format!("field `{key}`: {e}"))
    }

    fn number(&self, key: &str) -> Result<u64, String> {
        let raw = self.raw(key)?;
        raw.parse::<u64>()
            .map_err(|e| format!("field `{key}`={raw}: {e}"))
    }

    fn float(&self, key: &str) -> Result<f64, String> {
        let raw = self.raw(key)?;
        raw.parse::<f64>()
            .map_err(|e| format!("field `{key}`={raw}: {e}"))
    }
}

// ---------------------------------------------------------------------------
// Result payload codec (worker -> broker, and the digest cache value)
// ---------------------------------------------------------------------------

/// Encode one cell's outcomes at full precision. Floats use Rust's
/// shortest-round-trip `Display`, so decode is bit-exact for every finite
/// value and the merged digest cannot drift from the in-process one.
pub fn encode_cell_outcomes(set: &OutcomeSet) -> String {
    let mut out = format!("cellresult v1 outcomes={}\n", set.len());
    for o in set.all() {
        let bound = match o.bound {
            Bound::Deadline(d) => format!("deadline:{d}"),
            Bound::Error(e) => format!("error:{e}"),
        };
        out.push_str(&format!(
            "outcome job={} policy={} bound={} input_tasks={} total_tasks={} dag_length={} \
             arrival={} finish={} completed_input_tasks={} completed_tasks={} \
             speculative_copies={} killed_copies={} slot_seconds={} avg_wave_width={} \
             avg_cluster_utilization={} avg_estimation_accuracy={}\n",
            o.job.0,
            escape(&o.policy),
            bound,
            o.input_tasks,
            o.total_tasks,
            o.dag_length,
            o.arrival,
            o.finish,
            o.completed_input_tasks,
            o.completed_tasks,
            o.speculative_copies,
            o.killed_copies,
            o.slot_seconds,
            o.avg_wave_width,
            o.avg_cluster_utilization,
            o.avg_estimation_accuracy,
        ));
    }
    out
}

/// Decode a payload produced by [`encode_cell_outcomes`].
pub fn decode_cell_outcomes(payload: &str) -> Result<OutcomeSet, String> {
    let mut lines = payload.lines();
    let header = lines.next().ok_or("empty cell payload")?;
    let expected = header
        .strip_prefix("cellresult v1 outcomes=")
        .ok_or_else(|| format!("bad cell payload header `{header}`"))?
        .parse::<usize>()
        .map_err(|e| format!("bad outcome count: {e}"))?;
    let mut outcomes = Vec::with_capacity(expected);
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let line = line
            .strip_prefix("outcome ")
            .ok_or_else(|| format!("bad outcome line `{line}`"))?;
        let fields = FieldMap::parse(line)?;
        let bound_raw = fields.raw("bound")?;
        let bound = match bound_raw.split_once(':') {
            Some(("deadline", v)) => {
                Bound::Deadline(v.parse::<f64>().map_err(|e| format!("bad deadline: {e}"))?)
            }
            Some(("error", v)) => {
                Bound::Error(v.parse::<f64>().map_err(|e| format!("bad error: {e}"))?)
            }
            _ => return Err(format!("bad bound `{bound_raw}`")),
        };
        outcomes.push(JobOutcome {
            job: JobId(fields.number("job")?),
            policy: fields.text("policy")?,
            bound,
            input_tasks: fields.number("input_tasks")? as usize,
            total_tasks: fields.number("total_tasks")? as usize,
            dag_length: fields.number("dag_length")? as usize,
            arrival: fields.float("arrival")?,
            finish: fields.float("finish")?,
            completed_input_tasks: fields.number("completed_input_tasks")? as usize,
            completed_tasks: fields.number("completed_tasks")? as usize,
            speculative_copies: fields.number("speculative_copies")? as usize,
            killed_copies: fields.number("killed_copies")? as usize,
            slot_seconds: fields.float("slot_seconds")?,
            avg_wave_width: fields.float("avg_wave_width")?,
            avg_cluster_utilization: fields.float("avg_cluster_utilization")?,
            avg_estimation_accuracy: fields.float("avg_estimation_accuracy")?,
        });
    }
    if outcomes.len() != expected {
        return Err(format!(
            "cell payload declared {expected} outcomes, carried {}",
            outcomes.len()
        ));
    }
    Ok(OutcomeSet::new(outcomes))
}

// ---------------------------------------------------------------------------
// The fleet plan: grid enumeration, cache lookup, grid-order merge
// ---------------------------------------------------------------------------

/// A sweep grid prepared for fleet execution: the trace it runs over, the
/// seed-level cells in dispatch order, and the merge back into a
/// [`SweepResult`].
///
/// Cell order is `SweepConfig::units()` (machines outer, policy inner) with
/// the seed innermost — per-unit payload chunks are contiguous, and pooling
/// them in seed order reproduces exactly what `run_policy` computes
/// in-process.
pub struct FleetPlan {
    pub trace_path: PathBuf,
    pub trace_id: String,
    pub meta: WorkloadMeta,
    pub source: StreamedWorkload,
    pub config: SweepConfig,
    pub cells: Vec<FleetCellSpec>,
}

impl FleetPlan {
    /// Build a plan for `config` over the trace at `path` (already opened as
    /// `meta`/`source`). Fails when the grid is not fleet-encodable: unnamed
    /// policies, or a `base` that deviates from the standard sweep profile a
    /// worker reconstructs from the cell spec.
    pub fn new(
        path: &Path,
        meta: WorkloadMeta,
        source: StreamedWorkload,
        config: SweepConfig,
    ) -> Result<FleetPlan, String> {
        // Workers may run in another working directory: ship an absolute path.
        let trace_path = std::fs::canonicalize(path)
            .map_err(|e| format!("cannot canonicalize {}: {e}", path.display()))?;
        let trace_id = trace_identity(&trace_path)?;

        // A worker rebuilds its ExpConfig from the spec as "ExpConfig::full()
        // with the spec's slots, over an ec2_scaled cluster". Reject bases that
        // would make that reconstruction diverge from the broker's merge.
        let canonical = ExpConfig::full();
        let expected_cluster = ClusterConfig {
            machines: config.base.cluster.machines,
            slots_per_machine: config.base.cluster.slots_per_machine,
            ..ClusterConfig::ec2_scaled()
        };
        if format!("{:?}", config.base.cluster) != format!("{expected_cluster:?}")
            || format!("{:?}", config.base.estimator) != format!("{:?}", canonical.estimator)
            || config.base.warmup_fraction != canonical.warmup_fraction
        {
            return Err(
                "fleet sweeps assume the standard experiment profile (ExpConfig::full over an \
                 ec2_scaled cluster); custom estimator/heterogeneity/warmup settings are not \
                 encodable in cell specs"
                    .to_string(),
            );
        }

        let mut cells = Vec::new();
        for (machines, policy) in config.units() {
            policy_wire_name(&policy)?;
            for &seed in &config.base.seeds {
                cells.push(FleetCellSpec {
                    machines,
                    policy: policy.clone(),
                    seed,
                });
            }
        }
        Ok(FleetPlan {
            trace_path,
            trace_id,
            meta,
            source,
            config,
            cells,
        })
    }

    /// Open the trace at `path` and build the plan in one step. With `mmap`,
    /// binary traces decode zero-copy out of a memory map (other formats fall
    /// back to the streamed open; the plan is identical either way).
    pub fn open(
        path: &Path,
        mmap: bool,
        config_for: impl FnOnce(&WorkloadMeta, &StreamedWorkload) -> Result<SweepConfig, String>,
    ) -> Result<FleetPlan, String> {
        let path = resolve_workload_path(path);
        let (meta, source) = if mmap {
            open_workload_source_mmap(&path)
        } else {
            open_workload_source(&path)
        }
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let config = config_for(&meta, &source)?;
        FleetPlan::new(&path, meta, source, config)
    }

    /// Wire specs for every cell, in dispatch (grid) order.
    pub fn specs(&self) -> Result<Vec<String>, String> {
        let slots = self.config.base.cluster.slots_per_machine;
        self.cells
            .iter()
            .map(|cell| encode_cell_spec(&self.trace_path, cell, slots))
            .collect()
    }

    /// Digest-cache key per cell, in dispatch order.
    pub fn keys(&self) -> Result<Vec<String>, String> {
        self.cells
            .iter()
            .map(|cell| {
                cell_key(
                    &self.trace_id,
                    cell.machines,
                    &cell.policy,
                    cell.seed,
                    &self.config.base,
                )
            })
            .collect()
    }

    /// Look every cell up in `cache`. A hit must also decode cleanly —
    /// corrupt entries are treated as misses, never merged.
    pub fn lookup_cached(&self, cache: &DigestCache) -> Result<Vec<Option<String>>, String> {
        Ok(self
            .keys()?
            .into_iter()
            .map(|key| {
                cache
                    .get(&key)
                    .filter(|payload| decode_cell_outcomes(payload).is_ok())
            })
            .collect())
    }

    /// Persist the payloads of cells that were actually run (`cached[i]` was
    /// `None`). Returns the number of entries written.
    pub fn write_back(
        &self,
        cache: &DigestCache,
        cached: &[Option<String>],
        payloads: &[String],
    ) -> Result<usize, String> {
        let keys = self.keys()?;
        let mut written = 0;
        for (i, key) in keys.iter().enumerate() {
            if cached.get(i).is_some_and(Option::is_none) {
                cache
                    .put(key, &payloads[i])
                    .map_err(|e| format!("cannot write cache entry: {e}"))?;
                written += 1;
            }
        }
        Ok(written)
    }

    /// Merge grid-order cell payloads into the [`SweepResult`] a
    /// single-process `run_sweep` of the same grid would produce.
    pub fn merge(&self, payloads: &[String], elapsed: Duration) -> Result<SweepResult, String> {
        if payloads.len() != self.cells.len() {
            return Err(format!(
                "fleet returned {} payloads for {} cells",
                payloads.len(),
                self.cells.len()
            ));
        }
        let decoded: Vec<OutcomeSet> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| {
                decode_cell_outcomes(p).map_err(|e| format!("cell {i} payload invalid: {e}"))
            })
            .collect::<Result<_, String>>()?;
        let seeds = self.config.base.seeds.len().max(1);
        let sets: Vec<OutcomeSet> = decoded
            .chunks(seeds)
            .map(|chunk| merge_seed_sets(chunk.to_vec()))
            .collect();
        Ok(assemble_sweep_result(
            &self.source,
            &self.config,
            sets,
            elapsed,
        ))
    }
}

// ---------------------------------------------------------------------------
// The worker-side runner
// ---------------------------------------------------------------------------

/// Runs sweep cells from their wire specs — the [`CellRunner`] behind
/// `repro fleet work`. Opened traces are cached per path and the streamed
/// source is shared: no per-worker in-memory copy of the workload.
///
/// Alongside the cells, the runner accumulates a **sketched** [`SampleStore`]
/// of every pure-GS / pure-RAS job outcome its cells produce, and exchanges
/// that store with the other workers through the broker's `sync` frames
/// ([`CellRunner::snapshot`] / [`CellRunner::absorb`]). The exchange is
/// observability-only for sweep digests: cells rebuild their own warmed stores
/// from the trace, so merged fleet state never leaks into pinned outcomes.
pub struct SweepCellRunner {
    stall_ms: u64,
    mmap: bool,
    // grass: allow(unordered-iter-on-digest-path, "keyed lookup only; cells fetch their own trace by path")
    sources: Mutex<HashMap<PathBuf, StreamedWorkload>>,
    /// This worker's own observations — the snapshot it offers the fleet.
    learned: SampleStore,
    /// Latest merged view of the *other* workers' snapshots. Replaced (not
    /// accumulated) on every sync: the broker's board always carries each
    /// peer's complete current state, so replacing avoids double-counting
    /// across repeated exchanges.
    peers: Mutex<StoreSnapshot>,
}

impl SweepCellRunner {
    pub fn new() -> SweepCellRunner {
        SweepCellRunner::with_stall(0)
    }

    /// A runner that sleeps `stall_ms` before every cell — fault-injection
    /// hook (`repro fleet work --stall-ms N`) so tests can SIGKILL a worker
    /// reliably mid-cell.
    pub fn with_stall(stall_ms: u64) -> SweepCellRunner {
        SweepCellRunner {
            stall_ms,
            mmap: false,
            // grass: allow(unordered-iter-on-digest-path, "keyed lookup only; cells fetch their own trace by path")
            sources: Mutex::new(HashMap::new()),
            learned: SampleStore::sketched(),
            peers: Mutex::new(StoreSnapshot::default()),
        }
    }

    /// Open traces through the zero-copy mmap path (`repro fleet work --mmap`).
    /// Cell payloads are identical either way; only the read path differs.
    pub fn with_mmap(mut self, mmap: bool) -> SweepCellRunner {
        self.mmap = mmap;
        self
    }

    /// The sketched store of learned GS/RAS rates from this runner's own cells.
    pub fn learned_store(&self) -> &SampleStore {
        &self.learned
    }

    /// Fleet-wide learned state: this worker's own snapshot merged with the
    /// latest snapshots absorbed from every peer.
    pub fn fleet_view(&self) -> StoreSnapshot {
        let mut view = self.learned.snapshot();
        view.merge(&self.peers.lock().unwrap());
        view
    }

    fn source_for(&self, path: &Path) -> Result<StreamedWorkload, String> {
        let mut sources = self.sources.lock().unwrap();
        if let Some(source) = sources.get(path) {
            return Ok(source.clone());
        }
        let (_meta, source) = if self.mmap {
            open_workload_source_mmap(path)
        } else {
            open_workload_source(path)
        }
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        sources.insert(path.to_path_buf(), source.clone());
        Ok(source)
    }
}

impl Default for SweepCellRunner {
    fn default() -> Self {
        SweepCellRunner::new()
    }
}

impl CellRunner for SweepCellRunner {
    fn run(&self, _cell: usize, spec: &str) -> Result<String, String> {
        let parsed = parse_cell_spec(spec)?;
        if self.stall_ms > 0 {
            thread::sleep(Duration::from_millis(self.stall_ms));
        }
        let source = self.source_for(&parsed.trace)?;
        // The profile FleetPlan::new validated: ExpConfig::full() over an
        // ec2_scaled cluster with the spec's slot count.
        let base = ExpConfig {
            cluster: ClusterConfig {
                slots_per_machine: parsed.slots,
                ..ClusterConfig::ec2_scaled()
            },
            ..ExpConfig::full()
        };
        let set = run_sweep_cell(&source, &base, parsed.machines, &parsed.policy, parsed.seed);
        // Feed the learned store from jobs that ran a pure mode throughout:
        // GS/RAS cells entirely, plus the ξ-perturbed sample jobs inside GRASS
        // cells (both report the algorithm they actually ran as their policy).
        for outcome in set.all() {
            match outcome.policy.as_str() {
                "GS" => self.learned.record_outcome(SpeculationMode::Gs, outcome),
                "RAS" => self.learned.record_outcome(SpeculationMode::Ras, outcome),
                _ => {}
            }
        }
        Ok(encode_cell_outcomes(&set))
    }

    fn snapshot(&self) -> Option<String> {
        Some(self.learned.snapshot().encode())
    }

    fn absorb(&self, snapshots: &str) {
        let mut merged = StoreSnapshot::default();
        for part in snapshots.split(SYNC_SEPARATOR) {
            match StoreSnapshot::decode(part) {
                Ok(snap) => merged.merge(&snap),
                Err(reason) => eprintln!("fleet sync: ignoring malformed peer snapshot: {reason}"),
            }
        }
        *self.peers.lock().unwrap() = merged;
    }
}

// ---------------------------------------------------------------------------
// Cache-aware in-process sweep (`repro sweep --resume`)
// ---------------------------------------------------------------------------

/// What a cache-aware sweep did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeStats {
    pub cells: usize,
    pub cached: usize,
    pub ran: usize,
}

/// Run `config` over `source` in-process, serving cells from `cache` where
/// the input hash matches and persisting every cell that had to run. The
/// result is byte-identical to [`crate::run_sweep`] of the same grid.
pub fn run_sweep_with_cache(
    source: &(dyn JobSource + Sync),
    config: &SweepConfig,
    cache: &DigestCache,
    trace_id: &str,
) -> Result<(SweepResult, ResumeStats), String> {
    // grass: allow(wall-clock-in-core, "elapsed is operator-facing metadata; digests and comparisons never read it")
    let started = Instant::now();
    let units = config.units();
    let seeds = config.base.seeds.clone();
    let mut cells = Vec::new();
    for (machines, policy) in &units {
        for &seed in &seeds {
            cells.push((*machines, policy.clone(), seed));
        }
    }
    let keys: Vec<String> = cells
        .iter()
        .map(|(m, p, s)| cell_key(trace_id, *m, p, *s, &config.base))
        .collect::<Result<_, String>>()?;

    let mut sets: Vec<Option<OutcomeSet>> = keys
        .iter()
        .map(|key| {
            cache
                .get(key)
                .and_then(|payload| decode_cell_outcomes(&payload).ok())
        })
        .collect();
    let cached = sets.iter().flatten().count();
    let misses: Vec<usize> = (0..cells.len()).filter(|&i| sets[i].is_none()).collect();

    // Run the misses on the sweep's thread pool (claim-counter indexing, so
    // the fill order — and therefore the digest — is scheduling-independent).
    let workers = config.threads.max(1).min(misses.len().max(1));
    let ran: Vec<(usize, OutcomeSet)> = if workers <= 1 {
        misses
            .iter()
            .map(|&i| {
                let (m, p, s) = &cells[i];
                (i, run_sweep_cell(source, &config.base, *m, p, *s))
            })
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, OutcomeSet)>> =
            Mutex::new(Vec::with_capacity(misses.len()));
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= misses.len() {
                        break;
                    }
                    let i = misses[slot];
                    let (m, p, s) = &cells[i];
                    let set = run_sweep_cell(source, &config.base, *m, p, *s);
                    collected.lock().unwrap().push((i, set));
                });
            }
        });
        collected.into_inner().unwrap()
    };
    for (i, set) in ran {
        cache
            .put(&keys[i], &encode_cell_outcomes(&set))
            .map_err(|e| format!("cannot write cache entry: {e}"))?;
        sets[i] = Some(set);
    }

    let per_unit: Vec<OutcomeSet> = sets
        .into_iter()
        .map(|s| s.expect("every cell resolved"))
        .collect::<Vec<_>>()
        .chunks(seeds.len().max(1))
        .map(|chunk| merge_seed_sets(chunk.to_vec()))
        .collect();
    let stats = ResumeStats {
        cells: cells.len(),
        cached,
        ran: misses.len(),
    };
    Ok((
        assemble_sweep_result(source, config, per_unit, started.elapsed()),
        stats,
    ))
}

// ---------------------------------------------------------------------------
// CLI: repro fleet serve | work | run
// ---------------------------------------------------------------------------

const GRID_FLAGS: &[&str] = &["machines", "slots", "policies", "baseline", "seeds"];
const TIMING_FLAGS: &[&str] = &[
    "heartbeat-ms",
    "lease-timeout-ms",
    "backoff-base-ms",
    "backoff-jitter-ms",
    "max-retries",
    "backoff-seed",
    "poll-ms",
];

fn fleet_config_from_flags(flags: &Flags) -> Result<FleetConfig, String> {
    let mut cfg = if flags.has("test-profile") {
        FleetConfig::test_profile()
    } else {
        FleetConfig::production()
    };
    cfg.heartbeat_ms = flags.get_u64("heartbeat-ms", cfg.heartbeat_ms)?;
    cfg.lease_timeout_ms = flags.get_u64("lease-timeout-ms", cfg.lease_timeout_ms)?;
    cfg.backoff_base_ms = flags.get_u64("backoff-base-ms", cfg.backoff_base_ms)?;
    cfg.backoff_jitter_ms = flags.get_u64("backoff-jitter-ms", cfg.backoff_jitter_ms)?;
    cfg.max_retries = flags.get_u64("max-retries", cfg.max_retries as u64)? as u32;
    cfg.backoff_seed = flags.get_u64("backoff-seed", cfg.backoff_seed)?;
    cfg.poll_ms = flags.get_u64("poll-ms", cfg.poll_ms)?;
    Ok(cfg)
}

/// Entry point for `repro fleet <serve|work|run> ...`.
pub fn run_fleet_command(args: &[String]) -> Result<(), String> {
    let Some((verb, rest)) = args.split_first() else {
        return Err(
            "fleet expects a verb: serve <trace>, work --connect <addr>, or run <trace> \
             --workers N"
                .to_string(),
        );
    };
    match verb.as_str() {
        "serve" => fleet_serve_command(rest),
        "work" => fleet_work_command(rest),
        "run" => fleet_run_command(rest),
        other => Err(format!(
            "unknown fleet verb '{other}'; expected serve, work or run"
        )),
    }
}

fn fleet_serve_command(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse_with_switches(args, &["quick", "test-profile", "mmap"])?;
    let mut allowed = vec!["quick", "test-profile", "cache", "port", "mmap"];
    allowed.extend_from_slice(GRID_FLAGS);
    allowed.extend_from_slice(TIMING_FLAGS);
    flags.reject_unknown(&allowed)?;
    let [path] = flags.positional.as_slice() else {
        return Err("fleet serve expects exactly one workload trace path".to_string());
    };
    let plan = FleetPlan::open(Path::new(path), flags.has("mmap"), |meta, source| {
        sweep_config_from_flags(&flags, meta, source)
    })?;
    let fleet_config = fleet_config_from_flags(&flags)?;
    let port = flags.get_u64("port", 0)? as u16;
    let cache = open_cache(&flags)?;
    run_plan(
        plan,
        fleet_config,
        cache.as_ref(),
        |handle_addr| {
            eprintln!(
                "fleet broker listening on {handle_addr}; start workers with: \
                 repro fleet work --connect {handle_addr}"
            );
            Ok(Vec::new())
        },
        port,
    )
}

fn fleet_run_command(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse_with_switches(args, &["quick", "test-profile", "mmap"])?;
    let mut allowed = vec![
        "quick",
        "test-profile",
        "cache",
        "workers",
        "stall-ms",
        "mmap",
    ];
    allowed.extend_from_slice(GRID_FLAGS);
    allowed.extend_from_slice(TIMING_FLAGS);
    flags.reject_unknown(&allowed)?;
    let [path] = flags.positional.as_slice() else {
        return Err("fleet run expects exactly one workload trace path".to_string());
    };
    let fleet_config = fleet_config_from_flags(&flags)?;
    let workers = flags.get_usize("workers", 2)?;
    if workers == 0 {
        return Err("fleet run needs --workers >= 1".to_string());
    }
    let stall_ms = flags.get_u64("stall-ms", 0)?;
    let mmap = flags.has("mmap");
    let plan = FleetPlan::open(Path::new(path), mmap, |meta, source| {
        sweep_config_from_flags(&flags, meta, source)
    })?;
    let cache = open_cache(&flags)?;

    let specs = plan.specs()?;
    let cached = match cache.as_ref() {
        Some(cache) => plan.lookup_cached(cache)?,
        None => vec![None; specs.len()],
    };
    let cached_count = cached.iter().flatten().count();
    eprintln!(
        "fleet run: {} cells ({cached_count} cached), {workers} local worker(s)",
        specs.len()
    );
    let exe = env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    // grass: allow(wall-clock-in-core, "elapsed is operator-facing metadata; digests and comparisons never read it")
    let started = Instant::now();
    let report = run_fleet(specs, cached.clone(), fleet_config, workers, |i, addr| {
        let mut cmd = Command::new(&exe);
        cmd.arg("fleet")
            .arg("work")
            .arg("--connect")
            .arg(addr.to_string())
            .arg("--id")
            .arg(format!("worker-{i}"));
        if stall_ms > 0 {
            cmd.arg("--stall-ms").arg(stall_ms.to_string());
        }
        if mmap {
            cmd.arg("--mmap");
        }
        // Workers log to stderr; keep stdout digest-clean.
        cmd.stdout(Stdio::null());
        cmd
    })
    .map_err(|e| e.to_string())?;
    finish_fleet(
        &plan,
        cache.as_ref(),
        &cached,
        report.outcome,
        started.elapsed(),
    )
}

fn fleet_work_command(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse_with_switches(args, &["mmap"])?;
    flags.reject_unknown(&["connect", "id", "stall-ms", "mmap"])?;
    if !flags.positional.is_empty() {
        return Err("fleet work takes no positional arguments".to_string());
    }
    let Some(addr) = flags.get("connect") else {
        return Err("fleet work needs --connect <host:port>".to_string());
    };
    let default_id = format!("worker-{}", std::process::id());
    let id = flags.get("id").unwrap_or(default_id.as_str());
    let stall_ms = flags.get_u64("stall-ms", 0)?;
    let runner = SweepCellRunner::with_stall(stall_ms).with_mmap(flags.has("mmap"));
    eprintln!("fleet worker {id} connecting to {addr}");
    let report = run_worker(addr, id, &runner).map_err(|e| e.to_string())?;
    eprintln!(
        "fleet worker {id} done: completed={} failed={} stale={} syncs={}",
        report.completed, report.failed, report.stale, report.syncs
    );
    Ok(())
}

fn open_cache(flags: &Flags) -> Result<Option<DigestCache>, String> {
    match flags.get("cache") {
        Some(dir) => DigestCache::open(dir)
            .map(Some)
            .map_err(|e| format!("cannot open cache {dir}: {e}")),
        None => Ok(None),
    }
}

/// Serve `plan` on a broker, let `before_wait` start (or announce) workers,
/// wait for the grid, then merge/report. Shared by `fleet serve` (external
/// workers) and tests.
fn run_plan(
    plan: FleetPlan,
    fleet_config: FleetConfig,
    cache: Option<&DigestCache>,
    before_wait: impl FnOnce(std::net::SocketAddr) -> Result<Vec<std::process::Child>, String>,
    port: u16,
) -> Result<(), String> {
    let specs = plan.specs()?;
    let cached = match cache {
        Some(cache) => plan.lookup_cached(cache)?,
        None => vec![None; specs.len()],
    };
    // grass: allow(wall-clock-in-core, "elapsed is operator-facing metadata; digests and comparisons never read it")
    let started = Instant::now();
    let handle = serve_broker_on(specs, cached.clone(), fleet_config, port)
        .map_err(|e| format!("cannot start broker: {e}"))?;
    let _children = before_wait(handle.addr())?;
    let outcome = handle.wait().map_err(|e| e.to_string())?;
    finish_fleet(&plan, cache, &cached, outcome, started.elapsed())
}

/// Write back fresh cells, merge in grid order, render tables (stderr) and
/// the digest (stdout) exactly like `repro sweep`.
fn finish_fleet(
    plan: &FleetPlan,
    cache: Option<&DigestCache>,
    cached: &[Option<String>],
    outcome: FleetOutcome,
    elapsed: Duration,
) -> Result<(), String> {
    if let Some(cache) = cache {
        plan.write_back(cache, cached, &outcome.results)?;
    }
    let result = plan.merge(&outcome.results, elapsed)?;
    eprintln!(
        "{}",
        result
            .improvement_table()
            .render_text()
            .trim_end_matches('\n')
    );
    eprintln!(
        "{}",
        result.mean_table().render_text().trim_end_matches('\n')
    );
    let stats = outcome.stats;
    eprintln!(
        "fleet cells={} cached={} ran={} dispatched={} expired_leases={} crash_releases={} \
         failed_reports={} stale_completes={} sync_exchanges={} elapsed={elapsed:.2?}",
        plan.cells.len(),
        stats.cached,
        stats.completed,
        stats.dispatched,
        stats.expired_leases,
        stats.crash_releases,
        stats.failed_reports,
        stats.stale_completes,
        stats.sync_exchanges,
    );
    print!("{}", result.digest());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use grass_trace::record_workload;
    use grass_workload::{BoundSpec, Framework, TraceProfile, WorkloadConfig};
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = env::temp_dir().join(format!("grass-fleet-exp-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record_trace(dir: &Path) -> PathBuf {
        let config = WorkloadConfig::new(TraceProfile::facebook(Framework::Spark))
            .with_jobs(6)
            .with_bound(BoundSpec::paper_errors());
        let trace = record_workload(&config, 7, 11, "late", 10, 4);
        let path = dir.join("workload.trace");
        trace
            .save_as(&path, grass_trace::TraceFormat::Text)
            .unwrap();
        path
    }

    fn tiny_config(meta: &WorkloadMeta, source: &StreamedWorkload) -> SweepConfig {
        let base = ExpConfig {
            jobs_per_run: source.total_jobs(),
            seeds: vec![meta.sim_seed],
            cluster: ClusterConfig {
                machines: meta.machines,
                slots_per_machine: meta.slots_per_machine,
                ..ClusterConfig::ec2_scaled()
            },
            ..ExpConfig::full()
        };
        SweepConfig {
            machines: vec![6, 10],
            policies: vec![PolicyKind::Late, PolicyKind::GsOnly],
            baseline: PolicyKind::Late,
            threads: 1,
            base,
        }
    }

    #[test]
    fn outcome_payloads_round_trip_bit_exactly() {
        let outcomes = vec![
            JobOutcome {
                job: JobId(3),
                policy: "GS then RAS".into(),
                bound: Bound::Deadline(0.1 + 0.2), // 0.30000000000000004
                input_tasks: 50,
                total_tasks: 75,
                dag_length: 2,
                arrival: 1.5e-300,
                finish: f64::MAX,
                completed_input_tasks: 48,
                completed_tasks: 70,
                speculative_copies: 3,
                killed_copies: 1,
                slot_seconds: 123.45678901234568,
                avg_wave_width: 4.000000000000001,
                avg_cluster_utilization: 0.9999999999999999,
                avg_estimation_accuracy: -0.0,
            },
            JobOutcome {
                job: JobId(4),
                policy: "LATE".into(),
                bound: Bound::Error(0.05),
                input_tasks: 1,
                total_tasks: 1,
                dag_length: 1,
                arrival: 0.0,
                finish: 7.25,
                completed_input_tasks: 1,
                completed_tasks: 1,
                speculative_copies: 0,
                killed_copies: 0,
                slot_seconds: 7.25,
                avg_wave_width: 1.0,
                avg_cluster_utilization: 0.5,
                avg_estimation_accuracy: 1.0,
            },
        ];
        let set = OutcomeSet::new(outcomes);
        let payload = encode_cell_outcomes(&set);
        let decoded = decode_cell_outcomes(&payload).unwrap();
        assert_eq!(decoded.all(), set.all());
        // Re-encoding is canonical: byte-identical payloads.
        assert_eq!(encode_cell_outcomes(&decoded), payload);
    }

    #[test]
    fn decode_rejects_corrupt_payloads() {
        assert!(decode_cell_outcomes("").is_err());
        assert!(decode_cell_outcomes("cellresult v2 outcomes=0\n").is_err());
        assert!(decode_cell_outcomes("cellresult v1 outcomes=1\n").is_err());
        assert!(
            decode_cell_outcomes("cellresult v1 outcomes=1\noutcome job=1\n").is_err(),
            "missing fields must not decode"
        );
    }

    #[test]
    fn cell_specs_round_trip_and_name_every_standard_policy() {
        let spec = FleetCellSpec {
            machines: 50,
            policy: PolicyKind::grass(),
            seed: 23,
        };
        let line = encode_cell_spec(Path::new("/tmp/some dir/workload.trace"), &spec, 4).unwrap();
        let parsed = parse_cell_spec(&line).unwrap();
        assert_eq!(parsed.machines, 50);
        assert_eq!(parsed.policy, PolicyKind::grass());
        assert_eq!(parsed.seed, 23);
        assert_eq!(parsed.slots, 4);
        assert_eq!(parsed.trace, PathBuf::from("/tmp/some dir/workload.trace"));

        for policy in [
            PolicyKind::Late,
            PolicyKind::Mantri,
            PolicyKind::NoSpec,
            PolicyKind::GsOnly,
            PolicyKind::RasOnly,
            PolicyKind::Oracle,
            PolicyKind::grass(),
            PolicyKind::grass_sketched(),
        ] {
            let name = policy_wire_name(&policy).unwrap();
            assert_eq!(parse_policy(name).unwrap(), policy);
        }
        // A tuned GRASS config has no wire name.
        let mut tuned = match PolicyKind::grass() {
            PolicyKind::Grass(cfg) => cfg,
            _ => unreachable!(),
        };
        tuned.xi += 0.01;
        assert!(policy_wire_name(&PolicyKind::Grass(tuned)).is_err());
    }

    #[test]
    fn cell_keys_separate_every_input() {
        let base = ExpConfig::full();
        let key = |trace: &str, m: usize, p: PolicyKind, s: u64| {
            cell_key(trace, m, &p, s, &base).unwrap()
        };
        let reference = key("t1", 20, PolicyKind::Late, 11);
        assert_eq!(reference, key("t1", 20, PolicyKind::Late, 11));
        assert_ne!(reference, key("t2", 20, PolicyKind::Late, 11));
        assert_ne!(reference, key("t1", 50, PolicyKind::Late, 11));
        assert_ne!(reference, key("t1", 20, PolicyKind::GsOnly, 11));
        assert_ne!(reference, key("t1", 20, PolicyKind::Late, 12));
        let mut other_slots = base.clone();
        other_slots.cluster.slots_per_machine += 1;
        assert_ne!(
            reference,
            cell_key("t1", 20, &PolicyKind::Late, 11, &other_slots).unwrap()
        );
    }

    #[test]
    fn resume_cache_reruns_nothing_and_reproduces_the_digest() {
        let dir = temp_dir("resume");
        let trace_path = record_trace(&dir);
        let (meta, source) = open_workload_source(&trace_path).unwrap();
        let config = tiny_config(&meta, &source);
        let expected = crate::run_sweep(&source, &config);

        let cache = DigestCache::open(dir.join("cache")).unwrap();
        let trace_id = trace_identity(&trace_path).unwrap();
        let (first, first_stats) =
            run_sweep_with_cache(&source, &config, &cache, &trace_id).unwrap();
        assert_eq!(first.digest(), expected.digest());
        assert_eq!(first_stats.cached, 0);
        assert_eq!(first_stats.ran, first_stats.cells);

        let (second, second_stats) =
            run_sweep_with_cache(&source, &config, &cache, &trace_id).unwrap();
        assert_eq!(second.digest(), expected.digest());
        assert_eq!(second_stats.cached, second_stats.cells);
        assert_eq!(second_stats.ran, 0);

        // A threaded resume fills the same digest.
        let mut threaded = config.clone();
        threaded.threads = 3;
        let fresh_cache = DigestCache::open(dir.join("cache2")).unwrap();
        let (third, _) = run_sweep_with_cache(&source, &threaded, &fresh_cache, &trace_id).unwrap();
        assert_eq!(third.digest(), expected.digest());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fleet_plan_rejects_non_standard_profiles() {
        let dir = temp_dir("plan-reject");
        let trace_path = record_trace(&dir);
        let (meta, source) = open_workload_source(&trace_path).unwrap();
        let mut config = tiny_config(&meta, &source);
        config.base.warmup_fraction = 0.25;
        let err = match FleetPlan::new(&trace_path, meta, source, config) {
            Ok(_) => panic!("non-standard profile accepted"),
            Err(e) => e,
        };
        assert!(err.contains("standard experiment profile"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fleet_command_rejects_bad_invocations() {
        assert!(run_fleet_command(&[]).unwrap_err().contains("verb"));
        let err = run_fleet_command(&["sow".into()]).unwrap_err();
        assert!(err.contains("unknown fleet verb"), "{err}");
        let err = run_fleet_command(&["work".into()]).unwrap_err();
        assert!(err.contains("--connect"), "{err}");
        let err = run_fleet_command(&["run".into(), "x".into(), "--workers".into(), "0".into()])
            .unwrap_err();
        assert!(err.contains("--workers >= 1"), "{err}");
        let err = run_fleet_command(&["serve".into()]).unwrap_err();
        assert!(err.contains("exactly one"), "{err}");
    }
}
