//! Figure 9: GRASS's gains as a function of the job DAG's length (2–6 stages), for
//! deadline- and error-bound jobs on the Facebook and Bing workloads.

use grass_metrics::{Cell, Report, Table};
use grass_workload::{BoundSpec, Framework, TraceProfile, WorkloadConfig};

use grass_workload::GeneratedWorkload;

use crate::common::{compare_outcomes, run_policy, ExpConfig, PolicyKind};

/// The DAG lengths swept in Figure 9.
pub const DAG_LENGTHS: [usize; 5] = [2, 3, 4, 5, 6];

fn workload(
    exp: &ExpConfig,
    profile: TraceProfile,
    bound: BoundSpec,
    dag_length: usize,
) -> WorkloadConfig {
    let mut cfg = WorkloadConfig::new(profile)
        .with_jobs(exp.jobs_per_run)
        .with_bound(bound)
        .with_dag_length(dag_length);
    cfg.expected_share = (exp.cluster.total_slots() / 5).max(4);
    cfg.duration_calibration = exp.cluster.mean_slowdown() * 0.8;
    cfg
}

/// Figure 9: improvement of GRASS over LATE versus the number of DAG stages.
pub fn fig9(exp: &ExpConfig) -> Report {
    let mut report = Report::new("fig9");
    for (bound, label) in [
        (
            BoundSpec::paper_deadlines(),
            "Figure 9a: deadline-bound jobs",
        ),
        (BoundSpec::paper_errors(), "Figure 9b: error-bound jobs"),
    ] {
        let mut table = Table::new(
            format!("{label}: improvement vs LATE by DAG length"),
            vec!["Length of DAG", "Facebook", "Bing"],
        );
        for dag in DAG_LENGTHS {
            let mut cells = Vec::new();
            for profile in [
                TraceProfile::facebook(Framework::Hadoop),
                TraceProfile::bing(Framework::Hadoop),
            ] {
                let source = GeneratedWorkload::new(workload(exp, profile, bound, dag));
                let base = run_policy(exp, &source, &PolicyKind::Late);
                let cand = run_policy(exp, &source, &PolicyKind::grass());
                let cmp = compare_outcomes(
                    &source,
                    &PolicyKind::Late,
                    &PolicyKind::grass(),
                    &base,
                    &cand,
                );
                cells.push(cmp.overall.map(Cell::Number).unwrap_or(Cell::Empty));
            }
            table.push_row(format!("{dag}"), cells);
        }
        report.add_table(table);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_lengths_match_the_paper_sweep() {
        assert_eq!(DAG_LENGTHS, [2, 3, 4, 5, 6]);
    }

    #[test]
    fn dag_workloads_have_requested_length() {
        let exp = ExpConfig::tiny();
        let wl = workload(
            &exp,
            TraceProfile::facebook(Framework::Hadoop),
            BoundSpec::paper_errors(),
            4,
        );
        let jobs = grass_workload::generate(&wl, 3);
        assert!(jobs.iter().all(|j| j.dag_length() == 4));
    }
}
