//! # grass-experiments
//!
//! The experiment harness that regenerates every table and figure of the GRASS
//! (NSDI '14) paper on top of the `grass-sim` simulator, `grass-workload` trace
//! generators, `grass-core` policies and `grass-policies` baselines.
//!
//! Each experiment is a function `fn(&ExpConfig) -> Report`; the [`run_experiment`]
//! registry maps the paper's figure/table identifiers to those functions, and the
//! `repro` binary prints the resulting tables. Absolute percentages will not match the
//! paper (the substrate is a calibrated simulator rather than the authors' EC2
//! testbed), but the orderings and rough factors are expected to: see EXPERIMENTS.md
//! at the repository root for the paper-vs-measured record.

pub mod ablations;
pub mod analytic;
pub mod common;
pub mod dag;
pub mod fleet;
pub mod gains;
pub mod lint_cli;
pub mod sweep;
pub mod tables;
pub mod trace_cli;

pub use common::{
    compare, compare_outcomes, metric_for, metric_for_source, run_once, run_policy,
    sample_task_durations, workload_jobs, Comparison, ExpConfig, PolicyKind,
};
pub use fleet::{
    run_fleet_command, run_sweep_with_cache, trace_identity, FleetCellSpec, FleetPlan, ResumeStats,
    SweepCellRunner,
};
pub use lint_cli::run_lint_command;
pub use sweep::{
    assemble_sweep_result, merge_seed_sets, parse_policy, run_sweep, run_sweep_cell,
    run_sweep_command, SweepCell, SweepConfig, SweepResult,
};
pub use trace_cli::{make_factory, outcome_digest, run_trace_command};

use grass_metrics::Report;

/// Identifiers of every reproducible table and figure, in paper order.
pub fn experiment_ids() -> Vec<&'static str> {
    vec![
        "table1", "sec2-3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        "fig11", "fig12", "fig13", "fig14", "fig15", "exact",
    ]
}

/// Run one experiment by identifier. Returns `None` for unknown identifiers.
pub fn run_experiment(id: &str, config: &ExpConfig) -> Option<Report> {
    let report = match id {
        "table1" => tables::table1(config),
        "sec2-3" => gains::potential_gains(config),
        "fig3" => analytic::fig3(config),
        "fig4" => analytic::fig4(config),
        "fig5" => gains::fig5(config),
        "fig6" => gains::fig6(config),
        "fig7" => gains::fig7(config),
        "fig8" => gains::fig8(config),
        "fig9" => dag::fig9(config),
        "fig10" => ablations::fig10(config),
        "fig11" => ablations::fig11(config),
        "fig12" => ablations::fig12(config),
        "fig13" => ablations::fig13(config),
        "fig14" => ablations::fig14(config),
        "fig15" => ablations::fig15(config),
        "exact" => gains::exact_jobs(config),
        _ => return None,
    };
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_listed_experiment() {
        // table1 and fig4 are cheap enough to actually run here; the rest only need to
        // be known to the registry (integration tests exercise them at quick scale).
        assert!(run_experiment("table1", &ExpConfig::quick()).is_some());
        assert!(run_experiment("fig4", &ExpConfig::quick()).is_some());
        assert!(run_experiment("nonexistent", &ExpConfig::quick()).is_none());
        assert_eq!(experiment_ids().len(), 16);
    }
}
