//! Headline-gain experiments: the §2.3 potential-gains study, the Figure 5–8 accuracy
//! and speed-up comparisons, and the §6.2.2 exact-job result.

use grass_core::JobSizeBin;
use grass_metrics::{Cell, Report, Table};
use grass_workload::{BoundSpec, Framework, TraceProfile, WorkloadConfig};

use grass_workload::GeneratedWorkload;

use crate::common::{compare_outcomes, run_policy, ExpConfig, PolicyKind};

/// All four trace × framework combinations the paper evaluates.
pub fn workload_combos() -> Vec<(TraceProfile, &'static str)> {
    vec![
        (TraceProfile::facebook(Framework::Hadoop), "Facebook-Hadoop"),
        (TraceProfile::bing(Framework::Hadoop), "Bing-Hadoop"),
        (TraceProfile::facebook(Framework::Spark), "Facebook-Spark"),
        (TraceProfile::bing(Framework::Spark), "Bing-Spark"),
    ]
}

fn workload(exp: &ExpConfig, profile: TraceProfile, bound: BoundSpec) -> WorkloadConfig {
    let mut cfg = WorkloadConfig::new(profile)
        .with_jobs(exp.jobs_per_run)
        .with_bound(bound);
    cfg.expected_share = (exp.cluster.total_slots() / 5).max(4);
    cfg.duration_calibration = exp.cluster.mean_slowdown() * 0.8;
    cfg
}

/// Build one "improvement by job-size bin" table: one row per size bin, one column per
/// (candidate, baseline) pair.
fn size_bin_table(
    exp: &ExpConfig,
    title: impl Into<String>,
    wl: &WorkloadConfig,
    baselines: &[PolicyKind],
    candidates: &[PolicyKind],
) -> Table {
    let source = GeneratedWorkload::new(*wl);
    // Collect outcomes once per distinct policy.
    let mut policies: Vec<PolicyKind> = Vec::new();
    for p in baselines.iter().chain(candidates.iter()) {
        if !policies.contains(p) {
            policies.push(p.clone());
        }
    }
    let outcome_sets: Vec<_> = policies
        .iter()
        .map(|p| run_policy(exp, &source, p))
        .collect();
    let lookup = |p: &PolicyKind| {
        let idx = policies.iter().position(|q| q == p).unwrap();
        &outcome_sets[idx]
    };

    let mut columns = vec!["Job Bin".to_string()];
    let mut comparisons = Vec::new();
    for candidate in candidates {
        for baseline in baselines {
            let column = if candidates.len() == 1 {
                format!("Baseline:{}", baseline.label())
            } else if baselines.len() == 1 {
                candidate.label()
            } else {
                format!("{} vs {}", candidate.label(), baseline.label())
            };
            columns.push(column);
            comparisons.push(compare_outcomes(
                &source,
                baseline,
                candidate,
                lookup(baseline),
                lookup(candidate),
            ));
        }
    }

    let mut table = Table::new(title, columns.iter().map(String::as_str).collect());
    for (i, bin) in JobSizeBin::all().iter().enumerate() {
        let cells: Vec<Cell> = comparisons
            .iter()
            .map(|c| c.by_size_bin[i].map(Cell::Number).unwrap_or(Cell::Empty))
            .collect();
        table.push_row(bin.label(), cells);
    }
    let overall: Vec<Cell> = comparisons
        .iter()
        .map(|c| c.overall.map(Cell::Number).unwrap_or(Cell::Empty))
        .collect();
    table.push_row("overall", overall);
    table
}

/// §2.3 "Potential Gains": improvement of the oracle scheduler over LATE (Facebook)
/// and Mantri (Bing) for deadline- and error-bound jobs.
pub fn potential_gains(exp: &ExpConfig) -> Report {
    let mut report = Report::new("sec2-3");
    for (profile, name, baseline) in [
        (
            TraceProfile::facebook(Framework::Hadoop),
            "Facebook",
            PolicyKind::Late,
        ),
        (
            TraceProfile::bing(Framework::Hadoop),
            "Bing",
            PolicyKind::Mantri,
        ),
    ] {
        let mut table = Table::new(
            format!("Potential gains of the optimal scheduler ({name})"),
            vec!["Bound", "Improvement (%)"],
        );
        for (bound, label) in [
            (BoundSpec::paper_deadlines(), "deadline-bound accuracy"),
            (BoundSpec::paper_errors(), "error-bound duration"),
        ] {
            let source = GeneratedWorkload::new(workload(exp, profile, bound));
            let base = run_policy(exp, &source, &baseline);
            let cand = run_policy(exp, &source, &PolicyKind::Oracle);
            let cmp = compare_outcomes(&source, &baseline, &PolicyKind::Oracle, &base, &cand);
            table.push_row(
                label,
                vec![cmp.overall.map(Cell::Number).unwrap_or(Cell::Empty)],
            );
        }
        report.add_table(table);
    }
    report
}

/// Figure 5: accuracy improvement of GRASS for deadline-bound jobs, split by job-size
/// bin, with LATE and Mantri as baselines, for all four workload combinations.
pub fn fig5(exp: &ExpConfig) -> Report {
    let mut report = Report::new("fig5");
    for (profile, name) in workload_combos() {
        let wl = workload(exp, profile, BoundSpec::paper_deadlines());
        report.add_table(size_bin_table(
            exp,
            format!("Figure 5 ({name}): deadline-bound accuracy improvement of GRASS"),
            &wl,
            &[PolicyKind::Late, PolicyKind::Mantri],
            &[PolicyKind::grass()],
        ));
    }
    report
}

/// Figure 6: GRASS's overall gains (vs LATE) binned by deadline slack factor (6a) and
/// by error bound (6b), for the Facebook and Bing Hadoop workloads.
pub fn fig6(exp: &ExpConfig) -> Report {
    let mut report = Report::new("fig6");

    // 6a: deadline bins (slack factor over the ideal duration).
    let deadline_bins: &[(f64, f64, &str)] = &[
        (0.02, 0.05, "2-5"),
        (0.06, 0.10, "6-10"),
        (0.11, 0.15, "11-15"),
        (0.16, 0.20, "16-20"),
    ];
    let mut table_a = Table::new(
        "Figure 6a: accuracy improvement vs LATE, binned by deadline slack (%)",
        vec!["Deadline (%) Bin", "Facebook", "Bing"],
    );
    for (lo, hi, label) in deadline_bins {
        let mut cells = Vec::new();
        for profile in [
            TraceProfile::facebook(Framework::Hadoop),
            TraceProfile::bing(Framework::Hadoop),
        ] {
            let wl = workload(
                exp,
                profile,
                BoundSpec::DeadlineRange {
                    min_factor: *lo,
                    max_factor: *hi,
                },
            );
            let source = GeneratedWorkload::new(wl);
            let base = run_policy(exp, &source, &PolicyKind::Late);
            let cand = run_policy(exp, &source, &PolicyKind::grass());
            let cmp = compare_outcomes(
                &source,
                &PolicyKind::Late,
                &PolicyKind::grass(),
                &base,
                &cand,
            );
            cells.push(cmp.overall.map(Cell::Number).unwrap_or(Cell::Empty));
        }
        table_a.push_row(*label, cells);
    }
    report.add_table(table_a);

    // 6b: error bins.
    let error_bins: &[(f64, f64, &str)] = &[
        (0.05, 0.10, "5-10"),
        (0.11, 0.15, "11-15"),
        (0.16, 0.20, "16-20"),
        (0.21, 0.25, "21-25"),
        (0.26, 0.30, "26-30"),
    ];
    let mut table_b = Table::new(
        "Figure 6b: duration improvement vs LATE, binned by error bound (%)",
        vec!["Error (%) Bin", "Facebook", "Bing"],
    );
    for (lo, hi, label) in error_bins {
        let mut cells = Vec::new();
        for profile in [
            TraceProfile::facebook(Framework::Hadoop),
            TraceProfile::bing(Framework::Hadoop),
        ] {
            let wl = workload(exp, profile, BoundSpec::ErrorRange { min: *lo, max: *hi });
            let source = GeneratedWorkload::new(wl);
            let base = run_policy(exp, &source, &PolicyKind::Late);
            let cand = run_policy(exp, &source, &PolicyKind::grass());
            let cmp = compare_outcomes(
                &source,
                &PolicyKind::Late,
                &PolicyKind::grass(),
                &base,
                &cand,
            );
            cells.push(cmp.overall.map(Cell::Number).unwrap_or(Cell::Empty));
        }
        table_b.push_row(*label, cells);
    }
    report.add_table(table_b);
    report
}

/// Figure 7: speed-up of error-bound jobs, split by job-size bin, with LATE and Mantri
/// as baselines, for all four workload combinations.
pub fn fig7(exp: &ExpConfig) -> Report {
    let mut report = Report::new("fig7");
    for (profile, name) in workload_combos() {
        let wl = workload(exp, profile, BoundSpec::paper_errors());
        report.add_table(size_bin_table(
            exp,
            format!("Figure 7 ({name}): error-bound duration improvement of GRASS"),
            &wl,
            &[PolicyKind::Late, PolicyKind::Mantri],
            &[PolicyKind::grass()],
        ));
    }
    report
}

/// Figure 8: GRASS against the optimal (oracle) scheduler, Facebook workload on the
/// Spark profile, both improvements measured over LATE.
pub fn fig8(exp: &ExpConfig) -> Report {
    let mut report = Report::new("fig8");
    let profile = TraceProfile::facebook(Framework::Spark);
    for (bound, label) in [
        (
            BoundSpec::paper_deadlines(),
            "Figure 8a: deadline-bound jobs",
        ),
        (BoundSpec::paper_errors(), "Figure 8b: error-bound jobs"),
    ] {
        let wl = workload(exp, profile, bound);
        report.add_table(size_bin_table(
            exp,
            format!("{label} (Facebook workload, Spark): improvement over LATE"),
            &wl,
            &[PolicyKind::Late],
            &[PolicyKind::grass(), PolicyKind::Oracle],
        ));
    }
    report
}

/// §6.2.2: exact jobs (error bound of zero) — GRASS as a unified straggler-mitigation
/// solution, improvement in average job duration over LATE and Mantri.
pub fn exact_jobs(exp: &ExpConfig) -> Report {
    let mut report = Report::new("exact");
    for (profile, name) in [
        (TraceProfile::facebook(Framework::Hadoop), "Facebook-Hadoop"),
        (TraceProfile::facebook(Framework::Spark), "Facebook-Spark"),
    ] {
        let wl = workload(exp, profile, BoundSpec::Exact);
        report.add_table(size_bin_table(
            exp,
            format!("Exact jobs ({name}): duration improvement of GRASS"),
            &wl,
            &[PolicyKind::Late, PolicyKind::Mantri],
            &[PolicyKind::grass()],
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::metric_for;

    #[test]
    fn combos_cover_the_four_workloads() {
        let combos = workload_combos();
        assert_eq!(combos.len(), 4);
        let names: Vec<&str> = combos.iter().map(|(_, n)| *n).collect();
        assert!(names.contains(&"Facebook-Hadoop"));
        assert!(names.contains(&"Bing-Spark"));
    }

    #[test]
    fn workload_uses_experiment_scale() {
        let exp = ExpConfig::tiny();
        let wl = workload(
            &exp,
            TraceProfile::facebook(Framework::Hadoop),
            BoundSpec::paper_deadlines(),
        );
        assert_eq!(wl.num_jobs, exp.jobs_per_run);
        assert!(wl.expected_share >= 4);
        assert_eq!(metric_for(&wl), grass_metrics::Metric::Accuracy);
    }

    #[test]
    fn fig8_quick_run_produces_both_tables() {
        let mut exp = ExpConfig::tiny();
        exp.jobs_per_run = 8;
        let report = fig8(&exp);
        assert_eq!(report.tables.len(), 2);
        for t in &report.tables {
            // Columns: Job Bin + GRASS + Optimal.
            assert_eq!(t.columns.len(), 3);
            assert!(t.value("overall", "GRASS").is_some());
            assert!(t.value("overall", "Optimal").is_some());
        }
    }
}
