//! Shared experiment plumbing: which policies to run, how to run a job source through
//! the simulator for several seeds, and how to turn the outcomes into the improvement
//! tables the paper's figures report.
//!
//! Every experiment entry point consumes a [`JobSource`] rather than sampling a
//! workload itself: a [`GeneratedWorkload`] re-rolls a synthetic workload per seed
//! (the historical behaviour, byte-identical), while a `RecordedWorkload` — typically
//! decoded from a `grass-trace` workload trace — replays one fixed job list, enabling
//! controlled comparisons of the *same* jobs across policies and cluster sizes (the
//! paper's §6.1 methodology; see [`crate::sweep`]).

use std::sync::Arc;

use grass_core::{
    EstimatorConfig, FactorSet, GrassConfig, GrassFactory, GsFactory, JobSpec, PolicyFactory,
    RasFactory, SampleStore, SpeculationMode,
};
use grass_metrics::{improvement_by_size_bin, overall_improvement, Metric, OutcomeSet};
use grass_policies::{LateFactory, MantriFactory, NoSpecFactory, OracleFactory};
use grass_sim::{run_simulation, ClusterConfig, SimConfig};
use grass_workload::{GeneratedWorkload, JobSource, WorkloadConfig};
use serde::{Deserialize, Serialize};

/// Global knobs of an experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpConfig {
    /// Jobs per simulated workload.
    pub jobs_per_run: usize,
    /// Seeds to average over (each seed regenerates the workload and the cluster).
    pub seeds: Vec<u64>,
    /// Cluster configuration.
    pub cluster: ClusterConfig,
    /// Estimator accuracy model for non-oracle policies.
    pub estimator: EstimatorConfig,
    /// Fraction of the workload replayed as a GS/RAS warm-up before a GRASS run, so
    /// GRASS's sample store reflects "executions of previous jobs" (§4.1).
    pub warmup_fraction: f64,
}

impl ExpConfig {
    /// Full-fidelity configuration used by the `repro` binary.
    pub fn full() -> Self {
        ExpConfig {
            jobs_per_run: 120,
            seeds: vec![11, 23, 47],
            cluster: ClusterConfig::ec2_scaled(),
            estimator: EstimatorConfig::paper_default(),
            warmup_fraction: 0.5,
        }
    }

    /// Reduced configuration for integration tests and benches: one seed, fewer jobs,
    /// a smaller cluster.
    pub fn quick() -> Self {
        ExpConfig {
            jobs_per_run: 36,
            seeds: vec![11],
            cluster: ClusterConfig {
                machines: 20,
                slots_per_machine: 4,
                ..ClusterConfig::ec2_scaled()
            },
            estimator: EstimatorConfig::paper_default(),
            warmup_fraction: 0.5,
        }
    }

    /// Even smaller configuration for micro-benchmarks.
    pub fn tiny() -> Self {
        ExpConfig {
            jobs_per_run: 12,
            seeds: vec![11],
            cluster: ClusterConfig {
                machines: 10,
                slots_per_machine: 4,
                ..ClusterConfig::ec2_scaled()
            },
            estimator: EstimatorConfig::paper_default(),
            warmup_fraction: 0.5,
        }
    }
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig::full()
    }
}

/// The policies experiments compare. Each value knows how to build its factory (and
/// whether it needs oracle-exact estimates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// LATE baseline (deployed in the Facebook cluster).
    Late,
    /// Mantri baseline (deployed in the Bing cluster).
    Mantri,
    /// FIFO with no speculation.
    NoSpec,
    /// GS throughout ("GS-only").
    GsOnly,
    /// RAS throughout ("RAS-only").
    RasOnly,
    /// Full GRASS with the given configuration.
    Grass(GrassConfig),
    /// The oracle (optimal) scheduler with exact knowledge.
    Oracle,
}

impl PolicyKind {
    /// Default GRASS (learned switching, all three factors, ξ = 15%).
    pub fn grass() -> Self {
        PolicyKind::Grass(GrassConfig::paper_default())
    }

    /// GRASS with the static two-wave strawman switcher.
    pub fn strawman() -> Self {
        PolicyKind::Grass(GrassConfig::strawman())
    }

    /// GRASS restricted to a subset of learning factors.
    pub fn grass_with_factors(factors: FactorSet) -> Self {
        PolicyKind::Grass(GrassConfig::with_factors(factors))
    }

    /// GRASS with a specific perturbation probability ξ.
    pub fn grass_with_xi(xi: f64) -> Self {
        PolicyKind::Grass(GrassConfig::with_xi(xi))
    }

    /// Default GRASS backed by the sketched (flat-memory) sample store.
    pub fn grass_sketched() -> Self {
        PolicyKind::Grass(GrassConfig::sketched())
    }

    /// Display name used in tables.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::Late => "LATE".to_string(),
            PolicyKind::Mantri => "Mantri".to_string(),
            PolicyKind::NoSpec => "NoSpec".to_string(),
            PolicyKind::GsOnly => "GS-only".to_string(),
            PolicyKind::RasOnly => "RAS-only".to_string(),
            PolicyKind::Oracle => "Optimal".to_string(),
            PolicyKind::Grass(cfg) => GrassFactory::with_config(*cfg, 0).name().to_string(),
        }
    }

    /// Whether this policy is given oracle-exact estimates (only the optimal
    /// scheduler).
    pub fn uses_oracle_estimates(&self) -> bool {
        matches!(self, PolicyKind::Oracle)
    }
}

/// Run one job source under one policy for a single seed and return all job outcomes.
pub fn run_once(
    exp: &ExpConfig,
    source: &dyn JobSource,
    policy: &PolicyKind,
    seed: u64,
) -> OutcomeSet {
    let jobs = source.jobs(seed);
    let estimator = if policy.uses_oracle_estimates() {
        EstimatorConfig::oracle()
    } else {
        exp.estimator
    };
    let sim = SimConfig {
        cluster: exp.cluster,
        estimator,
        seed,
        max_time: None,
    };
    let outcomes = match policy {
        PolicyKind::Late => run_simulation(&sim, jobs, &LateFactory::default()).outcomes,
        PolicyKind::Mantri => run_simulation(&sim, jobs, &MantriFactory::default()).outcomes,
        PolicyKind::NoSpec => run_simulation(&sim, jobs, &NoSpecFactory).outcomes,
        PolicyKind::GsOnly => run_simulation(&sim, jobs, &GsFactory).outcomes,
        PolicyKind::RasOnly => run_simulation(&sim, jobs, &RasFactory).outcomes,
        PolicyKind::Oracle => run_simulation(&sim, jobs, &OracleFactory).outcomes,
        PolicyKind::Grass(cfg) => {
            let store = warmed_store(exp, source, &sim, seed, cfg.sketched_store);
            let factory = GrassFactory::with_store(*cfg, store, seed ^ 0x9A55);
            run_simulation(&sim, jobs, &factory).outcomes
        }
    };
    OutcomeSet::new(outcomes)
}

/// Run a job source under one policy across all configured seeds and pool the
/// outcomes. Generated sources re-roll the workload per seed; recorded sources replay
/// the same jobs under per-seed simulator randomness.
pub fn run_policy(exp: &ExpConfig, source: &dyn JobSource, policy: &PolicyKind) -> OutcomeSet {
    let mut all = Vec::new();
    for &seed in &exp.seeds {
        all.extend(run_once(exp, source, policy, seed).all().to_vec());
    }
    OutcomeSet::new(all)
}

/// Build a GRASS sample store warmed up with pure-GS and pure-RAS executions of a
/// slice of the job source — the "samples of previous jobs" GRASS learns from.
fn warmed_store(
    exp: &ExpConfig,
    source: &dyn JobSource,
    sim: &SimConfig,
    seed: u64,
    sketched: bool,
) -> Arc<SampleStore> {
    let store = Arc::new(if sketched {
        SampleStore::sketched()
    } else {
        SampleStore::new()
    });
    if exp.warmup_fraction <= 0.0 {
        return store;
    }
    for (mode, offset) in [(SpeculationMode::Gs, 0x61), (SpeculationMode::Ras, 0x72)] {
        let jobs = source.warmup_jobs(exp.warmup_fraction, seed ^ offset);
        let warm_sim = SimConfig {
            seed: seed ^ offset,
            ..*sim
        };
        let result = match mode {
            SpeculationMode::Gs => run_simulation(&warm_sim, jobs, &GsFactory),
            SpeculationMode::Ras => run_simulation(&warm_sim, jobs, &RasFactory),
        };
        for outcome in &result.outcomes {
            store.record_outcome(mode, outcome);
        }
    }
    store
}

/// Metric appropriate for a workload's bound specification.
pub fn metric_for(workload: &WorkloadConfig) -> Metric {
    if workload.bound.is_deadline() {
        Metric::Accuracy
    } else {
        Metric::Duration
    }
}

/// Metric appropriate for a job source's (predominant) bound kind.
pub fn metric_for_source(source: &dyn JobSource) -> Metric {
    if source.deadline_bound() {
        Metric::Accuracy
    } else {
        Metric::Duration
    }
}

/// Result of comparing one candidate policy against one baseline on one job source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Candidate policy label.
    pub candidate: String,
    /// Baseline policy label.
    pub baseline: String,
    /// Overall percentage improvement; `None` when the baseline is degenerate (empty
    /// or a non-positive metric mean) — rendered as `n/a`, not as zero.
    pub overall: Option<f64>,
    /// Improvement per job-size bin (paper bins `<50`, `51-500`, `>500`), in that
    /// order; `None` when a bin had no jobs or a degenerate baseline.
    pub by_size_bin: Vec<Option<f64>>,
}

/// Run baseline and candidate on the same job source and compute improvements.
pub fn compare(
    exp: &ExpConfig,
    source: &dyn JobSource,
    baseline: &PolicyKind,
    candidate: &PolicyKind,
) -> Comparison {
    let base = run_policy(exp, source, baseline);
    let cand = run_policy(exp, source, candidate);
    compare_outcomes(source, baseline, candidate, &base, &cand)
}

/// Compute improvements from already-collected outcome sets.
pub fn compare_outcomes(
    source: &dyn JobSource,
    baseline: &PolicyKind,
    candidate: &PolicyKind,
    base: &OutcomeSet,
    cand: &OutcomeSet,
) -> Comparison {
    let metric = metric_for_source(source);
    let by_bin = improvement_by_size_bin(base, cand, metric);
    Comparison {
        candidate: candidate.label(),
        baseline: baseline.label(),
        overall: overall_improvement(base, cand, metric),
        by_size_bin: grass_core::JobSizeBin::all()
            .iter()
            .map(|b| by_bin.get(b).copied())
            .collect(),
    }
}

/// Convenience: durations of individual tasks as the simulator would produce them, for
/// the Figure 3 Hill plot. Work × machine slowdown × per-copy straggle, sampled
/// directly from the workload and cluster models.
pub fn sample_task_durations(
    workload: &WorkloadConfig,
    cluster: &ClusterConfig,
    count: usize,
    seed: u64,
) -> Vec<f64> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let machines = cluster.build_machines(seed);
    (0..count)
        .map(|_| {
            let work = workload.profile.task_work.sample(&mut rng);
            // Uniform machine draw: the former `i % machines.len()` round-robin
            // over-represented low-index machines whenever `count` was not a
            // multiple of the cluster size, biasing the Figure 3 sample.
            let machine = &machines[rng.gen_range(0..machines.len())];
            let straggle = cluster.straggler.sample(&mut rng);
            work * machine.slowdown * straggle
        })
        .collect()
}

/// Convenience: the whole set of job specs an experiment would feed the simulator
/// (exposed for tests and for the quickstart example).
pub fn workload_jobs(workload: &WorkloadConfig, seed: u64) -> Vec<JobSpec> {
    GeneratedWorkload::new(*workload).jobs(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grass_workload::{BoundSpec, Framework, TraceProfile};

    fn tiny_workload(bound: BoundSpec) -> WorkloadConfig {
        WorkloadConfig::new(TraceProfile::facebook(Framework::Spark))
            .with_jobs(10)
            .with_bound(bound)
    }

    fn tiny_source(bound: BoundSpec) -> GeneratedWorkload {
        GeneratedWorkload::new(tiny_workload(bound))
    }

    #[test]
    fn policy_labels() {
        assert_eq!(PolicyKind::Late.label(), "LATE");
        assert_eq!(PolicyKind::Mantri.label(), "Mantri");
        assert_eq!(PolicyKind::grass().label(), "GRASS");
        assert_eq!(PolicyKind::strawman().label(), "GRASS-strawman");
        assert_eq!(
            PolicyKind::grass_with_factors(FactorSet::best_one()).label(),
            "GRASS-best1"
        );
        assert_eq!(PolicyKind::Oracle.label(), "Optimal");
        assert!(PolicyKind::Oracle.uses_oracle_estimates());
        assert!(!PolicyKind::grass().uses_oracle_estimates());
    }

    #[test]
    fn run_once_produces_one_outcome_per_job() {
        let exp = ExpConfig::tiny();
        let src = tiny_source(BoundSpec::paper_errors());
        let outcomes = run_once(&exp, &src, &PolicyKind::Late, 1);
        assert_eq!(outcomes.len(), 10);
        assert!(outcomes.all().iter().all(|o| o.policy == "LATE"));
    }

    #[test]
    fn run_policy_pools_all_seeds() {
        let mut exp = ExpConfig::tiny();
        exp.seeds = vec![1, 2];
        let src = tiny_source(BoundSpec::paper_deadlines());
        let outcomes = run_policy(&exp, &src, &PolicyKind::GsOnly);
        assert_eq!(outcomes.len(), 20);
    }

    #[test]
    fn grass_runs_label_jobs_as_grass_or_perturbed_modes() {
        let exp = ExpConfig::tiny();
        let src = tiny_source(BoundSpec::paper_errors());
        let outcomes = run_once(&exp, &src, &PolicyKind::grass(), 3);
        assert_eq!(outcomes.len(), 10);
        for o in outcomes.all() {
            assert!(
                o.policy == "GRASS" || o.policy == "GS" || o.policy == "RAS",
                "unexpected policy label {}",
                o.policy
            );
        }
    }

    #[test]
    fn comparison_has_all_bins_slots() {
        let exp = ExpConfig::tiny();
        let src = tiny_source(BoundSpec::paper_deadlines());
        let cmp = compare(&exp, &src, &PolicyKind::NoSpec, &PolicyKind::GsOnly);
        assert_eq!(cmp.by_size_bin.len(), 3);
        assert_eq!(cmp.baseline, "NoSpec");
        assert_eq!(cmp.candidate, "GS-only");
        assert!(cmp.overall.expect("non-degenerate baseline").is_finite());
    }

    #[test]
    fn metric_follows_bound_kind() {
        assert_eq!(
            metric_for(&tiny_workload(BoundSpec::paper_deadlines())),
            Metric::Accuracy
        );
        assert_eq!(
            metric_for(&tiny_workload(BoundSpec::paper_errors())),
            Metric::Duration
        );
        assert_eq!(
            metric_for_source(&tiny_source(BoundSpec::paper_deadlines())),
            Metric::Accuracy
        );
        assert_eq!(
            metric_for_source(&tiny_source(BoundSpec::paper_errors())),
            Metric::Duration
        );
    }

    #[test]
    fn sampled_durations_are_positive_and_heavy_tailed() {
        let wl = tiny_workload(BoundSpec::Exact);
        let durations = sample_task_durations(&wl, &ClusterConfig::ec2_scaled(), 5000, 9);
        assert_eq!(durations.len(), 5000);
        assert!(durations.iter().all(|d| *d > 0.0));
        let mut sorted = durations.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let max = sorted[sorted.len() - 1];
        assert!(max / median > 5.0, "max/median = {}", max / median);
    }
}
