//! `repro lint` — the CLI face of the `grass-analysis` determinism &
//! robustness lint engine.
//!
//! ```text
//! repro lint [--format text|json] [--root <dir>] [paths…]
//! ```
//!
//! With no `--root`, the workspace root is found by walking up from the
//! current directory to the nearest `analysis.toml`. Positional paths narrow
//! the run to files under those workspace-relative prefixes (handy while
//! iterating on one crate). Exit status is `0` when no unsuppressed
//! error-severity finding remains, `1` otherwise — which is exactly the CI
//! gate.

use std::path::PathBuf;

use grass_analysis::{path_covers, render_json, render_text, run_lints, summarize, Workspace};

enum Format {
    Text,
    Json,
}

/// Run `repro lint`. `Ok(true)` means the tree is clean (exit 0), `Ok(false)`
/// that unsuppressed error findings remain (exit 1); `Err` is a usage or I/O
/// error.
pub fn run_lint_command(args: &[String]) -> Result<bool, String> {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut filters: Vec<String> = Vec::new();

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--format needs a value (text|json)".to_string())?;
                format = match value.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format '{other}' (expected text|json)")),
                };
            }
            "--root" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--root needs a directory".to_string())?;
                root = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                print_help();
                return Ok(true);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}' (see repro lint --help)"));
            }
            path => filters.push(normalize_filter(path)),
        }
    }

    let root = match root {
        Some(root) => root,
        None => default_root()?,
    };
    let mut workspace = Workspace::discover(&root)?;
    // An empty discovery means the root is wrong (e.g. run from outside the
    // workspace with no analysis.toml above) — passing silently would make
    // the CI gate vacuous.
    if workspace.files.is_empty() {
        return Err(format!(
            "no Rust sources found under {} (not a workspace root? pass --root)",
            root.display()
        ));
    }
    if !filters.is_empty() {
        workspace
            .files
            .retain(|file| filters.iter().any(|f| path_covers(f, &file.rel_path)));
        if workspace.files.is_empty() {
            return Err(format!(
                "no Rust sources match {} under {}",
                filters.join(", "),
                root.display()
            ));
        }
    }

    let findings = run_lints(&workspace);
    let summary = summarize(&findings, workspace.files.len());
    match format {
        Format::Text => print!("{}", render_text(&findings, &summary)),
        Format::Json => print!("{}", render_json(&findings, &summary)),
    }
    Ok(summary.errors == 0)
}

/// Walk up from the current directory to the nearest `analysis.toml`; fall
/// back to the current directory when none is found (lints then run under
/// default configuration).
fn default_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read current dir: {e}"))?;
    let mut dir = cwd.clone();
    loop {
        if dir.join("analysis.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Ok(cwd);
        }
    }
}

/// Normalise a positional path filter to workspace-relative `/` form.
fn normalize_filter(path: &str) -> String {
    path.trim_start_matches("./")
        .trim_end_matches('/')
        .to_string()
}

fn print_help() {
    println!("repro lint — determinism & robustness lints over the workspace");
    println!();
    println!("USAGE: repro lint [--format text|json] [--root <dir>] [paths...]");
    println!();
    println!("Exit status 0 when no unsuppressed error-severity finding remains, 1 otherwise.");
    println!("Configuration: analysis.toml at the workspace root (path classes, severities,");
    println!("path-scoped allows). Per-line suppressions take the form");
    println!("  <code>  // grass: allow(<lint-id>, \"<reason>\")");
    println!("with the reason mandatory. See docs/lints.md for the lint catalog.");
}
