//! Controlled cluster-size × policy sweeps over one job source.
//!
//! The paper's evaluation (§6.1) replays production-derived workloads across
//! schedulers so that every comparison sees the *same* jobs. This module is the
//! whole-experiment version of that methodology: one [`JobSource`] — typically a
//! `RecordedWorkload` decoded from a `grass-trace` workload trace — is replayed
//! across a grid of cluster sizes and policies, and every cell is compared against a
//! baseline policy *at the same cluster size*.
//!
//! Cells are independent simulations, so the runner executes them on a scoped
//! `std::thread` pool sized by [`SweepConfig::threads`]; results are assembled in
//! grid order afterwards, which makes the output — including the machine-readable
//! [`SweepResult::digest`] — bit-identical regardless of thread count or scheduling.
//!
//! The `repro sweep` subcommand (see [`run_sweep_command`]) wires this to recorded
//! traces on disk; `diff` of two digests is the determinism check CI runs.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use grass_metrics::{Cell, Metric, OutcomeSet, Table};
use grass_sim::ClusterConfig;
use grass_trace::{open_workload_source, open_workload_source_mmap};
use grass_workload::JobSource;

use crate::common::{compare_outcomes, metric_for_source, run_once, Comparison, ExpConfig};
use crate::trace_cli::{resolve_workload_path, Flags};
use crate::PolicyKind;

/// Grid definition of a sweep: which cluster sizes and policies to run one job
/// source through, and how.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Cluster sizes (number of machines) to sweep, in presentation order.
    pub machines: Vec<usize>,
    /// Policies to evaluate at every cluster size.
    pub policies: Vec<PolicyKind>,
    /// Baseline policy every cell is compared against (at the same cluster size).
    pub baseline: PolicyKind,
    /// Worker threads for cell execution; `0` or `1` runs serially. The result is
    /// identical either way.
    pub threads: usize,
    /// Base experiment configuration: seeds, estimator model, warm-up fraction and
    /// slots per machine are taken from here; `base.cluster.machines` is overridden
    /// per grid column.
    pub base: ExpConfig,
}

impl SweepConfig {
    /// The paper-scale default grid: 20/50/100 machines × LATE/GS/RAS/GRASS with
    /// LATE as the baseline.
    pub fn paper_grid(base: ExpConfig) -> Self {
        SweepConfig {
            machines: vec![20, 50, 100],
            policies: vec![
                PolicyKind::Late,
                PolicyKind::GsOnly,
                PolicyKind::RasOnly,
                PolicyKind::grass(),
            ],
            baseline: PolicyKind::Late,
            threads: 1,
            base,
        }
    }

    /// A reduced grid (smaller clusters, same policy set) for smoke tests and CI.
    pub fn quick_grid(base: ExpConfig) -> Self {
        SweepConfig {
            machines: vec![8, 16, 24],
            ..SweepConfig::paper_grid(base)
        }
    }

    /// The distinct policies of the grid in first-appearance order (simulating a
    /// duplicate `--policies` entry twice would waste a full multi-seed run and
    /// duplicate digest lines), with the baseline prepended when it is not already
    /// among them.
    fn distinct_policies(&self) -> Vec<PolicyKind> {
        let mut policies: Vec<PolicyKind> = Vec::new();
        if !self.policies.contains(&self.baseline) {
            policies.push(self.baseline.clone());
        }
        for p in &self.policies {
            if !policies.contains(p) {
                policies.push(p.clone());
            }
        }
        policies
    }

    /// The distinct cluster sizes in first-appearance order (mirrors
    /// [`SweepConfig::distinct_policies`]: a duplicate `--machines` entry must not
    /// re-simulate a whole column or emit duplicate digest cells).
    pub(crate) fn distinct_machines(&self) -> Vec<usize> {
        let mut machines: Vec<usize> = Vec::new();
        for &m in &self.machines {
            if !machines.contains(&m) {
                machines.push(m);
            }
        }
        machines
    }

    /// Every (machines, policy) unit the runner must simulate: the cross product of
    /// the distinct cluster sizes with the distinct policies.
    ///
    /// This ordering is the shared contract between the in-process runner, the
    /// cache-aware resume path and the fleet broker: any executor that produces
    /// one [`OutcomeSet`] per unit in this order can hand them to
    /// [`assemble_sweep_result`] and obtain a byte-identical digest.
    pub fn units(&self) -> Vec<(usize, PolicyKind)> {
        let machines = self.distinct_machines();
        let policies = self.distinct_policies();
        let mut units = Vec::with_capacity(machines.len() * policies.len());
        for &m in &machines {
            for p in &policies {
                units.push((m, p.clone()));
            }
        }
        units
    }
}

/// One grid cell: a policy's pooled outcomes at one cluster size, compared against
/// the baseline at the same size.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Cluster size (machines) of this cell.
    pub machines: usize,
    /// Policy label of this cell.
    pub policy: String,
    /// Jobs pooled into the cell (jobs per run × seeds).
    pub jobs: usize,
    /// Mean metric value (accuracy or duration) of the cell's outcomes.
    pub mean: Option<f64>,
    /// Improvement over the baseline at the same cluster size.
    pub comparison: Comparison,
}

/// Result of a sweep: the grid cells in row-major (machines × policy) order plus
/// presentation and provenance metadata.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Label of the swept job source.
    pub source: String,
    /// Metric the comparisons use (from the source's bound kind).
    pub metric: Metric,
    /// Baseline policy label.
    pub baseline: String,
    /// Seeds the cells pooled over.
    pub seeds: Vec<u64>,
    /// Grid cells, row-major: machines outer, policy inner.
    pub cells: Vec<SweepCell>,
    /// Wall-clock time of cell execution (not part of the digest).
    pub elapsed: Duration,
    /// Worker threads the cells were executed on.
    pub threads: usize,
}

impl SweepResult {
    /// Improvement-vs-baseline table: one row per cluster size, one column per
    /// policy.
    pub fn improvement_table(&self) -> Table {
        let metric_label = match self.metric {
            Metric::Accuracy => "accuracy",
            Metric::Duration => "duration",
        };
        self.table(
            format!(
                "Sweep of {}: {} improvement over {} (%) by cluster size",
                self.source, metric_label, self.baseline
            ),
            |cell| cell.comparison.overall,
        )
    }

    /// Raw-mean table: the mean metric value per cell (seconds for durations,
    /// a fraction for accuracies).
    pub fn mean_table(&self) -> Table {
        let metric_label = match self.metric {
            Metric::Accuracy => "mean accuracy",
            Metric::Duration => "mean duration (s)",
        };
        self.table(
            format!("Sweep of {}: {metric_label} by cluster size", self.source),
            |cell| cell.mean,
        )
    }

    fn table(&self, title: String, value: impl Fn(&SweepCell) -> Option<f64>) -> Table {
        let mut columns = vec!["Machines".to_string()];
        let mut policies: Vec<&str> = Vec::new();
        for cell in &self.cells {
            if !policies.contains(&cell.policy.as_str()) {
                policies.push(&cell.policy);
            }
        }
        columns.extend(policies.iter().map(|p| p.to_string()));
        let mut table = Table::new(title, columns.iter().map(String::as_str).collect());
        let mut machines: Vec<usize> = Vec::new();
        for cell in &self.cells {
            if !machines.contains(&cell.machines) {
                machines.push(cell.machines);
            }
        }
        for m in machines {
            let cells: Vec<Cell> = policies
                .iter()
                .map(|p| {
                    self.cells
                        .iter()
                        .find(|c| c.machines == m && &c.policy == p)
                        .and_then(&value)
                        .map(Cell::Number)
                        .unwrap_or(Cell::Empty)
                })
                .collect();
            table.push_row(format!("{m}"), cells);
        }
        table
    }

    /// Machine-readable digest, one line per cell, floats at full precision
    /// (shortest-round-trip formatting) so byte-identical digests imply bit-identical
    /// sweeps. Wall-clock and thread count are deliberately excluded: two runs of the
    /// same sweep — serial or threaded — must diff clean.
    pub fn digest(&self) -> String {
        fn opt(v: Option<f64>) -> String {
            v.map(|x| x.to_string()).unwrap_or_else(|| "n/a".into())
        }
        let mut out = String::new();
        out.push_str(&format!(
            "sweep source={} metric={} baseline={} seeds={}\n",
            self.source,
            match self.metric {
                Metric::Accuracy => "accuracy",
                Metric::Duration => "duration",
            },
            self.baseline,
            self.seeds
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(","),
        ));
        for cell in &self.cells {
            out.push_str(&format!(
                "cell machines={} policy={} jobs={} mean={} overall={} bins={}\n",
                cell.machines,
                cell.policy,
                cell.jobs,
                opt(cell.mean),
                opt(cell.comparison.overall),
                cell.comparison
                    .by_size_bin
                    .iter()
                    .map(|b| opt(*b))
                    .collect::<Vec<_>>()
                    .join("|"),
            ));
        }
        out.push_str(&format!("summary cells={}\n", self.cells.len()));
        out
    }
}

/// Run one sweep cell: one policy at one cluster size under one seed — the
/// smallest unit of sweep work, shared verbatim by the in-process runner, the
/// cache-aware resume path and fleet workers (which is what makes a fleet
/// digest byte-identical to a single-process sweep).
pub fn run_sweep_cell(
    source: &dyn JobSource,
    base: &ExpConfig,
    machines: usize,
    policy: &PolicyKind,
    seed: u64,
) -> OutcomeSet {
    let exp = ExpConfig {
        cluster: ClusterConfig {
            machines,
            ..base.cluster
        },
        ..base.clone()
    };
    run_once(&exp, source, policy, seed)
}

/// Pool per-seed outcome sets in seed order — exactly what
/// [`crate::run_policy`] produces when it runs the seeds itself.
pub fn merge_seed_sets(sets: impl IntoIterator<Item = OutcomeSet>) -> OutcomeSet {
    let mut all = Vec::new();
    for set in sets {
        all.extend(set.all().to_vec());
    }
    OutcomeSet::new(all)
}

/// Run the full grid over one job source. Cells execute on up to
/// [`SweepConfig::threads`] scoped worker threads; the assembled result is identical
/// to a serial run.
pub fn run_sweep(source: &(dyn JobSource + Sync), config: &SweepConfig) -> SweepResult {
    let units = config.units();
    // grass: allow(wall-clock-in-core, "elapsed is operator-facing metadata; digests and comparisons never read it")
    let started = Instant::now();
    let sets = run_units(source, config, &units);
    assemble_sweep_result(source, config, sets, started.elapsed())
}

/// Assemble a [`SweepResult`] from one pooled [`OutcomeSet`] per
/// [`SweepConfig::units`] entry (in that order), however the sets were
/// produced — in-process threads, the digest cache, or a worker fleet.
pub fn assemble_sweep_result(
    source: &dyn JobSource,
    config: &SweepConfig,
    sets: Vec<OutcomeSet>,
    elapsed: Duration,
) -> SweepResult {
    let units = config.units();
    assert_eq!(sets.len(), units.len(), "one outcome set per grid unit");
    let metric = metric_for_source(source);
    let lookup = |m: usize, p: &PolicyKind| -> &OutcomeSet {
        let idx = units
            .iter()
            .position(|(um, up)| *um == m && up == p)
            .expect("unit present in grid");
        &sets[idx]
    };
    let mut cell_policies: Vec<PolicyKind> = Vec::new();
    for p in &config.policies {
        if !cell_policies.contains(p) {
            cell_policies.push(p.clone());
        }
    }
    let mut cells = Vec::new();
    for m in config.distinct_machines() {
        let base = lookup(m, &config.baseline);
        for p in &cell_policies {
            let cand = lookup(m, p);
            cells.push(SweepCell {
                machines: m,
                policy: p.label(),
                jobs: cand.len(),
                mean: cand.mean(metric),
                comparison: compare_outcomes(source, &config.baseline, p, base, cand),
            });
        }
    }
    SweepResult {
        source: source.label(),
        metric,
        baseline: config.baseline.label(),
        seeds: config.base.seeds.clone(),
        cells,
        elapsed,
        threads: config.threads.max(1),
    }
}

/// Simulate every unit, in grid order. With more than one thread, workers claim
/// units from a shared counter; the result vector is indexed, not push-ordered, so
/// scheduling cannot reorder it.
fn run_units(
    source: &(dyn JobSource + Sync),
    config: &SweepConfig,
    units: &[(usize, PolicyKind)],
) -> Vec<OutcomeSet> {
    let run_unit = |(machines, policy): &(usize, PolicyKind)| -> OutcomeSet {
        merge_seed_sets(
            config
                .base
                .seeds
                .iter()
                .map(|&seed| run_sweep_cell(source, &config.base, *machines, policy, seed)),
        )
    };

    let workers = config.threads.max(1).min(units.len().max(1));
    if workers <= 1 {
        return units.iter().map(run_unit).collect();
    }

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, OutcomeSet)>> = Mutex::new(Vec::with_capacity(units.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= units.len() {
                    break;
                }
                let set = run_unit(&units[i]);
                collected
                    .lock()
                    .expect("sweep worker poisoned the results lock")
                    .push((i, set));
            });
        }
    });
    let mut indexed = collected.into_inner().expect("workers have exited");
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), units.len());
    indexed.into_iter().map(|(_, set)| set).collect()
}

/// Parse a `--policies`/`--baseline` policy name into a [`PolicyKind`].
pub fn parse_policy(name: &str) -> Result<PolicyKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "late" => Ok(PolicyKind::Late),
        "mantri" => Ok(PolicyKind::Mantri),
        "nospec" => Ok(PolicyKind::NoSpec),
        "gs" => Ok(PolicyKind::GsOnly),
        "ras" => Ok(PolicyKind::RasOnly),
        "grass" => Ok(PolicyKind::grass()),
        "grass-sketch" => Ok(PolicyKind::grass_sketched()),
        "oracle" => Ok(PolicyKind::Oracle),
        other => Err(format!(
            "unknown policy '{other}'; expected late, mantri, nospec, gs, ras, grass, \
             grass-sketch or oracle"
        )),
    }
}

fn parse_list<T, E: std::fmt::Display>(
    raw: &str,
    what: &str,
    parse: impl Fn(&str) -> Result<T, E>,
) -> Result<Vec<T>, String> {
    let items: Result<Vec<T>, String> = raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s.trim()).map_err(|e| format!("bad {what} '{s}': {e}")))
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(format!("{what} list is empty"));
    }
    Ok(items)
}

/// Entry point for `repro sweep <workload.trace|dir> [flags]`.
///
/// Opens the recorded workload trace **streamingly** (`open_workload_source`:
/// one O(1)-memory validation pass, then on-demand prefix loads — warm-up
/// decodes only its job prefix) and sweeps it across the configured grid. The
/// rendered tables and progress go to stderr; stdout carries only the digest, so
/// `diff <(run1) <(run2)` is the determinism check.
pub fn run_sweep_command(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse_with_switches(args, &["quick", "mmap"])?;
    flags.reject_unknown(&[
        "machines", "slots", "policies", "baseline", "threads", "seeds", "quick", "resume", "mmap",
    ])?;
    let [path] = flags.positional.as_slice() else {
        return Err("sweep expects exactly one workload trace path".to_string());
    };
    let path = resolve_workload_path(Path::new(path));
    // --mmap decodes binary workload traces zero-copy out of a memory map;
    // other formats fall back to the streamed open. Digests are identical.
    let (meta, source) = if flags.has("mmap") {
        open_workload_source_mmap(&path)
    } else {
        open_workload_source(&path)
    }
    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let config = sweep_config_from_flags(&flags, &meta, &source)?;

    eprintln!(
        "sweeping {} jobs ({}) across {} cluster sizes x {} policies on {} thread(s)",
        source.total_jobs(),
        source.label(),
        config.machines.len(),
        config.policies.len(),
        config.threads.max(1),
    );
    let result = match flags.get("resume") {
        Some(cache_dir) => {
            // Satellite of the fleet subsystem: reuse its per-cell digest cache
            // so an interrupted or repeated sweep only re-runs missing cells.
            let cache = grass_fleet::DigestCache::open(cache_dir)
                .map_err(|e| format!("cannot open cache {cache_dir}: {e}"))?;
            let trace_id = crate::fleet::trace_identity(&path)?;
            let (result, resumed) =
                crate::fleet::run_sweep_with_cache(&source, &config, &cache, &trace_id)?;
            eprintln!(
                "resume cells={} cached={} ran={}",
                resumed.cells, resumed.cached, resumed.ran
            );
            result
        }
        None => run_sweep(&source, &config),
    };
    eprintln!(
        "{}",
        result
            .improvement_table()
            .render_text()
            .trim_end_matches('\n')
    );
    eprintln!(
        "{}",
        result.mean_table().render_text().trim_end_matches('\n')
    );
    eprintln!(
        "swept {} cells in {:.2?} on {} thread(s)",
        result.cells.len(),
        result.elapsed,
        result.threads,
    );
    print!("{}", result.digest());
    Ok(())
}

/// Build the [`SweepConfig`] for a recorded trace from common CLI flags
/// (`--machines`, `--slots`, `--policies`, `--baseline`, `--threads`,
/// `--seeds`, `--quick`) — shared by `repro sweep` and the `repro fleet`
/// verbs, which must agree exactly for their digests to be comparable.
pub(crate) fn sweep_config_from_flags(
    flags: &Flags,
    meta: &grass_trace::WorkloadMeta,
    source: &grass_workload::StreamedWorkload,
) -> Result<SweepConfig, String> {
    let quick = flags.has("quick");
    let slots = flags.get_usize("slots", meta.slots_per_machine)?;
    let threads = flags.get_usize("threads", 1)?;
    let seeds = match flags.get("seeds") {
        Some(raw) => parse_list(raw, "seed", |s| s.parse::<u64>())?,
        None => vec![meta.sim_seed],
    };
    let base = ExpConfig {
        jobs_per_run: source.total_jobs(),
        seeds,
        cluster: ClusterConfig {
            machines: meta.machines,
            slots_per_machine: slots,
            ..ClusterConfig::ec2_scaled()
        },
        ..ExpConfig::full()
    };
    let mut config = if quick {
        SweepConfig::quick_grid(base)
    } else {
        SweepConfig::paper_grid(base)
    };
    config.threads = threads;
    if let Some(raw) = flags.get("machines") {
        config.machines = parse_list(raw, "machine count", |s| s.parse::<usize>())?;
    }
    if let Some(raw) = flags.get("policies") {
        config.policies = parse_list(raw, "policy", parse_policy)?;
    }
    if let Some(raw) = flags.get("baseline") {
        config.baseline = parse_policy(raw)?;
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grass_trace::record_workload;
    use grass_workload::{BoundSpec, Framework, RecordedWorkload, TraceProfile, WorkloadConfig};

    fn tiny_base() -> ExpConfig {
        let mut base = ExpConfig::tiny();
        base.jobs_per_run = 8;
        base
    }

    fn tiny_grid() -> SweepConfig {
        SweepConfig {
            machines: vec![6, 10],
            policies: vec![PolicyKind::Late, PolicyKind::GsOnly],
            baseline: PolicyKind::Late,
            threads: 1,
            base: tiny_base(),
        }
    }

    fn recorded_source() -> RecordedWorkload {
        let config = WorkloadConfig::new(TraceProfile::facebook(Framework::Spark))
            .with_jobs(8)
            .with_bound(BoundSpec::paper_errors());
        record_workload(&config, 7, 11, "late", 10, 4).to_source()
    }

    #[test]
    fn grid_units_cover_the_cross_product_and_prepend_missing_baselines() {
        let grid = tiny_grid();
        assert_eq!(grid.units().len(), 4); // baseline is already a policy
        let mut oracle_base = tiny_grid();
        oracle_base.baseline = PolicyKind::Oracle;
        let units = oracle_base.units();
        assert_eq!(units.len(), 6);
        assert_eq!(units[0], (6, PolicyKind::Oracle));
        // Duplicate policy and machine entries are simulated (and reported) once.
        let mut dup = tiny_grid();
        dup.policies = vec![PolicyKind::Late, PolicyKind::GsOnly, PolicyKind::GsOnly];
        dup.machines = vec![6, 10, 6];
        assert_eq!(dup.units().len(), 4);
        let result = run_sweep(&recorded_source(), &dup);
        assert_eq!(result.cells.len(), 4);
        assert_eq!(result.digest().matches("policy=GS-only").count(), 2);
        assert_eq!(result.digest().matches("machines=6 ").count(), 2);
    }

    #[test]
    fn serial_and_threaded_sweeps_are_identical() {
        let source = recorded_source();
        let serial = run_sweep(&source, &tiny_grid());
        let mut threaded_grid = tiny_grid();
        threaded_grid.threads = 3;
        let threaded = run_sweep(&source, &threaded_grid);
        assert_eq!(serial.cells, threaded.cells);
        assert_eq!(serial.digest(), threaded.digest());
        // The baseline cell compares against itself: exactly zero improvement.
        let late = &serial.cells[0];
        assert_eq!(late.policy, "LATE");
        assert_eq!(late.comparison.overall, Some(0.0));
    }

    #[test]
    fn tables_have_one_row_per_cluster_size_and_one_column_per_policy() {
        let source = recorded_source();
        let result = run_sweep(&source, &tiny_grid());
        assert_eq!(result.cells.len(), 4);
        let table = result.improvement_table();
        assert_eq!(table.columns.len(), 3); // Machines + 2 policies
        assert_eq!(table.rows.len(), 2);
        assert!(table.value("6", "GS-only").is_some());
        let means = result.mean_table();
        assert!(means.value("10", "LATE").unwrap() > 0.0);
        // The digest names every cell and the grid shape.
        let digest = result.digest();
        assert_eq!(digest.matches("\ncell ").count(), 4);
        assert!(digest.starts_with("sweep source="));
        assert!(digest.trim_end().ends_with("summary cells=4"));
    }

    #[test]
    fn policy_names_parse_and_reject() {
        assert_eq!(parse_policy("late").unwrap(), PolicyKind::Late);
        assert_eq!(parse_policy("GRASS").unwrap(), PolicyKind::grass());
        assert!(parse_policy("quantum").is_err());
        assert_eq!(
            parse_list("20,50,100", "machine count", |s| s.parse::<usize>()).unwrap(),
            vec![20, 50, 100]
        );
        assert!(parse_list("", "machine count", |s| s.parse::<usize>()).is_err());
        assert!(parse_list("20,x", "machine count", |s| s.parse::<usize>()).is_err());
    }

    #[test]
    fn sweep_command_rejects_bad_invocations() {
        let err = run_sweep_command(&[]).unwrap_err();
        assert!(err.contains("exactly one"), "{err}");
        let err = run_sweep_command(&["a.trace".into(), "--jobs".into(), "3".into()]).unwrap_err();
        assert!(err.contains("unknown flag --jobs"), "{err}");
        let err = run_sweep_command(&["/nonexistent/x.trace".into()]).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }
}
