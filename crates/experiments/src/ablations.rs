//! Design-decision ablations of §6.3: the value of switching between RAS and GS
//! (Figures 10 and 11), learned versus strawman switching (Figure 12), the three
//! learning factors (Figures 13 and 14), and the sensitivity to the perturbation
//! probability ξ (Figure 15).
//!
//! As in the paper, these use the Facebook workload with LATE as the baseline (the
//! Bing/Mantri results are qualitatively identical), except Figure 15 which shows both
//! workloads.

use grass_core::{FactorSet, JobSizeBin};
use grass_metrics::{Cell, Report, Table};
use grass_workload::{BoundSpec, Framework, TraceProfile, WorkloadConfig};

use grass_workload::GeneratedWorkload;

use crate::common::{compare_outcomes, run_policy, ExpConfig, PolicyKind};

fn workload(exp: &ExpConfig, profile: TraceProfile, bound: BoundSpec) -> WorkloadConfig {
    let mut cfg = WorkloadConfig::new(profile)
        .with_jobs(exp.jobs_per_run)
        .with_bound(bound);
    cfg.expected_share = (exp.cluster.total_slots() / 5).max(4);
    cfg.duration_calibration = exp.cluster.mean_slowdown() * 0.8;
    cfg
}

/// Improvement-vs-LATE table with one column per candidate policy and one row per
/// job-size bin (plus an overall row).
fn candidates_table(
    exp: &ExpConfig,
    title: &str,
    wl: &WorkloadConfig,
    candidates: &[(PolicyKind, &str)],
) -> Table {
    let source = GeneratedWorkload::new(*wl);
    let baseline = PolicyKind::Late;
    let base = run_policy(exp, &source, &baseline);
    let comparisons: Vec<_> = candidates
        .iter()
        .map(|(policy, _)| {
            let cand = run_policy(exp, &source, policy);
            compare_outcomes(&source, &baseline, policy, &base, &cand)
        })
        .collect();

    let mut columns = vec!["Job Bin"];
    columns.extend(candidates.iter().map(|(_, label)| *label));
    let mut table = Table::new(title, columns);
    for (i, bin) in JobSizeBin::all().iter().enumerate() {
        let cells: Vec<Cell> = comparisons
            .iter()
            .map(|c| c.by_size_bin[i].map(Cell::Number).unwrap_or(Cell::Empty))
            .collect();
        table.push_row(bin.label(), cells);
    }
    table.push_row(
        "overall",
        comparisons
            .iter()
            .map(|c| c.overall.map(Cell::Number).unwrap_or(Cell::Empty))
            .collect(),
    );
    table
}

fn switching_candidates() -> Vec<(PolicyKind, &'static str)> {
    vec![
        (PolicyKind::GsOnly, "GS-only"),
        (PolicyKind::RasOnly, "RAS-only"),
        (PolicyKind::grass(), "GRASS"),
    ]
}

/// Figure 10: GS-only / RAS-only / GRASS for deadline-bound jobs (Facebook workload,
/// Hadoop and Spark profiles, LATE baseline).
pub fn fig10(exp: &ExpConfig) -> Report {
    let mut report = Report::new("fig10");
    for framework in [Framework::Hadoop, Framework::Spark] {
        let wl = workload(
            exp,
            TraceProfile::facebook(framework),
            BoundSpec::paper_deadlines(),
        );
        report.add_table(candidates_table(
            exp,
            format!(
                "Figure 10 ({}): value of switching, deadline-bound (vs LATE)",
                framework.label()
            )
            .as_str(),
            &wl,
            &switching_candidates(),
        ));
    }
    report
}

/// Figure 11: the same comparison for error-bound jobs.
pub fn fig11(exp: &ExpConfig) -> Report {
    let mut report = Report::new("fig11");
    for framework in [Framework::Hadoop, Framework::Spark] {
        let wl = workload(
            exp,
            TraceProfile::facebook(framework),
            BoundSpec::paper_errors(),
        );
        report.add_table(candidates_table(
            exp,
            format!(
                "Figure 11 ({}): value of switching, error-bound (vs LATE)",
                framework.label()
            )
            .as_str(),
            &wl,
            &switching_candidates(),
        ));
    }
    report
}

/// Figure 12: learned switching versus the static two-wave strawman, deadline- and
/// error-bound jobs (Facebook workload, Spark profile).
pub fn fig12(exp: &ExpConfig) -> Report {
    let mut report = Report::new("fig12");
    let candidates = vec![
        (PolicyKind::strawman(), "Strawman"),
        (PolicyKind::grass(), "GRASS"),
    ];
    for (bound, label) in [
        (
            BoundSpec::paper_deadlines(),
            "Figure 12a: deadline-bound jobs",
        ),
        (BoundSpec::paper_errors(), "Figure 12b: error-bound jobs"),
    ] {
        let wl = workload(exp, TraceProfile::facebook(Framework::Spark), bound);
        report.add_table(candidates_table(
            exp,
            format!("{label} (vs LATE)").as_str(),
            &wl,
            &candidates,
        ));
    }
    report
}

fn factor_candidates(framework: Framework) -> Vec<(PolicyKind, &'static str)> {
    // The paper finds the single best factor is the approximation bound; the best pair
    // adds utilisation for Hadoop and estimation accuracy for Spark (§6.3.2).
    let best_two = match framework {
        Framework::Hadoop => FactorSet::best_two_utilization(),
        Framework::Spark => FactorSet::best_two_accuracy(),
    };
    vec![
        (
            PolicyKind::grass_with_factors(FactorSet::best_one()),
            "Best-1",
        ),
        (PolicyKind::grass_with_factors(best_two), "Best-2"),
        (PolicyKind::grass(), "GRASS"),
    ]
}

/// Figure 13: the value of the three learning factors for deadline-bound jobs.
pub fn fig13(exp: &ExpConfig) -> Report {
    let mut report = Report::new("fig13");
    for framework in [Framework::Hadoop, Framework::Spark] {
        let wl = workload(
            exp,
            TraceProfile::facebook(framework),
            BoundSpec::paper_deadlines(),
        );
        report.add_table(candidates_table(
            exp,
            format!(
                "Figure 13 ({}): learning factors, deadline-bound (vs LATE)",
                framework.label()
            )
            .as_str(),
            &wl,
            &factor_candidates(framework),
        ));
    }
    report
}

/// Figure 14: the value of the three learning factors for error-bound jobs.
pub fn fig14(exp: &ExpConfig) -> Report {
    let mut report = Report::new("fig14");
    for framework in [Framework::Hadoop, Framework::Spark] {
        let wl = workload(
            exp,
            TraceProfile::facebook(framework),
            BoundSpec::paper_errors(),
        );
        report.add_table(candidates_table(
            exp,
            format!(
                "Figure 14 ({}): learning factors, error-bound (vs LATE)",
                framework.label()
            )
            .as_str(),
            &wl,
            &factor_candidates(framework),
        ));
    }
    report
}

/// The ξ values swept in Figure 15 (percent).
pub const XI_SWEEP: [f64; 5] = [0.0, 5.0, 10.0, 15.0, 20.0];

/// Figure 15: sensitivity of GRASS's gains to the perturbation probability ξ, for the
/// Facebook and Bing workloads, deadline- and error-bound.
pub fn fig15(exp: &ExpConfig) -> Report {
    let mut report = Report::new("fig15");
    for (bound, label) in [
        (
            BoundSpec::paper_deadlines(),
            "Figure 15a: deadline-bound jobs",
        ),
        (BoundSpec::paper_errors(), "Figure 15b: error-bound jobs"),
    ] {
        let mut table = Table::new(
            format!("{label}: improvement vs LATE for different ξ"),
            vec!["xi (%)", "Facebook", "Bing"],
        );
        for xi in XI_SWEEP {
            let mut cells = Vec::new();
            for profile in [
                TraceProfile::facebook(Framework::Spark),
                TraceProfile::bing(Framework::Spark),
            ] {
                let source = GeneratedWorkload::new(workload(exp, profile, bound));
                let base = run_policy(exp, &source, &PolicyKind::Late);
                let candidate = PolicyKind::grass_with_xi(xi / 100.0);
                let cand = run_policy(exp, &source, &candidate);
                let cmp = compare_outcomes(&source, &PolicyKind::Late, &candidate, &base, &cand);
                cells.push(cmp.overall.map(Cell::Number).unwrap_or(Cell::Empty));
            }
            table.push_row(format!("{xi:.0}"), cells);
        }
        report.add_table(table);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switching_and_factor_candidate_sets() {
        assert_eq!(switching_candidates().len(), 3);
        let hadoop = factor_candidates(Framework::Hadoop);
        let spark = factor_candidates(Framework::Spark);
        assert_eq!(hadoop.len(), 3);
        assert_eq!(hadoop[0].1, "Best-1");
        assert_eq!(spark[2].1, "GRASS");
        // Best-2 differs between the frameworks.
        assert_ne!(format!("{:?}", hadoop[1].0), format!("{:?}", spark[1].0));
    }

    #[test]
    fn xi_sweep_matches_paper_range() {
        assert_eq!(XI_SWEEP.len(), 5);
        assert_eq!(XI_SWEEP[0], 0.0);
        assert_eq!(XI_SWEEP[4], 20.0);
        assert!(XI_SWEEP.contains(&15.0));
    }

    #[test]
    fn fig12_quick_run_has_strawman_and_grass_columns() {
        let mut exp = ExpConfig::tiny();
        exp.jobs_per_run = 8;
        let report = fig12(&exp);
        assert_eq!(report.tables.len(), 2);
        for t in &report.tables {
            assert!(t.columns.contains(&"Strawman".to_string()));
            assert!(t.columns.contains(&"GRASS".to_string()));
            assert!(t.value("overall", "GRASS").is_some());
        }
    }
}
