//! The compressed binary format plugin (v3): the v2 record schema inside
//! LZ-compressed blocks.
//!
//! ```text
//! header := "grass-trace" 0x00 0x03 kind:u8                (14 bytes, stored raw)
//! stream := header block*
//! block  := raw_len:varint comp_len:varint payload          (see crate::compress)
//! ```
//!
//! Every frame body is byte-identical to its v2 encoding — v2 ↔ v3 conversion
//! is pure re-framing — so the replay guarantee (raw-bits floats, canonical
//! varints) carries over unchanged. Compression is deterministic, making v3
//! output canonical: re-encoding a decoded stream reproduces it byte for byte.
//!
//! Decoding keeps the strict posture of v2: bad magic, bad version, wrong
//! stream kind, corrupt block framing, truncated payloads, unknown tags and
//! job-count mismatches all fail with exact offsets (file offsets for block
//! defects, decompressed-stream offsets for frame defects — see
//! [`crate::compress`]).

use std::io::{BufRead, Write};

use grass_core::JobSpec;
use grass_sim::SimTraceEvent;

use crate::binary::{
    decode_event, decode_job, event_body, execution_meta_body, execution_meta_from_body, frame_err,
    job_body, kind_code, workload_meta_body, workload_meta_from_body, Body, FrameReader,
    MAGIC_TERMINATOR, TAG_JOB,
};
use crate::codec::{StreamKind, TraceError, COMPRESSED_FORMAT_VERSION, MAGIC};
use crate::compress::{BlockReader, BlockWriter};
use crate::execution::ExecutionMeta;
use crate::format::{TraceCodec, TraceFormat};
use crate::stream::{ExecutionEvents, ExecutionFrames, WorkloadFrames, WorkloadItems};
use crate::workload::WorkloadMeta;

/// The compressed binary plugin (format v3). Buffers at most one block of
/// encoded frames; [`TraceCodec::finish`] flushes the final partial block.
#[derive(Debug, Default)]
pub struct CompressedCodec {
    scratch: Vec<u8>,
    writer: BlockWriter,
}

impl CompressedCodec {
    /// A fresh compressed codec.
    pub fn new() -> Self {
        CompressedCodec::default()
    }

    fn header(&self, w: &mut dyn Write, kind: StreamKind) -> Result<(), TraceError> {
        w.write_all(MAGIC.as_bytes())?;
        w.write_all(&[
            MAGIC_TERMINATOR,
            COMPRESSED_FORMAT_VERSION as u8,
            kind_code(kind),
        ])?;
        Ok(())
    }
}

impl TraceCodec for CompressedCodec {
    fn format(&self) -> TraceFormat {
        TraceFormat::Compressed
    }

    fn begin_workload(
        &mut self,
        w: &mut dyn Write,
        meta: &WorkloadMeta,
        num_jobs: usize,
    ) -> Result<(), TraceError> {
        self.header(w, StreamKind::Workload)?;
        self.scratch.clear();
        workload_meta_body(&mut self.scratch, meta, num_jobs);
        self.writer.push_frame(w, &self.scratch)
    }

    fn encode_job(&mut self, w: &mut dyn Write, job: &JobSpec) -> Result<(), TraceError> {
        self.scratch.clear();
        job_body(&mut self.scratch, job);
        self.writer.push_frame(w, &self.scratch)
    }

    fn begin_execution(
        &mut self,
        w: &mut dyn Write,
        meta: &ExecutionMeta,
    ) -> Result<(), TraceError> {
        self.header(w, StreamKind::Execution)?;
        self.scratch.clear();
        execution_meta_body(&mut self.scratch, meta);
        self.writer.push_frame(w, &self.scratch)
    }

    fn encode_event(&mut self, w: &mut dyn Write, event: &SimTraceEvent) -> Result<(), TraceError> {
        self.scratch.clear();
        event_body(&mut self.scratch, event);
        self.writer.push_frame(w, &self.scratch)
    }

    fn finish(&mut self, w: &mut dyn Write) -> Result<(), TraceError> {
        self.writer.flush(w)
    }

    fn workload_items<'r>(
        &mut self,
        r: Box<dyn BufRead + 'r>,
    ) -> Result<WorkloadItems<'r>, TraceError> {
        let (mut br, kind) = BlockReader::open(r)?;
        if kind != StreamKind::Workload {
            return Err(TraceError::WrongStream {
                expected: StreamKind::Workload,
                found: kind,
            });
        }
        let at = br.file_offset();
        let Some((start, end, base)) = br.next_frame()? else {
            return Err(frame_err(at, "workload trace has no meta frame"));
        };
        let mut body = Body::new(br.frame(start, end), base);
        let (meta, declared_jobs) = workload_meta_from_body(&mut body, base)?;
        Ok(WorkloadItems::from_parts(
            TraceFormat::Compressed,
            meta,
            declared_jobs,
            Box::new(CompressedWorkloadFrames {
                br,
                declared_jobs,
                seen: 0,
            }),
        ))
    }

    fn execution_events<'r>(
        &mut self,
        r: Box<dyn BufRead + 'r>,
    ) -> Result<ExecutionEvents<'r>, TraceError> {
        let (mut br, kind) = BlockReader::open(r)?;
        if kind != StreamKind::Execution {
            return Err(TraceError::WrongStream {
                expected: StreamKind::Execution,
                found: kind,
            });
        }
        let at = br.file_offset();
        let Some((start, end, base)) = br.next_frame()? else {
            return Err(frame_err(at, "execution trace has no meta frame"));
        };
        let mut body = Body::new(br.frame(start, end), base);
        let meta = execution_meta_from_body(&mut body, base)?;
        Ok(ExecutionEvents::from_parts(
            TraceFormat::Compressed,
            meta,
            Box::new(CompressedExecutionFrames { br }),
        ))
    }

    fn peek_kind(&mut self, r: &mut dyn BufRead) -> Result<StreamKind, TraceError> {
        FrameReader::new(r).read_header_version(COMPRESSED_FORMAT_VERSION)
    }
}

/// Frame-at-a-time job puller behind [`WorkloadItems`] for v3 streams; enforces
/// the declared job count at end of stream like its v2 counterpart.
struct CompressedWorkloadFrames<R> {
    br: BlockReader<R>,
    declared_jobs: usize,
    seen: usize,
}

impl<R: BufRead> WorkloadFrames for CompressedWorkloadFrames<R> {
    fn next_job(&mut self) -> Option<Result<JobSpec, TraceError>> {
        match self.br.next_frame() {
            Err(e) => Some(Err(e)),
            Ok(Some((start, end, base))) => {
                let mut body = Body::new(self.br.frame(start, end), base);
                let tag = match body.take_u8("frame tag") {
                    Ok(tag) => tag,
                    Err(e) => return Some(Err(e)),
                };
                if tag != TAG_JOB {
                    return Some(Err(frame_err(
                        base,
                        format!("unknown frame tag {tag:#04x} in workload trace"),
                    )));
                }
                self.seen += 1;
                Some(decode_job(&mut body).and_then(|job| {
                    body.expect_end("job")?;
                    Ok(job)
                }))
            }
            Ok(None) => {
                if self.seen != self.declared_jobs {
                    Some(Err(frame_err(
                        self.br.file_offset(),
                        format!(
                            "meta declares {} jobs but the trace contains {}",
                            self.declared_jobs, self.seen
                        ),
                    )))
                } else {
                    None
                }
            }
        }
    }
}

/// Frame-at-a-time event puller behind [`ExecutionEvents`] for v3 streams.
struct CompressedExecutionFrames<R> {
    br: BlockReader<R>,
}

impl<R: BufRead> ExecutionFrames for CompressedExecutionFrames<R> {
    fn next_event(&mut self) -> Option<Result<SimTraceEvent, TraceError>> {
        match self.br.next_frame() {
            Err(e) => Some(Err(e)),
            Ok(Some((start, end, base))) => {
                let mut body = Body::new(self.br.frame(start, end), base);
                Some(decode_event(&mut body).and_then(|event| {
                    body.expect_end("event")?;
                    Ok(event)
                }))
            }
            Ok(None) => None,
        }
    }
}
