//! The compact binary format plugin (v2): length-prefixed frames, varint
//! integers, raw-bits floats.
//!
//! Layout:
//!
//! ```text
//! header   := "grass-trace" 0x00 version:u8 kind:u8      (14 bytes)
//! stream   := header frame*
//! frame    := len:varint body                             (len = body length)
//! body     := tag:u8 payload                              (schema fixed per tag)
//! ```
//!
//! Integers are LEB128 varints; `f64`s are their IEEE-754 bits little-endian, so
//! every float round-trips bit-exactly without any formatting or parsing — the
//! property the replay guarantee rests on, and the reason this format is an order
//! of magnitude faster than the text codec. Strings are varint-length-prefixed
//! UTF-8. Booleans are one byte, `0`/`1`.
//!
//! Decoding is strict, mirroring the text codec's posture: a bad magic, an
//! unsupported version, a wrong stream kind, an unknown frame tag, a truncated
//! frame, an oversized frame length, trailing bytes inside a frame, or a
//! job-count mismatch all fail with a [`TraceError`] naming the absolute byte
//! offset.

use std::io::{BufRead, Write};

use grass_core::{ActionKind, Bound, JobId, JobSpec, StageSpec, TaskId, TaskSpec};
use grass_sim::{SimTraceEvent, SlotId};

use crate::codec::{StreamKind, TraceError, BINARY_FORMAT_VERSION, MAGIC};
use crate::execution::ExecutionMeta;
use crate::format::{TraceCodec, TraceFormat};
use crate::stream::{ExecutionEvents, ExecutionFrames, WorkloadFrames, WorkloadItems};
use crate::workload::WorkloadMeta;

/// Byte that follows the shared magic in a binary header (text uses `' '`).
pub(crate) const MAGIC_TERMINATOR: u8 = 0;

/// Upper bound on a single frame's body length. Generously above any real record
/// (the largest are multi-thousand-task job frames, tens of KiB) while keeping a
/// corrupt length prefix from looking like a 16 EiB allocation request.
pub const MAX_FRAME_LEN: u64 = 1 << 28;

/// Stream-kind byte in the binary header.
pub(crate) fn kind_code(kind: StreamKind) -> u8 {
    match kind {
        StreamKind::Workload => 0,
        StreamKind::Execution => 1,
    }
}

// Frame tags. Meta is always the first frame of either stream; the remaining
// tags are stream-specific (job frames in workload streams, event frames in
// execution streams).
pub(crate) const TAG_META: u8 = 0x01;
pub(crate) const TAG_JOB: u8 = 0x02;
const TAG_ARRIVE: u8 = 0x10;
const TAG_DECIDE: u8 = 0x11;
const TAG_LAUNCH: u8 = 0x12;
const TAG_FINISH: u8 = 0x13;
const TAG_KILL: u8 = 0x14;
const TAG_JOBDONE: u8 = 0x15;

pub(crate) fn frame_err(offset: u64, message: impl Into<String>) -> TraceError {
    TraceError::Frame {
        offset,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Encode primitives (append to a frame buffer).
// ---------------------------------------------------------------------------

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

// ---------------------------------------------------------------------------
// Frame bodies (shared by the v2 codec and the compressed v3 codec, whose
// blocks carry the same frame schema).
// ---------------------------------------------------------------------------

/// Encode a workload meta frame body (tag included).
pub(crate) fn workload_meta_body(buf: &mut Vec<u8>, meta: &WorkloadMeta, num_jobs: usize) {
    buf.push(TAG_META);
    put_varint(buf, meta.generator_seed);
    put_varint(buf, meta.sim_seed);
    put_str(buf, &meta.policy);
    put_str(buf, &meta.profile);
    put_varint(buf, meta.machines as u64);
    put_varint(buf, meta.slots_per_machine as u64);
    put_varint(buf, num_jobs as u64);
}

/// Encode a job frame body (tag included).
pub(crate) fn job_body(buf: &mut Vec<u8>, job: &JobSpec) {
    buf.push(TAG_JOB);
    put_varint(buf, job.id.value());
    put_f64(buf, job.arrival);
    match job.bound {
        Bound::Deadline(d) => {
            buf.push(0);
            put_f64(buf, d);
        }
        Bound::Error(e) => {
            buf.push(1);
            put_f64(buf, e);
        }
    }
    put_varint(buf, job.stages.len() as u64);
    for stage in &job.stages {
        put_str(buf, &stage.name);
        put_varint(buf, stage.task_count as u64);
    }
    put_varint(buf, job.tasks.len() as u64);
    for task in &job.tasks {
        buf.push(task.stage.value());
        put_f64(buf, task.work);
    }
}

/// Encode an execution meta frame body (tag included).
pub(crate) fn execution_meta_body(buf: &mut Vec<u8>, meta: &ExecutionMeta) {
    buf.push(TAG_META);
    put_varint(buf, meta.sim_seed);
    put_str(buf, &meta.policy);
    put_varint(buf, meta.machines as u64);
    put_varint(buf, meta.slots_per_machine as u64);
}

/// Encode an execution event frame body (tag included).
pub(crate) fn event_body(buf: &mut Vec<u8>, event: &SimTraceEvent) {
    let tag = match *event {
        SimTraceEvent::JobArrival { .. } => TAG_ARRIVE,
        SimTraceEvent::Decision { .. } => TAG_DECIDE,
        SimTraceEvent::CopyLaunch { .. } => TAG_LAUNCH,
        SimTraceEvent::CopyFinish { .. } => TAG_FINISH,
        SimTraceEvent::CopyKill { .. } => TAG_KILL,
        SimTraceEvent::JobFinish { .. } => TAG_JOBDONE,
    };
    buf.push(tag);
    put_f64(buf, event.time());
    put_varint(buf, event.job().value());
    match *event {
        SimTraceEvent::JobArrival { .. } => {}
        SimTraceEvent::Decision { task, kind, .. } => {
            put_varint(buf, u64::from(task.0));
            buf.push(match kind {
                ActionKind::Launch => 0,
                ActionKind::Speculate => 1,
            });
        }
        SimTraceEvent::CopyLaunch {
            task,
            copy,
            slot,
            duration,
            speculative,
            ..
        } => {
            put_varint(buf, u64::from(task.0));
            put_varint(buf, copy);
            put_varint(buf, slot.machine as u64);
            put_varint(buf, slot.slot as u64);
            put_f64(buf, duration);
            put_bool(buf, speculative);
        }
        SimTraceEvent::CopyFinish {
            task,
            copy,
            task_completed,
            ..
        } => {
            put_varint(buf, u64::from(task.0));
            put_varint(buf, copy);
            put_bool(buf, task_completed);
        }
        SimTraceEvent::CopyKill {
            task, copy, slot, ..
        } => {
            put_varint(buf, u64::from(task.0));
            put_varint(buf, copy);
            put_varint(buf, slot.machine as u64);
            put_varint(buf, slot.slot as u64);
        }
        SimTraceEvent::JobFinish {
            completed_input,
            completed_total,
            ..
        } => {
            put_varint(buf, completed_input as u64);
            put_varint(buf, completed_total as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Decode primitives.
// ---------------------------------------------------------------------------

/// Reads frames off a stream, tracking the absolute byte offset for error
/// reporting. Owns its reader so streaming iterators can carry it. Shared with
/// the compressed (v3) codec, which reuses the varint/offset machinery for its
/// block framing.
pub(crate) struct FrameReader<R> {
    pub(crate) r: R,
    pub(crate) offset: u64,
}

impl<R: BufRead> FrameReader<R> {
    pub(crate) fn new(r: R) -> Self {
        FrameReader { r, offset: 0 }
    }

    pub(crate) fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), TraceError> {
        let at = self.offset;
        self.r.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                frame_err(
                    at,
                    format!("truncated trace: expected {} more bytes", buf.len()),
                )
            } else {
                TraceError::Io(e)
            }
        })?;
        self.offset += buf.len() as u64;
        Ok(())
    }

    /// Validate the 14-byte binary header, returning the declared stream kind.
    fn read_header(&mut self) -> Result<StreamKind, TraceError> {
        self.read_header_version(BINARY_FORMAT_VERSION)
    }

    /// Validate a 14-byte binary-framing header against `expected_version`
    /// (shared by the v2 and v3 codecs, which differ only in the version byte).
    pub(crate) fn read_header_version(
        &mut self,
        expected_version: u32,
    ) -> Result<StreamKind, TraceError> {
        let mut header = [0u8; 14];
        self.r.read_exact(&mut header).map_err(|e| {
            // A too-short stream is "not a binary trace"; a genuine I/O failure
            // must surface as such, not masquerade as corruption.
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceError::BadMagic
            } else {
                TraceError::Io(e)
            }
        })?;
        self.offset += header.len() as u64;
        // grass: allow(panicky-lib, "constant offsets into the fixed 14-byte header array")
        if &header[..MAGIC.len()] != MAGIC.as_bytes() || header[MAGIC.len()] != MAGIC_TERMINATOR {
            return Err(TraceError::BadMagic);
        }
        // grass: allow(panicky-lib, "constant offsets into the fixed 14-byte header array")
        let version = header[12];
        if u32::from(version) != expected_version {
            return Err(TraceError::UnsupportedVersion(u32::from(version)));
        }
        // grass: allow(panicky-lib, "constant offsets into the fixed 14-byte header array")
        match header[13] {
            0 => Ok(StreamKind::Workload),
            1 => Ok(StreamKind::Execution),
            other => Err(frame_err(13, format!("unknown stream-kind byte {other}"))),
        }
    }

    /// Whether the underlying reader is exactly at end of stream.
    pub(crate) fn at_eof(&mut self) -> Result<bool, TraceError> {
        Ok(self.r.fill_buf()?.is_empty())
    }

    /// Read the next frame's length prefix, or `None` at a clean end of stream.
    pub(crate) fn next_frame_len(&mut self) -> Result<Option<u64>, TraceError> {
        if self.at_eof()? {
            return Ok(None);
        }
        let start = self.offset;
        let len = self.read_varint()?;
        if len > MAX_FRAME_LEN {
            return Err(frame_err(
                start,
                format!("frame length {len} overflows the {MAX_FRAME_LEN}-byte cap"),
            ));
        }
        Ok(Some(len))
    }

    /// Read one frame's body into `buf`, returning the byte offset the body
    /// starts at, or `None` at a clean end of stream.
    fn next_frame(&mut self, buf: &mut Vec<u8>) -> Result<Option<u64>, TraceError> {
        let Some(len) = self.next_frame_len()? else {
            return Ok(None);
        };
        let start = self.offset;
        buf.clear();
        buf.resize(len as usize, 0);
        self.read_exact(buf).map_err(|e| match e {
            TraceError::Frame { .. } => frame_err(
                start,
                format!("truncated frame: length prefix declares {len} bytes past end of trace"),
            ),
            other => other,
        })?;
        Ok(Some(start))
    }

    pub(crate) fn read_varint(&mut self) -> Result<u64, TraceError> {
        let start = self.offset;
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let mut byte = [0u8; 1];
            self.read_exact(&mut byte)?;
            let [byte] = byte;
            if shift == 63 && byte > 1 {
                return Err(frame_err(start, "varint overflows 64 bits"));
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(frame_err(start, "varint longer than 10 bytes"));
            }
        }
    }
}

impl<'a> FrameReader<&'a [u8]> {
    /// Borrowed variant of [`next_frame`](Self::next_frame) for in-memory
    /// streams (the memory-mapped decode path): yields the frame body as a
    /// slice of the underlying buffer plus its absolute offset, copying
    /// nothing. Shares the length-prefix and truncation checks with the
    /// streamed reader, so errors are byte-identical.
    pub(crate) fn next_frame_borrowed(&mut self) -> Result<Option<(&'a [u8], u64)>, TraceError> {
        let Some(len) = self.next_frame_len()? else {
            return Ok(None);
        };
        let start = self.offset;
        // `len` is capped at MAX_FRAME_LEN (fits usize on every supported
        // target), so the cast cannot truncate.
        let n = len as usize;
        if n > self.r.len() {
            return Err(frame_err(
                start,
                format!("truncated frame: length prefix declares {len} bytes past end of trace"),
            ));
        }
        let (frame, rest) = self.r.split_at(n);
        self.r = rest;
        self.offset += len;
        Ok(Some((frame, start)))
    }
}

/// Cursor over one frame's body; every error names the absolute byte offset of
/// the offending field. Shared by the v2, v3 and memory-mapped decode paths —
/// for the mmap path, `base` is the byte index into the map, so errors are
/// byte-identical to the streamed decoder's.
pub(crate) struct Body<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Absolute stream offset of `buf[0]`.
    base: u64,
}

impl<'a> Body<'a> {
    pub(crate) fn new(buf: &'a [u8], base: u64) -> Self {
        Body { buf, pos: 0, base }
    }

    pub(crate) fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    /// Position within the frame buffer (bytes consumed so far).
    pub(crate) fn position(&self) -> usize {
        self.pos
    }

    /// The slice between two recorded positions — used by the borrowed decoder
    /// to capture a region it has just validated by scanning.
    pub(crate) fn slice_between(&self, start: usize, end: usize) -> &'a [u8] {
        self.buf.get(start..end).unwrap_or(&[])
    }

    pub(crate) fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], TraceError> {
        // `n` comes from untrusted varints (string/array lengths), so compare
        // against the remaining bytes rather than computing `pos + n`, which a
        // corrupt near-usize::MAX length would overflow into a panic.
        if n > self.buf.len() - self.pos {
            return Err(frame_err(
                self.offset(),
                format!("frame ends inside {what} ({n} bytes needed)"),
            ));
        }
        // grass: allow(panicky-lib, "range proven in bounds by the remaining-bytes check above")
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn take_u8(&mut self, what: &str) -> Result<u8, TraceError> {
        Ok(self.take(1, what)?.first().copied().unwrap_or(0))
    }

    pub(crate) fn take_bool(&mut self, what: &str) -> Result<bool, TraceError> {
        let at = self.offset();
        match self.take_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(frame_err(at, format!("{what} is not a boolean: {other}"))),
        }
    }

    pub(crate) fn take_f64(&mut self, what: &str) -> Result<f64, TraceError> {
        let at = self.offset();
        let bytes = self.take(8, what)?;
        let bytes: [u8; 8] = bytes
            .try_into()
            .map_err(|_| frame_err(at, format!("{what} is not 8 bytes")))?;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    pub(crate) fn take_varint(&mut self, what: &str) -> Result<u64, TraceError> {
        let start = self.offset();
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.take_u8(what)?;
            if shift == 63 && byte > 1 {
                return Err(frame_err(start, format!("{what} varint overflows 64 bits")));
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(frame_err(start, format!("{what} varint is too long")));
            }
        }
    }

    pub(crate) fn take_usize(&mut self, what: &str) -> Result<usize, TraceError> {
        let at = self.offset();
        let v = self.take_varint(what)?;
        usize::try_from(v).map_err(|_| frame_err(at, format!("{what} {v} overflows usize")))
    }

    pub(crate) fn take_str(&mut self, what: &str) -> Result<String, TraceError> {
        Ok(self.take_str_borrowed(what)?.to_string())
    }

    /// Borrow a varint-length-prefixed UTF-8 string straight from the frame
    /// buffer — the zero-copy decode path over a memory map.
    pub(crate) fn take_str_borrowed(&mut self, what: &str) -> Result<&'a str, TraceError> {
        let len = self.take_usize(what)?;
        let at = self.offset();
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes).map_err(|_| frame_err(at, format!("{what} is not valid UTF-8")))
    }

    /// A frame must be consumed exactly: trailing bytes mean a schema mismatch.
    pub(crate) fn expect_end(&mut self, what: &str) -> Result<(), TraceError> {
        if self.pos != self.buf.len() {
            return Err(frame_err(
                self.offset(),
                format!(
                    "{} trailing bytes after {what} frame",
                    self.buf.len() - self.pos
                ),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The codec.
// ---------------------------------------------------------------------------

/// The compact binary plugin (format v2). Holds reusable scratch buffers, so one
/// codec instance encodes or decodes a whole stream without per-record
/// allocation.
#[derive(Debug, Default)]
pub struct BinaryCodec {
    scratch: Vec<u8>,
    frame: Vec<u8>,
}

impl BinaryCodec {
    /// A fresh binary codec.
    pub fn new() -> Self {
        BinaryCodec::default()
    }

    fn header(&self, w: &mut dyn Write, kind: StreamKind) -> Result<(), TraceError> {
        w.write_all(MAGIC.as_bytes())?;
        w.write_all(&[
            MAGIC_TERMINATOR,
            BINARY_FORMAT_VERSION as u8,
            kind_code(kind),
        ])?;
        Ok(())
    }

    /// Write `self.scratch` as one length-prefixed frame.
    fn write_frame(&mut self, w: &mut dyn Write) -> Result<(), TraceError> {
        let len = self.scratch.len() as u64;
        if len > MAX_FRAME_LEN {
            return Err(frame_err(
                0,
                format!("record encodes to {len} bytes, over the {MAX_FRAME_LEN}-byte frame cap"),
            ));
        }
        self.frame.clear();
        put_varint(&mut self.frame, len);
        w.write_all(&self.frame)?;
        w.write_all(&self.scratch)?;
        Ok(())
    }
}

impl TraceCodec for BinaryCodec {
    fn format(&self) -> TraceFormat {
        TraceFormat::Binary
    }

    fn begin_workload(
        &mut self,
        w: &mut dyn Write,
        meta: &WorkloadMeta,
        num_jobs: usize,
    ) -> Result<(), TraceError> {
        self.header(w, StreamKind::Workload)?;
        self.scratch.clear();
        workload_meta_body(&mut self.scratch, meta, num_jobs);
        self.write_frame(w)
    }

    fn encode_job(&mut self, w: &mut dyn Write, job: &JobSpec) -> Result<(), TraceError> {
        self.scratch.clear();
        job_body(&mut self.scratch, job);
        self.write_frame(w)
    }

    fn begin_execution(
        &mut self,
        w: &mut dyn Write,
        meta: &ExecutionMeta,
    ) -> Result<(), TraceError> {
        self.header(w, StreamKind::Execution)?;
        self.scratch.clear();
        execution_meta_body(&mut self.scratch, meta);
        self.write_frame(w)
    }

    fn encode_event(&mut self, w: &mut dyn Write, event: &SimTraceEvent) -> Result<(), TraceError> {
        self.scratch.clear();
        event_body(&mut self.scratch, event);
        self.write_frame(w)
    }

    fn finish(&mut self, _w: &mut dyn Write) -> Result<(), TraceError> {
        Ok(())
    }

    fn workload_items<'r>(
        &mut self,
        r: Box<dyn BufRead + 'r>,
    ) -> Result<WorkloadItems<'r>, TraceError> {
        let mut fr = FrameReader::new(r);
        let kind = fr.read_header()?;
        if kind != StreamKind::Workload {
            return Err(TraceError::WrongStream {
                expected: StreamKind::Workload,
                found: kind,
            });
        }
        let mut buf = Vec::new();
        let (meta, declared_jobs) = decode_workload_meta_frame(&mut fr, &mut buf)?;
        Ok(WorkloadItems::from_parts(
            TraceFormat::Binary,
            meta,
            declared_jobs,
            Box::new(BinaryWorkloadFrames {
                fr,
                buf,
                declared_jobs,
                seen: 0,
            }),
        ))
    }

    fn execution_events<'r>(
        &mut self,
        r: Box<dyn BufRead + 'r>,
    ) -> Result<ExecutionEvents<'r>, TraceError> {
        let mut fr = FrameReader::new(r);
        let kind = fr.read_header()?;
        if kind != StreamKind::Execution {
            return Err(TraceError::WrongStream {
                expected: StreamKind::Execution,
                found: kind,
            });
        }
        let mut buf = Vec::new();
        let meta = decode_execution_meta_frame(&mut fr, &mut buf)?;
        Ok(ExecutionEvents::from_parts(
            TraceFormat::Binary,
            meta,
            Box::new(BinaryExecutionFrames { fr, buf }),
        ))
    }

    fn peek_kind(&mut self, r: &mut dyn BufRead) -> Result<StreamKind, TraceError> {
        FrameReader::new(r).read_header()
    }
}

/// Read and decode the mandatory meta frame of a workload stream.
fn decode_workload_meta_frame<R: BufRead>(
    fr: &mut FrameReader<R>,
    buf: &mut Vec<u8>,
) -> Result<(WorkloadMeta, usize), TraceError> {
    let at = fr.offset;
    let Some(base) = fr.next_frame(buf)? else {
        return Err(frame_err(at, "workload trace has no meta frame"));
    };
    let mut body = Body::new(buf, base);
    workload_meta_from_body(&mut body, base)
}

/// Decode a workload meta frame body, tag check and trailing-byte check included.
pub(crate) fn workload_meta_from_body(
    body: &mut Body<'_>,
    base: u64,
) -> Result<(WorkloadMeta, usize), TraceError> {
    let tag = body.take_u8("frame tag")?;
    if tag != TAG_META {
        return Err(frame_err(
            base,
            format!("expected a meta frame first, found tag {tag:#04x}"),
        ));
    }
    let meta = WorkloadMeta {
        generator_seed: body.take_varint("generator_seed")?,
        sim_seed: body.take_varint("sim_seed")?,
        policy: body.take_str("policy")?,
        profile: body.take_str("profile")?,
        machines: body.take_usize("machines")?,
        slots_per_machine: body.take_usize("slots_per_machine")?,
    };
    let declared_jobs = body.take_usize("num_jobs")?;
    body.expect_end("meta")?;
    Ok((meta, declared_jobs))
}

/// Frame-at-a-time job puller behind [`WorkloadItems`]: one length-prefixed
/// frame is read into the reused buffer per pull, and the meta's declared job
/// count is enforced at end of stream.
struct BinaryWorkloadFrames<R> {
    fr: FrameReader<R>,
    buf: Vec<u8>,
    declared_jobs: usize,
    seen: usize,
}

impl<R: BufRead> WorkloadFrames for BinaryWorkloadFrames<R> {
    fn next_job(&mut self) -> Option<Result<JobSpec, TraceError>> {
        match self.fr.next_frame(&mut self.buf) {
            Err(e) => Some(Err(e)),
            Ok(Some(base)) => {
                let mut body = Body::new(&self.buf, base);
                let tag = match body.take_u8("frame tag") {
                    Ok(tag) => tag,
                    Err(e) => return Some(Err(e)),
                };
                if tag != TAG_JOB {
                    return Some(Err(frame_err(
                        base,
                        format!("unknown frame tag {tag:#04x} in workload trace"),
                    )));
                }
                self.seen += 1;
                Some(decode_job(&mut body).and_then(|job| {
                    body.expect_end("job")?;
                    Ok(job)
                }))
            }
            Ok(None) => {
                if self.seen != self.declared_jobs {
                    Some(Err(frame_err(
                        self.fr.offset,
                        format!(
                            "meta declares {} jobs but the trace contains {}",
                            self.declared_jobs, self.seen
                        ),
                    )))
                } else {
                    None
                }
            }
        }
    }
}

pub(crate) fn decode_job(body: &mut Body<'_>) -> Result<JobSpec, TraceError> {
    let start = body.offset();
    let id = JobId(body.take_varint("job id")?);
    let arrival = body.take_f64("arrival")?;
    let bound_at = body.offset();
    let bound = match body.take_u8("bound kind")? {
        0 => Bound::Deadline(body.take_f64("deadline")?),
        1 => Bound::Error(body.take_f64("error bound")?),
        other => return Err(frame_err(bound_at, format!("bad bound kind {other}"))),
    };
    let stage_count = body.take_usize("stage count")?;
    let mut stages = Vec::with_capacity(stage_count.min(1 << 16));
    for _ in 0..stage_count {
        stages.push(StageSpec {
            name: body.take_str("stage name")?,
            task_count: body.take_usize("stage task count")?,
        });
    }
    let task_count = body.take_usize("task count")?;
    let mut tasks = Vec::with_capacity(task_count.min(1 << 20));
    for _ in 0..task_count {
        let stage = body.take_u8("task stage")?;
        let work = body.take_f64("task work")?;
        tasks.push(TaskSpec::in_stage(work, stage));
    }
    let job = JobSpec {
        id,
        arrival,
        bound,
        stages,
        tasks,
    };
    job.validate()
        .map_err(|e| frame_err(start, format!("decoded job is invalid: {e}")))?;
    Ok(job)
}

/// Read and decode the mandatory meta frame of an execution stream.
fn decode_execution_meta_frame<R: BufRead>(
    fr: &mut FrameReader<R>,
    buf: &mut Vec<u8>,
) -> Result<ExecutionMeta, TraceError> {
    let at = fr.offset;
    let Some(base) = fr.next_frame(buf)? else {
        return Err(frame_err(at, "execution trace has no meta frame"));
    };
    let mut body = Body::new(buf, base);
    execution_meta_from_body(&mut body, base)
}

/// Decode an execution meta frame body, tag check and trailing-byte check included.
pub(crate) fn execution_meta_from_body(
    body: &mut Body<'_>,
    base: u64,
) -> Result<ExecutionMeta, TraceError> {
    let tag = body.take_u8("frame tag")?;
    if tag != TAG_META {
        return Err(frame_err(
            base,
            format!("expected a meta frame first, found tag {tag:#04x}"),
        ));
    }
    let meta = ExecutionMeta {
        sim_seed: body.take_varint("sim_seed")?,
        policy: body.take_str("policy")?,
        machines: body.take_usize("machines")?,
        slots_per_machine: body.take_usize("slots_per_machine")?,
    };
    body.expect_end("meta")?;
    Ok(meta)
}

/// Frame-at-a-time event puller behind [`ExecutionEvents`].
struct BinaryExecutionFrames<R> {
    fr: FrameReader<R>,
    buf: Vec<u8>,
}

impl<R: BufRead> ExecutionFrames for BinaryExecutionFrames<R> {
    fn next_event(&mut self) -> Option<Result<SimTraceEvent, TraceError>> {
        match self.fr.next_frame(&mut self.buf) {
            Err(e) => Some(Err(e)),
            Ok(Some(base)) => {
                let mut body = Body::new(&self.buf, base);
                Some(decode_event(&mut body).and_then(|event| {
                    body.expect_end("event")?;
                    Ok(event)
                }))
            }
            Ok(None) => None,
        }
    }
}

pub(crate) fn decode_event(body: &mut Body<'_>) -> Result<SimTraceEvent, TraceError> {
    let tag_at = body.offset();
    let tag = body.take_u8("frame tag")?;
    let time = body.take_f64("event time")?;
    let job = JobId(body.take_varint("job id")?);
    let take_task = |body: &mut Body<'_>| -> Result<TaskId, TraceError> {
        let at = body.offset();
        let raw = body.take_varint("task id")?;
        u32::try_from(raw)
            .map(TaskId)
            .map_err(|_| frame_err(at, format!("task id {raw} overflows u32")))
    };
    match tag {
        TAG_ARRIVE => Ok(SimTraceEvent::JobArrival { time, job }),
        TAG_DECIDE => {
            let task = take_task(body)?;
            let at = body.offset();
            let kind = match body.take_u8("decision kind")? {
                0 => ActionKind::Launch,
                1 => ActionKind::Speculate,
                other => return Err(frame_err(at, format!("unknown decision kind {other}"))),
            };
            Ok(SimTraceEvent::Decision {
                time,
                job,
                task,
                kind,
            })
        }
        TAG_LAUNCH => Ok(SimTraceEvent::CopyLaunch {
            time,
            job,
            task: take_task(body)?,
            copy: body.take_varint("copy id")?,
            slot: SlotId {
                machine: body.take_usize("slot machine")?,
                slot: body.take_usize("slot index")?,
            },
            duration: body.take_f64("duration")?,
            speculative: body.take_bool("speculative flag")?,
        }),
        TAG_FINISH => Ok(SimTraceEvent::CopyFinish {
            time,
            job,
            task: take_task(body)?,
            copy: body.take_varint("copy id")?,
            task_completed: body.take_bool("completion flag")?,
        }),
        TAG_KILL => Ok(SimTraceEvent::CopyKill {
            time,
            job,
            task: take_task(body)?,
            copy: body.take_varint("copy id")?,
            slot: SlotId {
                machine: body.take_usize("slot machine")?,
                slot: body.take_usize("slot index")?,
            },
        }),
        TAG_JOBDONE => Ok(SimTraceEvent::JobFinish {
            time,
            job,
            completed_input: body.take_usize("completed input")?,
            completed_total: body.take_usize("completed total")?,
        }),
        other => Err(frame_err(
            tag_at,
            format!("unknown frame tag {other:#04x} in execution trace"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_at_the_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut body = Body::new(&buf, 0);
            assert_eq!(body.take_varint("v").unwrap(), v, "{v}");
            body.expect_end("v").unwrap();
        }
    }

    #[test]
    fn body_errors_name_their_offset() {
        // A varint that never terminates (all continuation bits set).
        let buf = [0xFFu8; 11];
        let mut body = Body::new(&buf, 100);
        let err = body.take_varint("x").unwrap_err();
        assert!(
            matches!(err, TraceError::Frame { offset: 100, .. }),
            "{err}"
        );

        // Reading past the end of the frame names the current position.
        let buf = [0u8; 3];
        let mut body = Body::new(&buf, 50);
        body.take_u8("a").unwrap();
        let err = body.take_f64("b").unwrap_err();
        assert!(matches!(err, TraceError::Frame { offset: 51, .. }), "{err}");
    }

    #[test]
    fn floats_survive_raw_bits_round_trips() {
        for v in [
            0.0,
            -0.0,
            1.5,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let mut body = Body::new(&buf, 0);
            assert_eq!(body.take_f64("v").unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn header_round_trips_both_kinds() {
        let mut codec = BinaryCodec::new();
        for kind in [StreamKind::Workload, StreamKind::Execution] {
            let mut bytes = Vec::new();
            codec.header(&mut bytes, kind).unwrap();
            assert_eq!(bytes.len(), 14);
            assert_eq!(codec.peek_kind(&mut &bytes[..]).unwrap(), kind);
        }
    }
}
