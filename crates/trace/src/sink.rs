//! A streaming [`TraceSink`]: encodes simulator events straight onto a writer, in
//! either trace format.
//!
//! Use this to capture an execution trace without buffering the whole event stream
//! in memory:
//!
//! ```
//! use grass_core::{Bound, GsFactory, JobSpec};
//! use grass_sim::{run_simulation_traced, ClusterConfig, SimConfig};
//! use grass_trace::{ExecutionMeta, ExecutionTrace, ExecutionTraceSink, TraceFormat};
//!
//! let config = SimConfig { cluster: ClusterConfig::small(2, 2), ..SimConfig::default() };
//! let meta = ExecutionMeta {
//!     sim_seed: config.seed,
//!     policy: "GS".into(),
//!     machines: 2,
//!     slots_per_machine: 2,
//! };
//! let mut sink = ExecutionTraceSink::with_format(Vec::new(), &meta, TraceFormat::Binary).unwrap();
//! let job = JobSpec::single_stage(1, 0.0, Bound::EXACT, vec![1.0; 4]);
//! run_simulation_traced(&config, vec![job], &GsFactory, &mut sink);
//! let bytes = sink.finish().unwrap();
//! let trace = ExecutionTrace::from_bytes(&bytes).unwrap();
//! assert!(!trace.events.is_empty());
//! ```

use std::io::Write;

use grass_sim::{SimTraceEvent, TraceSink};

use crate::codec::TraceError;
use crate::execution::ExecutionMeta;
use crate::format::{codec_for, TraceCodec, TraceFormat};

/// Sink that writes each event record as it is emitted, through the chosen
/// format's [`TraceCodec`] plugin.
///
/// [`TraceSink::record`] cannot return an error, so I/O failures are latched and
/// surfaced by [`finish`](ExecutionTraceSink::finish); events after a failure are
/// dropped.
pub struct ExecutionTraceSink<W: Write> {
    w: W,
    codec: Box<dyn TraceCodec>,
    error: Option<TraceError>,
}

impl<W: Write> ExecutionTraceSink<W> {
    /// Open a text (v1) sink on `w`, writing the execution header and meta record.
    pub fn new(w: W, meta: &ExecutionMeta) -> Result<Self, TraceError> {
        Self::with_format(w, meta, TraceFormat::Text)
    }

    /// Open a sink on `w` in the chosen format, writing the execution header and
    /// meta record.
    pub fn with_format(
        mut w: W,
        meta: &ExecutionMeta,
        format: TraceFormat,
    ) -> Result<Self, TraceError> {
        let mut codec = codec_for(format);
        codec.begin_execution(&mut w, meta)?;
        Ok(ExecutionTraceSink {
            w,
            codec,
            error: None,
        })
    }

    /// Format this sink encodes into.
    pub fn format(&self) -> TraceFormat {
        self.codec.format()
    }

    /// Flush and return the underlying writer, or the first latched I/O error.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        self.codec.finish(&mut self.w)?;
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write> TraceSink for ExecutionTraceSink<W> {
    fn record(&mut self, event: &SimTraceEvent) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.codec.encode_event(&mut self.w, event) {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grass_core::{Bound, GsFactory, JobSpec};
    use grass_sim::{run_simulation_traced, ClusterConfig, SimConfig, VecSink};

    fn meta() -> ExecutionMeta {
        ExecutionMeta {
            sim_seed: 3,
            policy: "GS".into(),
            machines: 2,
            slots_per_machine: 2,
        }
    }

    #[test]
    fn streamed_trace_equals_buffered_trace_in_both_formats() {
        let config = SimConfig {
            cluster: ClusterConfig::small(2, 2),
            seed: 3,
            ..SimConfig::default()
        };
        let jobs = vec![JobSpec::single_stage(
            1,
            0.0,
            Bound::Error(0.25),
            vec![2.0; 8],
        )];

        for format in [TraceFormat::Text, TraceFormat::Binary] {
            let mut streaming =
                ExecutionTraceSink::with_format(Vec::new(), &meta(), format).unwrap();
            assert_eq!(streaming.format(), format);
            let a = run_simulation_traced(&config, jobs.clone(), &GsFactory, &mut streaming);
            let streamed_bytes = streaming.finish().unwrap();

            let mut buffered = VecSink::new();
            let b = run_simulation_traced(&config, jobs.clone(), &GsFactory, &mut buffered);
            let buffered_trace = crate::ExecutionTrace::new(meta(), buffered.into_events());

            assert_eq!(a.outcomes, b.outcomes);
            assert_eq!(
                streamed_bytes,
                buffered_trace.to_bytes_as(format),
                "{format}"
            );
        }
    }

    struct FailingWriter {
        allowed: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.allowed == 0 {
                return Err(std::io::Error::other("disk full"));
            }
            self.allowed -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn io_errors_are_latched_and_reported_by_finish() {
        // Allow enough writes for the header and meta record, then fail; the error
        // must be latched and surface from finish() regardless of when it hits.
        for format in [TraceFormat::Text, TraceFormat::Binary] {
            let mut sink =
                ExecutionTraceSink::with_format(FailingWriter { allowed: 20 }, &meta(), format)
                    .unwrap();
            let event = SimTraceEvent::JobArrival {
                time: 0.0,
                job: grass_core::JobId(1),
            };
            for _ in 0..100 {
                sink.record(&event);
            }
            assert!(sink.finish().is_err(), "{format}");
        }
    }
}
