//! A streaming [`TraceSink`]: encodes simulator events straight onto a writer.
//!
//! Use this to capture an execution trace without buffering the whole event stream
//! in memory:
//!
//! ```
//! use grass_core::{Bound, GsFactory, JobSpec};
//! use grass_sim::{run_simulation_traced, ClusterConfig, SimConfig};
//! use grass_trace::{ExecutionMeta, ExecutionTrace, ExecutionTraceSink};
//!
//! let config = SimConfig { cluster: ClusterConfig::small(2, 2), ..SimConfig::default() };
//! let meta = ExecutionMeta {
//!     sim_seed: config.seed,
//!     policy: "GS".into(),
//!     machines: 2,
//!     slots_per_machine: 2,
//! };
//! let mut sink = ExecutionTraceSink::new(Vec::new(), &meta).unwrap();
//! let job = JobSpec::single_stage(1, 0.0, Bound::EXACT, vec![1.0; 4]);
//! run_simulation_traced(&config, vec![job], &GsFactory, &mut sink);
//! let bytes = sink.finish().unwrap();
//! let trace = ExecutionTrace::from_bytes(&bytes).unwrap();
//! assert!(!trace.events.is_empty());
//! ```

use std::io::Write;

use grass_sim::{SimTraceEvent, TraceSink};

use crate::codec::{StreamKind, TraceError, TraceWriter};
use crate::execution::{encode_event, encode_meta, ExecutionMeta};

/// Sink that writes each event line as it is emitted.
///
/// [`TraceSink::record`] cannot return an error, so I/O failures are latched and
/// surfaced by [`finish`](ExecutionTraceSink::finish); events after a failure are
/// dropped.
pub struct ExecutionTraceSink<W: Write> {
    writer: Option<TraceWriter<W>>,
    error: Option<TraceError>,
}

impl<W: Write> ExecutionTraceSink<W> {
    /// Open a sink on `w`, writing the execution header and meta record.
    pub fn new(w: W, meta: &ExecutionMeta) -> Result<Self, TraceError> {
        let mut writer = TraceWriter::new(w, StreamKind::Execution)?;
        writer.record(&encode_meta(meta))?;
        Ok(ExecutionTraceSink {
            writer: Some(writer),
            error: None,
        })
    }

    /// Flush and return the underlying writer, or the first latched I/O error.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        self.writer
            .take()
            .expect("writer only vacated on error")
            .finish()
    }
}

impl<W: Write> TraceSink for ExecutionTraceSink<W> {
    fn record(&mut self, event: &SimTraceEvent) {
        if self.error.is_some() {
            return;
        }
        if let Some(writer) = self.writer.as_mut() {
            if let Err(e) = writer.record(&encode_event(event)) {
                self.error = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grass_core::{Bound, GsFactory, JobSpec};
    use grass_sim::{run_simulation_traced, ClusterConfig, SimConfig, VecSink};

    fn meta() -> ExecutionMeta {
        ExecutionMeta {
            sim_seed: 3,
            policy: "GS".into(),
            machines: 2,
            slots_per_machine: 2,
        }
    }

    #[test]
    fn streamed_trace_equals_buffered_trace() {
        let config = SimConfig {
            cluster: ClusterConfig::small(2, 2),
            seed: 3,
            ..SimConfig::default()
        };
        let jobs = vec![JobSpec::single_stage(
            1,
            0.0,
            Bound::Error(0.25),
            vec![2.0; 8],
        )];

        let mut streaming = ExecutionTraceSink::new(Vec::new(), &meta()).unwrap();
        let a = run_simulation_traced(&config, jobs.clone(), &GsFactory, &mut streaming);
        let streamed_bytes = streaming.finish().unwrap();

        let mut buffered = VecSink::new();
        let b = run_simulation_traced(&config, jobs, &GsFactory, &mut buffered);
        let buffered_trace = crate::ExecutionTrace::new(meta(), buffered.into_events());

        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(streamed_bytes, buffered_trace.to_bytes());
    }

    struct FailingWriter {
        allowed: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.allowed == 0 {
                return Err(std::io::Error::other("disk full"));
            }
            self.allowed -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn io_errors_are_latched_and_reported_by_finish() {
        // Allow enough writes for the header and meta record, then fail; the error
        // must be latched and surface from finish() regardless of when it hits.
        let mut sink = ExecutionTraceSink::new(FailingWriter { allowed: 20 }, &meta()).unwrap();
        let event = SimTraceEvent::JobArrival {
            time: 0.0,
            job: grass_core::JobId(1),
        };
        for _ in 0..100 {
            sink.record(&event);
        }
        assert!(sink.finish().is_err());
    }
}
