//! Streaming encode sinks: [`ExecutionTraceSink`] (a [`TraceSink`] writing
//! simulator events straight to a writer), [`WorkloadTraceSink`] (job records
//! straight to a writer, used by `repro trace gen`), and the record-at-a-time
//! re-encoder [`convert_stream`] behind `repro trace convert` — none of them
//! ever hold more than one record in memory.
//!
//! Capturing an execution trace without buffering the event stream:
//!
//! ```
//! use grass_core::{Bound, GsFactory, JobSpec};
//! use grass_sim::{run_simulation_traced, ClusterConfig, SimConfig};
//! use grass_trace::{ExecutionMeta, ExecutionTrace, ExecutionTraceSink, TraceFormat};
//!
//! let config = SimConfig { cluster: ClusterConfig::small(2, 2), ..SimConfig::default() };
//! let meta = ExecutionMeta {
//!     sim_seed: config.seed,
//!     policy: "GS".into(),
//!     machines: 2,
//!     slots_per_machine: 2,
//! };
//! let mut sink = ExecutionTraceSink::with_format(Vec::new(), &meta, TraceFormat::Binary).unwrap();
//! let job = JobSpec::single_stage(1, 0.0, Bound::EXACT, vec![1.0; 4]);
//! run_simulation_traced(&config, vec![job], &GsFactory, &mut sink);
//! let bytes = sink.finish().unwrap();
//! let trace = ExecutionTrace::from_bytes(&bytes).unwrap();
//! assert!(!trace.events.is_empty());
//! ```

use std::io::{BufRead, Write};

use grass_core::JobSpec;
use grass_sim::{SimTraceEvent, TraceSink};

use crate::codec::{StreamKind, TraceError};
use crate::execution::ExecutionMeta;
use crate::format::{codec_for, TraceCodec, TraceFormat};
use crate::stream::TraceItems;
use crate::workload::WorkloadMeta;

/// Sink that writes each event record as it is emitted, through the chosen
/// format's [`TraceCodec`] plugin.
///
/// [`TraceSink::record`] cannot return an error, so I/O failures are latched and
/// surfaced by [`finish`](ExecutionTraceSink::finish); events after a failure are
/// dropped.
pub struct ExecutionTraceSink<W: Write> {
    w: W,
    codec: Box<dyn TraceCodec>,
    error: Option<TraceError>,
}

impl<W: Write> ExecutionTraceSink<W> {
    /// Open a text (v1) sink on `w`, writing the execution header and meta record.
    pub fn new(w: W, meta: &ExecutionMeta) -> Result<Self, TraceError> {
        Self::with_format(w, meta, TraceFormat::Text)
    }

    /// Open a sink on `w` in the chosen format, writing the execution header and
    /// meta record.
    pub fn with_format(
        mut w: W,
        meta: &ExecutionMeta,
        format: TraceFormat,
    ) -> Result<Self, TraceError> {
        let mut codec = codec_for(format);
        codec.begin_execution(&mut w, meta)?;
        Ok(ExecutionTraceSink {
            w,
            codec,
            error: None,
        })
    }

    /// Format this sink encodes into.
    pub fn format(&self) -> TraceFormat {
        self.codec.format()
    }

    /// Flush and return the underlying writer, or the first latched I/O error.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        self.codec.finish(&mut self.w)?;
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write> TraceSink for ExecutionTraceSink<W> {
    fn record(&mut self, event: &SimTraceEvent) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.codec.encode_event(&mut self.w, event) {
            self.error = Some(e);
        }
    }
}

/// Streaming workload writer: encodes job records straight onto a writer in the
/// chosen format, one [`push`](WorkloadTraceSink::push) at a time — the workload
/// analogue of [`ExecutionTraceSink`], used by `repro trace gen` and the
/// streaming converter so a GB-scale trace is never materialised.
///
/// The workload header declares the job count up front, so the sink takes it at
/// construction and [`finish`](WorkloadTraceSink::finish) fails if a different
/// number of jobs was pushed (the written trace would fail its own decode-time
/// count check otherwise).
pub struct WorkloadTraceSink<W: Write> {
    w: W,
    codec: Box<dyn TraceCodec>,
    declared_jobs: usize,
    written: usize,
}

impl<W: Write> WorkloadTraceSink<W> {
    /// Open a sink on `w` in the chosen format, writing the workload header and
    /// meta record declaring `num_jobs` jobs.
    pub fn with_format(
        mut w: W,
        meta: &WorkloadMeta,
        num_jobs: usize,
        format: TraceFormat,
    ) -> Result<Self, TraceError> {
        let mut codec = codec_for(format);
        codec.begin_workload(&mut w, meta, num_jobs)?;
        Ok(WorkloadTraceSink {
            w,
            codec,
            declared_jobs: num_jobs,
            written: 0,
        })
    }

    /// Format this sink encodes into.
    pub fn format(&self) -> TraceFormat {
        self.codec.format()
    }

    /// Encode one job record.
    pub fn push(&mut self, job: &JobSpec) -> Result<(), TraceError> {
        self.codec.encode_job(&mut self.w, job)?;
        self.written += 1;
        Ok(())
    }

    /// Write the trailer, flush, and return the underlying writer. Fails if the
    /// number of pushed jobs differs from the declared count.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if self.written != self.declared_jobs {
            return Err(TraceError::Frame {
                offset: 0,
                message: format!(
                    "workload sink declared {} jobs but {} were pushed",
                    self.declared_jobs, self.written
                ),
            });
        }
        self.codec.finish(&mut self.w)?;
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Re-encode a trace of either stream kind into `format`, record at a time:
/// each decoded item goes straight back out through the target codec, so
/// converting a trace needs O(one record) memory regardless of its size.
///
/// Returns the source's format and stream kind (for reporting). The output is
/// byte-identical to an eager decode-then-`write_as` of the same trace — both
/// paths drive the same codec calls in the same order.
pub fn convert_stream<R: BufRead, W: Write>(
    r: R,
    mut w: W,
    format: TraceFormat,
) -> Result<(TraceFormat, StreamKind), TraceError> {
    let mut codec = codec_for(format);
    match TraceItems::open(r)? {
        TraceItems::Workload(mut items) => {
            let from = items.format();
            codec.begin_workload(&mut w, items.meta(), items.declared_jobs())?;
            for job in &mut items {
                codec.encode_job(&mut w, &job?)?;
            }
            codec.finish(&mut w)?;
            w.flush()?;
            Ok((from, StreamKind::Workload))
        }
        TraceItems::Execution(mut events) => {
            let from = events.format();
            codec.begin_execution(&mut w, events.meta())?;
            for event in &mut events {
                codec.encode_event(&mut w, &event?)?;
            }
            codec.finish(&mut w)?;
            w.flush()?;
            Ok((from, StreamKind::Execution))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grass_core::{Bound, GsFactory, JobSpec};
    use grass_sim::{run_simulation_traced, ClusterConfig, SimConfig, VecSink};

    fn meta() -> ExecutionMeta {
        ExecutionMeta {
            sim_seed: 3,
            policy: "GS".into(),
            machines: 2,
            slots_per_machine: 2,
        }
    }

    #[test]
    fn streamed_trace_equals_buffered_trace_in_both_formats() {
        let config = SimConfig {
            cluster: ClusterConfig::small(2, 2),
            seed: 3,
            ..SimConfig::default()
        };
        let jobs = vec![JobSpec::single_stage(
            1,
            0.0,
            Bound::Error(0.25),
            vec![2.0; 8],
        )];

        for format in TraceFormat::ALL {
            let mut streaming =
                ExecutionTraceSink::with_format(Vec::new(), &meta(), format).unwrap();
            assert_eq!(streaming.format(), format);
            let a = run_simulation_traced(&config, jobs.clone(), &GsFactory, &mut streaming);
            let streamed_bytes = streaming.finish().unwrap();

            let mut buffered = VecSink::new();
            let b = run_simulation_traced(&config, jobs.clone(), &GsFactory, &mut buffered);
            let buffered_trace = crate::ExecutionTrace::new(meta(), buffered.into_events());

            assert_eq!(a.outcomes, b.outcomes);
            assert_eq!(
                streamed_bytes,
                buffered_trace.to_bytes_as(format),
                "{format}"
            );
        }
    }

    struct FailingWriter {
        allowed: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.allowed == 0 {
                return Err(std::io::Error::other("disk full"));
            }
            self.allowed -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn io_errors_are_latched_and_reported_by_finish() {
        // Allow enough writes for the header and meta record, then fail; the error
        // must be latched and surface from finish() regardless of when it hits.
        // The compressed format only touches the writer once per ~64 KiB block,
        // so the event count must push well past 20 blocks to guarantee the
        // failure hits mid-stream in every format.
        for format in TraceFormat::ALL {
            let mut sink =
                ExecutionTraceSink::with_format(FailingWriter { allowed: 20 }, &meta(), format)
                    .unwrap();
            let event = SimTraceEvent::JobArrival {
                time: 0.0,
                job: grass_core::JobId(1),
            };
            for _ in 0..100_000 {
                sink.record(&event);
            }
            assert!(sink.finish().is_err(), "{format}");
        }
    }
}
