//! Execution traces: the timestamped simulator event stream of one run.
//!
//! The event vocabulary is `grass-sim`'s [`SimTraceEvent`] — job arrivals, policy
//! decisions (launch vs speculate), copy launches with their slot allocation, copy
//! finishes and kills, and job completions — encoded one event per line in emission
//! order. Capture either in memory (`grass_sim::VecSink` plus
//! [`ExecutionTrace::new`]) or streamed straight to a writer
//! ([`crate::ExecutionTraceSink`]).

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use grass_core::{ActionKind, JobId, TaskId};
use grass_sim::{SimTraceEvent, SlotId};

use crate::codec::{LineBuilder, Record, StreamKind, TraceError, TraceReader, TraceWriter};

/// Metadata of an execution trace: the simulation configuration that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionMeta {
    /// Simulator seed of the run.
    pub sim_seed: u64,
    /// Policy family that scheduled the run.
    pub policy: String,
    /// Number of cluster machines.
    pub machines: usize,
    /// Slots per machine.
    pub slots_per_machine: usize,
}

/// A recorded execution: metadata plus the full event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    /// The simulation configuration that produced the stream.
    pub meta: ExecutionMeta,
    /// Events in emission (simulation) order.
    pub events: Vec<SimTraceEvent>,
}

impl ExecutionTrace {
    /// Bundle metadata and a captured event stream.
    pub fn new(meta: ExecutionMeta, events: Vec<SimTraceEvent>) -> Self {
        ExecutionTrace { meta, events }
    }

    /// Encode the trace onto any writer.
    pub fn write_to<W: Write>(&self, w: W) -> Result<(), TraceError> {
        let mut out = TraceWriter::new(w, StreamKind::Execution)?;
        out.record(&encode_meta(&self.meta))?;
        for event in &self.events {
            out.record(&encode_event(event))?;
        }
        out.finish()?;
        Ok(())
    }

    /// Encode the trace into a byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_to(&mut buf)
            .expect("writing to a Vec cannot fail");
        buf
    }

    /// Decode a trace from any buffered reader.
    pub fn read_from<R: BufRead>(r: R) -> Result<Self, TraceError> {
        let mut reader = TraceReader::new(r, Some(StreamKind::Execution))?;
        let meta_rec = reader.next_record()?.ok_or(TraceError::Parse {
            line: 1,
            message: "execution trace has no meta record".into(),
        })?;
        if meta_rec.tag != "meta" {
            return Err(TraceError::Parse {
                line: meta_rec.line,
                message: format!(
                    "expected 'meta' as the first record, found '{}'",
                    meta_rec.tag
                ),
            });
        }
        let meta = decode_meta(&meta_rec)?;
        let mut events = Vec::new();
        while let Some(rec) = reader.next_record()? {
            events.push(decode_event(&rec)?);
        }
        Ok(ExecutionTrace { meta, events })
    }

    /// Decode a trace from a byte slice.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        Self::read_from(bytes)
    }

    /// Write the trace to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        self.write_to(BufWriter::new(File::create(path)?))
    }

    /// Read a trace from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::read_from(BufReader::new(File::open(path)?))
    }
}

pub(crate) fn encode_meta(meta: &ExecutionMeta) -> String {
    LineBuilder::new("meta")
        .num("sim_seed", meta.sim_seed)
        .text("policy", &meta.policy)
        .num("machines", meta.machines)
        .num("slots_per_machine", meta.slots_per_machine)
        .build()
}

fn decode_meta(rec: &Record) -> Result<ExecutionMeta, TraceError> {
    Ok(ExecutionMeta {
        sim_seed: rec.u64("sim_seed")?,
        policy: rec.text("policy")?,
        machines: rec.usize("machines")?,
        slots_per_machine: rec.usize("slots_per_machine")?,
    })
}

/// Encode one simulator event as a record line (tag = the event's kind label).
pub(crate) fn encode_event(event: &SimTraceEvent) -> String {
    let base = LineBuilder::new(event.kind_label())
        .num("t", event.time())
        .num("job", event.job().value());
    match *event {
        SimTraceEvent::JobArrival { .. } => base.build(),
        SimTraceEvent::Decision { task, kind, .. } => base
            .num("task", task.0)
            .num(
                "kind",
                match kind {
                    ActionKind::Launch => "launch",
                    ActionKind::Speculate => "speculate",
                },
            )
            .build(),
        SimTraceEvent::CopyLaunch {
            task,
            copy,
            slot,
            duration,
            speculative,
            ..
        } => base
            .num("task", task.0)
            .num("copy", copy)
            .num("slot", format_slot(slot))
            .num("dur", duration)
            .flag("spec", speculative)
            .build(),
        SimTraceEvent::CopyFinish {
            task,
            copy,
            task_completed,
            ..
        } => base
            .num("task", task.0)
            .num("copy", copy)
            .flag("done", task_completed)
            .build(),
        SimTraceEvent::CopyKill {
            task, copy, slot, ..
        } => base
            .num("task", task.0)
            .num("copy", copy)
            .num("slot", format_slot(slot))
            .build(),
        SimTraceEvent::JobFinish {
            completed_input,
            completed_total,
            ..
        } => base
            .num("input", completed_input)
            .num("total", completed_total)
            .build(),
    }
}

fn format_slot(slot: SlotId) -> String {
    format!("{}.{}", slot.machine, slot.slot)
}

fn parse_slot(rec: &Record, key: &str) -> Result<SlotId, TraceError> {
    let raw = rec.raw(key)?;
    let parsed = raw.split_once('.').and_then(|(m, s)| {
        Some(SlotId {
            machine: m.parse().ok()?,
            slot: s.parse().ok()?,
        })
    });
    parsed.ok_or(TraceError::Parse {
        line: rec.line,
        message: format!("field '{key}' is not a machine.slot pair: '{raw}'"),
    })
}

fn decode_event(rec: &Record) -> Result<SimTraceEvent, TraceError> {
    let time = rec.f64("t")?;
    let job = JobId(rec.u64("job")?);
    let task = |rec: &Record| -> Result<TaskId, TraceError> { Ok(TaskId(rec.u64("task")? as u32)) };
    match rec.tag.as_str() {
        "arrive" => Ok(SimTraceEvent::JobArrival { time, job }),
        "decide" => {
            let kind = match rec.raw("kind")? {
                "launch" => ActionKind::Launch,
                "speculate" => ActionKind::Speculate,
                other => {
                    return Err(TraceError::Parse {
                        line: rec.line,
                        message: format!("unknown decision kind '{other}'"),
                    })
                }
            };
            Ok(SimTraceEvent::Decision {
                time,
                job,
                task: task(rec)?,
                kind,
            })
        }
        "launch" => Ok(SimTraceEvent::CopyLaunch {
            time,
            job,
            task: task(rec)?,
            copy: rec.u64("copy")?,
            slot: parse_slot(rec, "slot")?,
            duration: rec.f64("dur")?,
            speculative: rec.bool("spec")?,
        }),
        "finish" => Ok(SimTraceEvent::CopyFinish {
            time,
            job,
            task: task(rec)?,
            copy: rec.u64("copy")?,
            task_completed: rec.bool("done")?,
        }),
        "kill" => Ok(SimTraceEvent::CopyKill {
            time,
            job,
            task: task(rec)?,
            copy: rec.u64("copy")?,
            slot: parse_slot(rec, "slot")?,
        }),
        "jobdone" => Ok(SimTraceEvent::JobFinish {
            time,
            job,
            completed_input: rec.usize("input")?,
            completed_total: rec.usize("total")?,
        }),
        other => Err(TraceError::Parse {
            line: rec.line,
            message: format!("unknown event tag '{other}'"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_events() -> Vec<SimTraceEvent> {
        vec![
            SimTraceEvent::JobArrival {
                time: 0.0,
                job: JobId(1),
            },
            SimTraceEvent::Decision {
                time: 0.0,
                job: JobId(1),
                task: TaskId(4),
                kind: ActionKind::Launch,
            },
            SimTraceEvent::CopyLaunch {
                time: 0.0,
                job: JobId(1),
                task: TaskId(4),
                copy: 0,
                slot: SlotId {
                    machine: 3,
                    slot: 1,
                },
                duration: 2.5,
                speculative: false,
            },
            SimTraceEvent::Decision {
                time: 1.5,
                job: JobId(1),
                task: TaskId(4),
                kind: ActionKind::Speculate,
            },
            SimTraceEvent::CopyLaunch {
                time: 1.5,
                job: JobId(1),
                task: TaskId(4),
                copy: 1,
                slot: SlotId {
                    machine: 0,
                    slot: 0,
                },
                duration: 0.5,
                speculative: true,
            },
            SimTraceEvent::CopyFinish {
                time: 2.0,
                job: JobId(1),
                task: TaskId(4),
                copy: 1,
                task_completed: true,
            },
            SimTraceEvent::CopyKill {
                time: 2.0,
                job: JobId(1),
                task: TaskId(4),
                copy: 0,
                slot: SlotId {
                    machine: 3,
                    slot: 1,
                },
            },
            SimTraceEvent::JobFinish {
                time: 2.0,
                job: JobId(1),
                completed_input: 1,
                completed_total: 1,
            },
        ]
    }

    fn sample_trace() -> ExecutionTrace {
        ExecutionTrace::new(
            ExecutionMeta {
                sim_seed: 9,
                policy: "GRASS".into(),
                machines: 4,
                slots_per_machine: 2,
            },
            sample_events(),
        )
    }

    #[test]
    fn every_event_variant_round_trips() {
        let trace = sample_trace();
        let decoded = ExecutionTrace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(decoded.to_bytes(), trace.to_bytes());
    }

    #[test]
    fn unknown_tags_and_bad_slots_are_rejected() {
        let bytes = b"grass-trace 1 execution\n\
            meta sim_seed=0 policy=GS machines=1 slots_per_machine=1\n\
            teleport t=0 job=1\n";
        assert!(ExecutionTrace::from_bytes(bytes).is_err());

        let bytes = b"grass-trace 1 execution\n\
            meta sim_seed=0 policy=GS machines=1 slots_per_machine=1\n\
            kill t=0 job=1 task=0 copy=0 slot=nonsense\n";
        let err = ExecutionTrace::from_bytes(bytes).unwrap_err();
        assert!(err.to_string().contains("machine.slot"), "{err}");
    }

    #[test]
    fn workload_header_is_rejected_for_execution_reads() {
        let bytes = b"grass-trace 1 workload\nmeta num_jobs=0\n";
        assert!(matches!(
            ExecutionTrace::from_bytes(bytes),
            Err(TraceError::WrongStream { .. })
        ));
    }
}
